"""Persistence: archive audit results as JSON and reload them.

A real auditing deployment (the paper's §8.1: "repeat the measurements
over time, and report on whether providers become more or less honest")
needs results on disk in a stable, diffable format.  The schema is
self-describing and versioned; prediction regions are stored as grid
cell-index lists against a recorded grid resolution, so they reload
exactly — the loader rejects files whose resolution does not match the
grid it is given.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from .core.assessment import ClaimAssessment, ContinentVerdict, Verdict
from .core.disambiguation import AuditRecord
from .experiments.audit import AuditResult
from .geo.grid import Grid
from .geo.region import Region

SCHEMA_VERSION = 1


@dataclass(frozen=True)
class StoredServer:
    """The server identity fields preserved in an archive.

    Ground-truth simulator fields (``honest``, the true host) are *not*
    stored: an archive mimics what a real audit could publish.
    """

    hostname: str
    ip: str
    provider: str
    claimed_country: str
    asn: int
    prefix: str


@dataclass
class StoredRecord:
    """One reloaded audit record."""

    server: StoredServer
    region: Region
    assessment: ClaimAssessment
    initial_verdict: Optional[Verdict]


@dataclass
class StoredAudit:
    """A reloaded archive: records plus run metadata."""

    records: List[StoredRecord]
    eta: float
    reclassified: Dict[str, int]
    schema_version: int = SCHEMA_VERSION

    def verdict_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for record in self.records:
            value = record.assessment.verdict.value
            counts[value] = counts.get(value, 0) + 1
        return counts


def _assessment_to_dict(assessment: ClaimAssessment) -> dict:
    return {
        "claimed_country": assessment.claimed_country,
        "verdict": assessment.verdict.value,
        "continent_verdict": assessment.continent_verdict.value,
        "countries_covered": list(assessment.countries_covered),
        "region_area_km2": assessment.region_area_km2,
        "resolved_country": assessment.resolved_country,
        "resolution_method": assessment.resolution_method,
    }


def _assessment_from_dict(payload: dict) -> ClaimAssessment:
    return ClaimAssessment(
        claimed_country=payload["claimed_country"],
        verdict=Verdict(payload["verdict"]),
        continent_verdict=ContinentVerdict(payload["continent_verdict"]),
        countries_covered=list(payload["countries_covered"]),
        region_area_km2=float(payload["region_area_km2"]),
        resolved_country=payload.get("resolved_country"),
        resolution_method=payload.get("resolution_method"),
    )


def _record_to_dict(record: AuditRecord) -> dict:
    server = record.server
    return {
        "server": {
            "hostname": server.hostname,
            "ip": server.ip,
            "provider": server.provider,
            "claimed_country": server.claimed_country,
            "asn": server.asn,
            "prefix": server.prefix,
        },
        "region_cells": [int(i) for i in record.region.cell_indices()],
        "assessment": _assessment_to_dict(record.assessment),
        "initial_verdict": (record.initial_verdict.value
                            if record.initial_verdict else None),
    }


def save_audit(result: AuditResult, path: Union[str, Path]) -> Path:
    """Write an audit archive; returns the path written."""
    if not result.records:
        raise ValueError("refusing to archive an empty audit")
    grid = result.records[0].region.grid
    payload = {
        "schema_version": SCHEMA_VERSION,
        "grid_resolution_deg": grid.resolution_deg,
        "eta": result.eta.eta,
        "eta_r_squared": result.eta.r_squared,
        "reclassified": dict(result.reclassified),
        "records": [_record_to_dict(record) for record in result.records],
    }
    path = Path(path)
    path.write_text(json.dumps(payload, indent=1, sort_keys=True))
    return path


def load_audit(path: Union[str, Path], grid: Grid) -> StoredAudit:
    """Reload an archive onto a grid of the recorded resolution."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(f"unsupported schema version {version!r}")
    stored_resolution = payload["grid_resolution_deg"]
    if abs(stored_resolution - grid.resolution_deg) > 1e-9:
        raise ValueError(
            f"archive was made on a {stored_resolution} degree grid, "
            f"got {grid.resolution_deg}")
    records: List[StoredRecord] = []
    for entry in payload["records"]:
        server_payload = entry["server"]
        initial = entry.get("initial_verdict")
        records.append(StoredRecord(
            server=StoredServer(
                hostname=server_payload["hostname"],
                ip=server_payload["ip"],
                provider=server_payload["provider"],
                claimed_country=server_payload["claimed_country"],
                asn=int(server_payload["asn"]),
                prefix=server_payload["prefix"],
            ),
            region=Region.from_cells(grid, entry["region_cells"]),
            assessment=_assessment_from_dict(entry["assessment"]),
            initial_verdict=Verdict(initial) if initial else None,
        ))
    return StoredAudit(
        records=records,
        eta=float(payload["eta"]),
        reclassified={k: int(v) for k, v in payload["reclassified"].items()},
    )


def compare_audits(old: StoredAudit, new: StoredAudit) -> Dict[str, List[str]]:
    """Longitudinal diff (§8.1): which claims changed verdict between runs.

    Keyed by transition ("false -> credible", ...), values are server IPs.
    Servers present in only one archive are reported under "added" /
    "removed".
    """
    old_by_ip = {record.server.ip: record for record in old.records}
    new_by_ip = {record.server.ip: record for record in new.records}
    changes: Dict[str, List[str]] = {}

    def note(key: str, ip: str) -> None:
        changes.setdefault(key, []).append(ip)

    for ip, new_record in new_by_ip.items():
        old_record = old_by_ip.get(ip)
        if old_record is None:
            note("added", ip)
            continue
        before = old_record.assessment.verdict.value
        after = new_record.assessment.verdict.value
        if before != after:
            note(f"{before} -> {after}", ip)
    for ip in old_by_ip:
        if ip not in new_by_ip:
            note("removed", ip)
    return changes
