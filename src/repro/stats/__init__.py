"""Statistics substrate: regressions, ECDFs, confusion matrices, hulls."""

from .cdf import Ecdf, ecdf
from .confusion import ConfusionMatrix, CooccurrenceMatrix, LabelMatrix
from .hull import convex_hull, lower_hull, piecewise_interpolate, upper_hull
from .regression import (
    AnovaResult,
    LinearFit,
    bootstrap_slope_ci,
    f_test_nested,
    grouped_line_rss,
    ols_fit,
    theil_sen_fit,
)

__all__ = [
    "AnovaResult",
    "ConfusionMatrix",
    "CooccurrenceMatrix",
    "Ecdf",
    "LabelMatrix",
    "LinearFit",
    "bootstrap_slope_ci",
    "convex_hull",
    "ecdf",
    "f_test_nested",
    "grouped_line_rss",
    "lower_hull",
    "ols_fit",
    "piecewise_interpolate",
    "theil_sen_fit",
    "upper_hull",
]
