"""Convex hulls of 2-D scatter data.

Quasi-Octant's delay model is "the convex hull of the scatterplot of delay
as a function of distance" — concretely, the *lower-left* boundary of the
(distance, delay) cloud gives the fastest observed travel per distance,
and the upper boundary the slowest.  The monotone-chain construction here
returns those boundaries as piecewise-linear functions (one y per x), and
:func:`convex_hull` returns the full polygon.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

Point = Tuple[float, float]


def _cross(o: Point, a: Point, b: Point) -> float:
    """Z-component of (a - o) × (b - o); >0 for a counter-clockwise turn."""
    return (a[0] - o[0]) * (b[1] - o[1]) - (a[1] - o[1]) * (b[0] - o[0])


def _prepare(points: Sequence[Point]) -> List[Point]:
    unique = sorted(set((float(x), float(y)) for x, y in points))
    if len(unique) < 2:
        raise ValueError("need at least two distinct points")
    if len({x for x, _ in unique}) < 2:
        # All points share one x: the boundary-as-a-function view these
        # hulls exist for (delay vs distance) is undefined.
        raise ValueError("need at least two distinct x values")
    return unique


def _dedupe_by_x(pts: Sequence[Point], keep_max_y: bool) -> List[Point]:
    """Collapse same-x points to a single representative.

    A boundary-as-a-function holds one y per x: the smallest for a lower
    boundary, the largest for an upper one.
    """
    best: Dict[float, float] = {}
    for x, y in pts:
        if x not in best:
            best[x] = y
        else:
            best[x] = max(best[x], y) if keep_max_y else min(best[x], y)
    return sorted(best.items())


def _chain(pts: Sequence[Point], lower: bool) -> List[Point]:
    """Monotone-chain half hull over x-sorted points."""
    hull: List[Point] = []
    for p in pts:
        if lower:
            while len(hull) >= 2 and _cross(hull[-2], hull[-1], p) <= 0:
                hull.pop()
        else:
            while len(hull) >= 2 and _cross(hull[-2], hull[-1], p) >= 0:
                hull.pop()
        hull.append(p)
    return hull


def lower_hull(points: Sequence[Point]) -> List[Point]:
    """Lower boundary of the convex hull, left-to-right.

    For (distance, delay) data this is the "fast frontier": the smallest
    delay observed at or below each distance, linearly interpolated.
    """
    return _chain(_dedupe_by_x(_prepare(points), keep_max_y=False), lower=True)


def upper_hull(points: Sequence[Point]) -> List[Point]:
    """Upper boundary of the convex hull, left-to-right."""
    return _chain(_dedupe_by_x(_prepare(points), keep_max_y=True), lower=False)


def convex_hull(points: Sequence[Point]) -> List[Point]:
    """Full convex hull, counter-clockwise, starting at the leftmost point."""
    pts = _prepare(points)
    lower = _chain(pts, lower=True)
    upper = _chain(pts, lower=False)
    return lower[:-1] + upper[::-1][:-1]


def piecewise_interpolate(hull: Sequence[Point], x: float) -> float:
    """Evaluate a left-to-right piecewise-linear boundary at ``x``.

    Outside the hull's x-range the nearest segment is extrapolated,
    matching how Octant extends its empirical speed curves.
    """
    if len(hull) < 2:
        raise ValueError("hull must have at least two vertices")
    if x <= hull[0][0]:
        segment = (hull[0], hull[1])
    elif x >= hull[-1][0]:
        segment = (hull[-2], hull[-1])
    else:
        segment = None
        for left, right in zip(hull, hull[1:]):
            if left[0] <= x <= right[0]:
                segment = (left, right)
                break
        assert segment is not None  # x is inside the hull's span
    (x0, y0), (x1, y1) = segment
    if x1 == x0:
        return min(y0, y1)
    t = (x - x0) / (x1 - x0)
    return y0 + t * (y1 - y0)
