"""Empirical CDFs, used by the Figure 9 precision plots."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Ecdf:
    """An empirical cumulative distribution function.

    ``values`` are sorted ascending; ``fractions[i]`` is the fraction of
    observations ≤ ``values[i]``.
    """

    values: np.ndarray
    fractions: np.ndarray

    @property
    def n(self) -> int:
        return len(self.values)

    def at(self, x: float) -> float:
        """P(X ≤ x)."""
        return float(np.searchsorted(self.values, x, side="right")) / self.n

    def quantile(self, q: float) -> float:
        """Smallest value v with P(X ≤ v) ≥ q."""
        if not (0.0 < q <= 1.0):
            raise ValueError(f"quantile must be in (0, 1]: {q!r}")
        index = int(np.ceil(q * self.n)) - 1
        return float(self.values[max(index, 0)])

    def series(self, points: Sequence[float]) -> List[Tuple[float, float]]:
        """(x, P(X ≤ x)) pairs at the requested x positions — a plot series."""
        return [(float(p), self.at(float(p))) for p in points]


def ecdf(observations: Sequence[float]) -> Ecdf:
    """Build an ECDF from raw observations."""
    values = np.sort(np.asarray(observations, dtype=float))
    if len(values) == 0:
        raise ValueError("cannot build an ECDF from no observations")
    if np.isnan(values).any():
        raise ValueError("observations contain NaN")
    fractions = np.arange(1, len(values) + 1, dtype=float) / len(values)
    return Ecdf(values=values, fractions=fractions)
