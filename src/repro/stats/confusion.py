"""Confusion / co-occurrence matrices for Appendix A (Figures 22–23).

The paper's appendix matrices are *co-occurrence* counts: for every proxy
whose prediction region covers several countries (or continents), each
pair of covered labels increments the off-diagonal cells, and each label
increments its own diagonal.  A standard true-vs-predicted confusion
matrix is also provided for validation experiments where ground truth is
known.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np


class LabelMatrix:
    """A square integer matrix over a fixed label vocabulary."""

    def __init__(self, labels: Sequence[str]):
        if len(set(labels)) != len(labels):
            raise ValueError("duplicate labels")
        self.labels: List[str] = list(labels)
        self._index: Dict[str, int] = {label: i for i, label in enumerate(self.labels)}
        self.counts = np.zeros((len(self.labels), len(self.labels)), dtype=np.int64)

    def _idx(self, label: str) -> int:
        try:
            return self._index[label]
        except KeyError:
            raise KeyError(f"unknown label {label!r}") from None

    def increment(self, row: str, col: str, amount: int = 1) -> None:
        self.counts[self._idx(row), self._idx(col)] += amount

    def get(self, row: str, col: str) -> int:
        return int(self.counts[self._idx(row), self._idx(col)])

    def row(self, label: str) -> Dict[str, int]:
        i = self._idx(label)
        return {other: int(self.counts[i, j]) for j, other in enumerate(self.labels)}

    def total(self) -> int:
        return int(self.counts.sum())

    def nonzero_pairs(self) -> List[Tuple[str, str, int]]:
        """(row, col, count) for every non-zero cell, descending by count."""
        rows, cols = np.nonzero(self.counts)
        entries = [(self.labels[r], self.labels[c], int(self.counts[r, c]))
                   for r, c in zip(rows, cols)]
        return sorted(entries, key=lambda e: -e[2])

    def merge(self, other: "LabelMatrix") -> None:
        """Fold another matrix's counts into this one (same vocabulary).

        Counting is commutative, so merging per-shard matrices equals
        counting the concatenated stream — the property the sharded
        campaign aggregation rests on.
        """
        if other.labels != self.labels:
            raise ValueError("cannot merge matrices over different labels")
        self.counts += other.counts


class CooccurrenceMatrix(LabelMatrix):
    """Symmetric co-occurrence counts (the Appendix A matrices)."""

    def add_set(self, covered: Iterable[str]) -> None:
        """Record one prediction region covering the given labels.

        The diagonal counts how often each label appears at all; the
        off-diagonal (symmetric) counts how often two labels are covered
        by the *same* prediction — i.e. how often they are confusable.
        """
        unique = sorted(set(covered))
        for i, a in enumerate(unique):
            self.increment(a, a)
            for b in unique[i + 1:]:
                self.increment(a, b)
                self.increment(b, a)

    def add_sets(self, sets: Iterable[Iterable[str]]) -> "CooccurrenceMatrix":
        """Record a stream of prediction coverages, one at a time.

        Accepts any iterable — a generator over a journal, a list of
        lists — and never materialises it: each coverage set is counted
        and dropped, so aggregating a 100k-record stream costs the same
        memory as a 10-record one.
        """
        for covered in sets:
            self.add_set(covered)
        return self

    @classmethod
    def from_sets(cls, labels: Sequence[str],
                  sets: Iterable[Iterable[str]]) -> "CooccurrenceMatrix":
        """Build a matrix by streaming ``sets`` through :meth:`add_sets`."""
        return cls(labels).add_sets(sets)

    def confusability(self, a: str, b: str) -> float:
        """P(region covers b | region covers a); 0 when a never appears."""
        total_a = self.get(a, a)
        if total_a == 0:
            return 0.0
        return self.get(a, b) / total_a


class ConfusionMatrix(LabelMatrix):
    """Standard true-label vs predicted-label confusion matrix."""

    def add(self, true_label: str, predicted_label: str) -> None:
        self.increment(true_label, predicted_label)

    def accuracy(self) -> float:
        total = self.total()
        if total == 0:
            raise ValueError("empty confusion matrix")
        return float(np.trace(self.counts)) / total

    def recall(self, label: str) -> float:
        i = self._idx(label)
        row_total = int(self.counts[i].sum())
        if row_total == 0:
            return 0.0
        return int(self.counts[i, i]) / row_total

    def precision(self, label: str) -> float:
        i = self._idx(label)
        col_total = int(self.counts[:, i].sum())
        if col_total == 0:
            return 0.0
        return int(self.counts[i, i]) / col_total
