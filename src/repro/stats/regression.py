"""Regression helpers: OLS, robust Theil–Sen, and nested-model ANOVA.

These back three parts of the paper:

* Figure 4/5 — per-group OLS fits of delay vs. distance (one- and
  two-round-trip lines) and ANOVA F-tests for tool/browser/OS effects;
* Figure 13 — the robust linear regression whose slope is η ≈ 0.49, the
  direct/indirect RTT factor;
* general calibration diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy import stats as _scipy_stats


@dataclass(frozen=True)
class LinearFit:
    """A fitted line ``y = intercept + slope * x`` plus fit quality."""

    slope: float
    intercept: float
    r_squared: float
    n: int

    def predict(self, x: "np.ndarray | float") -> "np.ndarray | float":
        return self.intercept + self.slope * np.asarray(x, dtype=float)

    def residuals(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return np.asarray(y, dtype=float) - self.predict(x)


def _as_xy(x: Sequence[float], y: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape:
        raise ValueError(f"x and y have different shapes: {x.shape} vs {y.shape}")
    if x.ndim != 1:
        raise ValueError("expected 1-D data")
    if len(x) < 2:
        raise ValueError("need at least two points to fit a line")
    return x, y


def ols_fit(x: Sequence[float], y: Sequence[float]) -> LinearFit:
    """Ordinary least-squares fit of ``y`` on ``x``."""
    x, y = _as_xy(x, y)
    x_mean = x.mean()
    y_mean = y.mean()
    sxx = float(((x - x_mean) ** 2).sum())
    if sxx == 0.0:
        raise ValueError("x has zero variance; cannot fit a slope")
    sxy = float(((x - x_mean) * (y - y_mean)).sum())
    slope = sxy / sxx
    intercept = y_mean - slope * x_mean
    ss_res = float(((y - (intercept + slope * x)) ** 2).sum())
    ss_tot = float(((y - y_mean) ** 2).sum())
    r_squared = 1.0 if ss_tot == 0.0 else 1.0 - ss_res / ss_tot
    return LinearFit(slope=slope, intercept=intercept, r_squared=r_squared, n=len(x))


def theil_sen_fit(x: Sequence[float], y: Sequence[float],
                  max_pairs: int = 200_000, seed: int = 0) -> LinearFit:
    """Robust Theil–Sen estimator: median of pairwise slopes.

    Insensitive to the congestion outliers that plague RTT data, which is
    why the paper uses a robust regression for the η factor (Figure 13).
    For more than ``max_pairs`` point pairs a random subsample of pairs is
    used (seeded, so results are reproducible).
    """
    x, y = _as_xy(x, y)
    n = len(x)
    i_idx, j_idx = np.triu_indices(n, k=1)
    if len(i_idx) > max_pairs:
        rng = np.random.default_rng(seed)
        keep = rng.choice(len(i_idx), size=max_pairs, replace=False)
        i_idx, j_idx = i_idx[keep], j_idx[keep]
    dx = x[j_idx] - x[i_idx]
    dy = y[j_idx] - y[i_idx]
    valid = dx != 0
    if not valid.any():
        raise ValueError("all x values identical; cannot fit a slope")
    slope = float(np.median(dy[valid] / dx[valid]))
    intercept = float(np.median(y - slope * x))
    y_hat = intercept + slope * x
    ss_res = float(((y - y_hat) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    r_squared = 1.0 if ss_tot == 0.0 else 1.0 - ss_res / ss_tot
    return LinearFit(slope=slope, intercept=intercept, r_squared=r_squared, n=n)


@dataclass(frozen=True)
class AnovaResult:
    """F-test comparing a full linear model against a nested reduced model."""

    f_statistic: float
    p_value: float
    df_extra: int
    df_residual: int

    @property
    def significant(self) -> bool:
        """Conventional α = 0.05 significance."""
        return self.p_value < 0.05


def f_test_nested(rss_reduced: float, params_reduced: int,
                  rss_full: float, params_full: int, n: int) -> AnovaResult:
    """ANOVA F-test for nested linear models.

    ``rss_*`` are residual sums of squares; ``params_*`` count fitted
    parameters (including intercepts).  The paper uses this to ask whether
    adding tool/browser/OS factors significantly improves the delay–
    distance regression (Section 4.3).
    """
    if params_full <= params_reduced:
        raise ValueError("full model must have more parameters than reduced")
    if n <= params_full:
        raise ValueError("need more observations than parameters")
    if rss_reduced < 0 or rss_full < 0:
        raise ValueError("negative residual sum of squares")
    df_extra = params_full - params_reduced
    df_residual = n - params_full
    if rss_full == 0.0:
        # Perfect full model: infinitely significant unless reduced is too.
        f_statistic = float("inf") if rss_reduced > 0 else 0.0
        p_value = 0.0 if rss_reduced > 0 else 1.0
        return AnovaResult(f_statistic, p_value, df_extra, df_residual)
    f_statistic = ((rss_reduced - rss_full) / df_extra) / (rss_full / df_residual)
    f_statistic = max(f_statistic, 0.0)
    p_value = float(_scipy_stats.f.sf(f_statistic, df_extra, df_residual))
    return AnovaResult(f_statistic, p_value, df_extra, df_residual)


def bootstrap_slope_ci(x: Sequence[float], y: Sequence[float],
                       confidence: float = 0.95, n_resamples: int = 500,
                       seed: int = 0) -> Tuple[float, float]:
    """Bootstrap confidence interval for an OLS slope.

    Resamples (x, y) pairs with replacement and refits; returns the
    percentile interval.  Used to put uncertainty bars on the Figure 4/5
    slope-ratio claims, which the paper states as point estimates.
    """
    if not (0.0 < confidence < 1.0):
        raise ValueError(f"confidence must be in (0, 1): {confidence!r}")
    x, y = _as_xy(x, y)
    rng = np.random.default_rng(seed)
    slopes = []
    n = len(x)
    for _ in range(n_resamples):
        indices = rng.integers(0, n, size=n)
        xs, ys = x[indices], y[indices]
        if xs.std() == 0:
            continue
        slopes.append(ols_fit(xs, ys).slope)
    if len(slopes) < 10:
        raise ValueError("bootstrap failed: too many degenerate resamples")
    alpha = (1.0 - confidence) / 2.0
    return (float(np.quantile(slopes, alpha)),
            float(np.quantile(slopes, 1.0 - alpha)))


def grouped_line_rss(
    x: np.ndarray, y: np.ndarray, groups: Sequence[object]
) -> Tuple[float, int]:
    """Total RSS of per-group OLS lines, plus the parameter count.

    Fits an independent ``y = a_g + b_g x`` within every group and returns
    the summed residual sum of squares and total number of parameters
    (2 per group).  Groups with fewer than 2 points contribute zero RSS and
    are skipped in the parameter count.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    group_ids = np.asarray(groups)
    total_rss = 0.0
    n_params = 0
    for g in np.unique(group_ids):
        mask = group_ids == g
        if mask.sum() < 2:
            continue
        fit = ols_fit(x[mask], y[mask])
        total_rss += float((fit.residuals(x[mask], y[mask]) ** 2).sum())
        n_params += 2
    return total_rss, n_params
