"""CBG++ — the paper's contribution (section 5.1).

CBG with two modifications that eliminate coverage failures:

1. **Slowline.** Bestlines are constrained between the 200 km/ms physical
   baseline and an 84.5 km/ms "slowline": a one-way time of 237 ms could
   have traversed a geostationary satellite, which can bridge any two
   points on a hemisphere, so delays map to at least
   20 037.508 km / 237 ms = 84.5 km/ms worth of possible distance.

2. **Two-tier largest-consistent-subset multilateration.**  For each
   landmark both the bestline disk and the (larger) baseline disk are
   drawn.  The largest subset of *baseline* disks with a common point
   forms the "baseline region"; bestline disks that miss that region are
   discarded as underestimates; the largest consistent subset of the
   remaining bestline disks forms the final "bestline region".

The result, on the paper's crowdsourced test hosts, covered the true
location in every case — at the price of somewhat larger regions.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..geo.region import Region
from .base import Prediction
from .cbg import CBG
from .multilateration import DiskConstraint, largest_consistent_subset
from .observations import RttObservation


class CBGPlusPlus(CBG):
    """CBG++: slowline-bounded bestlines + two-tier subset multilateration."""

    name = "cbg++"
    apply_slowline = True

    def baseline_disks(self, observations: Sequence[RttObservation]
                       ) -> List[DiskConstraint]:
        """Per-landmark disks at the 200 km/ms physical baseline."""
        floor = self.min_disk_radius_km()
        constraints = []
        for obs in observations:
            calibration = self.calibrations.cbg(
                obs.landmark_name, apply_slowline=True)
            constraints.append(DiskConstraint(
                landmark_name=obs.landmark_name,
                lat=obs.lat,
                lon=obs.lon,
                radius_km=max(calibration.baseline_distance_km(obs.one_way_ms),
                              floor),
            ))
        return constraints

    def predict(self, observations: Sequence[RttObservation]) -> Prediction:
        observations = self._prepare(observations)
        bestline = self.disks(observations)       # slowline-constrained
        baseline = self.baseline_disks(observations)
        grid = self.grid

        bestline_masks = [grid.disk_mask(d.lat, d.lon, d.radius_km)
                          for d in bestline]
        baseline_masks = [grid.disk_mask(d.lat, d.lon, d.radius_km)
                          for d in baseline]

        # Tier 1: the baseline region — largest consistent family of
        # physically-maximal disks.
        _, baseline_region_mask = largest_consistent_subset(baseline_masks)

        # Tier 2: drop bestline disks that do not overlap the baseline
        # region (they must be underestimates), then take the largest
        # consistent family of the survivors.
        surviving_indices = [i for i, mask in enumerate(bestline_masks)
                             if (mask & baseline_region_mask).any()]
        discarded = [bestline[i].landmark_name for i in range(len(bestline))
                     if i not in surviving_indices]
        if surviving_indices:
            surviving_masks = [bestline_masks[i] for i in surviving_indices]
            chosen_positions, final_mask = largest_consistent_subset(
                surviving_masks, base_mask=baseline_region_mask)
            chosen = [bestline[surviving_indices[p]].landmark_name
                      for p in chosen_positions]
            dropped_in_search = [
                bestline[surviving_indices[p]].landmark_name
                for p in range(len(surviving_indices))
                if p not in chosen_positions]
            discarded.extend(dropped_in_search)
        else:
            # Every bestline disk was an underestimate; fall back to the
            # baseline region itself.
            final_mask = baseline_region_mask
            chosen = []

        region = self._clip(Region(grid, final_mask))
        if region.is_empty and baseline_region_mask.any():
            # Clipping can empty a tiny coastal region; fall back to the
            # clipped baseline region so the algorithm never predicts
            # "nowhere" while a consistent baseline family exists.
            region = self._clip(Region(grid, baseline_region_mask))
        return Prediction(
            algorithm=self.name,
            region=region,
            used_landmarks=chosen,
            discarded_landmarks=discarded,
        )

    # -- analysis helpers ----------------------------------------------------

    def effective_landmarks(self, observations: Sequence[RttObservation]
                            ) -> List[str]:
        """Landmarks whose disk actually constrains the final region.

        A measurement is *ineffective* (Figure 11) when removing its disk
        leaves the final prediction unchanged — typically a radically
        overestimated disk from a distant landmark.
        """
        observations = self._prepare(observations)
        full = self.predict(observations)
        effective: List[str] = []
        for obs in observations:
            others = [o for o in observations
                      if o.landmark_name != obs.landmark_name]
            if len(others) < 3:
                effective.append(obs.landmark_name)
                continue
            without = self.predict(others)
            if not np.array_equal(without.region.mask, full.region.mask):
                effective.append(obs.landmark_name)
        return effective
