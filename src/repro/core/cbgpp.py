"""CBG++ — the paper's contribution (section 5.1).

CBG with two modifications that eliminate coverage failures:

1. **Slowline.** Bestlines are constrained between the 200 km/ms physical
   baseline and an 84.5 km/ms "slowline": a one-way time of 237 ms could
   have traversed a geostationary satellite, which can bridge any two
   points on a hemisphere, so delays map to at least
   20 037.508 km / 237 ms = 84.5 km/ms worth of possible distance.

2. **Two-tier largest-consistent-subset multilateration.**  For each
   landmark both the bestline disk and the (larger) baseline disk are
   drawn.  The largest subset of *baseline* disks with a common point
   forms the "baseline region"; bestline disks that miss that region are
   discarded as underestimates; the largest consistent subset of the
   remaining bestline disks forms the final "bestline region".

The result, on the paper's crowdsourced test hosts, covered the true
location in every case — at the price of somewhat larger regions.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..geo.region import Region, region_engine
from .base import Prediction
from .cbg import CBG
from .fleetpanel import build_fleet_panel
from .multilateration import DiskConstraint, largest_consistent_subset
from .observations import RttObservation


class CBGPlusPlus(CBG):
    """CBG++: slowline-bounded bestlines + two-tier subset multilateration."""

    name = "cbg++"
    apply_slowline = True

    def baseline_disks(self, observations: Sequence[RttObservation]
                       ) -> List[DiskConstraint]:
        """Per-landmark disks at the 200 km/ms physical baseline."""
        floor = self.min_disk_radius_km()
        constraints = []
        for obs in observations:
            calibration = self.calibrations.cbg(
                obs.landmark_name, apply_slowline=True)
            constraints.append(DiskConstraint(
                landmark_name=obs.landmark_name,
                lat=obs.lat,
                lon=obs.lon,
                radius_km=max(calibration.baseline_distance_km(obs.one_way_ms),
                              floor),
            ))
        return constraints

    def predict(self, observations: Sequence[RttObservation]) -> Prediction:
        observations = self._prepare(observations)
        grid = self.grid
        names = [obs.landmark_name for obs in observations]
        lats = [obs.lat for obs in observations]
        lons = [obs.lon for obs in observations]
        delays = np.array([obs.one_way_ms for obs in observations])

        # Both disk families share centres — only radii differ — so one
        # fused pass over the bank's block aggregates yields the AND of
        # all baseline disks *and* the AND of all disks at once, emitted
        # straight in the engine's native representation.
        best_radii = self.disk_radii_km(names, delays).astype(np.float32)
        base_radii = self.baseline_radii_km(delays).astype(np.float32)
        joint_radii = np.minimum(base_radii, best_radii)
        packed = region_engine() == "packed"
        families = grid.bank.disk_intersections(
            lats, lons, np.stack([base_radii, joint_radii]), packed=packed)
        if packed:
            base_and = Region.from_words(grid, families[0])
            joint_and: Optional[Region] = Region.from_words(grid, families[1])
        else:
            base_and = Region(grid, families[0])
            joint_and = Region(grid, families[1])

        # Tier 1: the baseline region — largest consistent family of
        # physically-maximal disks.  The plain AND answers the common
        # consistent case; only conflicting baselines pay for the full
        # subset search.
        if not base_and.is_empty:
            baseline_region = base_and
        else:
            fields = grid.bank.field_block(lats, lons)
            baseline_masks = fields <= base_radii[:, None]
            _, baseline_region_mask = largest_consistent_subset(baseline_masks)
            baseline_region = Region(grid, baseline_region_mask)
            joint_and = None   # was relative to the unreduced baseline AND

        # Tier 2: drop bestline disks that do not overlap the baseline
        # region (they must be underestimates), then take the largest
        # consistent family of the survivors.  When the joint AND is
        # non-empty every bestline disk overlaps and all are mutually
        # consistent — no search needed.
        if joint_and is not None and not joint_and.is_empty:
            final_region = joint_and
            chosen = list(names)
            discarded: List[str] = []
        else:
            baseline_cells = baseline_region.cell_indices()
            fields = grid.bank.field_block(lats, lons)
            sub_bestline = fields[:, baseline_cells] <= best_radii[:, None]
            overlap = sub_bestline.any(axis=1)
            surviving_indices = [i for i in range(len(names)) if overlap[i]]
            discarded = [names[i]
                         for i in range(len(names)) if not overlap[i]]
            final_mask = np.zeros(grid.n_cells, dtype=bool)
            if surviving_indices:
                chosen_positions, final_sub_mask = largest_consistent_subset(
                    sub_bestline[surviving_indices])
                final_mask[baseline_cells[final_sub_mask]] = True
                chosen = [names[surviving_indices[p]]
                          for p in chosen_positions]
                dropped_in_search = [
                    names[surviving_indices[p]]
                    for p in range(len(surviving_indices))
                    if p not in chosen_positions]
                discarded.extend(dropped_in_search)
            else:
                # Every bestline disk was an underestimate; fall back to
                # the baseline region itself.
                final_mask[baseline_cells] = True
                chosen = []
            final_region = Region(grid, final_mask)

        region = self._clip(final_region)
        if region.is_empty and not baseline_region.is_empty:
            # Clipping can empty a tiny coastal region; fall back to the
            # clipped baseline region so the algorithm never predicts
            # "nowhere" while a consistent baseline family exists.
            region = self._clip(baseline_region)
        return Prediction(
            algorithm=self.name,
            region=region,
            used_landmarks=chosen,
            discarded_landmarks=discarded,
        )

    def predict_fleet(self, fleets: Sequence[Sequence[RttObservation]]
                      ) -> List[Prediction]:
        """One bank sweep for every server of a fleet at once.

        The vectorised prefilter evaluates both disk families for all
        servers in a handful of NumPy passes over the block aggregates
        (see DESIGN.md §5d).  Servers whose joint AND is non-empty — the
        overwhelming majority — are finished right there, exactly like
        :meth:`predict`'s fast path; the rest carry genuinely
        conflicting disks and drop to the scalar pipeline, whose
        largest-consistent-subset search is inherently per-server.
        Bit-identical to ``[self.predict(p) for p in fleets]``: the
        fleet kernel compares the same float32 fields against the same
        float32 radii, an AND is order-independent, and ``+inf`` padding
        slots constrain nothing.
        """
        prepared = [self._prepare(panel) for panel in fleets]
        if not prepared:
            return []
        panel = build_fleet_panel(self.grid.bank, prepared)
        best_rows: List[np.ndarray] = []
        base_rows: List[np.ndarray] = []
        for observations in prepared:
            names = [obs.landmark_name for obs in observations]
            delays = np.array([obs.one_way_ms for obs in observations])
            best_rows.append(self.disk_radii_km(names, delays)
                             .astype(np.float32))
            base_rows.append(self.baseline_radii_km(delays)
                             .astype(np.float32))
        best_radii = panel.pad_radii(best_rows)
        base_radii = panel.pad_radii(base_rows)
        joint_radii = np.minimum(base_radii, best_radii)
        packed = region_engine() == "packed"
        grid = self.grid
        # Only the joint family needs the fleet sweep: every joint disk
        # sits inside its baseline disk, so a non-empty joint AND proves
        # the baseline AND non-empty too — exactly predict()'s fast-path
        # precondition.  Servers that miss the fast path (conflicting
        # disks, or the rare coastal region that clipping empties) re-run
        # the scalar pipeline, which *is* the definition of the result.
        family = grid.bank.disk_intersections_fleet(
            panel.rows, joint_radii[None], packed=packed)[0]
        # The terrain clip is one fleet-wide AND against the plausibility
        # bitset — the same words/mask ``_clip`` ANDs per region — so the
        # per-server loop below only wraps the rows that survived.
        if packed:
            clipped = family & self.worldmap.plausibility_words[None, :]
        else:
            clipped = family & self.worldmap.plausibility_mask[None, :]
        joint_nonempty = family.any(axis=1)
        clip_nonempty = clipped.any(axis=1)
        results: List[Prediction] = []
        for s, observations in enumerate(prepared):
            if not (joint_nonempty[s] and clip_nonempty[s]):
                results.append(self.predict(observations))
                continue
            region = (Region.from_words(grid, clipped[s]) if packed
                      else Region(grid, clipped[s]))
            results.append(Prediction(
                algorithm=self.name,
                region=region,
                used_landmarks=[obs.landmark_name for obs in observations],
                discarded_landmarks=[],
            ))
        return results

    # -- analysis helpers ----------------------------------------------------

    def effective_landmarks(self, observations: Sequence[RttObservation]
                            ) -> List[str]:
        """Landmarks whose disk actually constrains the final region.

        A measurement is *ineffective* (Figure 11) when removing its disk
        leaves the final prediction unchanged — typically a radically
        overestimated disk from a distant landmark.
        """
        observations = self._prepare(observations)
        full = self.predict(observations)
        effective: List[str] = []
        for obs in observations:
            others = [o for o in observations
                      if o.landmark_name != obs.landmark_name]
            if len(others) < 3:
                effective.append(obs.landmark_name)
                continue
            without = self.predict(others)
            if without.region != full.region:
                effective.append(obs.landmark_name)
        return effective
