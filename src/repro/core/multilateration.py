"""Multilateration engines: combine per-landmark constraints into a region.

Three combination strategies, shared by the algorithm front-ends:

* **Disk intersection** (CBG): AND together per-landmark disks.
* **Ring intersection** (Quasi-Octant, Hybrid): AND together annuli.
* **Largest consistent subset** (CBG++): the two-tier search that finds
  the biggest family of disks with a common point, so that a single
  underestimated disk cannot blank out the prediction.
* **Bayesian rings** (Spotter): multiply per-landmark Gaussian ring
  likelihoods and keep the smallest region holding a target probability
  mass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..geo.grid import Grid
from ..geo.region import Region


@dataclass(frozen=True)
class DiskConstraint:
    """One landmark's disk: target is within ``radius_km`` of (lat, lon)."""

    landmark_name: str
    lat: float
    lon: float
    radius_km: float


@dataclass(frozen=True)
class RingConstraint:
    """One landmark's annulus: inner_km <= distance <= outer_km."""

    landmark_name: str
    lat: float
    lon: float
    inner_km: float
    outer_km: float


@dataclass(frozen=True)
class GaussianRing:
    """One landmark's probabilistic ring: distance ~ N(mu_km, sigma_km)."""

    landmark_name: str
    lat: float
    lon: float
    mu_km: float
    sigma_km: float


def intersect_disks(grid: Grid, disks: Sequence[DiskConstraint]) -> Region:
    """Plain CBG multilateration: the AND of every disk."""
    if not disks:
        raise ValueError("no disks to intersect")
    mask = np.ones(grid.n_cells, dtype=bool)
    for disk in disks:
        mask &= grid.disk_mask(disk.lat, disk.lon, disk.radius_km)
        if not mask.any():
            break
    return Region(grid, mask)


def intersect_rings(grid: Grid, rings: Sequence[RingConstraint]) -> Region:
    """Quasi-Octant multilateration: the AND of every annulus."""
    if not rings:
        raise ValueError("no rings to intersect")
    mask = np.ones(grid.n_cells, dtype=bool)
    for ring in rings:
        mask &= grid.ring_mask(ring.lat, ring.lon, ring.inner_km, ring.outer_km)
        if not mask.any():
            break
    return Region(grid, mask)


def mode_region(grid: Grid, masks: Sequence[np.ndarray],
                base_mask: Optional[np.ndarray] = None) -> Region:
    """Cells satisfying the maximum number of constraints.

    Octant's original multilateration is weight-based: each ring adds
    positive weight inside itself, and the prediction is the highest-
    weighted area.  With unit weights that is exactly "the cells covered
    by the most rings" — identical to pure intersection when all rings
    are mutually consistent, but degrading gracefully (instead of to the
    empty set) when noise makes one ring miss.
    """
    if not masks:
        raise ValueError("no masks supplied")
    votes = np.zeros(grid.n_cells, dtype=np.int32)
    for mask in masks:
        votes += mask
    if base_mask is not None:
        votes[~base_mask] = 0
    top = int(votes.max())
    if top == 0:
        return Region.empty(grid)
    return Region(grid, votes == top)


def largest_consistent_subset(masks: Sequence[np.ndarray],
                              base_mask: Optional[np.ndarray] = None
                              ) -> Tuple[List[int], np.ndarray]:
    """The largest subset of masks whose AND (with ``base_mask``) is non-empty.

    Returns the chosen indices and the resulting intersection mask.  This
    is the paper's "depth-first search on the powerset of the disks":
    branch-and-bound over include/exclude decisions, visiting disks in a
    fixed order and pruning any branch that (a) has already gone empty or
    (b) cannot beat the best subset found so far.  The common case — all
    masks consistent — is answered immediately.

    Ties are broken toward the smaller intersection area (more precise
    prediction), matching the intuition that among equally large
    consistent families the tightest is most informative.
    """
    n = len(masks)
    if n == 0:
        raise ValueError("no masks supplied")
    if base_mask is None:
        base_mask = np.ones_like(masks[0], dtype=bool)

    everything = base_mask.copy()
    for mask in masks:
        everything &= mask
    if everything.any():
        return list(range(n)), everything

    # Order by size descending: large (permissive) disks first keeps the
    # running intersection non-empty longest, and puts the conflicting
    # underestimates at the end where pruning bites.
    order = sorted(range(n), key=lambda i: -int(masks[i].sum()))

    # Greedy incumbent: sweep once, keeping every mask that doesn't empty
    # the intersection.  This is usually optimal or near-optimal and gives
    # the branch-and-bound a strong bound from the start.
    greedy_indices: List[int] = []
    greedy_mask = base_mask.copy()
    for index in order:
        candidate = greedy_mask & masks[index]
        if candidate.any():
            greedy_mask = candidate
            greedy_indices.append(index)

    best_indices = list(greedy_indices)
    best_mask = greedy_mask
    best_count = len(greedy_indices)
    if best_count == n:   # greedy kept everything (shouldn't happen here)
        return sorted(best_indices), best_mask

    # Exact search, budgeted: the DFS is exponential in the worst case, so
    # it gets a node budget; on exhaustion the best-so-far (at worst the
    # greedy solution) is returned.  The budget is generous for the ≤ ~50
    # disks real measurements produce.
    budget = [200_000]

    def descend(position: int, current_mask: np.ndarray,
                chosen: List[int]) -> None:
        nonlocal best_indices, best_mask, best_count
        if budget[0] <= 0:
            return
        budget[0] -= 1
        remaining = n - position
        if len(chosen) + remaining <= best_count:
            return  # cannot beat the incumbent
        if position == n:
            if len(chosen) > best_count:
                best_count = len(chosen)
                best_indices = list(chosen)
                best_mask = current_mask
            return
        index = order[position]
        candidate = current_mask & masks[index]
        if candidate.any():
            chosen.append(index)
            descend(position + 1, candidate, chosen)
            chosen.pop()
        descend(position + 1, current_mask, chosen)

    descend(0, base_mask, [])
    return sorted(best_indices), best_mask


def bayesian_region(grid: Grid, rings: Sequence[GaussianRing],
                    mass: float = 0.95,
                    prior_mask: Optional[np.ndarray] = None) -> Region:
    """Spotter's probabilistic multilateration.

    Accumulates per-landmark Gaussian ring log-likelihoods over the grid
    (Bayes' rule with a flat — or masked — prior), then returns the
    smallest set of cells containing ``mass`` of the posterior.
    """
    if not rings:
        raise ValueError("no rings supplied")
    if not (0.0 < mass <= 1.0):
        raise ValueError(f"mass must be in (0, 1]: {mass!r}")
    log_posterior = np.zeros(grid.n_cells, dtype=np.float64)
    for ring in rings:
        distances = grid.distances_from(ring.lat, ring.lon).astype(np.float64)
        log_posterior -= ((distances - ring.mu_km) ** 2) / (2.0 * ring.sigma_km ** 2)
    if prior_mask is not None:
        log_posterior[~prior_mask] = -np.inf
    finite = np.isfinite(log_posterior)
    if not finite.any():
        return Region.empty(grid)
    log_posterior -= log_posterior[finite].max()
    posterior = np.where(finite, np.exp(log_posterior), 0.0)
    # Posterior is per-cell density; weight by cell area for mass.
    cell_mass = posterior * grid.cell_areas_km2
    total = cell_mass.sum()
    if total <= 0:
        return Region.empty(grid)
    order = np.argsort(-cell_mass)
    cumulative = np.cumsum(cell_mass[order]) / total
    cutoff = int(np.searchsorted(cumulative, mass)) + 1
    mask = np.zeros(grid.n_cells, dtype=bool)
    mask[order[:cutoff]] = True
    return Region(grid, mask)
