"""Multilateration engines: combine per-landmark constraints into a region.

Three combination strategies, shared by the algorithm front-ends:

* **Disk intersection** (CBG): AND together per-landmark disks.
* **Ring intersection** (Quasi-Octant, Hybrid): AND together annuli.
* **Largest consistent subset** (CBG++): the two-tier search that finds
  the biggest family of disks with a common point, so that a single
  underestimated disk cannot blank out the prediction.
* **Bayesian rings** (Spotter): multiply per-landmark Gaussian ring
  likelihoods and keep the smallest region holding a target probability
  mass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..geo.grid import Grid
from ..geo.region import Region, pack_bits, region_engine, unpack_bits


@dataclass(frozen=True)
class DiskConstraint:
    """One landmark's disk: target is within ``radius_km`` of (lat, lon)."""

    landmark_name: str
    lat: float
    lon: float
    radius_km: float


@dataclass(frozen=True)
class RingConstraint:
    """One landmark's annulus: inner_km <= distance <= outer_km."""

    landmark_name: str
    lat: float
    lon: float
    inner_km: float
    outer_km: float


@dataclass(frozen=True)
class GaussianRing:
    """One landmark's probabilistic ring: distance ~ N(mu_km, sigma_km)."""

    landmark_name: str
    lat: float
    lon: float
    mu_km: float
    sigma_km: float


def intersect_disk_fields(grid: Grid, lats: Sequence[float],
                          lons: Sequence[float],
                          radii: np.ndarray) -> Region:
    """AND of per-landmark disks given raw centre/radius arrays.

    Evaluated through the bank's block-level intersection kernel: whole
    coarse blocks strictly inside (or outside) every disk are settled
    from precomputed block aggregates, and only cells near some disk
    boundary are compared exactly — bit-identical to rasterising each
    disk over the full grid, at a fraction of the memory traffic.  Under
    the packed engine the kernel emits uint64 words that the region
    adopts without ever materialising a boolean row.
    """
    if len(lats) == 0:
        raise ValueError("no disks to intersect")
    radii = np.asarray(radii, dtype=np.float32)
    if (radii < 0).any():
        raise ValueError("negative disk radius")
    if region_engine() == "packed":
        words = grid.bank.disk_intersections(
            lats, lons, radii[None, :], packed=True)[0]
        return Region.from_words(grid, words)
    mask = grid.bank.disk_intersections(lats, lons, radii[None, :])[0]
    return Region(grid, mask)


def intersect_disks(grid: Grid, disks: Sequence[DiskConstraint]) -> Region:
    """Plain CBG multilateration: the AND of every disk."""
    if not disks:
        raise ValueError("no disks to intersect")
    return intersect_disk_fields(
        grid, [d.lat for d in disks], [d.lon for d in disks],
        np.array([d.radius_km for d in disks], dtype=np.float32))


def intersect_rings(grid: Grid, rings: Sequence[RingConstraint]) -> Region:
    """Quasi-Octant multilateration: the AND of every annulus.

    The bank AND-reduces ring by ring, so the historical ``(k, n_cells)``
    boolean matrix is never materialised; under the packed engine the
    reduced row is emitted directly as uint64 words.
    """
    if not rings:
        raise ValueError("no rings to intersect")
    bank = grid.bank
    lats = [r.lat for r in rings]
    lons = [r.lon for r in rings]
    inner = [r.inner_km for r in rings]
    outer = [r.outer_km for r in rings]
    if region_engine() == "packed":
        return Region.from_words(
            grid, bank.ring_intersection(lats, lons, inner, outer, packed=True))
    return Region(grid, bank.ring_intersection(lats, lons, inner, outer))


def mode_region_from_votes(grid: Grid, votes: np.ndarray,
                           base_mask: Optional[np.ndarray] = None) -> Region:
    """Cells holding the maximum vote count (see :func:`mode_region`).

    ``votes`` is consumed destructively (cells outside ``base_mask`` are
    zeroed in place); callers pass a freshly accumulated row.
    """
    if base_mask is not None:
        votes[~base_mask] = 0
    top = int(votes.max())
    if top == 0:
        return Region.empty(grid)
    return Region(grid, votes == top)


def mode_region(grid: Grid, masks: Sequence[np.ndarray],
                base_mask: Optional[np.ndarray] = None) -> Region:
    """Cells satisfying the maximum number of constraints.

    Octant's original multilateration is weight-based: each ring adds
    positive weight inside itself, and the prediction is the highest-
    weighted area.  With unit weights that is exactly "the cells covered
    by the most rings" — identical to pure intersection when all rings
    are mutually consistent, but degrading gracefully (instead of to the
    empty set) when noise makes one ring miss.
    """
    matrix = _as_mask_matrix(masks)
    if matrix.shape[0] == 0:
        raise ValueError("no masks supplied")
    votes = matrix.sum(axis=0, dtype=np.int32)
    return mode_region_from_votes(grid, votes, base_mask)


def _as_mask_matrix(masks) -> np.ndarray:
    """Normalise a sequence of boolean masks (or a 2-D matrix) to (k, n)."""
    if len(masks) == 0:
        raise ValueError("no masks supplied")
    matrix = np.asarray(masks)
    if matrix.ndim == 1:
        matrix = matrix[None, :]
    if matrix.ndim != 2:
        raise ValueError(f"masks must be 1- or 2-dimensional, got {matrix.ndim}")
    if matrix.dtype != np.bool_:
        matrix = matrix.astype(bool)
    return matrix


def pack_mask_matrix(matrix: np.ndarray) -> np.ndarray:
    """Pack boolean masks into rows of uint64 words (bitsets).

    Padding bits beyond the mask length are zero, so word-level AND/any
    on packed rows agrees exactly with the boolean operations.  The
    canonical packing lives in :mod:`repro.geo.region` (it is the native
    :class:`Region` layout); this wrapper adds the mask-matrix
    normalisation the subset search wants.
    """
    return pack_bits(_as_mask_matrix(matrix))


def unpack_mask_words(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Invert :func:`pack_mask_matrix` for a single packed row."""
    return unpack_bits(words, n_bits)


def _dfs_improve(rows, order: List[int], best_count: int, n: int,
                 budget: int) -> Optional[List[int]]:
    """Branch-and-bound for a consistent subset strictly larger than
    ``best_count``, over pre-restricted witness columns.

    ``rows`` may be boolean rows or packed uint64 rows — only ``&`` and
    ``.any()`` are used, so both engines traverse identically.  Returns
    the best improving subset found, or ``None`` when the incumbent is
    already maximum (or the node budget ran out before beating it).
    """
    best_indices: Optional[List[int]] = None
    remaining_budget = [budget]
    full = rows[0] | ~rows[0] if rows.dtype != np.bool_ else \
        np.ones(rows.shape[1], dtype=bool)

    def descend(position: int, current_mask, chosen: List[int]) -> None:
        nonlocal best_count, best_indices
        if remaining_budget[0] <= 0:
            return
        remaining_budget[0] -= 1
        remaining = n - position
        if len(chosen) + remaining <= best_count:
            return  # cannot beat the incumbent
        if position == n:
            if len(chosen) > best_count:
                best_count = len(chosen)
                best_indices = list(chosen)
            return
        index = order[position]
        candidate = current_mask & rows[index]
        if candidate.any():
            chosen.append(index)
            descend(position + 1, candidate, chosen)
            chosen.pop()
        descend(position + 1, current_mask, chosen)

    descend(0, full, [])
    return best_indices


#: DFS node budget for the subset search (see :func:`largest_consistent_subset`).
SUBSET_SEARCH_BUDGET = 200_000


def largest_consistent_subset(masks: Sequence[np.ndarray],
                              base_mask: Optional[np.ndarray] = None,
                              engine: str = "bitset"
                              ) -> Tuple[List[int], np.ndarray]:
    """The largest subset of masks whose AND (with ``base_mask``) is non-empty.

    Returns the chosen indices and the resulting intersection mask.  This
    is the paper's "depth-first search on the powerset of the disks":
    branch-and-bound over include/exclude decisions, visiting disks in a
    fixed order and pruning any branch that (a) has already gone empty or
    (b) cannot beat the best subset found so far.  The common case — all
    masks consistent — is answered immediately.

    Three layers keep the worst case cheap:

    1. a greedy sweep (largest mask first) builds a strong incumbent;
    2. a *witness-cell certificate* often proves it maximum outright: any
       strictly larger family needs a cell covered by more masks than the
       incumbent's size, so if no such cell exists the search is over;
    3. otherwise the branch-and-bound runs with its masks restricted to
       just those witness cells — a tiny fraction of the grid — which
       preserves the maximum (every improving family keeps its witness)
       while shrinking each AND in the search by orders of magnitude.

    ``engine`` selects the inner-loop representation: ``"bitset"`` (the
    default) packs masks into uint64 words, shrinking every AND/any by
    ~8x in memory traffic; ``"bool"`` keeps plain boolean arrays.  Both
    engines make identical include/exclude decisions and return identical
    subsets and masks.
    """
    matrix = _as_mask_matrix(masks)
    n, n_bits = matrix.shape
    if n == 0:
        raise ValueError("no masks supplied")
    if base_mask is None:
        base_bool = np.ones(n_bits, dtype=bool)
    else:
        base_bool = np.asarray(base_mask)
        if base_bool.dtype != np.bool_:
            base_bool = base_bool.astype(bool)
    if engine == "bitset":
        rows: np.ndarray = pack_mask_matrix(matrix)
        base = pack_mask_matrix(base_bool[None, :])[0]
        sizes = np.bitwise_count(rows).sum(axis=1)

        def finish(mask_words: np.ndarray) -> np.ndarray:
            return unpack_mask_words(mask_words, n_bits)
    elif engine == "bool":
        rows = matrix
        base = base_bool.copy()
        sizes = matrix.sum(axis=1)

        def finish(mask: np.ndarray) -> np.ndarray:
            return mask
    else:
        raise ValueError(f"unknown subset-search engine {engine!r}")

    everything = base.copy()
    for row in rows:
        everything &= row
    if everything.any():
        return list(range(n)), finish(everything)

    # Order by size descending: large (permissive) disks first keeps the
    # running intersection non-empty longest, and puts the conflicting
    # underestimates at the end where pruning bites.
    order = sorted(range(n), key=lambda i: -int(sizes[i]))

    greedy_indices: List[int] = []
    greedy_mask = base.copy()
    for index in order:
        candidate = greedy_mask & rows[index]
        if candidate.any():
            greedy_mask = candidate
            greedy_indices.append(index)
    best_count = len(greedy_indices)

    # Witness-cell certificate: every consistent family of size s shares a
    # cell covered by at least s masks, so improving on the greedy family
    # needs a cell with more than ``best_count`` votes inside the base.
    votes = np.zeros(n_bits, dtype=np.uint16)
    for row_bool in matrix:
        votes += row_bool
    witness_cols = np.flatnonzero((votes > best_count) & base_bool)
    if witness_cols.size == 0:
        return sorted(greedy_indices), finish(greedy_mask)

    restricted = matrix[:, witness_cols]
    sub_rows = pack_mask_matrix(restricted) if engine == "bitset" \
        else np.ascontiguousarray(restricted)
    improved = _dfs_improve(sub_rows, order, best_count, n,
                            SUBSET_SEARCH_BUDGET)
    if improved is None:
        return sorted(greedy_indices), finish(greedy_mask)
    final = base.copy()
    for index in improved:
        final &= rows[index]
    return sorted(improved), finish(final)


#: Initial candidate count for the top-k credible-mass selection; grows
#: 4x until the mass cutoff falls inside the candidate prefix.
_TOPK_INITIAL = 1024


def _credible_mask_argsort(cell_mass: np.ndarray, total: float,
                           mass: float) -> np.ndarray:
    """Reference credible-set selection via a full stable sort.

    Cells are ranked by posterior mass descending; ties (notably the
    zero-mass tail) break toward the **lower cell index** (the stable
    sort keeps original order).  The returned mask holds the shortest
    such prefix whose cumulative mass reaches ``mass``.
    """
    order = np.argsort(-cell_mass, kind="stable")
    cumulative = np.cumsum(cell_mass[order]) / total
    cutoff = int(np.searchsorted(cumulative, mass)) + 1
    mask = np.zeros(len(cell_mass), dtype=bool)
    mask[order[:cutoff]] = True
    return mask


def _credible_mask_topk(cell_mass: np.ndarray, total: float,
                        mass: float) -> np.ndarray:
    """Partition-based credible-set selection (no full-grid sort).

    Bit-identical to :func:`_credible_mask_argsort`: ``np.partition``
    finds the k-th largest mass ``t``, the cells above ``t`` are stably
    ordered (mass descending, then cell index ascending — the same
    tie-break as the stable argsort), and the ``== t`` tie group follows
    in ascending index, exactly as the stable sort would emit it.  The
    cumulative prefix sums equal the reference's leading sums ulp for
    ulp (``np.cumsum`` accumulates sequentially), so the searchsorted
    cutoff lands on the same cell.  If the cutoff falls outside the
    candidate prefix, k grows 4x; past the grid size we fall back to the
    reference sort.
    """
    n = len(cell_mass)
    k = min(_TOPK_INITIAL, n)
    while k < n:
        threshold = np.partition(cell_mass, n - k)[n - k]
        above = np.flatnonzero(cell_mass > threshold)
        tied = np.flatnonzero(cell_mass == threshold)
        prefix = np.concatenate(
            [above[np.lexsort((above, -cell_mass[above]))], tied])
        cumulative = np.cumsum(cell_mass[prefix]) / total
        position = int(np.searchsorted(cumulative, mass))
        if position < len(prefix):
            mask = np.zeros(n, dtype=bool)
            mask[prefix[:position + 1]] = True
            return mask
        k *= 4
    return _credible_mask_argsort(cell_mass, total, mass)


def bayesian_region(grid: Grid, rings: Sequence[GaussianRing],
                    mass: float = 0.95,
                    prior_mask: Optional[np.ndarray] = None) -> Region:
    """Spotter's probabilistic multilateration.

    Accumulates per-landmark Gaussian ring log-likelihoods over the grid
    (Bayes' rule with a flat — or masked — prior), then returns the
    smallest set of cells containing ``mass`` of the posterior.  The
    credible set is selected with a partition-based top-k (only the cells
    that can reach the cutoff get sorted); ties break toward the lower
    cell index — see :func:`_credible_mask_argsort` for the reference.
    """
    if not rings:
        raise ValueError("no rings supplied")
    if not (0.0 < mass <= 1.0):
        raise ValueError(f"mass must be in (0, 1]: {mass!r}")
    log_posterior = grid.bank.gaussian_log_likelihood(
        [r.lat for r in rings], [r.lon for r in rings],
        [r.mu_km for r in rings], [r.sigma_km for r in rings])
    if prior_mask is not None:
        log_posterior[~prior_mask] = -np.inf
    finite = np.isfinite(log_posterior)
    if not finite.any():
        return Region.empty(grid)
    log_posterior -= log_posterior[finite].max()
    posterior = np.where(finite, np.exp(log_posterior), 0.0)
    # Posterior is per-cell density; weight by cell area for mass.
    cell_mass = posterior * grid.cell_areas_km2
    total = cell_mass.sum()
    if total <= 0:
        return Region.empty(grid)
    return Region(grid, _credible_mask_topk(cell_mass, float(total), mass))
