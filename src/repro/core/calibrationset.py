"""Calibration management: lazily fitted, cached delay models per landmark.

The measurement server in the paper "updates a delay-distance model for
each landmark based on the most recent two weeks of ping measurements".
:class:`CalibrationSet` plays that role: it owns the mapping from landmark
names to fitted models, building each model on first use from the Atlas
mesh database and caching it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..netsim.atlas import AtlasConstellation, Landmark
from .calibration import CbgCalibration, OctantCalibration, SpotterCalibration


class CalibrationSet:
    """Per-landmark CBG/Octant models plus the global Spotter model."""

    def __init__(self, atlas: AtlasConstellation):
        self.atlas = atlas
        self._landmarks: Dict[str, Landmark] = {
            lm.name: lm for lm in atlas.all_landmarks()}
        self._cbg: Dict[str, CbgCalibration] = {}
        self._cbg_slowline: Dict[str, CbgCalibration] = {}
        self._octant: Dict[str, OctantCalibration] = {}
        self._spotter: Optional[SpotterCalibration] = None

    def landmark(self, name: str) -> Landmark:
        try:
            return self._landmarks[name]
        except KeyError:
            raise KeyError(f"unknown landmark {name!r}") from None

    def has_landmark(self, name: str) -> bool:
        return name in self._landmarks

    def _calibration_points(self, name: str):
        return self.atlas.calibration_data(self.landmark(name))

    def cbg(self, name: str, apply_slowline: bool = False) -> CbgCalibration:
        """The landmark's bestline model (slowline-constrained for CBG++)."""
        cache = self._cbg_slowline if apply_slowline else self._cbg
        model = cache.get(name)
        if model is None:
            model = CbgCalibration(self._calibration_points(name),
                                   apply_slowline=apply_slowline)
            cache[name] = model
        return model

    def octant(self, name: str) -> OctantCalibration:
        """The landmark's Quasi-Octant hull model."""
        model = self._octant.get(name)
        if model is None:
            model = OctantCalibration(self._calibration_points(name))
            self._octant[name] = model
        return model

    def spotter(self) -> SpotterCalibration:
        """The global Spotter model, fitted over the full anchor mesh."""
        if self._spotter is None:
            anchors = self.atlas.anchors
            # One batched materialisation of the full anchor mesh (same
            # pair order as the loop) instead of O(L²) scalar lookups.
            self.atlas.ensure_mesh((a, b) for i, a in enumerate(anchors)
                                   for b in anchors[i + 1:])
            points: List = []
            for i, a in enumerate(anchors):
                for b in anchors[i + 1:]:
                    distance = a.host.distance_to(b.host)
                    delay = self.atlas.min_one_way_ms(a, b)
                    points.append((distance, delay))
            self._spotter = SpotterCalibration(points)
        return self._spotter

    def landmarks_named(self, names: Sequence[str]) -> List[Landmark]:
        return [self.landmark(name) for name in names]
