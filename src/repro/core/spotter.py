"""Spotter (Laki et al. 2011): probabilistic Gaussian-ring multilateration.

A single, globally fitted cubic model gives the mean and standard
deviation of distance as a function of delay.  Each landmark contributes a
ring-shaped Gaussian likelihood over the Earth's surface; rings combine by
Bayes' rule, and the prediction is the smallest region holding 95 % of the
posterior mass.  The credible set comes from
:func:`~repro.core.multilateration.bayesian_region`'s partition-based
top-k selection (ties break toward the lower cell index), and lands in
the engine's native packed-region representation like every other
front-end.
"""

from __future__ import annotations

from typing import List, Sequence

from .base import GeolocationAlgorithm, Prediction
from .multilateration import GaussianRing, bayesian_region
from .observations import RttObservation


class Spotter(GeolocationAlgorithm):
    """Global Gaussian delay model + Bayesian combination."""

    name = "spotter"

    #: Posterior mass retained in the predicted region.
    posterior_mass = 0.95

    def gaussian_rings(self, observations: Sequence[RttObservation]
                       ) -> List[GaussianRing]:
        """The per-landmark probabilistic rings (exposed for analysis)."""
        calibration = self.calibrations.spotter()
        rings = []
        for obs in observations:
            mu, sigma = calibration.mu_sigma(obs.one_way_ms)
            rings.append(GaussianRing(
                landmark_name=obs.landmark_name,
                lat=obs.lat,
                lon=obs.lon,
                mu_km=mu,
                sigma_km=sigma,
            ))
        return rings

    def predict(self, observations: Sequence[RttObservation]) -> Prediction:
        observations = self._prepare(observations)
        region = bayesian_region(
            self.grid,
            self.gaussian_rings(observations),
            mass=self.posterior_mass,
            prior_mask=self.worldmap.plausibility_mask,
        )
        return Prediction(
            algorithm=self.name,
            region=self._clip(region),
            used_landmarks=[obs.landmark_name for obs in observations],
        )
