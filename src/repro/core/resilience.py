"""Resilience primitives for the measurement pipeline.

The paper's campaign ran for weeks against an unreliable substrate; its
pipeline retried lost probes, dropped unstable vantage points (§4.3), and
kept going when proxies disappeared mid-campaign (§6).  This module holds
the two policy objects the measurement drivers share:

* :class:`RetryPolicy` — exponential backoff with jitter plus per-probe
  and per-campaign *simulated-time* budgets.  The simulator has no wall
  clock; delays are accounted, not slept, so retry behaviour is exactly
  reproducible.
* :class:`LandmarkHealthTracker` — per-measurement-session loss
  accounting that quarantines vantage points whose loss fraction exceeds
  a threshold.  Trackers are scoped to one target's audit (one
  :class:`~repro.core.proxy_adapter.ProxyMeasurer`), which keeps
  quarantine decisions independent of fleet order — a shared tracker
  would make parallel audits diverge from serial ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np


@dataclass(frozen=True)
class RetryPolicy:
    """Retry with exponential backoff + jitter, under time budgets."""

    #: Total attempts per failed measurement (first try included).
    max_attempts: int = 3
    #: Backoff before retry k (1-based) is ``base * factor**(k-1)``,
    #: scaled by a uniform jitter in ``[1-jitter, 1+jitter]``.
    backoff_base_ms: float = 200.0
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.25
    #: Budget for one measurement burst including its retries.
    probe_budget_ms: float = 10_000.0
    #: Budget for everything one target's audit spends on retries.
    campaign_budget_ms: float = 60_000.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"need at least one attempt: {self.max_attempts!r}")
        if not (0.0 <= self.backoff_jitter < 1.0):
            raise ValueError(f"jitter out of [0, 1): {self.backoff_jitter!r}")

    def backoff_ms(self, attempt: int, rng: np.random.Generator) -> float:
        """Simulated delay before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt is 1-based: {attempt!r}")
        delay = self.backoff_base_ms * self.backoff_factor ** (attempt - 1)
        if self.backoff_jitter:
            delay *= 1.0 + float(rng.uniform(-self.backoff_jitter,
                                             self.backoff_jitter))
        return delay


@dataclass
class LandmarkHealth:
    """Loss accounting for one vantage point within one session."""

    probes: int = 0
    losses: int = 0
    quarantined: bool = False

    @property
    def loss_fraction(self) -> float:
        return self.losses / self.probes if self.probes else 0.0


class LandmarkHealthTracker:
    """Quarantines vantage points that keep eating probes.

    A landmark is quarantined once it has absorbed at least
    ``min_probes`` probes of which more than ``loss_threshold`` were
    lost; the measurer stops retrying it (and stops probing it in later
    phases of the same audit).  Mirrors §4.3's removal of hosts whose
    calibration data was unstable.
    """

    def __init__(self, loss_threshold: float = 0.5, min_probes: int = 6):
        if not (0.0 < loss_threshold <= 1.0):
            raise ValueError(f"loss_threshold out of (0, 1]: {loss_threshold!r}")
        self.loss_threshold = loss_threshold
        self.min_probes = min_probes
        self._health: Dict[str, LandmarkHealth] = {}

    def record(self, name: str, probes: int, losses: int) -> None:
        """Account one burst's outcome for a landmark."""
        health = self._health.setdefault(name, LandmarkHealth())
        health.probes += probes
        health.losses += losses
        if (health.probes >= self.min_probes
                and health.loss_fraction > self.loss_threshold):
            health.quarantined = True

    def quarantined(self, name: str) -> bool:
        health = self._health.get(name)
        return health is not None and health.quarantined

    def health_of(self, name: str) -> Optional[LandmarkHealth]:
        return self._health.get(name)

    @property
    def quarantined_names(self) -> list:
        return sorted(name for name, h in self._health.items() if h.quarantined)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-landmark probe/loss/quarantine counts, for reporting."""
        return {name: {"probes": h.probes, "losses": h.losses,
                       "loss_fraction": h.loss_fraction,
                       "quarantined": h.quarantined}
                for name, h in sorted(self._health.items())}
