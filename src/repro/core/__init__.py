"""The paper's contribution: active-geolocation algorithms and the audit
machinery around them.

Algorithms
----------
:class:`CBG`
    Constraint-Based Geolocation (Gueye et al. 2004): bestline disks,
    hard intersection.
:class:`QuasiOctant`
    Octant (Wong et al. 2007) minus its traceroute features: convex-hull
    rings.
:class:`Spotter`
    Laki et al. 2011: global cubic Gaussian delay model, Bayesian rings.
:class:`OctantSpotterHybrid`
    Spotter's model inside Octant's ring intersection.
:class:`CBGPlusPlus`
    The paper's CBG++: slowline + two-tier largest-consistent-subset
    multilateration.
:class:`IclabChecker`
    ICLab's speed-limit country disproof, the comparison baseline.
"""

from .assessment import (
    ClaimAssessment,
    ContinentVerdict,
    Verdict,
    assess_claim,
    tally_categories,
    tally_verdicts,
)
from .base import GeolocationAlgorithm, Prediction
from .calibration import (
    BASELINE,
    SLOWLINE,
    CbgCalibration,
    Line,
    OctantCalibration,
    SpotterCalibration,
)
from .calibrationset import CalibrationSet
from .cbg import CBG
from .cbgpp import CBGPlusPlus
from .colocation import (
    LAN_RTT_THRESHOLD_MS,
    ColocationGroup,
    detect_colocation,
    proxy_pair_rtt_ms,
)
from .disambiguation import (
    AuditRecord,
    disambiguate_by_datacenters,
    disambiguate_by_metadata,
    group_by_metadata,
    metadata_group_key,
    refine_assessments,
)
from .hybrid import OctantSpotterHybrid
from .iclab import IclabChecker, IclabVerdict
from .multilateration import (
    DiskConstraint,
    GaussianRing,
    RingConstraint,
    bayesian_region,
    intersect_disks,
    intersect_rings,
    largest_consistent_subset,
    mode_region,
)
from .observations import RttObservation, merge_min, require_observations
from .octant import QuasiOctant
from .refinement import IterativeRefiner, RefinementResult, RefinementRound
from .proxy_adapter import (
    DEFAULT_ETA,
    PAPER_ETA,
    EtaEstimate,
    ProxyMeasurer,
    collect_eta_data,
    estimate_eta,
)
from .resilience import LandmarkHealthTracker, RetryPolicy
from .spotter import Spotter
from .twophase import (
    CONTINENT_ADJACENCY,
    NoLandmarksAvailable,
    TwoPhaseDriver,
    TwoPhaseResult,
    TwoPhaseSelector,
)

__all__ = [
    "BASELINE",
    "CBG",
    "CBGPlusPlus",
    "CalibrationSet",
    "ColocationGroup",
    "IterativeRefiner",
    "LAN_RTT_THRESHOLD_MS",
    "RefinementResult",
    "RefinementRound",
    "CbgCalibration",
    "CONTINENT_ADJACENCY",
    "ClaimAssessment",
    "ContinentVerdict",
    "DEFAULT_ETA",
    "PAPER_ETA",
    "LandmarkHealthTracker",
    "NoLandmarksAvailable",
    "RetryPolicy",
    "DiskConstraint",
    "EtaEstimate",
    "GaussianRing",
    "GeolocationAlgorithm",
    "IclabChecker",
    "IclabVerdict",
    "Line",
    "OctantCalibration",
    "OctantSpotterHybrid",
    "Prediction",
    "ProxyMeasurer",
    "QuasiOctant",
    "RingConstraint",
    "RttObservation",
    "SLOWLINE",
    "Spotter",
    "SpotterCalibration",
    "TwoPhaseDriver",
    "TwoPhaseResult",
    "TwoPhaseSelector",
    "Verdict",
    "AuditRecord",
    "assess_claim",
    "bayesian_region",
    "collect_eta_data",
    "disambiguate_by_datacenters",
    "disambiguate_by_metadata",
    "estimate_eta",
    "group_by_metadata",
    "intersect_disks",
    "intersect_rings",
    "largest_consistent_subset",
    "detect_colocation",
    "merge_min",
    "proxy_pair_rtt_ms",
    "mode_region",
    "metadata_group_key",
    "refine_assessments",
    "require_observations",
    "tally_categories",
    "tally_verdicts",
]
