"""Per-landmark and global delay–distance calibration models.

Three model families, one per algorithm lineage (paper Figure 2):

* :class:`CbgCalibration` — CBG's *bestline*: the line below every
  calibration point, above the 200 km/ms physical baseline, minimising
  the total vertical distance to the points.  CBG++ adds the *slowline*
  (84.5 km/ms) as a lower speed bound.
* :class:`OctantCalibration` — Quasi-Octant's piecewise-linear convex-hull
  boundaries giving both a maximum and a minimum distance per delay, with
  fixed empirical speeds beyond the 50 % / 75 % delay cutoffs.
* :class:`SpotterCalibration` — Spotter's single global cubic fits of the
  mean and standard deviation of distance as a function of delay,
  constrained to be non-decreasing (unconstrained cubics overfit — the
  paper hit exactly this in pilot tests).

Calibration data is a sequence of ``(distance_km, one_way_ms)`` pairs,
typically a landmark's mesh pings to every other anchor over two weeks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..geodesy.constants import (
    BASELINE_SPEED_KM_PER_MS,
    MAX_SURFACE_DISTANCE_KM,
    SLOWLINE_SPEED_KM_PER_MS,
)
from ..stats.hull import lower_hull, upper_hull

CalibrationPoint = Tuple[float, float]  # (distance_km, one_way_ms)


def _validated(points: Sequence[CalibrationPoint]) -> Tuple[np.ndarray, np.ndarray]:
    if len(points) < 2:
        raise ValueError("calibration needs at least two landmark pairs")
    distances = np.asarray([p[0] for p in points], dtype=float)
    delays = np.asarray([p[1] for p in points], dtype=float)
    if (distances < 0).any():
        raise ValueError("negative distance in calibration data")
    if (delays < 0).any():
        raise ValueError("negative delay in calibration data")
    return distances, delays


@dataclass(frozen=True)
class Line:
    """A delay-vs-distance line: ``delay = slope * distance + intercept``."""

    slope: float       # ms per km  (inverse speed)
    intercept: float   # ms

    @property
    def speed_km_per_ms(self) -> float:
        return float("inf") if self.slope == 0 else 1.0 / self.slope

    def delay_at(self, distance_km: float) -> float:
        return self.slope * distance_km + self.intercept

    def distance_at(self, delay_ms: float) -> float:
        """Invert the line; never negative."""
        if self.slope == 0:
            return MAX_SURFACE_DISTANCE_KM
        return max(0.0, (delay_ms - self.intercept) / self.slope)


#: The physical baseline: 200 km/ms, zero intercept.
BASELINE = Line(slope=1.0 / BASELINE_SPEED_KM_PER_MS, intercept=0.0)

#: The CBG++ slowline: 84.5 km/ms, zero intercept.
SLOWLINE = Line(slope=1.0 / SLOWLINE_SPEED_KM_PER_MS, intercept=0.0)


class CbgCalibration:
    """CBG's per-landmark bestline (optionally slowline-constrained).

    The bestline is found among the edges of the lower convex hull of the
    (distance, delay) scatter — the optimal "closest line below all
    points" always touches at least two points, hence lies on the hull.
    Candidate lines are filtered by the speed constraints and the one with
    the smallest total vertical distance to the data wins.  When no hull
    edge is feasible (all data faster than the baseline or slower than the
    slowline — possible with degenerate calibration sets) the speed bound
    itself is used, shifted down to touch the lowest point.
    """

    def __init__(self, points: Sequence[CalibrationPoint],
                 apply_slowline: bool = False):
        distances, delays = _validated(points)
        self.n_points = len(distances)
        self.apply_slowline = apply_slowline
        self.bestline = self._fit_bestline(distances, delays)

    def _slope_bounds(self) -> Tuple[float, float]:
        min_slope = BASELINE.slope                      # can't beat 200 km/ms
        max_slope = SLOWLINE.slope if self.apply_slowline else float("inf")
        return min_slope, max_slope

    def _fit_bestline(self, distances: np.ndarray, delays: np.ndarray) -> Line:
        min_slope, max_slope = self._slope_bounds()
        hull = lower_hull(list(zip(distances, delays)))
        candidates: List[Line] = []
        for (x0, y0), (x1, y1) in zip(hull, hull[1:]):
            if x1 == x0:
                continue
            slope = (y1 - y0) / (x1 - x0)
            if not (min_slope <= slope <= max_slope):
                continue
            intercept = y0 - slope * x0
            if intercept < 0:
                # A negative intercept implies super-physical speed at short
                # range; project the intercept to zero, keeping feasibility.
                intercept = 0.0
                if (delays < slope * distances).any():
                    continue
            candidates.append(Line(slope, intercept))
        if not candidates:
            # Clamp to the nearest feasible speed bound, below all points.
            for slope in (min_slope, max_slope if np.isfinite(max_slope) else min_slope):
                intercept = float(np.min(delays - slope * distances))
                candidates.append(Line(slope, max(0.0, intercept)))
        def total_distance(line: Line) -> float:
            return float(np.sum(delays - line.delay_at(distances)))
        feasible = [line for line in candidates
                    if (delays + 1e-9 >= line.delay_at(distances)).all()]
        pool = feasible if feasible else candidates
        return min(pool, key=total_distance)

    @property
    def speed_km_per_ms(self) -> float:
        return self.bestline.speed_km_per_ms

    def max_distance_km(self, one_way_ms: float) -> float:
        """Bestline distance bound for a one-way delay (the CBG disk radius)."""
        if one_way_ms < 0:
            raise ValueError(f"negative delay: {one_way_ms!r}")
        return min(self.bestline.distance_at(one_way_ms), MAX_SURFACE_DISTANCE_KM)

    def baseline_distance_km(self, one_way_ms: float) -> float:
        """Physical-baseline bound: 200 km/ms, no intercept."""
        if one_way_ms < 0:
            raise ValueError(f"negative delay: {one_way_ms!r}")
        return min(one_way_ms * BASELINE_SPEED_KM_PER_MS, MAX_SURFACE_DISTANCE_KM)


class OctantCalibration:
    """Quasi-Octant's piecewise-linear max/min distance curves.

    The *max-distance* curve inverts the lower ("fast") convex-hull
    boundary of the scatter, built from points with delay up to the 50th
    percentile; the *min-distance* curve inverts the upper ("slow")
    boundary, built up to the 75th percentile.  Past the cutoffs, fixed
    empirical speeds extend the curves (the dashed lines in Figure 2).
    """

    #: Fixed empirical speeds past the hull cutoffs, km/ms.
    FAST_EXTENSION_SPEED = 150.0
    SLOW_EXTENSION_SPEED = 10.0

    def __init__(self, points: Sequence[CalibrationPoint],
                 fast_cutoff_quantile: float = 0.50,
                 slow_cutoff_quantile: float = 0.75):
        distances, delays = _validated(points)
        if not (0.0 < fast_cutoff_quantile <= slow_cutoff_quantile <= 1.0):
            raise ValueError("cutoff quantiles must satisfy 0 < fast <= slow <= 1")
        self.fast_cutoff_ms = float(np.quantile(delays, fast_cutoff_quantile))
        self.slow_cutoff_ms = float(np.quantile(delays, slow_cutoff_quantile))
        fast_points = [(d, t) for d, t in zip(distances, delays)
                       if t <= self.fast_cutoff_ms]
        slow_points = [(d, t) for d, t in zip(distances, delays)
                       if t <= self.slow_cutoff_ms]
        if len(fast_points) < 2 or len(slow_points) < 2:
            raise ValueError("not enough calibration points below the cutoffs")
        # Invert hulls into delay -> distance lookup tables.
        self._max_curve = self._monotone_inverse(lower_hull(fast_points))
        self._min_curve = self._monotone_inverse(upper_hull(slow_points))
        # Vertex arrays for the vectorised (searchsorted) lookups.
        self._max_ts = np.array([t for t, _ in self._max_curve])
        self._max_ds = np.array([d for _, d in self._max_curve])
        self._min_ts = np.array([t for t, _ in self._min_curve])
        self._min_ds = np.array([d for _, d in self._min_curve])

    @staticmethod
    def _monotone_inverse(hull: List[CalibrationPoint]) -> List[Tuple[float, float]]:
        """Hull vertices as (delay, distance), made non-decreasing in both."""
        pairs = sorted((t, d) for d, t in hull)
        result: List[Tuple[float, float]] = []
        running_max = 0.0
        for delay, distance in pairs:
            running_max = max(running_max, distance)
            result.append((delay, running_max))
        return result

    @staticmethod
    def _interpolate(curve: List[Tuple[float, float]], delay: float) -> Optional[float]:
        """Piecewise-linear lookup inside the curve's delay span, else None."""
        if delay < curve[0][0] or delay > curve[-1][0]:
            return None
        for (t0, d0), (t1, d1) in zip(curve, curve[1:]):
            if t0 <= delay <= t1:
                if t1 == t0:
                    return max(d0, d1)
                fraction = (delay - t0) / (t1 - t0)
                return d0 + fraction * (d1 - d0)
        return curve[-1][1]

    def max_distance_km(self, one_way_ms: float) -> float:
        """Upper distance bound (outer ring radius) for a one-way delay."""
        if one_way_ms < 0:
            raise ValueError(f"negative delay: {one_way_ms!r}")
        inside = self._interpolate(self._max_curve, one_way_ms)
        if inside is not None:
            return min(inside, MAX_SURFACE_DISTANCE_KM)
        if one_way_ms < self._max_curve[0][0]:
            # Below calibrated range: scale the first vertex proportionally.
            t0, d0 = self._max_curve[0]
            return d0 * (one_way_ms / t0) if t0 > 0 else d0
        # Beyond the cutoff: extend at the fixed empirical fast speed.
        t_end, d_end = self._max_curve[-1]
        extension = (one_way_ms - t_end) * self.FAST_EXTENSION_SPEED
        return min(d_end + extension, MAX_SURFACE_DISTANCE_KM)

    def min_distance_km(self, one_way_ms: float) -> float:
        """Lower distance bound (inner ring radius) for a one-way delay."""
        if one_way_ms < 0:
            raise ValueError(f"negative delay: {one_way_ms!r}")
        inside = self._interpolate(self._min_curve, one_way_ms)
        if inside is not None:
            value = inside
        elif one_way_ms < self._min_curve[0][0]:
            value = 0.0
        else:
            t_end, d_end = self._min_curve[-1]
            value = d_end + (one_way_ms - t_end) * self.SLOW_EXTENSION_SPEED
        # The minimum bound can never exceed the maximum bound.
        return min(value, self.max_distance_km(one_way_ms))

    @staticmethod
    def _interpolate_vec(ts: np.ndarray, ds: np.ndarray,
                         delays: np.ndarray) -> np.ndarray:
        """Batched in-span curve lookup; positions out of span are garbage.

        ``searchsorted(ts[1:], delay, side='left')`` lands on the first
        segment whose end delay reaches the query — exactly the segment
        the scalar scan in :meth:`_interpolate` stops at — and the
        arithmetic mirrors the scalar expression operation for
        operation, so in-span results are bit-identical.
        """
        j = np.searchsorted(ts[1:], delays, side="left")
        j = np.minimum(j, len(ts) - 2)      # out-of-span queries: harmless
        t0, t1 = ts[j], ts[j + 1]
        d0, d1 = ds[j], ds[j + 1]
        span = t1 - t0
        tie = span == 0.0
        fraction = (delays - t0) / np.where(tie, 1.0, span)
        value = d0 + fraction * (d1 - d0)
        return np.where(tie, np.maximum(d0, d1), value)

    def max_distance_km_vec(self, one_way_ms: np.ndarray) -> np.ndarray:
        """Batched :meth:`max_distance_km`; bit-identical element-wise."""
        delays = np.asarray(one_way_ms, dtype=float)
        if (delays < 0).any():
            raise ValueError("negative delay in batch")
        ts, ds = self._max_ts, self._max_ds
        inside = np.minimum(self._interpolate_vec(ts, ds, delays),
                            MAX_SURFACE_DISTANCE_KM)
        below = (ds[0] * (delays / ts[0])) if ts[0] > 0 else np.full_like(
            delays, ds[0])
        above = np.minimum(
            ds[-1] + (delays - ts[-1]) * self.FAST_EXTENSION_SPEED,
            MAX_SURFACE_DISTANCE_KM)
        return np.where(delays < ts[0], below,
                        np.where(delays > ts[-1], above, inside))

    def min_distance_km_vec(self, one_way_ms: np.ndarray) -> np.ndarray:
        """Batched :meth:`min_distance_km`; bit-identical element-wise."""
        delays = np.asarray(one_way_ms, dtype=float)
        if (delays < 0).any():
            raise ValueError("negative delay in batch")
        ts, ds = self._min_ts, self._min_ds
        inside = self._interpolate_vec(ts, ds, delays)
        above = ds[-1] + (delays - ts[-1]) * self.SLOW_EXTENSION_SPEED
        value = np.where(delays < ts[0], 0.0,
                         np.where(delays > ts[-1], above, inside))
        return np.minimum(value, self.max_distance_km_vec(one_way_ms))


class SpotterCalibration:
    """Spotter's global Gaussian delay model.

    Distance given delay is modelled as N(μ(t), σ(t)) with μ and σ cubic
    polynomials in t, fitted by least squares to per-bin means and
    standard deviations and then projected to be non-decreasing (the
    paper: "constrain each curve to be increasing everywhere; anything
    more flexible led to severe overfitting").
    """

    N_BINS = 40

    def __init__(self, points: Sequence[CalibrationPoint]):
        distances, delays = _validated(points)
        order = np.argsort(delays)
        delays = delays[order]
        distances = distances[order]
        edges = np.quantile(delays, np.linspace(0.0, 1.0, self.N_BINS + 1))
        bin_centers: List[float] = []
        bin_means: List[float] = []
        bin_stds: List[float] = []
        for left, right in zip(edges, edges[1:]):
            mask = (delays >= left) & (delays <= right)
            if mask.sum() < 3:
                continue
            bin_centers.append(float(delays[mask].mean()))
            bin_means.append(float(distances[mask].mean()))
            bin_stds.append(float(distances[mask].std(ddof=1)))
        if len(bin_centers) < 4:
            raise ValueError("not enough populated delay bins for a cubic fit")
        self._delay_grid = np.linspace(0.0, float(delays.max()) * 1.5, 512)
        self._mu_curve = self._monotone_cubic(bin_centers, bin_means)
        self._sigma_curve = self._monotone_cubic(bin_centers, bin_stds)
        self.max_calibrated_delay_ms = float(delays.max())

    def _monotone_cubic(self, x: List[float], y: List[float]) -> np.ndarray:
        """Cubic least-squares fit, evaluated on the grid, made monotone."""
        coefficients = np.polyfit(np.asarray(x), np.asarray(y), deg=3)
        values = np.polyval(coefficients, self._delay_grid)
        values = np.maximum.accumulate(values)     # non-decreasing projection
        return np.maximum(values, 0.0)             # distances are non-negative

    def mu_sigma(self, one_way_ms: float) -> Tuple[float, float]:
        """(μ, σ) of the distance distribution for a one-way delay, km."""
        if one_way_ms < 0:
            raise ValueError(f"negative delay: {one_way_ms!r}")
        t = min(one_way_ms, float(self._delay_grid[-1]))
        mu = float(np.interp(t, self._delay_grid, self._mu_curve))
        sigma = float(np.interp(t, self._delay_grid, self._sigma_curve))
        # A floor keeps the Gaussian ring from degenerating to zero width.
        return min(mu, MAX_SURFACE_DISTANCE_KM), max(sigma, 50.0)
