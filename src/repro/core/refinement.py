"""Iterative refinement of prediction regions (paper §8.1).

The two-phase procedure is fast but noisy: different random landmark
panels give visibly different regions for the same target (Figure 16/20).
The paper proposes "an iterative refinement process, in which additional
probes and anchors are included in the measurement as necessary to reduce
the size of the predicted region."

:class:`IterativeRefiner` implements that: starting from a two-phase
prediction, it repeatedly selects the unused landmarks closest to the
current region, measures them, re-multilaterates with the accumulated
observation set, and stops when the region stops shrinking meaningfully
or the measurement budget runs out.  Landmarks near the current region
are chosen because Figure 11 shows effectiveness concentrates there.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..geo.region import Region
from ..netsim.atlas import AtlasConstellation, Landmark
from .base import GeolocationAlgorithm, Prediction
from .observations import RttObservation
from .twophase import MeasureFn


@dataclass
class RefinementRound:
    """One refinement iteration's bookkeeping."""

    round_number: int
    landmarks_added: List[str]
    area_before_km2: float
    area_after_km2: float

    @property
    def shrinkage(self) -> float:
        """Fractional area reduction achieved this round."""
        if self.area_before_km2 <= 0:
            return 0.0
        return 1.0 - self.area_after_km2 / self.area_before_km2


@dataclass
class RefinementResult:
    """Final prediction plus the per-round trail."""

    prediction: Prediction
    rounds: List[RefinementRound] = field(default_factory=list)
    total_measurements: int = 0

    @property
    def initial_area_km2(self) -> float:
        if not self.rounds:
            return self.prediction.area_km2()
        return self.rounds[0].area_before_km2

    @property
    def total_shrinkage(self) -> float:
        initial = self.initial_area_km2
        if initial <= 0:
            return 0.0
        return 1.0 - self.prediction.area_km2() / initial


class IterativeRefiner:
    """Shrinks a prediction by measuring landmarks near it.

    Parameters
    ----------
    batch_size:
        Landmarks measured per round.
    max_rounds:
        Hard cap on iterations.
    min_shrinkage:
        Stop once a round reduces the area by less than this fraction —
        further measurements are unlikely to help (Figure 11: most are
        ineffective).
    """

    def __init__(self, atlas: AtlasConstellation,
                 algorithm: GeolocationAlgorithm,
                 batch_size: int = 8, max_rounds: int = 4,
                 min_shrinkage: float = 0.05):
        if batch_size < 1:
            raise ValueError(f"batch size must be positive: {batch_size!r}")
        if max_rounds < 1:
            raise ValueError(f"need at least one round: {max_rounds!r}")
        if not (0.0 <= min_shrinkage < 1.0):
            raise ValueError(f"min_shrinkage must be in [0, 1): {min_shrinkage!r}")
        self.atlas = atlas
        self.algorithm = algorithm
        self.batch_size = batch_size
        self.max_rounds = max_rounds
        self.min_shrinkage = min_shrinkage

    def _nearest_unused(self, region: Region, used: set,
                        count: int) -> List[Landmark]:
        """Unused landmarks closest to the current region's centroid.

        The centroid stands in for the (unknown) target; Figure 11 says
        nearby landmarks are the ones likely to constrain the region.
        """
        centroid = region.centroid()
        if centroid is None:
            return []
        candidates = [lm for lm in self.atlas.all_landmarks()
                      if lm.name not in used]
        candidates.sort(key=lambda lm: _distance(centroid, lm))
        return candidates[:count]

    def refine(self, initial: Prediction,
               observations: Sequence[RttObservation],
               measure: MeasureFn) -> RefinementResult:
        """Iteratively add landmarks until the region stops shrinking."""
        accumulated = list(observations)
        used = {obs.landmark_name for obs in accumulated}
        current = initial
        rounds: List[RefinementRound] = []
        total_measurements = 0
        for round_number in range(1, self.max_rounds + 1):
            if current.region.is_empty:
                break
            batch = self._nearest_unused(current.region, used, self.batch_size)
            if not batch:
                break
            new_observations = measure(batch)
            total_measurements += len(new_observations)
            accumulated.extend(new_observations)
            used.update(obs.landmark_name for obs in new_observations)
            area_before = current.area_km2()
            candidate = self.algorithm.predict(accumulated)
            # The subset multilateration is not monotone in the observation
            # set: extra conflicting disks can change which consistent
            # family wins.  Only adopt improvements; a non-improving round
            # means the region has converged.
            improved = (not candidate.region.is_empty
                        and candidate.area_km2() < area_before)
            rounds.append(RefinementRound(
                round_number=round_number,
                landmarks_added=[lm.name for lm in batch],
                area_before_km2=area_before,
                area_after_km2=(candidate.area_km2() if improved
                                else area_before),
            ))
            if improved:
                current = candidate
            if rounds[-1].shrinkage < self.min_shrinkage:
                break
        return RefinementResult(
            prediction=current,
            rounds=rounds,
            total_measurements=total_measurements,
        )


def _distance(centroid, landmark: Landmark) -> float:
    from ..geodesy.greatcircle import haversine_km
    return haversine_km(centroid[0], centroid[1], landmark.lat, landmark.lon)
