"""Claim assessment: credible / uncertain / false (section 6).

A provider's country claim for a proxy is

* **false** when the predicted region does not cover any part of the
  claimed country,
* **credible** when the predicted region lies entirely within the claimed
  country,
* **uncertain** when the region covers the claimed country *and* others.

For false and uncertain claims the paper also records whether the
prediction stays on the claimed country's continent — a region covering
Belgium, the Netherlands, and Germany still disproves North Korea.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..geo.region import Region
from ..geo.worldmap import WorldMap


class Verdict(enum.Enum):
    """Country-level assessment of one claim."""

    CREDIBLE = "credible"
    UNCERTAIN = "uncertain"
    FALSE = "false"
    UNLOCATABLE = "unlocatable"     # empty prediction region


class ContinentVerdict(enum.Enum):
    """Continent-level refinement used in Figure 17."""

    CREDIBLE = "continent credible"
    UNCERTAIN = "continent uncertain"
    FALSE = "continent false"
    UNKNOWN = "continent unknown"


@dataclass
class ClaimAssessment:
    """Everything the audit records about one proxy's claim."""

    claimed_country: str
    verdict: Verdict
    continent_verdict: ContinentVerdict
    countries_covered: List[str] = field(default_factory=list)
    region_area_km2: float = 0.0
    resolved_country: Optional[str] = None   # set by disambiguation
    resolution_method: Optional[str] = None  # "datacenter" or "metadata"

    @property
    def is_false(self) -> bool:
        return self.verdict is Verdict.FALSE

    @property
    def is_credible(self) -> bool:
        return self.verdict is Verdict.CREDIBLE

    @property
    def is_uncertain(self) -> bool:
        return self.verdict is Verdict.UNCERTAIN

    def category(self) -> str:
        """The Figure 17 bar category this assessment falls into."""
        if self.verdict is Verdict.UNLOCATABLE:
            return "unlocatable"
        if self.verdict is Verdict.CREDIBLE:
            return "credible"
        if self.verdict is Verdict.UNCERTAIN:
            if self.continent_verdict is ContinentVerdict.CREDIBLE:
                return "country uncertain, continent credible"
            return "country and continent uncertain"
        # FALSE:
        if self.continent_verdict is ContinentVerdict.CREDIBLE:
            return "country false, continent credible"
        if self.continent_verdict is ContinentVerdict.UNCERTAIN:
            return "country false, continent uncertain"
        return "continent false"


#: Default coverage tolerance, km.  A prediction region is a raster; a
#: region whose continuous boundary clips a sliver of a country can lose
#: that overlap to cell quantisation.  One grid cell (~110 km at 1°) of
#: slack prevents rasterisation alone from flipping a verdict to FALSE —
#: in keeping with the paper's priority of never wrongly accusing.
DEFAULT_TOLERANCE_KM = 120.0


def assess_claim(region: Region, claimed_country: str,
                 worldmap: WorldMap,
                 tolerance_km: float = DEFAULT_TOLERANCE_KM) -> ClaimAssessment:
    """Classify one prediction region against one country claim."""
    if claimed_country not in worldmap.registry:
        raise KeyError(f"unknown claimed country {claimed_country!r}")
    if region.is_empty:
        return ClaimAssessment(
            claimed_country=claimed_country,
            verdict=Verdict.UNLOCATABLE,
            continent_verdict=ContinentVerdict.UNKNOWN,
        )
    covered = worldmap.countries_covered(region)
    if (claimed_country not in covered and tolerance_km > 0
            and worldmap.distance_to_country_km(region, claimed_country)
            <= tolerance_km):
        # Within rasterisation slack of the claimed country: treat the
        # claim as possibly covered rather than disproven.
        covered = covered + [claimed_country]
    claimed_continent = worldmap.registry.continent_of(claimed_country)
    covered_continents = {worldmap.registry.continent_of(code)
                          for code in covered}

    if claimed_country in covered:
        verdict = (Verdict.CREDIBLE if set(covered) == {claimed_country}
                   else Verdict.UNCERTAIN)
    else:
        verdict = Verdict.FALSE

    if not covered_continents:
        continent_verdict = ContinentVerdict.UNKNOWN
    elif covered_continents == {claimed_continent}:
        continent_verdict = ContinentVerdict.CREDIBLE
    elif claimed_continent in covered_continents:
        continent_verdict = ContinentVerdict.UNCERTAIN
    else:
        continent_verdict = ContinentVerdict.FALSE

    return ClaimAssessment(
        claimed_country=claimed_country,
        verdict=verdict,
        continent_verdict=continent_verdict,
        countries_covered=covered,
        region_area_km2=region.area_km2(),
    )


def tally_verdicts(assessments: Sequence[ClaimAssessment]) -> dict:
    """Counts per verdict, the paper's headline numbers."""
    counts = {verdict: 0 for verdict in Verdict}
    for assessment in assessments:
        counts[assessment.verdict] += 1
    return {verdict.value: count for verdict, count in counts.items()}


def tally_categories(assessments: Sequence[ClaimAssessment]) -> dict:
    """Counts per Figure 17 category."""
    counts: dict = {}
    for assessment in assessments:
        category = assessment.category()
        counts[category] = counts.get(category, 0) + 1
    return counts
