"""Common interface for geolocation algorithms."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Sequence

from ..geo.region import Region
from ..geo.worldmap import WorldMap
from .calibrationset import CalibrationSet
from .observations import RttObservation, merge_min, require_observations


@dataclass
class Prediction:
    """The output of one geolocation attempt."""

    algorithm: str
    region: Region                       # after plausibility clipping
    used_landmarks: List[str] = field(default_factory=list)
    discarded_landmarks: List[str] = field(default_factory=list)

    @property
    def failed(self) -> bool:
        """True when the algorithm could not place the target anywhere."""
        return self.region.is_empty

    def area_km2(self) -> float:
        return self.region.area_km2()

    def miss_distance_km(self, true_lat: float, true_lon: float) -> float:
        """Distance from the true location to the predicted region's edge.

        Zero when the prediction covers the truth (the Figure 9A metric).
        An empty prediction is an unbounded miss.
        """
        if self.region.is_empty:
            return float("inf")
        return self.region.distance_to_point_km(true_lat, true_lon)


class GeolocationAlgorithm(abc.ABC):
    """Base class: calibrations + world map in, regions out."""

    #: Subclasses set a short identifier used in reports and figures.
    name: str = "abstract"

    def __init__(self, calibrations: CalibrationSet, worldmap: WorldMap):
        self.calibrations = calibrations
        self.worldmap = worldmap
        self.grid = worldmap.grid

    def _prepare(self, observations: Sequence[RttObservation]
                 ) -> List[RttObservation]:
        merged = merge_min(observations)
        require_observations(merged)
        return merged

    def _clip(self, region: Region) -> Region:
        """Apply the paper's terrain plausibility constraints."""
        return self.worldmap.clip_to_plausible(region)

    @abc.abstractmethod
    def predict(self, observations: Sequence[RttObservation]) -> Prediction:
        """Estimate where the target is."""

    def predict_fleet(self, fleets: Sequence[Sequence[RttObservation]]
                      ) -> List[Prediction]:
        """Predict a whole fleet of targets, one panel per server.

        The contract every override must honour: the result is
        bit-identical to ``[self.predict(panel) for panel in fleets]`` —
        fleet batching is a throughput lever, never a semantics lever.
        This default is that very loop; vectorised algorithms override
        it with a single sweep over the distance bank.
        """
        return [self.predict(panel) for panel in fleets]
