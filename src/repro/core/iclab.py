"""ICLab's country-disproof checker (section 6.2 of the paper).

ICLab does not predict a location; it only tries to *disprove* the claimed
country.  For each landmark it computes the minimum great-circle distance
from the landmark to the claimed country, and the speed a packet would
have needed to cover that distance in the observed one-way time.  The
claim is accepted only if no packet had to exceed a configurable "speed of
internet" limit — 153 km/ms (0.5104 c) in ICLab's deployment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..geo.worldmap import WorldMap
from ..geodesy.constants import ICLAB_SPEED_LIMIT_KM_PER_MS
from .observations import RttObservation


@dataclass(frozen=True)
class IclabVerdict:
    """Outcome of the ICLab check for one proxy."""

    claimed_country: str
    accepted: bool
    violations: Tuple[str, ...]      # landmark names that disproved the claim
    max_required_speed: float        # km/ms, over all landmarks


class IclabChecker:
    """Speed-limit country disproof."""

    def __init__(self, worldmap: WorldMap,
                 speed_limit_km_per_ms: float = ICLAB_SPEED_LIMIT_KM_PER_MS):
        if speed_limit_km_per_ms <= 0:
            raise ValueError(f"speed limit must be positive: {speed_limit_km_per_ms!r}")
        self.worldmap = worldmap
        self.speed_limit = speed_limit_km_per_ms
        self._distance_cache: Dict[Tuple[float, float, str], float] = {}

    def _distance_to_country(self, lat: float, lon: float, iso2: str) -> float:
        """Minimum distance from a point to the country, km (cached)."""
        key = (round(lat, 4), round(lon, 4), iso2)
        cached = self._distance_cache.get(key)
        if cached is None:
            region = self.worldmap.country_region(iso2)
            cached = region.distance_to_point_km(lat, lon)
            self._distance_cache[key] = cached
        return cached

    def required_speed(self, obs: RttObservation, iso2: str) -> float:
        """Speed (km/ms) needed to reach the claimed country in time.

        Zero-delay observations with non-zero distance are infinitely
        fast; observations from inside the country need zero speed.
        """
        distance = self._distance_to_country(obs.lat, obs.lon, iso2)
        if distance == 0.0:
            return 0.0
        if obs.one_way_ms == 0.0:
            return float("inf")
        return distance / obs.one_way_ms

    def check(self, claimed_country: str,
              observations: Sequence[RttObservation]) -> IclabVerdict:
        """Accept or disprove the provider's country claim."""
        if not observations:
            raise ValueError("no observations supplied")
        violations: List[str] = []
        max_speed = 0.0
        for obs in observations:
            speed = self.required_speed(obs, claimed_country)
            max_speed = max(max_speed, speed)
            if speed > self.speed_limit:
                violations.append(obs.landmark_name)
        return IclabVerdict(
            claimed_country=claimed_country,
            accepted=not violations,
            violations=tuple(violations),
            max_required_speed=max_speed,
        )
