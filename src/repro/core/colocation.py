"""Proxy co-location detection via pairwise proxy-to-proxy RTTs (§8.1).

The paper: "We are experimenting with an additional technique for
detecting proxies in the same data center, in which we measure round-trip
times to each proxy from each other proxy.  Pilot tests indicate that
some groups of proxies (including proxies claimed to be in separate
countries) show less than 5 ms round-trip times among themselves, which
practically guarantees they are on the same local network."

:func:`detect_colocation` measures every pair (through the tunnel: client
→ proxy A → proxy B, with the client legs subtracted the same way landmark
measurements are adapted) and clusters proxies whose mutual RTT falls
below the LAN threshold, using union-find.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..netsim.hosts import Host
from ..netsim.network import Network
from ..netsim.proxies import ProxyServer

#: Mutual RTT below this "practically guarantees they are on the same
#: local network" (paper §8.1).
LAN_RTT_THRESHOLD_MS = 5.0


@dataclass
class ColocationGroup:
    """One detected same-LAN cluster of proxies."""

    servers: List[ProxyServer]
    max_internal_rtt_ms: float

    @property
    def size(self) -> int:
        return len(self.servers)

    def claimed_countries(self) -> List[str]:
        return sorted({s.claimed_country for s in self.servers})

    @property
    def claims_conflict(self) -> bool:
        """Same LAN but different advertised countries — someone is lying."""
        return len(self.claimed_countries()) > 1


class _UnionFind:
    def __init__(self, n: int):
        self.parent = list(range(n))

    def find(self, i: int) -> int:
        while self.parent[i] != i:
            self.parent[i] = self.parent[self.parent[i]]
            i = self.parent[i]
        return i

    def union(self, i: int, j: int) -> None:
        ri, rj = self.find(i), self.find(j)
        if ri != rj:
            self.parent[rj] = ri


def proxy_pair_rtt_ms(network: Network, a: ProxyServer, b: ProxyServer,
                      rng: Optional[np.random.Generator] = None,
                      samples: int = 3) -> float:
    """Best observed RTT between two proxies, ms.

    Measured proxy-to-proxy: the client instructs proxy A's tunnel to
    connect to proxy B's service port, so the timed exchange runs A→B
    directly (the client→A leg is constant and subtracted by the batch
    driver; here we model the already-adapted measurement).
    """
    rng = rng if rng is not None else np.random.default_rng(
        (a.host.host_id, b.host.host_id))
    return float(min(network.rtt_sample_ms(a.host, b.host, rng)
                     for _ in range(samples)))


def detect_colocation(network: Network, servers: Sequence[ProxyServer],
                      threshold_ms: float = LAN_RTT_THRESHOLD_MS,
                      rng: Optional[np.random.Generator] = None
                      ) -> List[ColocationGroup]:
    """Cluster proxies whose mutual RTTs are LAN-scale.

    Returns only groups of two or more, largest first.  O(n²)
    measurements — the paper ran this on suspect subsets, not whole
    fleets; callers should pre-filter (e.g. by provider).
    """
    servers = list(servers)
    if threshold_ms <= 0:
        raise ValueError(f"threshold must be positive: {threshold_ms!r}")
    rng = rng if rng is not None else np.random.default_rng(0)
    n = len(servers)
    union_find = _UnionFind(n)
    pair_rtts: Dict[Tuple[int, int], float] = {}
    for i in range(n):
        for j in range(i + 1, n):
            rtt = proxy_pair_rtt_ms(network, servers[i], servers[j], rng)
            pair_rtts[(i, j)] = rtt
            if rtt < threshold_ms:
                union_find.union(i, j)
    clusters: Dict[int, List[int]] = {}
    for i in range(n):
        clusters.setdefault(union_find.find(i), []).append(i)
    groups: List[ColocationGroup] = []
    for members in clusters.values():
        if len(members) < 2:
            continue
        internal = [pair_rtts[(min(i, j), max(i, j))]
                    for k, i in enumerate(members)
                    for j in members[k + 1:]]
        groups.append(ColocationGroup(
            servers=[servers[i] for i in members],
            max_internal_rtt_ms=max(internal),
        ))
    return sorted(groups, key=lambda g: -g.size)
