"""Adapting RTT measurement to targets behind proxies (section 5.3).

A measurement through a VPN tunnel observes client→proxy→landmark time.
To isolate the proxy→landmark component the client pings *itself through
the tunnel* — a packet that traverses the client→proxy path twice — and
subtracts η times that self-ping from every tunnelled measurement, where
η is the empirically fitted ratio between direct and indirect proxy RTTs
(≈ 0.49 in the paper, Figure 13, after Castelluccia et al.).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..netsim.atlas import Landmark
from ..netsim.hosts import Host
from ..netsim.network import Network
from ..netsim.proxies import ProxiedClient, ProxyServer
from ..stats.regression import LinearFit, theil_sen_fit
from .observations import RttObservation

#: Default direct/indirect ratio when no pingable proxies are available to
#: fit one.  Theory says exactly 1/2 (the path is traversed twice).
DEFAULT_ETA = 0.5


@dataclass(frozen=True)
class EtaEstimate:
    """The fitted direct-vs-indirect RTT relationship."""

    eta: float
    r_squared: float
    n_proxies: int
    fit: Optional[LinearFit] = None


def collect_eta_data(network: Network, client: Host,
                     proxies: Sequence[ProxyServer],
                     rng: Optional[np.random.Generator] = None,
                     samples_per_proxy: int = 3
                     ) -> List[Tuple[float, float]]:
    """(indirect, direct) RTT pairs for every proxy that answers pings."""
    rng = rng if rng is not None else np.random.default_rng(0)
    pairs: List[Tuple[float, float]] = []
    for proxy in proxies:
        if not proxy.responds_to_ping:
            continue
        tunnel = ProxiedClient(network, client, proxy,
                               seed=proxy.host.host_id)
        direct = float(network.rtt_samples_ms(
            client, proxy.host, samples_per_proxy, rng).min())
        indirect = float(tunnel.self_ping_through_proxy_samples_ms(
            samples_per_proxy, rng).min())
        pairs.append((indirect, direct))
    return pairs


def estimate_eta(network: Network, client: Host,
                 proxies: Sequence[ProxyServer],
                 rng: Optional[np.random.Generator] = None) -> EtaEstimate:
    """Fit η by robust regression of direct on indirect RTTs.

    Falls back to the theoretical 0.5 when fewer than three proxies are
    pingable both ways.
    """
    pairs = collect_eta_data(network, client, proxies, rng)
    if len(pairs) < 3:
        return EtaEstimate(eta=DEFAULT_ETA, r_squared=0.0, n_proxies=len(pairs))
    indirect = [p[0] for p in pairs]
    direct = [p[1] for p in pairs]
    fit = theil_sen_fit(indirect, direct)
    return EtaEstimate(eta=fit.slope, r_squared=fit.r_squared,
                       n_proxies=len(pairs), fit=fit)


class ProxyMeasurer:
    """Produces landmark observations for a target behind one proxy.

    Every tunnelled RTT has η × self-ping subtracted to remove the
    client→proxy leg; the remainder, halved, is the one-way proxy→landmark
    delay the geolocation algorithms consume.  Small negative remainders
    (noise on short paths) are clamped to a floor rather than discarded —
    a zero-ish delay is itself informative.
    """

    ONE_WAY_FLOOR_MS = 0.05

    #: The subtracted client leg is scaled down by this factor.  Queueing
    #: noise makes even the best self-ping an *over*-estimate of the
    #: client→proxy floor; subtracting slightly less biases the residual
    #: error toward overestimation — which only widens the region, whereas
    #: under-estimation can make the region miss the proxy entirely (the
    #: paper's stated priority is never to do that).
    CLIENT_LEG_SAFETY = 0.95

    def __init__(self, network: Network, client: Host, proxy: ProxyServer,
                 eta: float = DEFAULT_ETA, seed: int = 0):
        if not (0.0 < eta < 1.0):
            raise ValueError(f"eta must be in (0, 1): {eta!r}")
        self.tunnel = ProxiedClient(network, client, proxy, seed=seed)
        self.proxy = proxy
        self.eta = eta
        self._rng = np.random.default_rng(seed + 1)

    def client_leg_ms(self, rng: Optional[np.random.Generator] = None,
                      samples: int = 5) -> float:
        """Estimated client→proxy RTT: η × (best self-ping), scaled safe."""
        rng = rng if rng is not None else self._rng
        self_ping = float(self.tunnel.self_ping_through_proxy_samples_ms(
            samples, rng).min())
        return self.CLIENT_LEG_SAFETY * self.eta * self_ping

    def observe(self, landmarks: Sequence[Landmark],
                rng: Optional[np.random.Generator] = None,
                samples_per_landmark: int = 3) -> List[RttObservation]:
        """Measure every landmark through the tunnel and adapt the RTTs."""
        rng = rng if rng is not None else self._rng
        client_leg = self.client_leg_ms(rng)
        if not landmarks:
            return []
        rtts = self.tunnel.rtt_through_proxy_matrix_ms(
            landmarks, samples_per_landmark, rng)
        adapted = np.maximum(rtts.min(axis=1) - client_leg,
                             2.0 * self.ONE_WAY_FLOOR_MS)
        return [RttObservation(
            landmark_name=landmark.name,
            lat=landmark.lat,
            lon=landmark.lon,
            one_way_ms=float(adapted[index]) / 2.0,
        ) for index, landmark in enumerate(landmarks)]
