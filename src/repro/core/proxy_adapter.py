"""Adapting RTT measurement to targets behind proxies (section 5.3).

A measurement through a VPN tunnel observes client→proxy→landmark time.
To isolate the proxy→landmark component the client pings *itself through
the tunnel* — a packet that traverses the client→proxy path twice — and
subtracts η times that self-ping from every tunnelled measurement, where
η is the empirically fitted ratio between direct and indirect proxy RTTs
(≈ 0.49 in the paper, Figure 13, after Castelluccia et al.).

Under fault injection (see :mod:`repro.netsim.faults`) probes come back
as NaN; the measurer retries failed bursts with exponential backoff,
quarantines landmarks that keep eating probes, and raises
:class:`~repro.netsim.faults.MeasurementFailed` only when the tunnel
itself is unreachable after every retry.  With no faults active none of
the retry machinery runs and the measurement stream is byte-identical to
the fault-free pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..netsim.atlas import Landmark
from ..netsim.faults import MeasurementFailed
from ..netsim.hosts import Host
from ..netsim.network import Network
from ..netsim.proxies import ProxiedClient, ProxyServer
from ..stats.regression import LinearFit, theil_sen_fit
from .observations import RttObservation
from .resilience import LandmarkHealthTracker, RetryPolicy

#: Default direct/indirect ratio when no pingable proxies are available to
#: fit one.  Theory says exactly 1/2 (the path is traversed twice).
DEFAULT_ETA = 0.5

#: The paper's fitted ratio (Figure 13) — the prior the pipeline falls
#: back on when the calibration burst degrades below the minimum sample
#: count and a fresh fit would be untrustworthy.
PAPER_ETA = 0.49

#: Valid (indirect, direct) sample pairs a proxy must contribute before
#: its pair enters the η fit; partially lost bursts below this are
#: discarded as unstable (the paper's §4.3 treatment).
MIN_ETA_SAMPLES_PER_PROXY = 2


@dataclass(frozen=True)
class EtaEstimate:
    """The fitted direct-vs-indirect RTT relationship."""

    eta: float
    r_squared: float
    n_proxies: int
    fit: Optional[LinearFit] = None
    #: Valid RTT samples that survived loss filtering, across all proxies.
    n_samples: int = 0
    #: True when the estimate fell back to the paper's prior because too
    #: few proxies (or samples) survived the measurement faults.
    degraded: bool = False


def _eta_pairs_with_stats(network: Network, client: Host,
                          proxies: Sequence[ProxyServer],
                          rng: Optional[np.random.Generator],
                          samples_per_proxy: int
                          ) -> Tuple[List[Tuple[float, float]], int]:
    """(indirect, direct) pairs plus the count of valid samples used."""
    rng = rng if rng is not None else np.random.default_rng(0)
    pairs: List[Tuple[float, float]] = []
    n_samples = 0
    pingable = [proxy for proxy in proxies if proxy.responds_to_ping]
    if not pingable:
        return pairs, n_samples
    # One batched shortest-path call resolves every proxy's direct-leg
    # floor; the per-proxy loop below then only draws noise.  The sweep
    # keeps the shared sequential RNG stream byte-identical: `base` skips
    # no draws, and the loop visits proxies in the original order.
    bases = network.base_rtt_pairs([client] * len(pingable),
                                   [proxy.host for proxy in pingable])
    for proxy, base in zip(pingable, bases):
        with network.measurement_epoch_for(proxy.host):
            tunnel = ProxiedClient(network, client, proxy,
                                   seed=proxy.host.host_id)
            direct_samples = network.rtt_samples_ms(
                client, proxy.host, samples_per_proxy, rng,
                base=float(base))
            indirect_samples = tunnel.self_ping_through_proxy_samples_ms(
                samples_per_proxy, rng)
        direct_ok = direct_samples[np.isfinite(direct_samples)]
        indirect_ok = indirect_samples[np.isfinite(indirect_samples)]
        if (direct_ok.size < MIN_ETA_SAMPLES_PER_PROXY
                or indirect_ok.size < MIN_ETA_SAMPLES_PER_PROXY):
            # The burst partially failed: too few samples to trust a
            # minimum from.  Drop the proxy rather than fit on noise.
            continue
        n_samples += int(direct_ok.size + indirect_ok.size)
        pairs.append((float(indirect_ok.min()), float(direct_ok.min())))
    return pairs, n_samples


def collect_eta_data(network: Network, client: Host,
                     proxies: Sequence[ProxyServer],
                     rng: Optional[np.random.Generator] = None,
                     samples_per_proxy: int = 3
                     ) -> List[Tuple[float, float]]:
    """(indirect, direct) RTT pairs for every proxy that answers pings."""
    pairs, _ = _eta_pairs_with_stats(network, client, proxies, rng,
                                     samples_per_proxy)
    return pairs


def estimate_eta(network: Network, client: Host,
                 proxies: Sequence[ProxyServer],
                 rng: Optional[np.random.Generator] = None,
                 samples_per_proxy: int = 3) -> EtaEstimate:
    """Fit η by robust regression of direct on indirect RTTs.

    Falls back to the paper's η = 0.49 prior — flagged ``degraded`` —
    when fewer than three proxies survive ping filtering and loss, rather
    than fitting a line through too little data.
    """
    pairs, n_samples = _eta_pairs_with_stats(network, client, proxies, rng,
                                             samples_per_proxy)
    if len(pairs) < 3:
        return EtaEstimate(eta=PAPER_ETA, r_squared=0.0,
                           n_proxies=len(pairs), n_samples=n_samples,
                           degraded=True)
    indirect = [p[0] for p in pairs]
    direct = [p[1] for p in pairs]
    fit = theil_sen_fit(indirect, direct)
    return EtaEstimate(eta=fit.slope, r_squared=fit.r_squared,
                       n_proxies=len(pairs), fit=fit, n_samples=n_samples)


class ProxyMeasurer:
    """Produces landmark observations for a target behind one proxy.

    Every tunnelled RTT has η × self-ping subtracted to remove the
    client→proxy leg; the remainder, halved, is the one-way proxy→landmark
    delay the geolocation algorithms consume.  Small negative remainders
    (noise on short paths) are clamped to a floor rather than discarded —
    a zero-ish delay is itself informative.

    Lost probes (NaN samples under fault injection) are retried per
    ``retry_policy``; landmarks that keep absorbing probes are
    quarantined for the rest of this target's audit via ``health``.
    """

    ONE_WAY_FLOOR_MS = 0.05

    #: The subtracted client leg is scaled down by this factor.  Queueing
    #: noise makes even the best self-ping an *over*-estimate of the
    #: client→proxy floor; subtracting slightly less biases the residual
    #: error toward overestimation — which only widens the region, whereas
    #: under-estimation can make the region miss the proxy entirely (the
    #: paper's stated priority is never to do that).
    CLIENT_LEG_SAFETY = 0.95

    def __init__(self, network: Network, client: Host, proxy: ProxyServer,
                 eta: float = DEFAULT_ETA, seed: int = 0,
                 retry_policy: Optional[RetryPolicy] = None):
        if not (0.0 < eta < 1.0):
            raise ValueError(f"eta must be in (0, 1): {eta!r}")
        self.tunnel = ProxiedClient(network, client, proxy, seed=seed)
        self.proxy = proxy
        self.eta = eta
        self.retry = retry_policy if retry_policy is not None else RetryPolicy()
        self.health = LandmarkHealthTracker()
        self.elapsed_ms = 0.0
        self._rng = np.random.default_rng(seed + 1)

    def _spend(self, delay_ms: float) -> bool:
        """Account a simulated backoff delay; False when over budget."""
        if self.elapsed_ms + delay_ms > self.retry.campaign_budget_ms:
            return False
        self.elapsed_ms += delay_ms
        return True

    #: Independent self-ping bursts per client-leg estimate when faults
    #: are active.  A transient congestion episode inflates a *whole*
    #: burst's floor; an inflated self-ping over-subtracts the client leg
    #: — the one error direction that can shrink the region off the true
    #: location.  Congestion strikes bursts independently, so the min
    #: over a few bursts escapes the episode.  Fault-free runs take one
    #: burst, keeping the measurement stream byte-identical to the seed
    #: pipeline.
    CLIENT_LEG_BURSTS = 3

    def client_leg_ms(self, rng: Optional[np.random.Generator] = None,
                      samples: int = 5) -> float:
        """Estimated client→proxy RTT: η × (best self-ping), scaled safe.

        Retries a fully lost self-ping round with backoff; raises
        :class:`MeasurementFailed` when the tunnel never answers — the
        proxy has genuinely disappeared.
        """
        rng = rng if rng is not None else self._rng
        faulty = self.tunnel.network.active_faults() is not None
        bursts = self.CLIENT_LEG_BURSTS if faulty else 1
        best = np.inf
        for attempt in range(1, self.retry.max_attempts + 1):
            for _ in range(bursts):
                pings = self.tunnel.self_ping_through_proxy_samples_ms(
                    samples, rng)
                finite = pings[np.isfinite(pings)]
                if finite.size:
                    best = min(best, float(finite.min()))
            if np.isfinite(best):
                return self.CLIENT_LEG_SAFETY * self.eta * best
            if attempt == self.retry.max_attempts:
                break
            if not self._spend(self.retry.backoff_ms(attempt, rng)):
                break
        raise MeasurementFailed(
            f"tunnel to {self.proxy.hostname} unreachable: every self-ping "
            f"of {self.retry.max_attempts} rounds was lost")

    def observe(self, landmarks: Sequence[Landmark],
                rng: Optional[np.random.Generator] = None,
                samples_per_landmark: int = 3) -> List[RttObservation]:
        """Measure every landmark through the tunnel and adapt the RTTs.

        Landmarks whose bursts are entirely lost are retried (with
        backoff) as a batch; those still silent after the retry budget —
        or already quarantined — yield no observation, and callers see a
        shorter list than they asked for.
        """
        rng = rng if rng is not None else self._rng
        client_leg = self.client_leg_ms(rng)
        landmarks = list(landmarks)
        if not landmarks:
            return []
        faulty = self.tunnel.network.active_faults() is not None
        best = np.full(len(landmarks), np.inf)
        pending = [(index, lm) for index, lm in enumerate(landmarks)
                   if not self.health.quarantined(lm.name)]
        for attempt in range(1, self.retry.max_attempts + 1):
            if not pending:
                break
            rtts = self.tunnel.rtt_through_proxy_matrix_ms(
                [lm for _, lm in pending], samples_per_landmark, rng)
            masked = np.where(np.isfinite(rtts), rtts, np.inf)
            row_best = masked.min(axis=1)
            failed = []
            for row, (index, lm) in enumerate(pending):
                if faulty:
                    n_lost = samples_per_landmark - int(
                        np.isfinite(rtts[row]).sum())
                    self.health.record(lm.name, samples_per_landmark, n_lost)
                if np.isfinite(row_best[row]):
                    best[index] = row_best[row]
                elif not self.health.quarantined(lm.name):
                    failed.append((index, lm))
            pending = failed
            if not pending or attempt == self.retry.max_attempts:
                break
            if not self._spend(self.retry.backoff_ms(attempt, rng)):
                break
        observed = np.isfinite(best)
        adapted = np.maximum(best - client_leg, 2.0 * self.ONE_WAY_FLOOR_MS)
        return [RttObservation(
            landmark_name=landmark.name,
            lat=landmark.lat,
            lon=landmark.lon,
            one_way_ms=float(adapted[index]) / 2.0,
        ) for index, landmark in enumerate(landmarks) if observed[index]]
