"""The two-phase measurement procedure (section 4.1).

Pinging all ~250 anchors takes minutes and floods the target; instead the
paper first measures three anchors per continent, deduces the target's
continent from the fastest responses, then measures 25 randomly selected
landmarks (anchors + stable probes) on that continent.  Random selection
spreads measurement load (Holterbach et al.'s interference concern) and
lets probes fill in where anchors are sparse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..geo.countries import CONTINENTS
from ..netsim.atlas import AtlasConstellation, Landmark
from .base import GeolocationAlgorithm, Prediction
from .observations import RttObservation

#: A measurement callback: landmarks in, observations out.  Lets the same
#: driver serve direct clients (CLI tool) and proxied targets.
MeasureFn = Callable[[Sequence[Landmark]], List[RttObservation]]


@dataclass
class TwoPhaseResult:
    """Everything a two-phase run produced."""

    prediction: Prediction
    deduced_continent: str
    phase1_observations: List[RttObservation]
    phase2_observations: List[RttObservation]
    phase2_landmarks: List[str]


class TwoPhaseSelector:
    """Chooses phase-1 and phase-2 landmark sets from the constellation."""

    def __init__(self, atlas: AtlasConstellation,
                 anchors_per_continent: int = 3,
                 phase2_size: int = 25, seed: int = 0):
        if anchors_per_continent < 1:
            raise ValueError("need at least one phase-1 anchor per continent")
        if phase2_size < 3:
            raise ValueError("phase 2 needs at least three landmarks")
        self.atlas = atlas
        self.anchors_per_continent = anchors_per_continent
        self.phase2_size = phase2_size
        self._rng = np.random.default_rng(seed)
        self._pools: Dict[str, List[Landmark]] = {}
        self._continent_of: Dict[str, str] = {}
        topology = atlas.network.topology
        for lm in atlas.all_landmarks():
            self._continent_of[lm.name] = topology.city(lm.host.city_id).continent
        self._phase1 = self._pick_phase1()

    def _pick_phase1(self) -> List[Landmark]:
        chosen: List[Landmark] = []
        for continent in CONTINENTS:
            anchors = self.atlas.anchors_on_continent(continent)
            if not anchors:
                continue
            count = min(self.anchors_per_continent, len(anchors))
            indices = self._rng.choice(len(anchors), size=count, replace=False)
            chosen.extend(anchors[int(i)] for i in indices)
        if len(chosen) < 3:
            raise ValueError("constellation too sparse for phase 1")
        return chosen

    def phase1_landmarks(self) -> List[Landmark]:
        """The fixed phase-1 panel: a few anchors on every continent."""
        return list(self._phase1)

    def continent_of_landmark(self, name: str) -> str:
        return self._continent_of[name]

    def deduce_continent(self, observations: Sequence[RttObservation]) -> str:
        """The continent of the landmark with the fastest response.

        Nearest-landmark continent deduction is the paper's crude phase-1
        estimate; it only needs to be right at continental granularity.
        """
        if not observations:
            raise ValueError("no phase-1 observations")
        fastest = min(observations, key=lambda obs: obs.one_way_ms)
        return self._continent_of[fastest.landmark_name]

    def phase2_landmarks(self, continent: str,
                         rng: Optional[np.random.Generator] = None
                         ) -> List[Landmark]:
        """Random anchors + stable probes on the deduced continent."""
        rng = rng if rng is not None else self._rng
        pool = self._pools.get(continent)
        if pool is None:
            # The selector already snapshots landmark→continent at
            # construction; snapshot the per-continent pools the same way
            # instead of rescanning the constellation for every target.
            pool = self.atlas.landmarks_on_continent(continent)
            self._pools[continent] = pool
        if not pool:
            raise ValueError(f"no landmarks on continent {continent!r}")
        if len(pool) <= self.phase2_size:
            return list(pool)
        indices = rng.choice(len(pool), size=self.phase2_size, replace=False)
        return [pool[int(i)] for i in indices]


class TwoPhaseDriver:
    """Runs the full two-phase procedure against one target."""

    def __init__(self, selector: TwoPhaseSelector,
                 algorithm: GeolocationAlgorithm):
        self.selector = selector
        self.algorithm = algorithm

    def locate(self, measure: MeasureFn,
               rng: Optional[np.random.Generator] = None) -> TwoPhaseResult:
        """Measure, deduce the continent, measure again, multilaterate.

        Phase-1 observations from the deduced continent are reused in the
        final multilateration — they are valid measurements and cost
        nothing extra.
        """
        phase1 = measure(self.selector.phase1_landmarks())
        continent = self.selector.deduce_continent(phase1)
        phase2_landmarks = self.selector.phase2_landmarks(continent, rng)
        phase2 = measure(phase2_landmarks)
        reusable = [obs for obs in phase1
                    if self.selector.continent_of_landmark(obs.landmark_name)
                    == continent]
        prediction = self.algorithm.predict(list(phase2) + reusable)
        return TwoPhaseResult(
            prediction=prediction,
            deduced_continent=continent,
            phase1_observations=list(phase1),
            phase2_observations=list(phase2),
            phase2_landmarks=[lm.name for lm in phase2_landmarks],
        )
