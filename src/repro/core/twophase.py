"""The two-phase measurement procedure (section 4.1).

Pinging all ~250 anchors takes minutes and floods the target; instead the
paper first measures three anchors per continent, deduces the target's
continent from the fastest responses, then measures 25 randomly selected
landmarks (anchors + stable probes) on that continent.  Random selection
spreads measurement load (Holterbach et al.'s interference concern) and
lets probes fill in where anchors are sparse.

The driver degrades gracefully instead of raising when the measurement
substrate misbehaves: a failed phase-1 quorum widens phase 2 to adjacent
continents, a continent with no usable landmarks falls back the same way,
and a target that yields too few observations for multilateration gets an
explicitly *degraded* empty prediction rather than an exception — the
fleet audit must survive partial failure (§6's proxies that dropped
mid-campaign), not crash on it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set

import numpy as np

from ..geo.countries import CONTINENTS
from ..geo.region import Region
from ..netsim.atlas import AtlasConstellation, Landmark
from .base import GeolocationAlgorithm, Prediction
from .observations import RttObservation

#: A measurement callback: landmarks in, observations out.  Lets the same
#: driver serve direct clients (CLI tool) and proxied targets.  Under
#: fault injection the returned list may be *shorter* than the request —
#: unresponsive landmarks simply yield nothing.
MeasureFn = Callable[[Sequence[Landmark]], List[RttObservation]]

#: Observations phase 1 must produce before its continent deduction is
#: trusted; below this the driver widens phase 2 and marks the result
#: degraded.
PHASE1_QUORUM = 3

#: Observations multilateration needs; below this the prediction is an
#: (empty, degraded) region instead of a raise.
MIN_MULTILATERATION_OBSERVATIONS = 3

#: Which continents to widen into when a deduced continent cannot carry a
#: phase-2 panel on its own.  Geographic neighbours: a target near a
#: continent boundary is the common cause of a marginal phase-1 quorum.
CONTINENT_ADJACENCY: Dict[str, List[str]] = {
    "EU": ["AS", "AF", "NA"],
    "NA": ["CA", "EU", "AS"],
    "CA": ["NA", "SA"],
    "SA": ["CA", "AF", "NA"],
    "AF": ["EU", "AS", "SA"],
    "AS": ["EU", "AF", "OC"],
    "OC": ["AU", "AS"],
    "AU": ["OC", "AS"],
}


class NoLandmarksAvailable(ValueError):
    """A continent has no usable landmarks to build a phase-2 panel from."""

    def __init__(self, continent: str):
        super().__init__(
            f"no landmarks available on continent {continent!r}")
        self.continent = continent


@dataclass
class TwoPhaseResult:
    """Everything a two-phase run produced."""

    prediction: Prediction
    deduced_continent: str
    phase1_observations: List[RttObservation]
    phase2_observations: List[RttObservation]
    phase2_landmarks: List[str]
    #: True when any fallback fired: quorum failure, continental
    #: widening, or an unlocatable (empty) prediction.
    degraded: bool = False
    #: Human-readable trail of what went wrong and what the driver did.
    notes: List[str] = field(default_factory=list)


@dataclass
class TwoPhaseMeasurement:
    """The measurement half of a two-phase run, before multilateration.

    :meth:`TwoPhaseDriver.collect` produces one of these — it consumes
    every RNG draw the run will ever make — and
    :meth:`TwoPhaseDriver.finish` turns it into a :class:`TwoPhaseResult`
    without touching any random stream.  The split is what lets the
    fleet audit engine collect a whole batch of per-server measurements
    first (in per-``(seed, host_id)`` stream order) and multilaterate
    them all in one vectorised pass afterwards.
    """

    #: Combined multilateration input: phase-2 observations followed by
    #: the reusable phase-1 observations, in measurement order.
    observations: List[RttObservation]
    deduced_continent: str
    phase1_observations: List[RttObservation]
    phase2_observations: List[RttObservation]
    phase2_landmarks: List[str]
    degraded: bool = False
    notes: List[str] = field(default_factory=list)


class TwoPhaseSelector:
    """Chooses phase-1 and phase-2 landmark sets from the constellation."""

    def __init__(self, atlas: AtlasConstellation,
                 anchors_per_continent: int = 3,
                 phase2_size: int = 25, seed: int = 0):
        if anchors_per_continent < 1:
            raise ValueError("need at least one phase-1 anchor per continent")
        if phase2_size < 3:
            raise ValueError("phase 2 needs at least three landmarks")
        self.atlas = atlas
        self.anchors_per_continent = anchors_per_continent
        self.phase2_size = phase2_size
        self._rng = np.random.default_rng(seed)
        self._pools: Dict[str, List[Landmark]] = {}
        self._continent_of: Dict[str, str] = {}
        topology = atlas.network.topology
        for lm in atlas.all_landmarks():
            self._continent_of[lm.name] = topology.city(lm.host.city_id).continent
        self._phase1 = self._pick_phase1()

    def _pick_phase1(self) -> List[Landmark]:
        chosen: List[Landmark] = []
        for continent in CONTINENTS:
            anchors = self.atlas.anchors_on_continent(continent)
            if not anchors:
                continue
            count = min(self.anchors_per_continent, len(anchors))
            indices = self._rng.choice(len(anchors), size=count, replace=False)
            chosen.extend(anchors[int(i)] for i in indices)
        if len(chosen) < 3:
            raise ValueError("constellation too sparse for phase 1")
        return chosen

    def phase1_landmarks(self) -> List[Landmark]:
        """The fixed phase-1 panel: a few anchors on every continent."""
        return list(self._phase1)

    def continent_of_landmark(self, name: str) -> str:
        return self._continent_of[name]

    def deduce_continent(self, observations: Sequence[RttObservation]) -> str:
        """The continent of the landmark with the fastest response.

        Nearest-landmark continent deduction is the paper's crude phase-1
        estimate; it only needs to be right at continental granularity.
        """
        if not observations:
            raise ValueError("no phase-1 observations")
        fastest = min(observations, key=lambda obs: obs.one_way_ms)
        return self._continent_of[fastest.landmark_name]

    def phase2_landmarks(self, continent: str,
                         rng: Optional[np.random.Generator] = None
                         ) -> List[Landmark]:
        """Random anchors + stable probes on the deduced continent.

        Raises :class:`NoLandmarksAvailable` (naming the continent) when
        the pool is empty, so callers can widen instead of silently
        measuring nothing.
        """
        rng = rng if rng is not None else self._rng
        pool = self._pools.get(continent)
        if pool is None:
            # The selector already snapshots landmark→continent at
            # construction; snapshot the per-continent pools the same way
            # instead of rescanning the constellation for every target.
            pool = self.atlas.landmarks_on_continent(continent)
            self._pools[continent] = pool
        if not pool:
            raise NoLandmarksAvailable(continent)
        if len(pool) <= self.phase2_size:
            return list(pool)
        indices = rng.choice(len(pool), size=self.phase2_size, replace=False)
        return [pool[int(i)] for i in indices]


class TwoPhaseDriver:
    """Runs the full two-phase procedure against one target."""

    def __init__(self, selector: TwoPhaseSelector,
                 algorithm: GeolocationAlgorithm):
        self.selector = selector
        self.algorithm = algorithm

    def _phase2_panel(self, continent: Optional[str], widen: bool,
                      rng: Optional[np.random.Generator],
                      notes: List[str],
                      exclude: Set[str] = frozenset()) -> List[Landmark]:
        """The phase-2 landmark panel, optionally widened.

        ``widen`` adds the adjacent continents' pools (or, with no
        deduced continent at all, every continent's) to the deduced
        continent's own — deduplicated, minus ``exclude``.
        """
        continents: List[str] = [continent] if continent is not None else []
        if widen:
            if continent is None:
                continents = list(CONTINENTS)
            else:
                continents += CONTINENT_ADJACENCY.get(continent, [])
        panel: List[Landmark] = []
        seen: Set[str] = set(exclude)
        for cont in continents:
            try:
                picks = self.selector.phase2_landmarks(cont, rng)
            except NoLandmarksAvailable:
                notes.append(f"no landmarks on continent {cont!r}; skipped")
                continue
            for lm in picks:
                if lm.name not in seen:
                    seen.add(lm.name)
                    panel.append(lm)
        return panel

    def collect(self, measure: MeasureFn,
                rng: Optional[np.random.Generator] = None
                ) -> TwoPhaseMeasurement:
        """Run both measurement phases; defer the multilateration.

        Consumes exactly the RNG draws :meth:`locate` would — panel
        selection, widening, every probe — and returns the combined
        observation list plus all degradation bookkeeping.  Pair with
        :meth:`finish` (which draws nothing) to complete the run.
        """
        degraded = False
        notes: List[str] = []
        panel = self.selector.phase1_landmarks()
        phase1 = measure(panel)
        if len(phase1) < len(panel):
            notes.append(f"phase1: {len(panel) - len(phase1)} of "
                         f"{len(panel)} landmarks unresponsive")
        widen = False
        continent: Optional[str] = None
        if not phase1:
            degraded = True
            widen = True
            notes.append("phase1 produced no observations; "
                         "falling back to a global panel")
        else:
            continent = self.selector.deduce_continent(phase1)
            if len(phase1) < PHASE1_QUORUM:
                degraded = True
                widen = True
                notes.append(f"phase1 quorum failed ({len(phase1)} < "
                             f"{PHASE1_QUORUM}); widening to continents "
                             f"adjacent to {continent}")

        phase2_landmarks = self._phase2_panel(continent, widen, rng, notes)
        phase2 = list(measure(phase2_landmarks)) if phase2_landmarks else []
        if widen or continent is None:
            # A widened panel spans continents; every phase-1 measurement
            # is in scope for the final multilateration.
            reusable = list(phase1)
        else:
            reusable = [obs for obs in phase1
                        if self.selector.continent_of_landmark(
                            obs.landmark_name) == continent]

        combined = phase2 + reusable
        if (len(combined) < MIN_MULTILATERATION_OBSERVATIONS and not widen
                and continent is not None):
            # The deduced continent could not carry the measurement —
            # dead landmarks, lost probes.  Fall back to the remaining
            # anchors next door before giving up.
            degraded = True
            notes.append(f"only {len(combined)} observations from "
                         f"{continent}; widening to adjacent continents")
            measured = {lm.name for lm in phase2_landmarks}
            extra_panel = self._phase2_panel(continent, True, rng, notes,
                                             exclude=measured)
            if extra_panel:
                extra = list(measure(extra_panel))
                phase2 += extra
                phase2_landmarks = list(phase2_landmarks) + extra_panel
                combined = phase2 + list(phase1)

        if len(combined) < MIN_MULTILATERATION_OBSERVATIONS:
            degraded = True
            notes.append(f"{len(combined)} observations after every "
                         "fallback; target unlocatable")

        if continent is None and combined:
            continent = self.selector.continent_of_landmark(
                min(combined, key=lambda obs: obs.one_way_ms).landmark_name)
        return TwoPhaseMeasurement(
            observations=combined,
            deduced_continent=continent if continent is not None else "unknown",
            phase1_observations=list(phase1),
            phase2_observations=list(phase2),
            phase2_landmarks=[lm.name for lm in phase2_landmarks],
            degraded=degraded,
            notes=notes,
        )

    def finish(self, measurement: TwoPhaseMeasurement,
               prediction: Optional[Prediction] = None) -> TwoPhaseResult:
        """Multilaterate a collected measurement into a full result.

        Draws no randomness, so it can run at any time after
        :meth:`collect` — immediately (the per-server engine) or after a
        whole fleet's measurements are in (the vectorised engine, which
        passes the batched ``prediction`` in explicitly).
        """
        if prediction is None:
            observations = measurement.observations
            if len(observations) >= MIN_MULTILATERATION_OBSERVATIONS:
                prediction = self.algorithm.predict(observations)
            else:
                prediction = Prediction(
                    algorithm=self.algorithm.name,
                    region=Region.empty(self.algorithm.grid))
        return TwoPhaseResult(
            prediction=prediction,
            deduced_continent=measurement.deduced_continent,
            phase1_observations=measurement.phase1_observations,
            phase2_observations=measurement.phase2_observations,
            phase2_landmarks=measurement.phase2_landmarks,
            degraded=measurement.degraded,
            notes=measurement.notes,
        )

    def locate(self, measure: MeasureFn,
               rng: Optional[np.random.Generator] = None) -> TwoPhaseResult:
        """Measure, deduce the continent, measure again, multilaterate.

        Phase-1 observations from the deduced continent are reused in the
        final multilateration — they are valid measurements and cost
        nothing extra.  Partial failure degrades the result (widened
        panels, at worst an empty prediction) instead of raising; the
        ``degraded`` flag and ``notes`` record what happened.
        """
        return self.finish(self.collect(measure, rng))
