"""Constraint-Based Geolocation (Gueye et al. 2004), as re-implemented
by the paper.

For every landmark, the one-way delay is converted to a maximum distance
via the landmark's *bestline*; the target must lie inside the resulting
disk.  The prediction is the intersection of all disks, clipped to
plausible terrain.  CBG assumes no minimum travel speed, and it uses only
the fastest observation per landmark — two properties that make it
unexpectedly robust to the noisy, upward-biased measurements of global
proxy geolocation.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..geodesy.constants import BASELINE_SPEED_KM_PER_MS, MAX_SURFACE_DISTANCE_KM
from .base import GeolocationAlgorithm, Prediction
from .multilateration import DiskConstraint, intersect_disk_fields
from .observations import RttObservation


class CBG(GeolocationAlgorithm):
    """Plain CBG: bestline disks, hard intersection."""

    name = "cbg"

    #: Whether bestlines are constrained by the CBG++ slowline; plain CBG
    #: is not.
    apply_slowline = False

    # -- vectorised radius computation ---------------------------------------

    def _bestline_coefficients(self, names: Sequence[str]
                               ) -> Tuple[np.ndarray, np.ndarray]:
        """Stacked (slopes, intercepts) of the named landmarks' bestlines.

        Cached per landmark panel: an audit re-measures the same landmark
        sets for every server, and the per-observation Python loop over
        calibration objects was a measurable slice of each prediction.
        """
        cache: Dict[tuple, Tuple[np.ndarray, np.ndarray]]
        cache = self.__dict__.setdefault("_bestline_coef_cache", {})
        key = tuple(names)
        entry = cache.get(key)
        if entry is None:
            lines = [self.calibrations.cbg(
                name, apply_slowline=self.apply_slowline).bestline
                for name in names]
            entry = (np.array([line.slope for line in lines]),
                     np.array([line.intercept for line in lines]))
            if len(cache) >= 64:
                cache.pop(next(iter(cache)))
            cache[key] = entry
        return entry

    def disk_radii_km(self, names: Sequence[str],
                      one_way_ms: np.ndarray) -> np.ndarray:
        """Bestline disk radii for a whole observation panel at once.

        Identical, float-for-float, to calling
        ``calibration.max_distance_km`` per landmark and applying the
        grid floor.
        """
        if (one_way_ms < 0).any():
            raise ValueError("negative delay in observations")
        slopes, intercepts = self._bestline_coefficients(names)
        radii = np.minimum(
            np.maximum(0.0, (one_way_ms - intercepts) / slopes),
            MAX_SURFACE_DISTANCE_KM)
        return np.maximum(radii, self.min_disk_radius_km())

    def baseline_radii_km(self, one_way_ms: np.ndarray) -> np.ndarray:
        """Physical-baseline (200 km/ms) radii for a whole panel at once."""
        if (one_way_ms < 0).any():
            raise ValueError("negative delay in observations")
        radii = np.minimum(one_way_ms * BASELINE_SPEED_KM_PER_MS,
                           MAX_SURFACE_DISTANCE_KM)
        return np.maximum(radii, self.min_disk_radius_km())

    def min_disk_radius_km(self) -> float:
        """Floor on disk radii: 1.5 analysis-grid cells.

        A disk smaller than a grid cell cannot be represented on the
        raster; without the floor, a very fast measurement from a
        co-located landmark collapses its disk to (at most) one slightly
        misplaced cell and evicts the true location by quantisation
        alone.  The floor only *widens* constraints, which is the safe
        direction for this audit.
        """
        return 1.5 * self.grid.resolution_deg * 111.2

    def disks(self, observations: Sequence[RttObservation]) -> List[DiskConstraint]:
        """The per-landmark disk constraints (exposed for analysis)."""
        floor = self.min_disk_radius_km()
        constraints = []
        for obs in observations:
            calibration = self.calibrations.cbg(
                obs.landmark_name, apply_slowline=self.apply_slowline)
            constraints.append(DiskConstraint(
                landmark_name=obs.landmark_name,
                lat=obs.lat,
                lon=obs.lon,
                radius_km=max(calibration.max_distance_km(obs.one_way_ms),
                              floor),
            ))
        return constraints

    def predict(self, observations: Sequence[RttObservation]) -> Prediction:
        observations = self._prepare(observations)
        # Radii straight from the vectorised panel lookup (float-identical
        # to building DiskConstraint objects one calibration at a time);
        # the kernel emits the intersection in the engine's native
        # representation — packed words by default.
        names = [obs.landmark_name for obs in observations]
        delays = np.array([obs.one_way_ms for obs in observations])
        region = intersect_disk_fields(
            self.grid,
            [obs.lat for obs in observations],
            [obs.lon for obs in observations],
            self.disk_radii_km(names, delays))
        return Prediction(
            algorithm=self.name,
            region=self._clip(region),
            used_landmarks=names,
        )
