"""Constraint-Based Geolocation (Gueye et al. 2004), as re-implemented
by the paper.

For every landmark, the one-way delay is converted to a maximum distance
via the landmark's *bestline*; the target must lie inside the resulting
disk.  The prediction is the intersection of all disks, clipped to
plausible terrain.  CBG assumes no minimum travel speed, and it uses only
the fastest observation per landmark — two properties that make it
unexpectedly robust to the noisy, upward-biased measurements of global
proxy geolocation.
"""

from __future__ import annotations

from typing import List, Sequence

from .base import GeolocationAlgorithm, Prediction
from .multilateration import DiskConstraint, intersect_disks
from .observations import RttObservation


class CBG(GeolocationAlgorithm):
    """Plain CBG: bestline disks, hard intersection."""

    name = "cbg"

    #: Whether bestlines are constrained by the CBG++ slowline; plain CBG
    #: is not.
    apply_slowline = False

    def min_disk_radius_km(self) -> float:
        """Floor on disk radii: 1.5 analysis-grid cells.

        A disk smaller than a grid cell cannot be represented on the
        raster; without the floor, a very fast measurement from a
        co-located landmark collapses its disk to (at most) one slightly
        misplaced cell and evicts the true location by quantisation
        alone.  The floor only *widens* constraints, which is the safe
        direction for this audit.
        """
        return 1.5 * self.grid.resolution_deg * 111.2

    def disks(self, observations: Sequence[RttObservation]) -> List[DiskConstraint]:
        """The per-landmark disk constraints (exposed for analysis)."""
        floor = self.min_disk_radius_km()
        constraints = []
        for obs in observations:
            calibration = self.calibrations.cbg(
                obs.landmark_name, apply_slowline=self.apply_slowline)
            constraints.append(DiskConstraint(
                landmark_name=obs.landmark_name,
                lat=obs.lat,
                lon=obs.lon,
                radius_km=max(calibration.max_distance_km(obs.one_way_ms),
                              floor),
            ))
        return constraints

    def predict(self, observations: Sequence[RttObservation]) -> Prediction:
        observations = self._prepare(observations)
        region = intersect_disks(self.grid, self.disks(observations))
        return Prediction(
            algorithm=self.name,
            region=self._clip(region),
            used_landmarks=[obs.landmark_name for obs in observations],
        )
