"""Resolving uncertain predictions with side information (section 6).

Two techniques, applied in order:

1. **Data centres** (Figure 15).  A prediction region covering several
   countries, only one of which contains any known data centre, pins the
   proxy to that country — proxies live in data centres.

2. **Network metadata** (Figure 16).  Proxies sharing a provider, an AS,
   and a /24 prefix are "practically certain to be in the same data
   centre".  If one country is covered by *every* region in such a group,
   all of the group's proxies are ascribed to it.

Both refinements convert ``UNCERTAIN`` verdicts into ``CREDIBLE`` or
``FALSE``; the paper reclassified 353 of its 642 uncertain cases this way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..geo.datacenters import DataCenterRegistry
from ..geo.region import Region
from ..geo.worldmap import WorldMap
from ..netsim.proxies import ProxyServer
from .assessment import ClaimAssessment, Verdict


@dataclass
class AuditRecord:
    """One proxy's full audit state: server, prediction region, assessment."""

    server: ProxyServer
    region: Region
    assessment: ClaimAssessment
    #: Verdict before any disambiguation, for the "no DCs" comparison row.
    initial_verdict: Optional[Verdict] = None
    #: Landmark observations the prediction was computed from (kept so the
    #: ICLab checker and the landmark-effectiveness analyses can reuse the
    #: same measurements instead of re-probing).
    observations: List = None
    #: Names of the phase-2 landmarks used.
    landmark_names: List[str] = None
    #: True when the measurement degraded (retries exhausted, widened
    #: panels, or an unlocatable target) instead of completing cleanly.
    degraded: bool = False
    #: Driver/measurer notes describing the degradation, empty otherwise.
    failure_notes: List[str] = field(default_factory=list)


def metadata_group_key(server: ProxyServer) -> Tuple[str, int, str]:
    """Servers sharing this key are assumed co-located (same DC)."""
    return (server.provider, server.asn, server.prefix)


def group_by_metadata(records: Sequence[AuditRecord]
                      ) -> Dict[Tuple[str, int, str], List[AuditRecord]]:
    groups: Dict[Tuple[str, int, str], List[AuditRecord]] = {}
    for record in records:
        groups.setdefault(metadata_group_key(record.server), []).append(record)
    return groups


def _reclassify(assessment: ClaimAssessment, resolved_country: str,
                method: str) -> None:
    """Rewrite an uncertain verdict once the true country is pinned down."""
    assessment.resolved_country = resolved_country
    assessment.resolution_method = method
    assessment.verdict = (Verdict.CREDIBLE
                          if resolved_country == assessment.claimed_country
                          else Verdict.FALSE)


def disambiguate_by_datacenters(records: Sequence[AuditRecord],
                                datacenters: DataCenterRegistry) -> int:
    """Apply the data-centre heuristic to every uncertain record.

    Returns the number of records reclassified.
    """
    reclassified = 0
    for record in records:
        if record.assessment.verdict is not Verdict.UNCERTAIN:
            continue
        dc_countries = datacenters.countries_with_dc_in_region(record.region)
        if len(dc_countries) == 1:
            _reclassify(record.assessment, dc_countries[0], "datacenter")
            reclassified += 1
    return reclassified


def disambiguate_by_metadata(records: Sequence[AuditRecord],
                             worldmap: WorldMap) -> int:
    """Apply the shared-prefix heuristic to co-located proxy groups.

    For each metadata group of at least two proxies, compute the set of
    countries covered by *every* member's region.  If exactly one country
    survives, every still-uncertain member is ascribed to it.

    Returns the number of records reclassified.
    """
    reclassified = 0
    for group in group_by_metadata(records).values():
        if len(group) < 2:
            continue
        common: Optional[set] = None
        for record in group:
            covered = set(record.assessment.countries_covered)
            common = covered if common is None else (common & covered)
            if not common:
                break
        if not common or len(common) != 1:
            continue
        resolved = next(iter(common))
        for record in group:
            if record.assessment.verdict is Verdict.UNCERTAIN:
                _reclassify(record.assessment, resolved, "metadata")
                reclassified += 1
    return reclassified


def refine_assessments(records: Sequence[AuditRecord],
                       datacenters: DataCenterRegistry,
                       worldmap: WorldMap) -> Dict[str, int]:
    """Run both disambiguation passes; return reclassification counts."""
    by_datacenter = disambiguate_by_datacenters(records, datacenters)
    by_metadata = disambiguate_by_metadata(records, worldmap)
    return {
        "datacenter": by_datacenter,
        "metadata": by_metadata,
        "total": by_datacenter + by_metadata,
    }
