"""Quasi-Octant (Wong et al. 2007, minus the traceroute features).

Octant draws a *ring* per landmark — both a maximum and a minimum
distance, from piecewise-linear convex-hull delay models — and intersects
the rings.  The original's route-trace "height" correction cannot be
computed through proxies that drop time-exceeded packets, so, like the
paper, we omit it and call the result Quasi-Octant.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from .base import GeolocationAlgorithm, Prediction
from .fleetpanel import build_fleet_panel
from .multilateration import RingConstraint, mode_region_from_votes
from .observations import RttObservation


class QuasiOctant(GeolocationAlgorithm):
    """Ring multilateration with convex-hull delay models.

    Rings combine with Octant's weight-based scheme (each ring votes for
    the cells it covers; the prediction is the top-voted area), which
    reduces to pure intersection when the rings are consistent.
    """

    name = "quasi-octant"

    def rings(self, observations: Sequence[RttObservation]) -> List[RingConstraint]:
        """The per-landmark ring constraints (exposed for analysis).

        Radii come from the calibrations' batched curve lookups — one
        ``searchsorted`` pass per landmark model instead of a Python
        scan per observation, bit-identical to the scalar methods.
        """
        observations = list(observations)
        outer = np.empty(len(observations))
        inner = np.empty(len(observations))
        by_landmark: Dict[str, List[int]] = {}
        for at, obs in enumerate(observations):
            by_landmark.setdefault(obs.landmark_name, []).append(at)
        for name, positions in by_landmark.items():
            calibration = self.calibrations.octant(name)
            delays = np.array([observations[at].one_way_ms
                               for at in positions])
            outer[positions] = calibration.max_distance_km_vec(delays)
            inner[positions] = calibration.min_distance_km_vec(delays)
        return [RingConstraint(
            landmark_name=obs.landmark_name,
            lat=obs.lat,
            lon=obs.lon,
            inner_km=min(float(inner[at]), float(outer[at])),
            outer_km=float(outer[at]),
        ) for at, obs in enumerate(observations)]

    def predict(self, observations: Sequence[RttObservation]) -> Prediction:
        observations = self._prepare(observations)
        rings = self.rings(observations)
        # The bank accumulates the votes ring by ring (integer addition
        # is exact, so this equals summing the full mask matrix) without
        # ever materialising the (k, n_cells) boolean matrix.
        votes = self.grid.bank.ring_votes(
            [r.lat for r in rings], [r.lon for r in rings],
            [r.inner_km for r in rings], [r.outer_km for r in rings])
        region = mode_region_from_votes(
            self.grid, votes, base_mask=self.worldmap.plausibility_mask)
        return Prediction(
            algorithm=self.name,
            region=self._clip(region),
            used_landmarks=[obs.landmark_name for obs in observations],
        )

    def predict_fleet(self, fleets: Sequence[Sequence[RttObservation]]
                      ) -> List[Prediction]:
        """Ring votes for every server of a fleet in one bank sweep.

        Bit-identical to the per-server loop: vote counts are exact
        integer sums, and padded slots carry ``+inf`` rings that cover
        no cell.
        """
        prepared = [self._prepare(panel) for panel in fleets]
        if not prepared:
            return []
        panel = build_fleet_panel(self.grid.bank, prepared)
        fleet_rings = [self.rings(observations) for observations in prepared]
        inner = panel.pad_radii([
            np.array([ring.inner_km for ring in rings], dtype=np.float32)
            for rings in fleet_rings])
        outer = panel.pad_radii([
            np.array([ring.outer_km for ring in rings], dtype=np.float32)
            for rings in fleet_rings])
        votes = self.grid.bank.ring_votes_fleet(panel.rows, inner, outer)
        return [Prediction(
            algorithm=self.name,
            region=self._clip(mode_region_from_votes(
                self.grid, votes[s],
                base_mask=self.worldmap.plausibility_mask)),
            used_landmarks=[obs.landmark_name for obs in observations],
        ) for s, observations in enumerate(prepared)]
