"""The measurement abstraction consumed by every geolocation algorithm.

An :class:`RttObservation` is one landmark's contribution: the landmark's
known coordinates plus the best (minimum) *one-way* delay attributed to
the landmark→target path.  Producing those one-way delays — halving raw
RTTs, or subtracting the client→proxy leg for tunnelled measurements — is
the job of the measurement drivers, not the algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence

from ..geodesy.greatcircle import validate_latlon


@dataclass(frozen=True)
class RttObservation:
    """One landmark's minimum one-way delay to the target."""

    landmark_name: str
    lat: float
    lon: float
    one_way_ms: float

    def __post_init__(self) -> None:
        validate_latlon(self.lat, self.lon)
        if self.one_way_ms < 0:
            raise ValueError(
                f"{self.landmark_name}: negative one-way delay {self.one_way_ms!r}")


def merge_min(observations: Iterable[RttObservation]) -> List[RttObservation]:
    """Collapse repeated observations per landmark, keeping the minimum.

    Geolocation algorithms want one number per landmark (the fastest
    observed exchange); measurement drivers may probe a landmark several
    times.
    """
    best: dict = {}
    for obs in observations:
        current = best.get(obs.landmark_name)
        if current is None or obs.one_way_ms < current.one_way_ms:
            best[obs.landmark_name] = obs
    return list(best.values())


def require_observations(observations: Sequence[RttObservation],
                         minimum: int = 3) -> None:
    """Raise if there are too few landmarks to multilaterate."""
    if len(observations) < minimum:
        raise ValueError(
            f"need at least {minimum} landmark observations, got {len(observations)}")
