"""The paper's Quasi-Octant/Spotter hybrid.

Separates Spotter's two ideas: its cubic-polynomial delay model is kept,
but its probabilistic combination is replaced by Quasi-Octant's hard ring
intersection, with ring radii at μ ± 5σ.  Comparing Hybrid against both
parents isolates which component (model vs. multilateration) drives
Spotter's behaviour.
"""

from __future__ import annotations

from typing import List, Sequence

from .base import GeolocationAlgorithm, Prediction
from .multilateration import RingConstraint, mode_region_from_votes
from .observations import RttObservation


class OctantSpotterHybrid(GeolocationAlgorithm):
    """Spotter's delay model inside Quasi-Octant's ring multilateration."""

    name = "hybrid"

    #: Ring half-width in standard deviations (the paper uses ±5σ).
    n_sigma = 5.0

    def rings(self, observations: Sequence[RttObservation]) -> List[RingConstraint]:
        """The per-landmark rings at μ ± 5σ (exposed for analysis)."""
        calibration = self.calibrations.spotter()
        constraints = []
        for obs in observations:
            mu, sigma = calibration.mu_sigma(obs.one_way_ms)
            constraints.append(RingConstraint(
                landmark_name=obs.landmark_name,
                lat=obs.lat,
                lon=obs.lon,
                inner_km=max(0.0, mu - self.n_sigma * sigma),
                outer_km=mu + self.n_sigma * sigma,
            ))
        return constraints

    def predict(self, observations: Sequence[RttObservation]) -> Prediction:
        observations = self._prepare(observations)
        rings = self.rings(observations)
        # Ring-by-ring vote accumulation: exact (integer addition) and
        # free of the (k, n_cells) boolean matrix.
        votes = self.grid.bank.ring_votes(
            [r.lat for r in rings], [r.lon for r in rings],
            [r.inner_km for r in rings], [r.outer_km for r in rings])
        region = mode_region_from_votes(
            self.grid, votes, base_mask=self.worldmap.plausibility_mask)
        return Prediction(
            algorithm=self.name,
            region=self._clip(region),
            used_landmarks=[obs.landmark_name for obs in observations],
        )
