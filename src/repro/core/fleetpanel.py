"""Fleet observation panels: stacked matrix views of per-server panels.

A fleet audit holds one observation panel per server — a ragged list of
:class:`~repro.core.observations.RttObservation` whose landmark sets
heavily overlap across servers (the two-phase driver draws them from the
same atlas).  The vectorised multilateration engines want the whole
audit as dense ``(n_servers, k_max)`` matrices instead: one bank row
index and one radius per (server, landmark-slot), so a single sweep over
the :class:`~repro.geo.bank.DistanceBank` block aggregates settles every
server at once.

The padding convention that makes ragged fleets rectangular without any
masking logic: absent slots repeat the server's *first* bank row (always
a valid row) and carry ``+inf`` radii.  A disk of infinite radius covers
every cell, so it never constrains an AND; an infinite ring covers no
cell, so it never adds a vote.  Either way the padded slot is inert and
the fleet result is bit-identical, server for server, to the scalar
kernels.

Bank row indices are only stable until the next eviction, so a panel
must be consumed promptly: resolve, sweep, discard.  The builders here
resolve all rows with a single :meth:`~repro.geo.bank.DistanceBank.rows`
call, which also batches any cache fills into one haversine sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..geo.bank import DistanceBank
from .observations import RttObservation

__all__ = ["FleetPanel", "build_fleet_panel"]


@dataclass(frozen=True)
class FleetPanel:
    """Dense matrix view over one fleet's per-server observation panels.

    ``rows[s, i]`` is the bank row of server ``s``'s ``i``-th landmark
    for ``i < counts[s]``, and a repeat of ``rows[s, 0]`` beyond (pair it
    with ``+inf`` via :meth:`pad_radii` so the slot is inert).
    """

    observations: Tuple[Tuple[RttObservation, ...], ...]
    rows: np.ndarray        # (n_servers, k_max) intp bank row indices
    counts: np.ndarray      # (n_servers,) panel lengths
    k_max: int

    @property
    def n_servers(self) -> int:
        return len(self.observations)

    def pad_radii(self, per_server: Sequence[np.ndarray],
                  fill: float = np.inf) -> np.ndarray:
        """Stack ragged per-server radius vectors into ``(n_servers,
        k_max)`` float32, padding absent slots with ``fill``."""
        if len(per_server) != self.n_servers:
            raise ValueError(
                f"{len(per_server)} radius vectors for "
                f"{self.n_servers} servers")
        out = np.full((self.n_servers, self.k_max), fill, dtype=np.float32)
        for s, radii in enumerate(per_server):
            if len(radii) != int(self.counts[s]):
                raise ValueError(
                    f"server {s}: {len(radii)} radii for "
                    f"{int(self.counts[s])} observations")
            out[s, :len(radii)] = radii
        return out


def build_fleet_panel(bank: DistanceBank,
                      per_server: Sequence[Sequence[RttObservation]]
                      ) -> FleetPanel:
    """Assemble a :class:`FleetPanel` from per-server observation panels.

    Every panel must be non-empty — callers route observation-starved
    (degraded) servers through the scalar pipeline, which is the one
    place that knows how to report them.
    """
    panels = tuple(tuple(obs) for obs in per_server)
    counts = np.array([len(panel) for panel in panels], dtype=np.intp)
    if len(panels) == 0:
        raise ValueError("empty fleet")
    if (counts == 0).any():
        empty = int(np.flatnonzero(counts == 0)[0])
        raise ValueError(
            f"server {empty} has no observations; degraded servers "
            "belong on the per-server path")
    k_max = int(counts.max())
    lats: List[float] = []
    lons: List[float] = []
    for panel in panels:
        lats.extend(obs.lat for obs in panel)
        lons.extend(obs.lon for obs in panel)
    flat_rows = bank.rows(lats, lons)
    rows = np.empty((len(panels), k_max), dtype=np.intp)
    offset = 0
    for s, count in enumerate(counts):
        server_rows = flat_rows[offset:offset + count]
        rows[s, :count] = server_rows
        rows[s, count:] = server_rows[0]
        offset += int(count)
    return FleetPanel(observations=panels, rows=rows,
                      counts=counts, k_max=k_max)
