"""A shared, strictly-typed bounded LRU cache.

One implementation backs every long-lived cache in the reproduction —
the memoised figure audit (:func:`repro.experiments.cached_audit`) and
the verdict service's :class:`~repro.service.verdict.VerdictCache` — so
hit/miss/eviction accounting, eviction order, and the
``cache_info()``/``cache_clear()`` wrapper API cannot drift between
call sites.

Design constraints the call sites impose:

* **bounded**: every instance declares ``maxsize`` up front; inserting
  past it evicts the least-recently-used entry (and counts it).  An
  unbounded cache in a long-running service is a slow memory leak —
  reprolint R009 exists to keep raw dict/queue growth out of the
  service modules, and this class is the sanctioned replacement.
* **observable**: :meth:`cache_info` mirrors
  :func:`functools.lru_cache`'s ``CacheInfo`` (plus an ``evictions``
  field) so benchmarks can prove cache effectiveness, and
  :meth:`cache_clear` resets entries and counters together.
* **deterministic**: no clocks, no weights — recency is the only
  eviction signal, so cache behaviour is a pure function of the access
  sequence.

The class is deliberately not thread-safe: both call sites access it
from one thread (the audit path serially; the service from its single
batcher), and a lock here would tax the warm-hit fast path.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, List, NamedTuple, Optional, Tuple, TypeVar

K = TypeVar("K")
V = TypeVar("V")


class CacheInfo(NamedTuple):
    """One cache's counters, in ``functools.lru_cache`` field order."""

    hits: int
    misses: int
    maxsize: int
    currsize: int
    #: Entries dropped to stay under ``maxsize`` (not counting clears).
    evictions: int


class LruCache(Generic[K, V]):
    """A bounded least-recently-used mapping with hit/miss accounting."""

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._entries: "OrderedDict[K, V]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: K) -> bool:
        """Membership test; touches neither counters nor recency."""
        return key in self._entries

    def get(self, key: K) -> Optional[V]:
        """The cached value (now most recently used), or None; counted."""
        value = self._entries.get(key)
        if value is None:
            self._misses += 1
            return None
        self._hits += 1
        self._entries.move_to_end(key)
        return value

    def peek(self, key: K) -> Optional[V]:
        """Like :meth:`get` but touches neither counters nor recency."""
        return self._entries.get(key)

    def put(self, key: K, value: V) -> None:
        """Insert or refresh an entry, evicting LRU entries past maxsize."""
        if key in self._entries:
            self._entries[key] = value
            self._entries.move_to_end(key)
            return
        self._entries[key] = value
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self._evictions += 1

    def pop(self, key: K) -> Optional[V]:
        """Remove and return an entry (None if absent); not counted."""
        return self._entries.pop(key, None)

    def items(self) -> List[Tuple[K, V]]:
        """A snapshot of (key, value) pairs, least recently used first.

        A materialised copy, so callers may mutate the cache while
        iterating — the epoch-roll carry-forward scan depends on that.
        """
        return list(self._entries.items())

    def cache_info(self) -> CacheInfo:
        return CacheInfo(hits=self._hits, misses=self._misses,
                         maxsize=self.maxsize, currsize=len(self._entries),
                         evictions=self._evictions)

    def cache_clear(self) -> None:
        """Drop every entry and reset all counters."""
        self._entries.clear()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
