"""Spherical shapes used by the multilateration engines.

A :class:`SphericalDisk` is the locus of points within ``radius_km`` of a
centre — what CBG draws per landmark.  A :class:`SphericalRing` adds an
inner radius — what Quasi-Octant and the Hybrid draw.  Shapes know how to
test points (scalar and vectorised) and report their analytic area, which
the tests use to cross-check the grid raster's area estimates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .constants import EARTH_RADIUS_KM, MAX_SURFACE_DISTANCE_KM
from .greatcircle import haversine_km, haversine_km_vec, validate_latlon


@dataclass(frozen=True)
class SphericalDisk:
    """All points within ``radius_km`` great-circle distance of the centre."""

    lat: float
    lon: float
    radius_km: float

    def __post_init__(self) -> None:
        validate_latlon(self.lat, self.lon)
        if self.radius_km < 0:
            raise ValueError(f"negative radius: {self.radius_km!r}")

    def contains(self, lat: float, lon: float) -> bool:
        return haversine_km(self.lat, self.lon, lat, lon) <= self.radius_km

    def contains_vec(self, lats: np.ndarray, lons: np.ndarray) -> np.ndarray:
        return haversine_km_vec(self.lat, self.lon, lats, lons) <= self.radius_km

    @property
    def is_whole_earth(self) -> bool:
        """True when the disk covers every point on the sphere."""
        return self.radius_km >= MAX_SURFACE_DISTANCE_KM

    def area_km2(self) -> float:
        """Analytic area of the spherical cap."""
        theta = min(self.radius_km / EARTH_RADIUS_KM, math.pi)
        return 2.0 * math.pi * EARTH_RADIUS_KM ** 2 * (1.0 - math.cos(theta))


@dataclass(frozen=True)
class SphericalRing:
    """All points between ``inner_km`` and ``outer_km`` of the centre (an annulus)."""

    lat: float
    lon: float
    inner_km: float
    outer_km: float

    def __post_init__(self) -> None:
        validate_latlon(self.lat, self.lon)
        if self.inner_km < 0:
            raise ValueError(f"negative inner radius: {self.inner_km!r}")
        if self.outer_km < self.inner_km:
            raise ValueError(
                f"outer radius {self.outer_km!r} smaller than inner {self.inner_km!r}")

    def contains(self, lat: float, lon: float) -> bool:
        d = haversine_km(self.lat, self.lon, lat, lon)
        return self.inner_km <= d <= self.outer_km

    def contains_vec(self, lats: np.ndarray, lons: np.ndarray) -> np.ndarray:
        d = haversine_km_vec(self.lat, self.lon, lats, lons)
        return (d >= self.inner_km) & (d <= self.outer_km)

    def area_km2(self) -> float:
        """Analytic area: outer cap minus inner cap."""
        outer = SphericalDisk(self.lat, self.lon, self.outer_km).area_km2()
        inner = SphericalDisk(self.lat, self.lon, self.inner_km).area_km2()
        return outer - inner


def disks_intersect(a: SphericalDisk, b: SphericalDisk) -> bool:
    """Do two spherical disks share at least one point?

    On a sphere two caps intersect iff the centre separation does not
    exceed the sum of the angular radii (each capped at pi).
    """
    d = haversine_km(a.lat, a.lon, b.lat, b.lon)
    return d <= min(a.radius_km + b.radius_km, MAX_SURFACE_DISTANCE_KM)


def disk_contains_disk(outer: SphericalDisk, inner: SphericalDisk) -> bool:
    """Is ``inner`` entirely inside ``outer``?"""
    if outer.is_whole_earth:
        return True
    d = haversine_km(outer.lat, outer.lon, inner.lat, inner.lon)
    return d + inner.radius_km <= outer.radius_km
