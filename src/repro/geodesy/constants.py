"""Physical constants used throughout the geolocation pipeline.

All distances are kilometres, all times are milliseconds, and all speeds
are kilometres per millisecond unless a name says otherwise.  These values
come straight from the paper (Weinberg et al., IMC 2018) and the CBG paper
(Gueye et al., IMC 2004).
"""

from __future__ import annotations

import math

#: Mean Earth radius (spherical model), km.  The paper's analysis treats the
#: Earth as a sphere; sub-0.5 % flattening error is irrelevant at the
#: country-confirmation scale the paper works at.
EARTH_RADIUS_KM = 6371.0088

#: Equatorial circumference of the Earth, km.  Quoted in the paper when
#: deriving the slowline: "No landmark can be farther than half the
#: equatorial circumference of the Earth, 20 037.508 km, from the target."
EARTH_EQUATORIAL_CIRCUMFERENCE_KM = 40075.017

#: Half the equatorial circumference: the farthest any two points on the
#: surface can be from each other, km.
MAX_SURFACE_DISTANCE_KM = EARTH_EQUATORIAL_CIRCUMFERENCE_KM / 2.0

#: Speed of light in a vacuum, km/ms.
SPEED_OF_LIGHT_KM_PER_MS = 299.792458

#: CBG's "baseline" packet speed: 2/3 c, approximately the propagation speed
#: of light in fibre-optic cable, km per ms of *one-way* travel time.
BASELINE_SPEED_KM_PER_MS = 200.0

#: CBG++'s "slowline" speed bound, km/ms.  One-way times above 237 ms could
#: involve a geostationary satellite hop (which can bridge any two points on
#: a hemisphere), so they carry no distance information:
#: 20 037.508 km / 237 ms = 84.5 km/ms.
SLOWLINE_SPEED_KM_PER_MS = MAX_SURFACE_DISTANCE_KM / 237.0

#: One-way delay, ms, beyond which a measurement may have traversed a
#: geostationary satellite and is therefore uninformative.
GEOSTATIONARY_ONE_WAY_MS = 237.0

#: ICLab's "speed of internet" limit (Katz-Bassett et al. plus some slack):
#: 153 km/ms = 0.5104 c, used by their country-disproof checker.
ICLAB_SPEED_LIMIT_KM_PER_MS = 153.0

#: Latitude clipping applied to every final prediction region, degrees.
#: "we exclude all terrain north of 85N and south of 60S" (paper, section 3).
MAX_PLAUSIBLE_LATITUDE_DEG = 85.0
MIN_PLAUSIBLE_LATITUDE_DEG = -60.0

#: Approximate land area of the Earth, km^2, used to normalise region areas
#: the way Figure 9 (panel C) does.  One square megametre (Mm^2) is 1e6 km^2.
EARTH_LAND_AREA_KM2 = 148.9e6

DEG_TO_RAD = math.pi / 180.0
RAD_TO_DEG = 180.0 / math.pi


def one_way_ms_to_max_km(one_way_ms: float, speed_km_per_ms: float = BASELINE_SPEED_KM_PER_MS) -> float:
    """Upper bound on the distance a packet can have covered in ``one_way_ms``.

    The bound is capped at half the Earth's circumference: no surface path
    is longer than that, however large the delay.
    """
    if one_way_ms < 0:
        raise ValueError(f"negative one-way delay: {one_way_ms!r}")
    return min(one_way_ms * speed_km_per_ms, MAX_SURFACE_DISTANCE_KM)


def rtt_ms_to_one_way_ms(rtt_ms: float) -> float:
    """Convert a round-trip time to the one-way delay the models consume."""
    if rtt_ms < 0:
        raise ValueError(f"negative round-trip time: {rtt_ms!r}")
    return rtt_ms / 2.0
