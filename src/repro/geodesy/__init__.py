"""Geodesy substrate: great-circle math and spherical shapes.

Everything else in :mod:`repro` sits on top of this package.  The Earth is
modelled as a sphere of radius :data:`~repro.geodesy.constants.EARTH_RADIUS_KM`;
that is the model the paper (and CBG before it) uses, and it is accurate to
well under the country-level granularity this system reasons about.
"""

from .constants import (
    BASELINE_SPEED_KM_PER_MS,
    EARTH_EQUATORIAL_CIRCUMFERENCE_KM,
    EARTH_LAND_AREA_KM2,
    EARTH_RADIUS_KM,
    GEOSTATIONARY_ONE_WAY_MS,
    ICLAB_SPEED_LIMIT_KM_PER_MS,
    MAX_PLAUSIBLE_LATITUDE_DEG,
    MAX_SURFACE_DISTANCE_KM,
    MIN_PLAUSIBLE_LATITUDE_DEG,
    SLOWLINE_SPEED_KM_PER_MS,
    SPEED_OF_LIGHT_KM_PER_MS,
    one_way_ms_to_max_km,
    rtt_ms_to_one_way_ms,
)
from .geometry import SphericalDisk, SphericalRing, disk_contains_disk, disks_intersect
from .greatcircle import (
    destination_point,
    geodesic_path,
    haversine_km,
    haversine_km_vec,
    initial_bearing_deg,
    interpolate,
    midpoint,
    normalize_lon,
    validate_latlon,
)

__all__ = [
    "BASELINE_SPEED_KM_PER_MS",
    "EARTH_EQUATORIAL_CIRCUMFERENCE_KM",
    "EARTH_LAND_AREA_KM2",
    "EARTH_RADIUS_KM",
    "GEOSTATIONARY_ONE_WAY_MS",
    "ICLAB_SPEED_LIMIT_KM_PER_MS",
    "MAX_PLAUSIBLE_LATITUDE_DEG",
    "MAX_SURFACE_DISTANCE_KM",
    "MIN_PLAUSIBLE_LATITUDE_DEG",
    "SLOWLINE_SPEED_KM_PER_MS",
    "SPEED_OF_LIGHT_KM_PER_MS",
    "SphericalDisk",
    "SphericalRing",
    "destination_point",
    "disk_contains_disk",
    "disks_intersect",
    "geodesic_path",
    "haversine_km",
    "haversine_km_vec",
    "initial_bearing_deg",
    "interpolate",
    "midpoint",
    "normalize_lon",
    "one_way_ms_to_max_km",
    "rtt_ms_to_one_way_ms",
    "validate_latlon",
]
