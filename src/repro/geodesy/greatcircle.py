"""Great-circle geometry on a spherical Earth.

Scalar helpers operate on single coordinate pairs; the ``*_vec`` variants
accept NumPy arrays and broadcast, which is what the grid-based region
machinery uses (computing the distance from one landmark to every cell of
the analysis grid in one call).

Latitudes and longitudes are degrees; distances are kilometres; bearings
are degrees clockwise from true north.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from .constants import DEG_TO_RAD, EARTH_RADIUS_KM, RAD_TO_DEG


def validate_latlon(lat: float, lon: float) -> None:
    """Raise ``ValueError`` unless ``(lat, lon)`` is a plausible coordinate."""
    if not (-90.0 <= lat <= 90.0):
        raise ValueError(f"latitude out of range [-90, 90]: {lat!r}")
    if not (-180.0 <= lon <= 360.0):
        raise ValueError(f"longitude out of range [-180, 360]: {lon!r}")


def normalize_lon(lon: float) -> float:
    """Map a longitude into the half-open interval [-180, 180)."""
    lon = math.fmod(lon + 180.0, 360.0)
    if lon < 0:
        lon += 360.0
    return lon - 180.0


def haversine_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance between two points, km (haversine formula).

    The haversine form is numerically stable for small separations, which
    matters when comparing proxies that share a data centre.
    """
    phi1 = lat1 * DEG_TO_RAD
    phi2 = lat2 * DEG_TO_RAD
    dphi = (lat2 - lat1) * DEG_TO_RAD
    dlam = (lon2 - lon1) * DEG_TO_RAD
    a = math.sin(dphi / 2.0) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlam / 2.0) ** 2
    a = min(1.0, max(0.0, a))
    return 2.0 * EARTH_RADIUS_KM * math.asin(math.sqrt(a))


def haversine_km_select(lat1: float, lon1: float,
                        lats: np.ndarray, lons: np.ndarray) -> np.ndarray:
    """Distances from one point to many, for *selection* (argmin/argsort).

    Replicates :func:`haversine_km`'s operation order element-wise, so the
    ordering of candidates matches the scalar loop everywhere except exact
    float ties (NumPy's SIMD ``sin``/``cos`` can differ from ``math.sin``/
    ``math.cos`` in the last ulp).  Distinct coordinates essentially never
    tie at that precision, but callers that need the *value* — not just
    which candidate wins — must recompute it with :func:`haversine_km`.
    """
    phi1 = lat1 * DEG_TO_RAD
    phi2 = lats * DEG_TO_RAD
    dphi = (lats - lat1) * DEG_TO_RAD
    dlam = (lons - lon1) * DEG_TO_RAD
    a = (np.sin(dphi / 2.0) ** 2
         + math.cos(phi1) * np.cos(phi2) * np.sin(dlam / 2.0) ** 2)
    a = np.minimum(1.0, np.maximum(0.0, a))
    return 2.0 * EARTH_RADIUS_KM * np.arcsin(np.sqrt(a))


def haversine_km_vec(lat1: "np.ndarray | float", lon1: "np.ndarray | float",
                     lat2: "np.ndarray | float", lon2: "np.ndarray | float") -> np.ndarray:
    """Vectorised haversine distance; broadcasts like NumPy arithmetic."""
    phi1 = np.radians(np.asarray(lat1, dtype=float))
    phi2 = np.radians(np.asarray(lat2, dtype=float))
    dphi = phi2 - phi1
    dlam = np.radians(np.asarray(lon2, dtype=float) - np.asarray(lon1, dtype=float))
    a = np.sin(dphi / 2.0) ** 2 + np.cos(phi1) * np.cos(phi2) * np.sin(dlam / 2.0) ** 2
    a = np.clip(a, 0.0, 1.0)
    return 2.0 * EARTH_RADIUS_KM * np.arcsin(np.sqrt(a))


def initial_bearing_deg(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Initial bearing (forward azimuth) from point 1 to point 2, degrees in [0, 360)."""
    phi1 = lat1 * DEG_TO_RAD
    phi2 = lat2 * DEG_TO_RAD
    dlam = (lon2 - lon1) * DEG_TO_RAD
    y = math.sin(dlam) * math.cos(phi2)
    x = math.cos(phi1) * math.sin(phi2) - math.sin(phi1) * math.cos(phi2) * math.cos(dlam)
    theta = math.atan2(y, x) * RAD_TO_DEG
    return theta % 360.0


def destination_point(lat: float, lon: float, bearing_deg: float, distance_km: float) -> Tuple[float, float]:
    """Point reached travelling ``distance_km`` from ``(lat, lon)`` on ``bearing_deg``.

    Returns ``(lat, lon)`` with longitude normalised into [-180, 180).
    """
    delta = distance_km / EARTH_RADIUS_KM
    theta = bearing_deg * DEG_TO_RAD
    phi1 = lat * DEG_TO_RAD
    lam1 = lon * DEG_TO_RAD
    sin_phi2 = math.sin(phi1) * math.cos(delta) + math.cos(phi1) * math.sin(delta) * math.cos(theta)
    sin_phi2 = min(1.0, max(-1.0, sin_phi2))
    phi2 = math.asin(sin_phi2)
    y = math.sin(theta) * math.sin(delta) * math.cos(phi1)
    x = math.cos(delta) - math.sin(phi1) * sin_phi2
    lam2 = lam1 + math.atan2(y, x)
    return phi2 * RAD_TO_DEG, normalize_lon(lam2 * RAD_TO_DEG)


def midpoint(lat1: float, lon1: float, lat2: float, lon2: float) -> Tuple[float, float]:
    """Midpoint of the great-circle arc between two points."""
    phi1 = lat1 * DEG_TO_RAD
    phi2 = lat2 * DEG_TO_RAD
    lam1 = lon1 * DEG_TO_RAD
    dlam = (lon2 - lon1) * DEG_TO_RAD
    bx = math.cos(phi2) * math.cos(dlam)
    by = math.cos(phi2) * math.sin(dlam)
    phi_m = math.atan2(math.sin(phi1) + math.sin(phi2),
                       math.sqrt((math.cos(phi1) + bx) ** 2 + by ** 2))
    lam_m = lam1 + math.atan2(by, math.cos(phi1) + bx)
    return phi_m * RAD_TO_DEG, normalize_lon(lam_m * RAD_TO_DEG)


def interpolate(lat1: float, lon1: float, lat2: float, lon2: float, fraction: float) -> Tuple[float, float]:
    """Point a given fraction of the way along the great circle from 1 to 2.

    ``fraction`` 0 returns point 1, 1 returns point 2.  Used by the routing
    substrate to place intermediate waypoints on long-haul links.
    """
    if not (0.0 <= fraction <= 1.0):
        raise ValueError(f"fraction must be in [0, 1]: {fraction!r}")
    d = haversine_km(lat1, lon1, lat2, lon2) / EARTH_RADIUS_KM
    if d < 1e-12:
        return lat1, normalize_lon(lon1)
    a = math.sin((1 - fraction) * d) / math.sin(d)
    b = math.sin(fraction * d) / math.sin(d)
    phi1, lam1 = lat1 * DEG_TO_RAD, lon1 * DEG_TO_RAD
    phi2, lam2 = lat2 * DEG_TO_RAD, lon2 * DEG_TO_RAD
    x = a * math.cos(phi1) * math.cos(lam1) + b * math.cos(phi2) * math.cos(lam2)
    y = a * math.cos(phi1) * math.sin(lam1) + b * math.cos(phi2) * math.sin(lam2)
    z = a * math.sin(phi1) + b * math.sin(phi2)
    phi = math.atan2(z, math.sqrt(x * x + y * y))
    lam = math.atan2(y, x)
    return phi * RAD_TO_DEG, normalize_lon(lam * RAD_TO_DEG)


def geodesic_path(
    lat1: float, lon1: float, lat2: float, lon2: float, n_points: int
) -> List[Tuple[float, float]]:
    """``n_points`` evenly spaced points along the great circle, inclusive of endpoints."""
    if n_points < 2:
        raise ValueError("need at least the two endpoints")
    return [interpolate(lat1, lon1, lat2, lon2, i / (n_points - 1)) for i in range(n_points)]
