"""Opt-in runtime sanitizer: cheap invariant assertions at module seams.

``REPRO_SANITIZE=1`` (registered in :mod:`repro.config`) arms a small
set of checks that verify, at module boundaries, the invariants the
determinism contract (DESIGN.md, "Determinism contract & static
analysis") otherwise only documents:

* **packed regions** — the operands of every packed
  :class:`~repro.geo.region.Region` set operation have their padding
  bits (beyond ``grid.n_cells``) re-verified as zero, catching in-place
  corruption of a shared word buffer the moment it feeds an op;
* **distance bank** — every field row handed out by
  :class:`~repro.geo.bank.DistanceBank` must be finite and
  non-negative (a NaN distance silently poisons every downstream mask
  comparison into ``False``);
* **path engine** — each :meth:`PathEngine.warm` cross-checks one
  deterministically sampled source row against an independent networkx
  Dijkstra sweep, so a torn memmap or stale warm-cache hit cannot feed
  an audit wrong routed delays;
* **checkpoints** — every journalled record is round-tripped through
  the JSON codec before it is written; a payload that cannot be read
  back bit-identically (e.g. a NaN observation) trips immediately
  instead of surfacing as a resume mismatch hours later.

The sanitizer is read-only: it consumes no random draws and mutates no
state, so a sanitized run is bit-identical to an unsanitized one (this
is property-tested in ``tests/test_sanitizer.py``).  A tripped check
raises :class:`SanitizerError`.
"""

from __future__ import annotations

import numpy as np

from . import config


class SanitizerError(AssertionError):
    """A runtime invariant the determinism contract relies on was broken."""


def enabled() -> bool:
    """Is the sanitizer armed (``REPRO_SANITIZE=1``)?

    Read from the environment on every call so tests can flip it with
    ``monkeypatch.setenv``; the read is a dict lookup, far below the
    cost of any check it gates.
    """
    return bool(config.env_value(config.SANITIZE.name))


def check_region_padding(words: np.ndarray, n_bits: int, context: str) -> None:
    """Verify the packed words carry no set bits beyond ``n_bits``."""
    # Imported lazily: region.py imports this module at import time.
    from .geo.region import _check_padding_clear

    if not _check_padding_clear(words, n_bits):
        raise SanitizerError(
            f"packed region has set padding bits beyond {n_bits} cells "
            f"({context}); a word buffer was corrupted in place")


def check_distance_fields(block: np.ndarray, context: str) -> None:
    """Verify distance-field rows are finite and non-negative."""
    if not np.isfinite(block).all():
        raise SanitizerError(
            f"distance bank handed out a non-finite field ({context})")
    if (block < 0).any():
        raise SanitizerError(
            f"distance bank handed out a negative distance ({context})")


def check_rows_close(computed: np.ndarray, reference: np.ndarray,
                     context: str) -> None:
    """Verify two shortest-path rows agree (inf pattern + tight floats)."""
    computed = np.asarray(computed, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if computed.shape != reference.shape:
        raise SanitizerError(
            f"shortest-path row shape mismatch ({context}): "
            f"{computed.shape} vs {reference.shape}")
    finite = np.isfinite(computed)
    if not np.array_equal(finite, np.isfinite(reference)):
        raise SanitizerError(
            f"shortest-path reachability disagrees with the networkx "
            f"reference ({context})")
    if finite.any() and not np.allclose(computed[finite], reference[finite],
                                        rtol=1e-9, atol=1e-9):
        worst = float(np.abs(computed[finite] - reference[finite]).max())
        raise SanitizerError(
            f"shortest-path row diverges from the networkx reference "
            f"by up to {worst!r} ms ({context})")
