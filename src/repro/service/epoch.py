"""Topology epochs: content digests over the warmed measurement state.

Every artifact the verdict service caches is keyed by the digest of the
state that produced it, so invalidation is automatic: if anything a
verdict depends on changes — router graph, landmark constellation,
measurement seed, fault profile, grid resolution, or the quarantine
set — the digest changes and stale entries simply stop matching.

The digest is split in two layers because the two kinds of change have
very different blast radii:

* ``substrate_digest`` covers the *shared* measurement substrate
  (topology, landmark identities, seed, profile, grid).  Any change
  here can move every server's panel — phase-2 selection draws from
  pool-size-dependent ``rng.choice`` — so it invalidates everything.
* ``digest`` additionally folds in the sorted quarantine set.  A
  quarantine change is a *measure-time filter* (panels are selected
  first, quarantined names dropped at probe time), so it only affects
  servers whose requested panel intersects the changed names —
  :meth:`TopologyEpoch.quarantine_delta` gives the roll machinery
  exactly that set, and everything else carries forward byte-identical.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, FrozenSet, Iterable, List, Optional, Tuple

from ..netsim.faults import resolve_fault_profile

if TYPE_CHECKING:  # import-free at runtime: epoch loads before verdict
    from ..experiments.scenario import Scenario


@dataclass(frozen=True)
class TopologyEpoch:
    """One snapshot of everything a cached verdict depends on."""

    #: Digest of the shared substrate: topology, landmarks, seed,
    #: profile, grid.  Two epochs with equal substrates differ at most
    #: in their quarantine sets.
    substrate_digest: str
    #: Full epoch digest (substrate + quarantine set): the cache key.
    digest: str
    #: Landmark names excluded from measurement during this epoch.
    quarantined: FrozenSet[str]
    seed: int
    profile_name: Optional[str]

    @classmethod
    def capture(cls, scenario: "Scenario", seed: int = 0,
                fault_profile: Optional[object] = None,
                quarantined: Iterable[str] = ()) -> "TopologyEpoch":
        """Digest a scenario's current measurement substrate.

        ``fault_profile`` follows :func:`~repro.experiments.run_audit`'s
        resolution rules (profile object, name, or None meaning the
        scenario's own); ``quarantined`` is the measure-time exclusion
        set this epoch serves under.
        """
        profile = resolve_fault_profile(
            fault_profile if fault_profile is not None
            else scenario.fault_profile)
        profile_name = profile.name if profile is not None else None
        hasher = hashlib.sha256()
        hasher.update(scenario.network.topology_digest().encode())
        landmarks = sorted(
            (lm.name, lm.host.host_id, float(lm.lat), float(lm.lon))
            for lm in scenario.atlas.all_landmarks())
        for identity in landmarks:
            hasher.update(repr(identity).encode())
        hasher.update(repr((seed, profile_name,
                            scenario.grid.n_cells)).encode())
        substrate = hasher.hexdigest()
        names = frozenset(quarantined)
        overlay = hashlib.sha256()
        overlay.update(substrate.encode())
        overlay.update(repr(sorted(names)).encode())
        return cls(substrate_digest=substrate,
                   digest=overlay.hexdigest(),
                   quarantined=names,
                   seed=seed,
                   profile_name=profile_name)

    def quarantine_delta(self, other: "TopologyEpoch"
                         ) -> Optional[FrozenSet[str]]:
        """Landmark names whose quarantine status differs, or None.

        ``None`` means the substrates diverged — panel selection itself
        may have moved for every server, so nothing can carry forward.
        An empty frozenset means the epochs are measurement-identical.
        """
        if self.substrate_digest != other.substrate_digest:
            return None
        return self.quarantined ^ other.quarantined


@dataclass
class EpochRollStats:
    """What one :meth:`VerdictService.roll_epoch` actually did."""

    old_digest: str
    new_digest: str
    #: The epochs were identical; nothing moved.
    unchanged: bool = False
    #: The substrate changed: every cached entry was flushed.
    full_invalidation: bool = False
    #: Cached measurements re-keyed to the new epoch untouched.
    carried_forward: int = 0
    #: Cached measurements dropped because they depended on the delta.
    flushed: int = 0
    #: Hosts re-measured during the roll (0 when ``reaudit=False``).
    reevaluated: int = 0
    #: Host ids whose verdicts were re-evaluated, ascending.
    reevaluated_hosts: List[int] = field(default_factory=list)
    #: Landmark names whose quarantine status changed this roll.
    delta: Tuple[str, ...] = ()
