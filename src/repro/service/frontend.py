"""The asyncio front end: bounded queues over the verdict service.

Newline-delimited JSON over TCP: each request line is
``{"host": <hostname|host_id>, "claim": <country|null>}`` and each
response line is a full :class:`~repro.service.verdict.VerdictResponse`
serialisation plus the measured ``latency_ms``.

The concurrency story is deliberately simple and bounded:

* arrivals land in one ``asyncio.Queue`` whose size is capped
  (``REPRO_SERVICE_QUEUE_MAX``); when it is full the request is
  immediately *shed* as a degraded verdict instead of queueing without
  bound — overload degrades answers, never latency;
* a single drainer task pulls whatever has accumulated (up to
  ``REPRO_SERVICE_BATCH_MAX``) and evaluates it as **one**
  ``verdict_batch`` call — concurrently-arriving uncached queries
  coalesce into single ``predict_fleet`` sweeps for free.

``time.monotonic`` is used for latency instrumentation only — this is
the one module family where reprolint R002 allows it; verdicts
themselves never read the wall clock.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from .verdict import VerdictResponse, VerdictService


@dataclass
class FrontendStats:
    """Flat counters over the frontend's lifetime (no per-request state)."""

    requests: int = 0
    responses: int = 0
    shed: int = 0
    errors: int = 0
    batches: int = 0
    max_batch: int = 0


class ServiceFrontend:
    """Bounded-queue micro-batching front end for a `VerdictService`."""

    def __init__(self, service: VerdictService,
                 queue_max: Optional[int] = None,
                 batch_max: Optional[int] = None) -> None:
        from .verdict import _knob_or

        self.service = service
        self.queue_max = _knob_or("REPRO_SERVICE_QUEUE_MAX", queue_max)
        self.batch_max = (batch_max if batch_max is not None
                          else service.batch_max)
        self.stats = FrontendStats()
        self._queue: Optional[asyncio.Queue] = None
        self._drainer: Optional[asyncio.Task] = None

    # -- queue + batching core ------------------------------------------------

    def _ensure_started(self) -> None:
        """Create the bounded queue and drainer inside the running loop."""
        if self._queue is None:
            self._queue = asyncio.Queue(maxsize=self.queue_max)
            self._drainer = asyncio.get_running_loop().create_task(
                self._drain())

    async def enqueue(self, query: Tuple[object, Optional[str]]
                      ) -> VerdictResponse:
        """Queue one query; shed a degraded verdict when over capacity.

        This is the graceful-degradation seam: a full queue means the
        back end is saturated, and the bounded answer is an immediate
        ``degraded`` verdict, not an unbounded wait.
        """
        self._ensure_started()
        assert self._queue is not None
        target, claim = query
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self.stats.requests += 1
        try:
            self._queue.put_nowait((query, future))
        except asyncio.QueueFull:
            self.stats.shed += 1
            return VerdictResponse.shed_response(
                hostname=str(target), claim=claim if claim else "",
                epoch_digest=self.service.epoch.digest)
        return await future

    async def _drain(self) -> None:
        """The single batcher: coalesce arrivals, evaluate, resolve."""
        assert self._queue is not None
        while True:
            batch = [await self._queue.get()]
            while len(batch) < self.batch_max:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            self.stats.batches += 1
            self.stats.max_batch = max(self.stats.max_batch, len(batch))
            queries = [query for query, _ in batch]
            loop = asyncio.get_running_loop()
            try:
                responses = await loop.run_in_executor(
                    None, self.service.verdict_batch, queries)
            except Exception as exc:  # noqa: BLE001 - resolved per future
                for _, future in batch:
                    if not future.done():
                        future.set_exception(exc)
                continue
            for (_, future), response in zip(batch, responses):
                if not future.done():
                    future.set_result(response)
                self.stats.responses += 1

    # -- TCP protocol ---------------------------------------------------------

    async def handle(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        """One connection: a JSON request per line, a JSON verdict back."""
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                started = time.monotonic()
                try:
                    request = json.loads(line)
                    target = request["host"]
                    claim = request.get("claim")
                    response = await self.enqueue((target, claim))
                    payload = json.loads(response.to_json())
                except Exception as exc:  # noqa: BLE001 - sent to the client
                    self.stats.errors += 1
                    payload = {"error": f"{type(exc).__name__}: {exc}"}
                payload["latency_ms"] = round(
                    (time.monotonic() - started) * 1e3, 3)
                writer.write((json.dumps(payload, sort_keys=True) + "\n")
                             .encode())
                await writer.drain()
        except (asyncio.CancelledError, ConnectionResetError):
            pass  # server teardown mid-connection is a normal exit
        finally:
            writer.close()

    async def serve(self, host: str = "127.0.0.1", port: int = 0,
                    ready: Optional[asyncio.Event] = None,
                    max_requests: Optional[int] = None) -> None:
        """Accept connections until cancelled (or ``max_requests`` served).

        ``port=0`` binds an ephemeral port; the bound address is stored
        on ``self.bound`` once listening (and ``ready`` is set, for
        tests that need to connect as soon as the socket exists).
        """
        self._ensure_started()
        server = await asyncio.start_server(self.handle, host, port)
        self.bound = server.sockets[0].getsockname()
        if ready is not None:
            ready.set()
        async with server:
            if max_requests is None:
                await server.serve_forever()
            else:
                while self.stats.responses + self.stats.shed \
                        + self.stats.errors < max_requests:
                    await asyncio.sleep(0.01)

    def close(self) -> None:
        """Cancel the drainer task (pending futures are abandoned)."""
        if self._drainer is not None:
            self._drainer.cancel()
            self._drainer = None
        self._queue = None


def serve_blocking(service: VerdictService, host: str = "127.0.0.1",
                   port: int = 8737, queue_max: Optional[int] = None,
                   batch_max: Optional[int] = None,
                   max_requests: Optional[int] = None) -> FrontendStats:
    """Run a frontend until interrupted; the ``repro serve`` entry point."""
    frontend = ServiceFrontend(service, queue_max=queue_max,
                               batch_max=batch_max)

    async def _run() -> None:
        ready = asyncio.Event()
        task = asyncio.get_running_loop().create_task(
            frontend.serve(host=host, port=port, ready=ready,
                           max_requests=max_requests))
        await ready.wait()
        print(f"listening on {frontend.bound[0]}:{frontend.bound[1]}",
              flush=True)
        await task

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    return frontend.stats
