"""The verdict service core: epoch-keyed caching over batched audits.

:class:`VerdictService` answers "is this proxy's claimed location
credible?" out of two bounded caches layered over the fleet audit
machinery:

* a **measurement cache** keyed ``(host_id, epoch_digest)`` holding the
  packed multilateration region (plus the landmark names the
  measurement *requested* — the dependency set epoch rolls invalidate
  by); and
* a :class:`VerdictCache` keyed ``(host_id, epoch_digest, claim)``
  holding the finished assessment, so re-asking about a different
  country for an already-measured host costs one region/country
  intersection, not a measurement.

Uncached queries are coalesced into micro-batches and multilaterated in
single ``predict_fleet`` sweeps — N scalar queries become one vectorized
pass.  Measurement streams stay keyed by ``(seed, host_id)`` exactly as
in :func:`repro.experiments.run_audit`, so a verdict is byte-identical
to the corresponding audit record's assessment at any batch size,
arrival order, or worker count, and a cache hit is byte-identical to a
cold recompute at the same epoch.

Quarantine is a *measure-time filter*: phase panels are selected first
(pool-size-dependent ``rng.choice`` draws untouched), then quarantined
names are dropped from the probe list.  That is what makes incremental
re-audit sound — a server whose requested panel is disjoint from a
quarantine delta sees identical probe lists, consumes identical RNG
draws, and its cached verdict carries forward to the new epoch
unchanged.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import asdict, dataclass
from typing import (Dict, FrozenSet, Iterable, List, Optional, Sequence,
                    Set, Tuple, Union)

import numpy as np

from .. import config
from ..core.assessment import assess_claim
from ..core.base import GeolocationAlgorithm
from ..core.cbgpp import CBGPlusPlus
from ..core.disambiguation import AuditRecord
from ..core.observations import RttObservation
from ..core.proxy_adapter import ProxyMeasurer
from ..core.resilience import RetryPolicy
from ..core.twophase import (
    MIN_MULTILATERATION_OBSERVATIONS,
    TwoPhaseDriver,
    TwoPhaseMeasurement,
    TwoPhaseResult,
    TwoPhaseSelector,
)
from ..experiments.audit import AuditSink, campaign_eta
from ..experiments.scenario import Scenario
from ..geo.region import Region
from ..lrucache import CacheInfo, LruCache
from ..netsim.atlas import Landmark
from ..netsim.faults import FaultInjector, MeasurementFailed, resolve_fault_profile
from ..netsim.proxies import ProxyServer
from .epoch import EpochRollStats, TopologyEpoch

#: A query target: a server object, a fleet host id, or a hostname.
Target = Union[ProxyServer, int, str]

#: A verdict query: a bare target (claim defaults to the server's own
#: claimed country) or a ``(target, claim)`` pair.
Query = Union[Target, Tuple[Target, Optional[str]]]

#: One evaluated measurement, in fork-safe wire form: ``(host_id,
#: packed region bytes, deduced continent, used landmark names,
#: requested landmark names (sorted), degraded, notes, observations)``.
_Payload = Tuple[int, bytes, str, Tuple[str, ...], Tuple[str, ...], bool,
                 Tuple[str, ...], tuple]


@dataclass(frozen=True)
class _Measurement:
    """The measurement half of a verdict, cached per (host, epoch)."""

    region_bytes: bytes
    deduced_continent: str
    #: Phase-2 landmark names the prediction actually used.
    used_landmarks: Tuple[str, ...]
    #: Every landmark name the driver *asked* to probe — the dependency
    #: set: a quarantine delta disjoint from it cannot have changed this
    #: measurement.
    requested_landmarks: FrozenSet[str]
    degraded: bool
    notes: Tuple[str, ...]


@dataclass(frozen=True)
class CachedVerdict:
    """One finished claim assessment plus the measurement behind it."""

    measurement: _Measurement
    verdict: str
    continent_verdict: str
    countries: Tuple[str, ...]
    area_km2: float


@dataclass(frozen=True)
class VerdictResponse:
    """Everything one claim query returns.

    :meth:`canonical_json` serialises only the deterministic payload —
    ``cached`` and ``shed`` describe how this particular response was
    produced, not what the verdict is, and are excluded so byte-identity
    can be asserted across cold, cached, and batched paths.
    """

    hostname: str
    host_id: int
    claim: str
    verdict: str
    continent_verdict: str
    countries: Tuple[str, ...]
    area_km2: float
    deduced_continent: str
    used_landmarks: Tuple[str, ...]
    degraded: bool
    notes: Tuple[str, ...]
    epoch_digest: str
    region_sha256: str
    #: Served straight from the verdict cache.
    cached: bool = False
    #: Shed under overload instead of evaluated.
    shed: bool = False

    _VOLATILE = ("cached", "shed")

    def canonical_json(self) -> str:
        """Deterministic serialisation of the verdict payload."""
        payload = asdict(self)
        for name in self._VOLATILE:
            del payload[name]
        return json.dumps(payload, sort_keys=True)

    def to_json(self) -> str:
        """Full wire serialisation (volatile fields included)."""
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def shed_response(cls, hostname: str, claim: str,
                      epoch_digest: str) -> "VerdictResponse":
        """The degraded verdict an overloaded frontend sheds with."""
        return cls(hostname=hostname, host_id=-1, claim=claim,
                   verdict="degraded", continent_verdict="unknown",
                   countries=(), area_km2=0.0, deduced_continent="unknown",
                   used_landmarks=(), degraded=True,
                   notes=("service overloaded: request shed",),
                   epoch_digest=epoch_digest, region_sha256="",
                   cached=False, shed=True)


class VerdictCache:
    """Bounded LRU of finished verdicts keyed ``(host, epoch, claim)``.

    A thin typed veneer over the shared :class:`repro.lrucache.LruCache`
    (the same implementation behind ``cached_audit``), so hit/miss/
    eviction accounting and the ``cache_info()``/``cache_clear()`` API
    cannot drift between the two call sites.
    """

    def __init__(self, maxsize: int) -> None:
        self._entries: "LruCache[Tuple[int, str, str], CachedVerdict]" = \
            LruCache(maxsize=maxsize)

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Tuple[int, str, str]) -> Optional[CachedVerdict]:
        return self._entries.get(key)

    def peek(self, key: Tuple[int, str, str]) -> Optional[CachedVerdict]:
        return self._entries.peek(key)

    def put(self, key: Tuple[int, str, str], value: CachedVerdict) -> None:
        self._entries.put(key, value)

    def pop(self, key: Tuple[int, str, str]) -> Optional[CachedVerdict]:
        return self._entries.pop(key)

    def items(self) -> List[Tuple[Tuple[int, str, str], CachedVerdict]]:
        return self._entries.items()

    def cache_info(self) -> CacheInfo:
        return self._entries.cache_info()

    def cache_clear(self) -> None:
        self._entries.cache_clear()


def _knob_or(name: str, override: Optional[int]) -> int:
    """An explicit constructor argument, else the knob (0 = default)."""
    if override is not None:
        if override < 1:
            raise ValueError(f"{name} override must be >= 1: {override!r}")
        return override
    value = config.env_value(name)
    assert isinstance(value, int)
    if value > 0:
        return value
    default = config.knob(name).default
    assert isinstance(default, int)
    return default


#: Shared state for forked service workers; set immediately before the
#: pool is created so the fork snapshot carries the whole service —
#: scenario, warm CSR rows, driver — as copy-on-write pages.
_SERVICE_FORK_STATE: Optional["VerdictService"] = None


def _service_fork_worker(host_ids: List[int]) -> List[_Payload]:
    service = _SERVICE_FORK_STATE
    assert service is not None
    return service._evaluate_chunk(host_ids)


class VerdictService:
    """A long-running claim-credibility oracle over one warmed scenario.

    Construction does all the expensive work once — fault-profile
    resolution, the whole-fleet η fit, a batched Dijkstra warming every
    router a measurement can touch — and captures the result under a
    :class:`TopologyEpoch` digest.  After that, :meth:`verdict` and
    :meth:`verdict_batch` answer queries from the caches, micro-batching
    whatever is genuinely uncached into single ``predict_fleet`` sweeps.

    The service is deliberately socket-free; wrap it in
    :class:`repro.service.frontend.ServiceFrontend` (or ``repro serve``)
    for network access.
    """

    def __init__(self, scenario: Scenario, seed: int = 0,
                 fault_profile: Optional[object] = None,
                 algorithm: Optional[GeolocationAlgorithm] = None,
                 cache_slots: Optional[int] = None,
                 batch_max: Optional[int] = None,
                 workers: Optional[int] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 quarantined: Iterable[str] = ()) -> None:
        self.scenario = scenario
        self.seed = seed
        # Keep the *unresolved* profile argument: TopologyEpoch.capture
        # and campaign_eta apply run_audit's exact resolution chain
        # (explicit argument, else the scenario's own), so handing them
        # the original argument keeps all three resolutions identical.
        self._fault_profile_arg = fault_profile
        self._profile = resolve_fault_profile(
            fault_profile if fault_profile is not None
            else scenario.fault_profile)
        self._injector: Optional[FaultInjector] = None
        if self._profile is not None:
            self._injector = FaultInjector(self._profile, seed=seed)
            self._injector.schedule_outages(
                [lm.host.host_id for lm in scenario.atlas.all_landmarks()])
        if algorithm is None:
            algorithm = CBGPlusPlus(scenario.calibrations, scenario.worldmap)
        self.algorithm = algorithm
        self._driver = TwoPhaseDriver(
            TwoPhaseSelector(scenario.atlas, seed=seed), algorithm)
        self.cache_slots = _knob_or("REPRO_SERVICE_CACHE_SLOTS", cache_slots)
        self.batch_max = _knob_or("REPRO_SERVICE_BATCH_MAX", batch_max)
        self.workers = _knob_or("REPRO_SERVICE_WORKERS", workers)
        self._retry_policy = retry_policy
        servers = scenario.all_servers()
        self._by_host_id = {s.host.host_id: s for s in servers}
        self._by_hostname = {s.hostname: s for s in servers}
        # One batched Dijkstra warms every row a query can touch, before
        # any worker pool forks — children inherit the rows
        # copy-on-write.  This is the single warm-up the examples used
        # to duplicate per request.
        scenario.network.warm_paths(
            [scenario.client]
            + [lm.host for lm in scenario.atlas.all_landmarks()]
            + [s.host for s in servers])
        self.eta = campaign_eta(scenario, seed, self._fault_profile_arg)
        self._quarantined: FrozenSet[str] = frozenset(quarantined)
        self.epoch = TopologyEpoch.capture(
            scenario, seed, self._fault_profile_arg, self._quarantined)
        self.verdict_cache = VerdictCache(self.cache_slots)
        self._measurements: "LruCache[Tuple[int, str], _Measurement]" = \
            LruCache(maxsize=self.cache_slots)

    # -- query API ------------------------------------------------------------

    def verdict(self, target: Target,
                claim: Optional[str] = None) -> VerdictResponse:
        """One claim verdict (claim defaults to the server's own)."""
        return self.verdict_batch([(target, claim)])[0]

    def verdict_batch(self, queries: Sequence[Query]
                      ) -> List[VerdictResponse]:
        """Verdicts for many queries, coalescing uncached measurement.

        Each query is a target (server / fleet host id / hostname) or a
        ``(target, claim)`` pair; ``claim=None`` means the server's own
        claimed country.  Responses come back in query order and are
        byte-identical (per :meth:`VerdictResponse.canonical_json`) no
        matter how the queries are split across calls or workers.
        """
        normalized = [self._normalize(query) for query in queries]
        digest = self.epoch.digest
        responses: List[Optional[VerdictResponse]] = [None] * len(normalized)
        pending: List[int] = []
        for at, (server, claim) in enumerate(normalized):
            entry = self.verdict_cache.get(
                (server.host.host_id, digest, claim))
            if entry is not None:
                responses[at] = self._response(server, claim, entry,
                                               cached=True)
            else:
                pending.append(at)

        # Second chance: an already-measured host queried with a new
        # claim needs only a region/country intersection.
        unmeasured: Dict[int, ProxyServer] = {}
        missing: List[int] = []
        for at in pending:
            server, claim = normalized[at]
            host_id = server.host.host_id
            measurement = self._measurements.get((host_id, digest))
            if measurement is not None:
                responses[at] = self._resolve(server, claim, measurement)
            else:
                unmeasured.setdefault(host_id, server)
                missing.append(at)

        if missing:
            for host_id, payload in self._evaluate(unmeasured).items():
                self._measurements.put((host_id, digest),
                                       _measurement_from(payload))
            for at in missing:
                server, claim = normalized[at]
                measurement = self._measurements.peek(
                    (server.host.host_id, digest))
                assert measurement is not None
                responses[at] = self._resolve(server, claim, measurement)
        return [response for response in responses if response is not None]

    def region_of(self, target: Target) -> Region:
        """The multilateration region for a target (measured if needed)."""
        server = self._resolve_target(target)
        self.verdict(server)
        measurement = self._measurements.peek(
            (server.host.host_id, self.epoch.digest))
        assert measurement is not None
        return Region.from_packbits(self.algorithm.grid,
                                    measurement.region_bytes)

    # -- epoch management -----------------------------------------------------

    def roll_epoch(self, quarantined: Optional[Iterable[str]] = None,
                   reaudit: bool = True,
                   sink: Optional[AuditSink] = None) -> EpochRollStats:
        """Move to a new epoch, invalidating only dependent entries.

        ``quarantined`` replaces the measure-time exclusion set (None
        keeps the current one — useful after external substrate churn).
        Cached measurements whose requested panel is disjoint from the
        quarantine delta carry forward byte-identically; the rest are
        flushed and — with ``reaudit`` — re-evaluated immediately in
        micro-batches, each re-audited fleet server streaming an
        :class:`AuditRecord` through ``sink`` (the PR-7 sink machinery)
        rather than rematerialising the fleet.  A substrate change
        (landmark churn, topology edits) flushes everything.
        """
        names = frozenset(self._quarantined if quarantined is None
                          else quarantined)
        new = TopologyEpoch.capture(self.scenario, self.seed,
                                    self._fault_profile_arg, names)
        old = self.epoch
        stats = EpochRollStats(old_digest=old.digest, new_digest=new.digest)
        if new.digest == old.digest:
            stats.unchanged = True
            return stats
        delta = old.quarantine_delta(new)
        stats.full_invalidation = delta is None
        stats.delta = () if delta is None else tuple(sorted(delta))

        flushed_hosts: Set[int] = set()
        for (host_id, digest), measurement in self._measurements.items():
            self._measurements.pop((host_id, digest))
            if digest != old.digest:
                continue  # a leftover from an even older epoch: dead
            if delta is not None and not (measurement.requested_landmarks
                                          & delta):
                self._measurements.put((host_id, new.digest), measurement)
                stats.carried_forward += 1
            else:
                flushed_hosts.add(host_id)
                stats.flushed += 1

        flushed_claims: List[Tuple[int, str]] = []
        for (host_id, digest, claim), entry in self.verdict_cache.items():
            self.verdict_cache.pop((host_id, digest, claim))
            if digest != old.digest:
                continue
            if delta is not None and not (
                    entry.measurement.requested_landmarks & delta):
                self.verdict_cache.put((host_id, new.digest, claim), entry)
            else:
                flushed_claims.append((host_id, claim))

        self.epoch = new
        self._quarantined = names

        if reaudit and flushed_hosts:
            # Only fleet servers can be re-audited eagerly; ad-hoc
            # targets (e.g. a web demo visitor) re-measure lazily on
            # their next query.
            targets = {host_id: self._by_host_id[host_id]
                       for host_id in sorted(flushed_hosts)
                       if host_id in self._by_host_id}
            payloads = self._evaluate(targets)
            for host_id in sorted(payloads):
                payload = payloads[host_id]
                self._measurements.put((host_id, new.digest),
                                       _measurement_from(payload))
                stats.reevaluated += 1
                stats.reevaluated_hosts.append(host_id)
                if sink is not None:
                    sink.accept(self._record_from_payload(payload))
            for host_id, claim in flushed_claims:
                measurement = self._measurements.peek((host_id, new.digest))
                server = self._by_host_id.get(host_id)
                if measurement is None or server is None:
                    continue
                self.verdict_cache.put(
                    (host_id, new.digest, claim),
                    self._assess(claim, measurement))
        return stats

    # -- introspection --------------------------------------------------------

    def cache_info(self) -> Dict[str, CacheInfo]:
        """Counters for both cache layers, benchmark-consumable."""
        return {"verdicts": self.verdict_cache.cache_info(),
                "measurements": self._measurements.cache_info()}

    def cache_clear(self) -> None:
        """Drop both cache layers (the epoch is unaffected)."""
        self.verdict_cache.cache_clear()
        self._measurements.cache_clear()

    @property
    def quarantined(self) -> FrozenSet[str]:
        return self._quarantined

    # -- evaluation back end --------------------------------------------------

    def _normalize(self, query: Query) -> Tuple[ProxyServer, str]:
        if isinstance(query, tuple):
            target, claim = query
        else:
            target, claim = query, None
        server = self._resolve_target(target)
        return server, claim if claim is not None else server.claimed_country

    def _resolve_target(self, target: Target) -> ProxyServer:
        if isinstance(target, ProxyServer):
            return target
        if isinstance(target, int):
            server = self._by_host_id.get(target)
            if server is None:
                raise KeyError(f"no fleet server with host id {target!r}")
            return server
        if isinstance(target, str):
            named = self._by_hostname.get(target)
            if named is None:
                raise KeyError(f"no fleet server named {target!r}")
            return named
        raise TypeError(f"cannot resolve query target {target!r}")

    def _resolve(self, server: ProxyServer, claim: str,
                 measurement: _Measurement) -> VerdictResponse:
        """Assess a cached measurement against a claim, filling caches."""
        key = (server.host.host_id, self.epoch.digest, claim)
        entry = self.verdict_cache.peek(key)
        if entry is None:
            entry = self._assess(claim, measurement)
            self.verdict_cache.put(key, entry)
        return self._response(server, claim, entry, cached=False)

    def _assess(self, claim: str,
                measurement: _Measurement) -> CachedVerdict:
        region = Region.from_packbits(self.algorithm.grid,
                                      measurement.region_bytes)
        assessment = assess_claim(region, claim, self.scenario.worldmap)
        return CachedVerdict(
            measurement=measurement,
            verdict=assessment.verdict.value,
            continent_verdict=assessment.continent_verdict.value,
            countries=tuple(assessment.countries_covered),
            area_km2=assessment.region_area_km2)

    def _response(self, server: ProxyServer, claim: str,
                  entry: CachedVerdict, cached: bool) -> VerdictResponse:
        measurement = entry.measurement
        return VerdictResponse(
            hostname=server.hostname,
            host_id=server.host.host_id,
            claim=claim,
            verdict=entry.verdict,
            continent_verdict=entry.continent_verdict,
            countries=entry.countries,
            area_km2=entry.area_km2,
            deduced_continent=measurement.deduced_continent,
            used_landmarks=measurement.used_landmarks,
            degraded=measurement.degraded,
            notes=measurement.notes,
            epoch_digest=self.epoch.digest,
            region_sha256=hashlib.sha256(
                measurement.region_bytes).hexdigest(),
            cached=cached)

    def _measure_one(self, server: ProxyServer
                     ) -> Tuple[Union[TwoPhaseMeasurement,
                                      MeasurementFailed], Set[str]]:
        """Collect one server's measurement under the quarantine filter.

        RNG keying, measurer construction, and measurement-epoch scoping
        mirror the audit pipeline's ``_collect_one`` exactly; the only
        addition is the recording wrapper, which (a) accumulates every
        landmark name the driver requests — the measurement's dependency
        set — and (b) drops quarantined names at probe time, *after*
        panel selection, so panels (and their RNG draws) are independent
        of the quarantine set.
        """
        rng = np.random.default_rng((self.seed, server.host.host_id))
        measurer = ProxyMeasurer(self.scenario.network, self.scenario.client,
                                 server, eta=self.eta.eta,
                                 seed=server.host.host_id,
                                 retry_policy=self._retry_policy)
        requested: Set[str] = set()
        quarantined = self._quarantined

        def measure(landmarks: Sequence[Landmark]) -> List[RttObservation]:
            requested.update(lm.name for lm in landmarks)
            kept = [lm for lm in landmarks if lm.name not in quarantined]
            return measurer.observe(kept)

        with self.scenario.network.measurement_epoch_for(server.host):
            try:
                return self._driver.collect(measure, rng), requested
            except MeasurementFailed as exc:
                return exc, requested

    def _evaluate_chunk(self, host_ids: List[int]) -> List[_Payload]:
        """Measure a chunk of hosts, one ``predict_fleet`` sweep.

        The structure mirrors the audit pipeline's ``_fleet_payloads``:
        measurement stays per-server, a dead tunnel yields the
        empty-region payload, an observation-starved measurement is
        finished scalar, and everything else shares one vectorized
        multilateration pass.
        """
        payloads: List[_Payload] = []
        fleet: List[tuple] = []
        with self.scenario.network.faults_installed(self._injector):
            for host_id in host_ids:
                server = self._by_host_id.get(host_id)
                assert server is not None
                collected, requested = self._measure_one(server)
                if isinstance(collected, MeasurementFailed):
                    region = Region.empty(self.algorithm.grid)
                    payloads.append((
                        host_id, region.packed_bytes(), "unknown", (),
                        tuple(sorted(requested)), True,
                        (f"tunnel unreachable: {collected}",), ()))
                elif (len(collected.observations)
                      < MIN_MULTILATERATION_OBSERVATIONS):
                    payloads.append(self._payload_from(
                        host_id, self._driver.finish(collected), requested))
                else:
                    fleet.append((host_id, collected, requested))
            if fleet:
                predictions = self.algorithm.predict_fleet(
                    [measurement.observations
                     for _, measurement, _ in fleet])
                for (host_id, measurement, requested), prediction in zip(
                        fleet, predictions):
                    payloads.append(self._payload_from(
                        host_id,
                        self._driver.finish(measurement, prediction),
                        requested))
        order = {host_id: at for at, host_id in enumerate(host_ids)}
        payloads.sort(key=lambda payload: order[payload[0]])
        return payloads

    def _payload_from(self, host_id: int, result: TwoPhaseResult,
                      requested: Set[str]) -> _Payload:
        observations = (tuple(result.phase2_observations)
                        + tuple(result.phase1_observations))
        return (host_id, result.prediction.region.packed_bytes(),
                result.deduced_continent, tuple(result.phase2_landmarks),
                tuple(sorted(requested)), result.degraded,
                tuple(result.notes), observations)

    def _evaluate(self, targets: Dict[int, ProxyServer]
                  ) -> Dict[int, _Payload]:
        """Measure every target, micro-batched, optionally forked.

        Ad-hoc targets (servers outside the fleet index) are registered
        before evaluation so chunks can address them by host id; the
        registration is permanent — the service now knows the host.
        """
        for host_id, server in targets.items():
            if host_id not in self._by_host_id:
                self._by_host_id[host_id] = server
                self._by_hostname[server.hostname] = server
        host_ids = list(targets)
        chunks = [host_ids[at:at + self.batch_max]
                  for at in range(0, len(host_ids), self.batch_max)]
        out: Dict[int, _Payload] = {}
        workers = min(self.workers, len(chunks))
        use_fork = (workers > 1
                    and "fork" in multiprocessing.get_all_start_methods())
        if use_fork:
            global _SERVICE_FORK_STATE
            context = multiprocessing.get_context("fork")
            _SERVICE_FORK_STATE = self
            try:
                with ProcessPoolExecutor(max_workers=workers,
                                         mp_context=context) as pool:
                    futures = [pool.submit(_service_fork_worker, chunk)
                               for chunk in chunks]
                    for future in as_completed(futures):
                        for payload in future.result():
                            out[payload[0]] = payload
            finally:
                _SERVICE_FORK_STATE = None
        else:
            for chunk in chunks:
                for payload in self._evaluate_chunk(chunk):
                    out[payload[0]] = payload
        return out

    def _record_from_payload(self, payload: _Payload) -> AuditRecord:
        """An audit record for the sink, built the audit pipeline's way."""
        (host_id, packed, _continent, used, _requested, degraded, notes,
         observations) = payload
        server = self._by_host_id[host_id]
        region = Region.from_packbits(self.algorithm.grid, packed)
        assessment = assess_claim(region, server.claimed_country,
                                  self.scenario.worldmap)
        return AuditRecord(
            server=server,
            region=region,
            assessment=assessment,
            initial_verdict=assessment.verdict,
            observations=list(observations),
            landmark_names=list(used),
            degraded=degraded,
            failure_notes=list(notes))


def _measurement_from(payload: _Payload) -> _Measurement:
    (_host_id, packed, continent, used, requested, degraded, notes,
     _observations) = payload
    return _Measurement(
        region_bytes=packed,
        deduced_continent=continent,
        used_landmarks=used,
        requested_landmarks=frozenset(requested),
        degraded=degraded,
        notes=notes)
