"""The always-on verdict service: one fleet audit, millions of verdicts.

The batch pipeline in :mod:`repro.experiments.audit` answers every
claim-credibility question by re-running measurement + multilateration;
this package decouples per-query cost from per-measurement cost.  A
:class:`VerdictService` holds the warmed topology (CSR rows, distance
bank, country words) once, snapshots that state under a
:class:`TopologyEpoch` content digest, and serves claim queries out of
an epoch-keyed :class:`VerdictCache` — falling back to micro-batched
``predict_fleet`` sweeps only for genuinely uncached hosts.

The determinism contract of the audit pipeline carries over verbatim: a
cache-hit verdict is byte-identical to a cold recompute at the same
epoch, at any batch size, arrival order, or worker count.
"""

from .epoch import EpochRollStats, TopologyEpoch
from .frontend import FrontendStats, ServiceFrontend
from .verdict import CachedVerdict, VerdictCache, VerdictResponse, VerdictService

__all__ = [
    "CachedVerdict",
    "EpochRollStats",
    "FrontendStats",
    "ServiceFrontend",
    "TopologyEpoch",
    "VerdictCache",
    "VerdictResponse",
    "VerdictService",
]
