"""The crowdsourced validation cohort (section 5 of the paper).

40 volunteers plus 150 Mechanical Turk workers, in self-reported locations
rounded to two decimal places (~10 km of position uncertainty), measured
with the *web* tool — mostly under Windows, which matters because that is
the noisiest measurement regime and part of why CBG wins the comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..geo.worldmap import WorldMap
from .hosts import Host, HostFactory
from .tools import BROWSER_OUTLIER_MEAN_MS

#: Continental distribution of crowdsourced hosts (Figure 8: majority in
#: Europe and North America, "but we have enough contributors elsewhere
#: for statistics").
CROWD_QUOTAS: Dict[str, int] = {
    "EU": 62, "NA": 58, "AS": 24, "SA": 14, "AF": 10, "OC": 10, "CA": 7, "AU": 5,
}

#: Fraction of contributors running Windows (paper: "most").
WINDOWS_FRACTION = 0.72


@dataclass(frozen=True)
class CrowdHost:
    """One crowdsourced contributor: a host plus their reported location."""

    host: Host
    reported_lat: float     # rounded to 2 decimals, as contributors reported
    reported_lon: float
    browser: str
    cohort: str             # "volunteer" or "mturk"

    @property
    def true_location(self):
        return (self.host.lat, self.host.lon)


def build_crowd(factory: HostFactory, worldmap: WorldMap, seed: int = 0,
                quotas: Optional[Dict[str, int]] = None) -> List[CrowdHost]:
    """Place the crowdsourced cohort at random land points per continent."""
    rng = np.random.default_rng(seed)
    quotas = quotas if quotas is not None else CROWD_QUOTAS
    browsers = sorted(BROWSER_OUTLIER_MEAN_MS)
    crowd: List[CrowdHost] = []
    n_volunteers = 40
    for continent, quota in sorted(quotas.items()):
        countries = [c for c in worldmap.registry.by_continent(continent)
                     if c.hosting_tier <= 2]
        if not countries:
            countries = worldmap.registry.by_continent(continent)
        for i in range(quota):
            country = countries[int(rng.integers(len(countries)))]
            lat, lon = worldmap.random_point_in(country.iso2, rng)
            os = "windows" if rng.random() < WINDOWS_FRACTION else "linux"
            host = factory.create(lat, lon, name=f"crowd-{continent}-{i}", os=os)
            cohort = "volunteer" if len(crowd) < n_volunteers else "mturk"
            crowd.append(CrowdHost(
                host=host,
                reported_lat=round(lat, 2),
                reported_lon=round(lon, 2),
                browser=browsers[int(rng.integers(len(browsers)))],
                cohort=cohort,
            ))
    return crowd
