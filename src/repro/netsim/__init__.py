"""Synthetic Internet substrate.

Replaces every external measurement dependency of the paper — RIPE Atlas,
the commercial VPN fleets, the crowdsourced cohort, and the IP-to-location
databases — with seeded, internally consistent simulations.  See DESIGN.md
section 2 for the substitution table.
"""

from .adversary import STRATEGIES, AdversarialTunnel
from .atlas import ANCHOR_QUOTAS, PROBE_QUOTAS, AtlasConstellation, Landmark
from .cities import (
    CONGESTION_SCALE_MS,
    GLOBAL_HUBS,
    REGIONAL_HUBS,
    SATELLITE_ONLY_COUNTRIES,
    City,
    build_cities,
    cities_by_continent,
)
from .crowd import CROWD_QUOTAS, CrowdHost, build_crowd
from .faults import (
    FAULT_PROFILES,
    FaultInjector,
    FaultProfile,
    MeasurementFailed,
    resolve_fault_profile,
)
from .hosts import Host, HostFactory
from .ipdb import DEFAULT_DATABASES, IpToLocationDatabase, IpdbPanel
from .network import Network, Unreachable
from .proxies import (
    PROVIDER_PROFILES,
    ProxiedClient,
    ProxyServer,
    VpnProvider,
    build_proxy_fleet,
    competitor_claim_counts,
)
from .tools import (
    BROWSER_OUTLIER_MEAN_MS,
    CliTool,
    MeasurementSample,
    NavigationTimingWebTool,
    WebTool,
)
from .traceroute import (
    Hop,
    TracerouteResult,
    survey_measurement_channels,
    traceroute,
    traceroute_through_proxy,
)
from .topology import AutonomousSystem, RouterId, Topology, build_topology

__all__ = [
    "ANCHOR_QUOTAS",
    "AdversarialTunnel",
    "STRATEGIES",
    "AtlasConstellation",
    "AutonomousSystem",
    "BROWSER_OUTLIER_MEAN_MS",
    "CONGESTION_SCALE_MS",
    "CROWD_QUOTAS",
    "City",
    "CliTool",
    "CrowdHost",
    "DEFAULT_DATABASES",
    "FAULT_PROFILES",
    "FaultInjector",
    "FaultProfile",
    "GLOBAL_HUBS",
    "MeasurementFailed",
    "resolve_fault_profile",
    "Host",
    "HostFactory",
    "IpToLocationDatabase",
    "IpdbPanel",
    "Landmark",
    "MeasurementSample",
    "NavigationTimingWebTool",
    "Hop",
    "TracerouteResult",
    "survey_measurement_channels",
    "traceroute",
    "traceroute_through_proxy",
    "Network",
    "PROBE_QUOTAS",
    "PROVIDER_PROFILES",
    "ProxiedClient",
    "ProxyServer",
    "REGIONAL_HUBS",
    "RouterId",
    "SATELLITE_ONLY_COUNTRIES",
    "Topology",
    "Unreachable",
    "VpnProvider",
    "WebTool",
    "build_cities",
    "build_crowd",
    "build_proxy_fleet",
    "build_topology",
    "cities_by_continent",
    "competitor_claim_counts",
]
