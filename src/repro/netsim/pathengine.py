"""Batched shortest-path engine over the router graph.

The latency oracle used to resolve every routed delay through per-source
pure-Python ``networkx`` Dijkstra trees.  A fleet audit touches hundreds
of source routers (every landmark's access router, every proxy's hosting
router, the measurement client), so cold starts paid one interpreted
graph traversal per source — the dominant serial cost once the geometry
side was vectorised (see :mod:`repro.geo.bank`).

:class:`PathEngine` replaces that with ``scipy.sparse.csgraph``:

* the :class:`~repro.netsim.topology.Topology` graph is converted **once**
  into a CSR adjacency matrix over a canonical (sorted) router ordering;
* shortest-path trees for any batch of sources are computed by **one**
  multi-source C-level Dijkstra call and stored as rows of a contiguous
  ``(n_sources, n_routers)`` float64 distance matrix;
* rows are keyed by source router and live in an insertion-ordered cache
  whose eviction drops the oldest half (mirroring
  ``DistanceBank._evict_oldest_half`` — never the thundering-herd full
  clear);
* :meth:`warm` precomputes the rows for a whole host universe before the
  audit forks its worker pool, so children inherit the matrix as
  copy-on-write pages;
* with ``REPRO_PATHENGINE_CACHE=<dir>`` set, warmed matrices are persisted
  as ``.npy`` files keyed by a content digest of the topology plus the
  source set, and later runs memory-map them back instead of recomputing
  — a cache hit yields bit-identical distances because float64 values
  round-trip exactly through the file.

Everything is versioned against ``topology.version``: a structural
mutation (hosting-AS creation) rebuilds the CSR matrix and drops every
cached row.

**Determinism.** Dijkstra relaxations accumulate ``dist[u] + w(u, v)``
along the shortest-path tree in both implementations, and on every
substrate we generate the scipy and networkx results have been observed
bit-identical.  The two *can* in principle diverge in the last ulp when
distinct shortest paths tie exactly; routed delays therefore always come
from one engine per process (``REPRO_PATH_ENGINE=networkx`` forces the
old oracle), and the serial == parallel == resumed audit contract holds
within either engine because rows are pure functions of the topology,
independent of computation order.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import config, sanitize
from .topology import RouterId, Topology

try:  # pragma: no cover - exercised implicitly by every engine test
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import dijkstra as _csgraph_dijkstra

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover - container always ships scipy
    HAVE_SCIPY = False

#: Environment variable selecting the routed-delay oracle
#: (``"networkx"`` restores the per-source pure-Python Dijkstra).
#: Declared in :mod:`repro.config`; kept here for importers.
ENGINE_ENV = config.PATH_ENGINE.name

#: Environment variable naming a directory for persistent warm-start
#: matrices.  Unset (the default) disables persistence entirely.
CACHE_ENV = config.PATHENGINE_CACHE.name


class PathEngine:
    """CSR-backed batched shortest paths for a :class:`Topology`.

    Parameters
    ----------
    topology:
        The router graph.  Structural mutations are detected through
        ``topology.version`` on every public call.
    cache_dir:
        Directory for memmapped warm-start matrices; defaults to the
        ``REPRO_PATHENGINE_CACHE`` environment variable, and ``None``
        (no persistence) when that is unset.
    max_rows:
        Soft bound on cached shortest-path rows.  When exceeded, the
        oldest half is evicted; warm-started (memmapped) rows count
        toward the bound like any other row.
    """

    def __init__(self, topology: Topology, cache_dir: Optional[str] = None,
                 max_rows: int = 4096):
        if not HAVE_SCIPY:
            raise RuntimeError(
                "PathEngine requires scipy; set REPRO_PATH_ENGINE=networkx "
                "to use the pure-Python oracle instead")
        if max_rows < 2:
            raise ValueError(f"max_rows too small: {max_rows!r}")
        self.topology = topology
        self.max_rows = int(max_rows)
        env_cache = config.env_value(CACHE_ENV)
        assert env_cache is None or isinstance(env_cache, str)
        self.cache_dir = cache_dir if cache_dir is not None else env_cache
        self._version: Optional[int] = None
        self._nodes: List[RouterId] = []
        self._index: Dict[RouterId, int] = {}
        self._csr = None
        self._rows: Dict[RouterId, np.ndarray] = {}
        self._digest: Optional[str] = None
        # Warm-start fast path: the last warmed (k, n) matrix plus a
        # node-index -> matrix-row map (-1 where not warmed), letting
        # path_pairs_ms gather a whole pair batch with one fancy index.
        self._warm_matrix: Optional[np.ndarray] = None
        self._warm_pos: Optional[np.ndarray] = None

    # -- graph conversion -----------------------------------------------------

    def _rebuild(self) -> None:
        graph = self.topology.graph
        self._nodes = sorted(graph.nodes)
        self._index = {node: i for i, node in enumerate(self._nodes)}
        n = len(self._nodes)
        k = graph.number_of_edges()
        rows = np.empty(2 * k, dtype=np.int32)
        cols = np.empty(2 * k, dtype=np.int32)
        data = np.empty(2 * k, dtype=np.float64)
        for at, (u, v, w) in enumerate(graph.edges(data="latency_ms")):
            iu, iv = self._index[u], self._index[v]
            rows[2 * at], cols[2 * at], data[2 * at] = iu, iv, w
            rows[2 * at + 1], cols[2 * at + 1], data[2 * at + 1] = iv, iu, w
        # The graph is undirected with symmetric weights, so a symmetric
        # CSR matrix traversed as *directed* gives identical path lengths
        # while skipping csgraph's undirected double-scan.
        self._csr = csr_matrix((data, (rows, cols)), shape=(n, n))
        self._rows = {}
        self._digest = None
        self._warm_matrix = None
        self._warm_pos = None
        self._version = self.topology.version

    def _ensure_current(self) -> None:
        if self._csr is None or self._version != self.topology.version:
            self._rebuild()

    @property
    def n_routers(self) -> int:
        self._ensure_current()
        return len(self._nodes)

    @property
    def n_rows(self) -> int:
        """Number of shortest-path rows currently cached."""
        return len(self._rows)

    def _index_of(self, router: RouterId) -> int:
        try:
            return self._index[router]
        except KeyError:
            from .network import Unreachable
            raise Unreachable(
                f"router {router!r} is not in the graph") from None

    # -- row computation ------------------------------------------------------

    def _evict_oldest_half(self) -> None:
        drop = len(self._rows) // 2
        for key in list(self._rows)[:drop]:
            del self._rows[key]

    def _compute_rows(self, sources: Sequence[RouterId]) -> np.ndarray:
        """One batched multi-source Dijkstra; returns ``(k, n)`` float64."""
        indices = np.array([self._index_of(s) for s in sources],
                           dtype=np.intp)
        matrix = _csgraph_dijkstra(self._csr, directed=True, indices=indices)
        return np.atleast_2d(matrix)

    def ensure_rows(self, sources: Sequence[RouterId]) -> None:
        """Compute (in one batch) any missing shortest-path rows."""
        self._ensure_current()
        missing: List[RouterId] = []
        seen = set()
        for source in sources:
            if source not in self._rows and source not in seen:
                seen.add(source)
                missing.append(source)
        if not missing:
            return
        if len(self._rows) + len(missing) > self.max_rows:
            self._evict_oldest_half()
        matrix = self._compute_rows(missing)
        for offset, source in enumerate(missing):
            self._rows[source] = matrix[offset]

    def distances_from(self, router: RouterId) -> np.ndarray:
        """The full shortest-path row of one source router (read-only)."""
        self.ensure_rows([router])
        return self._rows[router]

    # -- public queries -------------------------------------------------------

    def path_ms(self, a: RouterId, b: RouterId) -> float:
        """Routed one-way delay between two routers, ms.

        Resolves from the canonically-smaller endpoint, exactly like the
        networkx oracle, so measured RTTs never depend on which
        direction's row happens to be cached.
        """
        if a == b:
            # Matches the networkx oracle: identity needs no graph entry.
            return 0.0
        self._ensure_current()
        source, target = (a, b) if a <= b else (b, a)
        row = self._rows.get(source)
        if row is None:
            self.ensure_rows([source])
            row = self._rows[source]
        value = row[self._index_of(target)]
        if not np.isfinite(value):
            from .network import Unreachable
            raise Unreachable(f"no path between {a!r} and {b!r}")
        return float(value)

    def path_pairs_ms(self, a_routers: Sequence[RouterId],
                      b_routers: Sequence[RouterId]) -> np.ndarray:
        """Vectorised routed delays for aligned router pairs.

        All missing source rows are filled by a single batched Dijkstra;
        values are then gathered per source row, giving the exact floats
        :meth:`path_ms` would return pair by pair.
        """
        if len(a_routers) != len(b_routers):
            raise ValueError("router lists disagree in length")
        self._ensure_current()
        n = len(a_routers)
        out = np.zeros(n, dtype=np.float64)
        if n == 0:
            return out
        index = self._index
        try:
            ia = np.fromiter((index[r] for r in a_routers),
                             dtype=np.intp, count=n)
            ib = np.fromiter((index[r] for r in b_routers),
                             dtype=np.intp, count=n)
        except KeyError as error:
            from .network import Unreachable
            raise Unreachable(
                f"router {error.args[0]!r} is not in the graph") from None
        # Nodes are sorted, so the canonically-smaller endpoint is simply
        # the smaller index: the whole batch canonicalises in two ufuncs.
        src = np.minimum(ia, ib)
        dst = np.maximum(ia, ib)
        diff = src != dst
        resolved = False
        if self._warm_pos is not None and diff.any():
            pos = self._warm_pos[src[diff]]
            if pos.min() >= 0:
                # Every source is warm: one fancy-index gather.
                out[diff] = self._warm_matrix[pos, dst[diff]]
                resolved = True
        if not resolved and diff.any():
            by_source: Dict[RouterId, Tuple[List[int], List[int]]] = {}
            for at in np.flatnonzero(diff):
                source = self._nodes[src[at]]
                positions, targets = by_source.setdefault(source, ([], []))
                positions.append(int(at))
                targets.append(int(dst[at]))
            self.ensure_rows(list(by_source))
            for source, (positions, targets) in by_source.items():
                out[positions] = self._rows[source][targets]
        if not np.isfinite(out).all():
            bad = int(np.flatnonzero(~np.isfinite(out))[0])
            from .network import Unreachable
            raise Unreachable(
                f"no path between {a_routers[bad]!r} and {b_routers[bad]!r}")
        return out

    # -- warm start -----------------------------------------------------------

    def topology_digest(self) -> str:
        """Content digest of the router graph (nodes, edges, weights)."""
        self._ensure_current()
        if self._digest is None:
            hasher = hashlib.sha256()
            hasher.update(np.int64(len(self._nodes)).tobytes())
            hasher.update(np.asarray(self._nodes, dtype=np.int64).tobytes())
            edges = sorted(
                (min(u, v), max(u, v), w)
                for u, v, w in self.topology.graph.edges(data="latency_ms"))
            for u, v, w in edges:
                hasher.update(np.asarray(u, dtype=np.int64).tobytes())
                hasher.update(np.asarray(v, dtype=np.int64).tobytes())
                hasher.update(np.float64(w).tobytes())
            self._digest = hasher.hexdigest()
        return self._digest

    def _warm_cache_path(self, sources: List[RouterId]) -> str:
        hasher = hashlib.sha256()
        hasher.update(self.topology_digest().encode())
        hasher.update(np.asarray(sources, dtype=np.int64).tobytes())
        return os.path.join(self.cache_dir,
                            f"pathengine-{hasher.hexdigest()[:32]}.npy")

    def warm(self, routers: Sequence[RouterId]) -> bool:
        """Precompute the rows of a whole source universe in one batch.

        Called once per audit, before the worker pool forks, with every
        router a measurement could use as its canonical source.  With a
        cache directory configured the ``(n_sources, n_routers)`` matrix
        is persisted and later runs memory-map it back (returns ``True``
        on such a cache hit); the memmap pages are shared read-only
        across every process that inherits the engine.
        """
        self._ensure_current()
        seen = set()
        sources: List[RouterId] = []
        for router in routers:
            if router not in seen:
                seen.add(router)
                sources.append(router)
        sources.sort()
        for router in sources:
            self._index_of(router)          # validate before any I/O
        if not sources:
            return False
        if self._warmed_already(sources):
            # Every requested row is cached *and* reachable through the
            # fancy-index gather: repeated warming (one audit per figure,
            # all over the same fleet) is a true no-op instead of a full
            # multi-source Dijkstra per call.
            return False
        if self.cache_dir is None:
            missing = [s for s in sources if s not in self._rows]
            if len(missing) < len(sources):
                # Partial warm: batch-compute only the missing trees and
                # stitch the cached rows in.  Rows are pure functions of
                # the topology, so reusing them is bit-identical to
                # recomputing the whole matrix.
                matrix = np.empty((len(sources), len(self._nodes)),
                                  dtype=np.float64)
                if missing:
                    fresh = self._compute_rows(missing)
                fresh_of = {s: i for i, s in enumerate(missing)}
                for offset, source in enumerate(sources):
                    at = fresh_of.get(source)
                    matrix[offset] = (self._rows[source] if at is None
                                      else fresh[at])
            else:
                matrix = self._compute_rows(sources)
            self._adopt(sources, matrix)
            return False
        path = self._warm_cache_path(sources)
        if os.path.exists(path):
            matrix = np.load(path, mmap_mode="r")
            if matrix.shape == (len(sources), len(self._nodes)):
                self._adopt(sources, matrix)
                return True
            # Shape mismatch can only mean a digest collision; recompute.
        matrix = self._compute_rows(sources)
        tmp_path = None
        try:
            os.makedirs(self.cache_dir, exist_ok=True)
            handle, tmp_path = tempfile.mkstemp(dir=self.cache_dir,
                                                suffix=".npy.tmp")
            with os.fdopen(handle, "wb") as stream:
                np.save(stream, matrix)
            os.replace(tmp_path, path)
        except OSError:
            # Persistence is an optimisation; never fail the audit on a
            # read-only or full cache directory.
            if tmp_path is not None and os.path.exists(tmp_path):
                os.unlink(tmp_path)
        self._adopt(sources, matrix)
        return False

    def _warmed_already(self, sources: List[RouterId]) -> bool:
        """All sources cached and covered by the fancy-index gather?"""
        if self._warm_pos is None:
            return False
        if len(sources) > len(self._rows):
            return False
        for source in sources:
            if source not in self._rows:
                return False
            if self._warm_pos[self._index[source]] < 0:
                return False
        return True

    def _nx_reference_row(self, source: RouterId) -> np.ndarray:
        """One source's distances by an independent networkx Dijkstra.

        The sanitizer's cross-check oracle: pure Python over the same
        graph and weights, sharing none of the CSR conversion, batching,
        or memmap machinery whose failure it is meant to catch.
        """
        import networkx as nx

        lengths = nx.single_source_dijkstra_path_length(
            self.topology.graph, source, weight="latency_ms")
        row = np.full(len(self._nodes), np.inf, dtype=np.float64)
        for node, distance in lengths.items():
            row[self._index[node]] = distance
        return row

    def _sanitize_spot_check(self, sources: List[RouterId]) -> None:
        """Cross-check one deterministically sampled warmed row.

        The sample index comes from the topology digest — a pure
        function of the graph, never of RNG state or insertion order —
        so arming the sanitizer cannot perturb any random stream.
        """
        if not sources:
            return
        pick = int(self.topology_digest()[:8], 16) % len(sources)
        source = sources[pick]
        sanitize.check_rows_close(
            self._rows[source], self._nx_reference_row(source),
            f"PathEngine.warm spot check, source {source!r}")

    def _adopt(self, sources: List[RouterId], matrix: np.ndarray) -> None:
        if len(self._rows) + len(sources) > self.max_rows:
            self._evict_oldest_half()
        for offset, source in enumerate(sources):
            self._rows[source] = matrix[offset]
        # Register the contiguous matrix for the fancy-index fast path.
        # Eviction never invalidates it: rows are pure functions of the
        # topology, so stale entries are still the right floats.
        pos = np.full(len(self._nodes), -1, dtype=np.intp)
        pos[[self._index[s] for s in sources]] = np.arange(len(sources))
        self._warm_matrix = matrix
        self._warm_pos = pos
        if sanitize.enabled():
            self._sanitize_spot_check(sources)
