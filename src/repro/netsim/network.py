"""The network facade: path latencies and RTT sampling.

Separates the *deterministic* part of a round-trip time (routed path
propagation + last miles, cached per router pair) from the *stochastic*
part (queueing noise, congestion spikes), which is resampled per
measurement.  The decomposition is what lets calibration behave like the
real Internet: the minimum of many samples approaches the routed-path
floor, which is still above the great-circle/200 km/ms physical floor
because routes are circuitous.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Optional, Sequence

import networkx as nx
import numpy as np

from .. import config
from .faults import FaultInjector, MeasurementFailed
from .hosts import Host
from .topology import RouterId, Topology


class Unreachable(Exception):
    """Raised when no path exists between two routers."""


class Network:
    """Latency oracle over a :class:`~repro.netsim.topology.Topology`.

    Routed delays resolve through a batched CSR shortest-path engine
    (:class:`~repro.netsim.pathengine.PathEngine`) by default;
    ``path_engine="networkx"`` — or ``REPRO_PATH_ENGINE=networkx`` in the
    environment — restores the original per-source pure-Python Dijkstra
    oracle.  Both obey the canonical smaller-endpoint rule, so measured
    RTTs never depend on cache history in either mode.

    An optional :class:`~repro.netsim.faults.FaultInjector` can be
    installed (``faults_installed``); it only afflicts samples taken
    inside a measurement epoch (``measurement_epoch_for``), so the mesh
    calibration archive and diagnostic paths always see the fault-free
    substrate.  Without an injector — or outside an epoch — every code
    path below is byte-identical to the fault-free simulator and consumes
    no extra random draws.
    """

    _PATH_CACHE_SLOTS = 4096

    def __init__(self, topology: Topology, seed: int = 0,
                 faults: Optional[FaultInjector] = None,
                 path_engine: Optional[str] = None):
        from .pathengine import ENGINE_ENV, HAVE_SCIPY, PathEngine

        self.topology = topology
        self._rng = np.random.default_rng(seed)
        self._sssp_cache: Dict[RouterId, Dict[RouterId, float]] = {}
        self._cached_version = topology.version
        self.faults = faults
        self._fault_time: Optional[float] = None
        # An *explicit* engine choice (constructor argument or env knob)
        # is honoured or rejected, never silently downgraded: asking for
        # csr on a scipy-free host must fail loudly rather than hand
        # back verdicts from a different oracle.  Only the implicit
        # default may fall back to networkx when scipy is absent.
        if path_engine is not None:
            mode = config.PATH_ENGINE.parse(path_engine)
            explicit = True
        else:
            mode = config.env_value(ENGINE_ENV)
            explicit = config.is_set(ENGINE_ENV)
        assert isinstance(mode, str)
        if mode == "csr" and not HAVE_SCIPY:
            if explicit:
                raise RuntimeError(
                    "path engine 'csr' was explicitly requested but scipy "
                    f"is not installed; unset {ENGINE_ENV} or choose "
                    "'networkx'")
            mode = "networkx"
        self.path_engine_mode = mode
        self._engine: Optional[PathEngine] = (
            PathEngine(topology) if mode == "csr" else None)
        self._congestion: Optional[np.ndarray] = None

    # -- fault layer ----------------------------------------------------------

    @contextmanager
    def faults_installed(self, injector: Optional[FaultInjector]):
        """Install (or clear) the fault injector for the duration."""
        previous = self.faults
        self.faults = injector
        try:
            yield self
        finally:
            self.faults = previous

    @contextmanager
    def measurement_epoch_for(self, host: Host):
        """Activate fault injection at ``host``'s campaign time.

        Samples taken inside the context are afflicted as if measured at
        the logical instant the installed injector assigns to ``host`` —
        a pure function of the host id, so epochs are order-independent.
        A no-op (and free) when no injector is installed.
        """
        if self.faults is None:
            yield self
            return
        previous = self._fault_time
        self._fault_time = self.faults.campaign_time(host.host_id)
        try:
            yield self
        finally:
            self._fault_time = previous

    @contextmanager
    def fault_free(self):
        """Suspend any open measurement epoch for the duration.

        Archived-data paths (the mesh-ping database landmark calibration
        reads from) must see the pristine substrate even when they are
        lazily materialised in the middle of an afflicted measurement —
        otherwise the cached value would depend on *which* target's epoch
        happened to compute it first, breaking order-independence.
        """
        previous = self._fault_time
        self._fault_time = None
        try:
            yield self
        finally:
            self._fault_time = previous

    def active_faults(self) -> Optional[FaultInjector]:
        """The injector, iff a measurement epoch is open."""
        if self.faults is not None and self._fault_time is not None:
            return self.faults
        return None

    def _check_version(self) -> None:
        """Drop shortest-path caches if the topology grew new routers."""
        if self.topology.version != self._cached_version:
            self._sssp_cache.clear()
            self._cached_version = self.topology.version

    # -- deterministic part ---------------------------------------------------

    def _distances_from(self, router: RouterId) -> Dict[RouterId, float]:
        cached = self._sssp_cache.get(router)
        if cached is None:
            if router not in self.topology.graph:
                raise Unreachable(f"router {router!r} is not in the graph")
            cached = nx.single_source_dijkstra_path_length(
                self.topology.graph, router, weight="latency_ms")
            if len(self._sssp_cache) >= self._PATH_CACHE_SLOTS:
                # Evict the oldest half (dicts preserve insertion order)
                # rather than wiping the cache: a full clear mid-audit
                # forces a thundering-herd recompute of every tree the
                # working set still needs.
                drop = len(self._sssp_cache) // 2
                for key in list(self._sssp_cache)[:drop]:
                    del self._sssp_cache[key]
            self._sssp_cache[router] = cached
        return cached

    def path_one_way_ms(self, a: RouterId, b: RouterId) -> float:
        """Routed one-way delay between two routers, ms."""
        if a == b:
            return 0.0
        if self._engine is not None:
            return self._engine.path_ms(a, b)
        self._check_version()
        # Always resolve from the canonically-smaller endpoint.  The two
        # directions sum the same path in opposite orders and can differ
        # in the last ulp; choosing by whichever tree happens to be cached
        # would make measured RTTs depend on cache history, breaking the
        # serial == parallel bit-identity of audits.
        source, target = (a, b) if a <= b else (b, a)
        distances = self._sssp_cache.get(source)
        if distances is None:
            distances = self._distances_from(source)
        try:
            return float(distances[target])
        except KeyError:
            raise Unreachable(f"no path between {a!r} and {b!r}") from None

    def path_pairs_ms(self, a_routers: Sequence[RouterId],
                      b_routers: Sequence[RouterId]) -> np.ndarray:
        """Routed one-way delays for aligned router pairs, ms.

        In CSR mode every missing shortest-path tree is computed by one
        batched multi-source Dijkstra; the networkx fallback resolves the
        pairs one by one.  Both return exactly the floats
        :meth:`path_one_way_ms` would.
        """
        if self._engine is not None:
            return self._engine.path_pairs_ms(a_routers, b_routers)
        return np.array([self.path_one_way_ms(a, b)
                         for a, b in zip(a_routers, b_routers)],
                        dtype=np.float64)

    def topology_digest(self) -> str:
        """Content digest of the router graph (nodes, edges, weights).

        Engine-independent: the networkx fallback hashes exactly the
        bytes the CSR engine does, so a service epoch captured under one
        path engine matches the digest captured under the other.
        """
        if self._engine is not None:
            return self._engine.topology_digest()
        import hashlib

        nodes = sorted(self.topology.graph.nodes)
        hasher = hashlib.sha256()
        hasher.update(np.int64(len(nodes)).tobytes())
        hasher.update(np.asarray(nodes, dtype=np.int64).tobytes())
        edges = sorted(
            (min(u, v), max(u, v), w)
            for u, v, w in self.topology.graph.edges(data="latency_ms"))
        for u, v, w in edges:
            hasher.update(np.asarray(u, dtype=np.int64).tobytes())
            hasher.update(np.asarray(v, dtype=np.int64).tobytes())
            hasher.update(np.float64(w).tobytes())
        return hasher.hexdigest()

    def warm_paths(self, hosts: Sequence[Host]) -> None:
        """Precompute shortest-path rows for a host universe.

        One batched Dijkstra covers every router the hosts attach to;
        called before an audit forks its worker pool so children inherit
        the rows copy-on-write.  A no-op in networkx mode (the per-source
        cache warms lazily there, as before).
        """
        if self._engine is not None:
            self._engine.warm([host.router for host in hosts])

    def route(self, a: RouterId, b: RouterId) -> list:
        """The router-level path between two routers (for traceroute).

        Not cached: traceroute is a diagnostic, not a hot path.
        """
        if a not in self.topology.graph or b not in self.topology.graph:
            raise Unreachable(f"router {a!r} or {b!r} not in the graph")
        try:
            return nx.shortest_path(self.topology.graph, a, b,
                                    weight="latency_ms")
        except nx.NetworkXNoPath:
            raise Unreachable(f"no path between {a!r} and {b!r}") from None

    def base_one_way_ms(self, a: Host, b: Host) -> float:
        """Deterministic one-way delay between two hosts, ms."""
        return (a.last_mile_ms + self.path_one_way_ms(a.router, b.router)
                + b.last_mile_ms)

    def base_rtt_ms(self, a: Host, b: Host) -> float:
        """Deterministic round-trip floor between two hosts, ms."""
        return 2.0 * self.base_one_way_ms(a, b)

    def base_rtt_pairs(self, hosts_a: Sequence[Host],
                       hosts_b: Sequence[Host]) -> np.ndarray:
        """Deterministic round-trip floors for aligned host pairs, ms.

        Vectorised :meth:`base_rtt_ms`: routed legs come from one batched
        shortest-path call, last miles are added element-wise in the same
        operation order as the scalar path, so each entry is bit-identical
        to the scalar result.
        """
        if len(hosts_a) != len(hosts_b):
            raise ValueError("host lists disagree in length")
        paths = self.path_pairs_ms([a.router for a in hosts_a],
                                   [b.router for b in hosts_b])
        last_a = np.array([a.last_mile_ms for a in hosts_a], dtype=np.float64)
        last_b = np.array([b.last_mile_ms for b in hosts_b], dtype=np.float64)
        return 2.0 * ((last_a + paths) + last_b)

    def base_rtt_matrix(self, a: Host, others: Sequence[Host]) -> np.ndarray:
        """Round-trip floors from one host to each of ``others``, ms."""
        if not others:
            return np.empty(0, dtype=np.float64)
        paths = self.path_pairs_ms([a.router] * len(others),
                                   [b.router for b in others])
        last_b = np.array([b.last_mile_ms for b in others], dtype=np.float64)
        return 2.0 * ((a.last_mile_ms + paths) + last_b)

    def _congestion_by_city(self) -> np.ndarray:
        """Per-city congestion scales, indexed by ``city_id``.

        The city list never grows (hosting ASes attach to existing
        cities), so this is computed once.
        """
        if self._congestion is None:
            self._congestion = np.array(
                [city.congestion_scale_ms for city in self.topology.cities],
                dtype=np.float64)
        return self._congestion

    # -- stochastic part ---------------------------------------------------------

    def _queueing_noise_ms(self, a: Host, b: Host,
                           rng: np.random.Generator) -> float:
        """One sample of round-trip queueing delay, ms.

        Exponential with a scale set by the endpoint cities' congestion,
        plus rare heavy congestion spikes (intermediate routers can add
        "unbounded delays" — Li et al., quoted in the paper).
        """
        scale = (self.topology.city(a.city_id).congestion_scale_ms
                 + self.topology.city(b.city_id).congestion_scale_ms)
        noise = float(rng.exponential(scale))
        if rng.random() < 0.02:
            noise += float(rng.exponential(60.0))
        return noise

    def rtt_sample_ms(self, a: Host, b: Host,
                      rng: Optional[np.random.Generator] = None) -> float:
        """One measured round-trip time between two hosts, ms.

        NaN when fault injection is active and the probe is lost.
        """
        rng = rng if rng is not None else self._rng
        sample = self.base_rtt_ms(a, b) + self._queueing_noise_ms(a, b, rng)
        faults = self.active_faults()
        if faults is not None:
            burst = np.array([sample])
            down = (faults.landmark_down(a.host_id, self._fault_time)
                    or faults.landmark_down(b.host_id, self._fault_time))
            sample = float(faults.afflict_burst(burst, down, rng)[0])
        return sample

    def rtt_samples_ms(self, a: Host, b: Host, n: int,
                       rng: Optional[np.random.Generator] = None, *,
                       base: Optional[float] = None) -> np.ndarray:
        """``n`` independent RTT samples between two hosts, ms.

        The noise for all ``n`` samples is drawn in one vectorised pass —
        same distribution as :meth:`rtt_sample_ms`, a fraction of the
        generator overhead.  Audits take hundreds of thousands of
        samples, so this is one of the pipeline's hottest paths.
        ``base`` lets a batched caller supply the (deterministic)
        round-trip floor it already computed via :meth:`base_rtt_pairs`;
        it must equal ``base_rtt_ms(a, b)`` exactly.
        """
        if n < 1:
            raise ValueError(f"need at least one sample: {n!r}")
        rng = rng if rng is not None else self._rng
        if base is None:
            base = self.base_rtt_ms(a, b)
        scale = (self.topology.city(a.city_id).congestion_scale_ms
                 + self.topology.city(b.city_id).congestion_scale_ms)
        noise = rng.exponential(scale, size=n)
        spikes = rng.random(n) < 0.02
        if spikes.any():
            noise[spikes] += rng.exponential(60.0, size=int(spikes.sum()))
        samples = base + noise
        faults = self.active_faults()
        if faults is not None:
            down = (faults.landmark_down(a.host_id, self._fault_time)
                    or faults.landmark_down(b.host_id, self._fault_time))
            samples = faults.afflict_burst(samples, down, rng)
        return samples

    def rtt_samples_matrix_ms(self, a: Host, others: Sequence[Host], n: int,
                              rng: Optional[np.random.Generator] = None
                              ) -> np.ndarray:
        """``(len(others), n)`` RTT samples from ``a`` to each other host.

        One vectorised noise draw covers a whole measurement panel — the
        shape a proxy audit uses when it probes every landmark in a
        phase through the same tunnel.
        """
        if n < 1:
            raise ValueError(f"need at least one sample: {n!r}")
        rng = rng if rng is not None else self._rng
        k = len(others)
        if k == 0:
            return np.empty((0, n))
        bases = self.base_rtt_matrix(a, others)
        scale_a = self.topology.city(a.city_id).congestion_scale_ms
        city_ids = np.fromiter((b.city_id for b in others),
                               dtype=np.intp, count=k)
        scales = scale_a + self._congestion_by_city()[city_ids]
        noise = rng.exponential(1.0, size=(k, n)) * scales[:, None]
        spikes = rng.random((k, n)) < 0.02
        n_spikes = int(spikes.sum())
        if n_spikes:
            noise[spikes] += rng.exponential(60.0, size=n_spikes)
        samples = bases[:, None] + noise
        faults = self.active_faults()
        if faults is not None:
            a_down = faults.landmark_down(a.host_id, self._fault_time)
            down_rows = np.array(
                [a_down or faults.landmark_down(b.host_id, self._fault_time)
                 for b in others])
            samples = faults.afflict_matrix(samples, down_rows, rng)
        return samples

    def min_rtt_ms(self, a: Host, b: Host, n: int = 3,
                   rng: Optional[np.random.Generator] = None, *,
                   base: Optional[float] = None) -> float:
        """Minimum of ``n`` RTT samples — what ping-based tools report.

        Raises :class:`~repro.netsim.faults.MeasurementFailed` when every
        sample in the burst was lost or timed out, rather than handing an
        ``inf``/``nan`` downstream for the bestline fits to choke on.
        ``base`` is forwarded to :meth:`rtt_samples_ms` for batched
        callers that precomputed the round-trip floor.
        """
        samples = self.rtt_samples_ms(a, b, n, rng, base=base)
        finite = samples[np.isfinite(samples)]
        if finite.size == 0:
            raise MeasurementFailed(
                f"all {n} probes {a.name!r} -> {b.name!r} lost or timed out")
        return float(finite.min())
