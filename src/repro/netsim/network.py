"""The network facade: path latencies and RTT sampling.

Separates the *deterministic* part of a round-trip time (routed path
propagation + last miles, cached per router pair) from the *stochastic*
part (queueing noise, congestion spikes), which is resampled per
measurement.  The decomposition is what lets calibration behave like the
real Internet: the minimum of many samples approaches the routed-path
floor, which is still above the great-circle/200 km/ms physical floor
because routes are circuitous.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Dict, Optional, Sequence

import networkx as nx
import numpy as np

from .faults import FaultInjector, MeasurementFailed
from .hosts import Host
from .topology import RouterId, Topology


class Unreachable(Exception):
    """Raised when no path exists between two routers."""


class Network:
    """Latency oracle over a :class:`~repro.netsim.topology.Topology`.

    An optional :class:`~repro.netsim.faults.FaultInjector` can be
    installed (``faults_installed``); it only afflicts samples taken
    inside a measurement epoch (``measurement_epoch_for``), so the mesh
    calibration archive and diagnostic paths always see the fault-free
    substrate.  Without an injector — or outside an epoch — every code
    path below is byte-identical to the fault-free simulator and consumes
    no extra random draws.
    """

    _PATH_CACHE_SLOTS = 4096

    def __init__(self, topology: Topology, seed: int = 0,
                 faults: Optional[FaultInjector] = None):
        self.topology = topology
        self._rng = np.random.default_rng(seed)
        self._sssp_cache: Dict[RouterId, Dict[RouterId, float]] = {}
        self._cached_version = topology.version
        self.faults = faults
        self._fault_time: Optional[float] = None

    # -- fault layer ----------------------------------------------------------

    @contextmanager
    def faults_installed(self, injector: Optional[FaultInjector]):
        """Install (or clear) the fault injector for the duration."""
        previous = self.faults
        self.faults = injector
        try:
            yield self
        finally:
            self.faults = previous

    @contextmanager
    def measurement_epoch_for(self, host: Host):
        """Activate fault injection at ``host``'s campaign time.

        Samples taken inside the context are afflicted as if measured at
        the logical instant the installed injector assigns to ``host`` —
        a pure function of the host id, so epochs are order-independent.
        A no-op (and free) when no injector is installed.
        """
        if self.faults is None:
            yield self
            return
        previous = self._fault_time
        self._fault_time = self.faults.campaign_time(host.host_id)
        try:
            yield self
        finally:
            self._fault_time = previous

    @contextmanager
    def fault_free(self):
        """Suspend any open measurement epoch for the duration.

        Archived-data paths (the mesh-ping database landmark calibration
        reads from) must see the pristine substrate even when they are
        lazily materialised in the middle of an afflicted measurement —
        otherwise the cached value would depend on *which* target's epoch
        happened to compute it first, breaking order-independence.
        """
        previous = self._fault_time
        self._fault_time = None
        try:
            yield self
        finally:
            self._fault_time = previous

    def active_faults(self) -> Optional[FaultInjector]:
        """The injector, iff a measurement epoch is open."""
        if self.faults is not None and self._fault_time is not None:
            return self.faults
        return None

    def _check_version(self) -> None:
        """Drop shortest-path caches if the topology grew new routers."""
        if self.topology.version != self._cached_version:
            self._sssp_cache.clear()
            self._cached_version = self.topology.version

    # -- deterministic part ---------------------------------------------------

    def _distances_from(self, router: RouterId) -> Dict[RouterId, float]:
        cached = self._sssp_cache.get(router)
        if cached is None:
            if router not in self.topology.graph:
                raise Unreachable(f"router {router!r} is not in the graph")
            cached = nx.single_source_dijkstra_path_length(
                self.topology.graph, router, weight="latency_ms")
            if len(self._sssp_cache) >= self._PATH_CACHE_SLOTS:
                self._sssp_cache.clear()
            self._sssp_cache[router] = cached
        return cached

    def path_one_way_ms(self, a: RouterId, b: RouterId) -> float:
        """Routed one-way delay between two routers, ms."""
        if a == b:
            return 0.0
        self._check_version()
        # Always resolve from the canonically-smaller endpoint.  The two
        # directions sum the same path in opposite orders and can differ
        # in the last ulp; choosing by whichever tree happens to be cached
        # would make measured RTTs depend on cache history, breaking the
        # serial == parallel bit-identity of audits.
        source, target = (a, b) if a <= b else (b, a)
        distances = self._sssp_cache.get(source)
        if distances is None:
            distances = self._distances_from(source)
        try:
            return float(distances[target])
        except KeyError:
            raise Unreachable(f"no path between {a!r} and {b!r}") from None

    def route(self, a: RouterId, b: RouterId) -> list:
        """The router-level path between two routers (for traceroute).

        Not cached: traceroute is a diagnostic, not a hot path.
        """
        if a not in self.topology.graph or b not in self.topology.graph:
            raise Unreachable(f"router {a!r} or {b!r} not in the graph")
        try:
            return nx.shortest_path(self.topology.graph, a, b,
                                    weight="latency_ms")
        except nx.NetworkXNoPath:
            raise Unreachable(f"no path between {a!r} and {b!r}") from None

    def base_one_way_ms(self, a: Host, b: Host) -> float:
        """Deterministic one-way delay between two hosts, ms."""
        return (a.last_mile_ms + self.path_one_way_ms(a.router, b.router)
                + b.last_mile_ms)

    def base_rtt_ms(self, a: Host, b: Host) -> float:
        """Deterministic round-trip floor between two hosts, ms."""
        return 2.0 * self.base_one_way_ms(a, b)

    # -- stochastic part ---------------------------------------------------------

    def _queueing_noise_ms(self, a: Host, b: Host,
                           rng: np.random.Generator) -> float:
        """One sample of round-trip queueing delay, ms.

        Exponential with a scale set by the endpoint cities' congestion,
        plus rare heavy congestion spikes (intermediate routers can add
        "unbounded delays" — Li et al., quoted in the paper).
        """
        scale = (self.topology.city(a.city_id).congestion_scale_ms
                 + self.topology.city(b.city_id).congestion_scale_ms)
        noise = float(rng.exponential(scale))
        if rng.random() < 0.02:
            noise += float(rng.exponential(60.0))
        return noise

    def rtt_sample_ms(self, a: Host, b: Host,
                      rng: Optional[np.random.Generator] = None) -> float:
        """One measured round-trip time between two hosts, ms.

        NaN when fault injection is active and the probe is lost.
        """
        rng = rng if rng is not None else self._rng
        sample = self.base_rtt_ms(a, b) + self._queueing_noise_ms(a, b, rng)
        faults = self.active_faults()
        if faults is not None:
            burst = np.array([sample])
            down = (faults.landmark_down(a.host_id, self._fault_time)
                    or faults.landmark_down(b.host_id, self._fault_time))
            sample = float(faults.afflict_burst(burst, down, rng)[0])
        return sample

    def rtt_samples_ms(self, a: Host, b: Host, n: int,
                       rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """``n`` independent RTT samples between two hosts, ms.

        The noise for all ``n`` samples is drawn in one vectorised pass —
        same distribution as :meth:`rtt_sample_ms`, a fraction of the
        generator overhead.  Audits take hundreds of thousands of
        samples, so this is one of the pipeline's hottest paths.
        """
        if n < 1:
            raise ValueError(f"need at least one sample: {n!r}")
        rng = rng if rng is not None else self._rng
        base = self.base_rtt_ms(a, b)
        scale = (self.topology.city(a.city_id).congestion_scale_ms
                 + self.topology.city(b.city_id).congestion_scale_ms)
        noise = rng.exponential(scale, size=n)
        spikes = rng.random(n) < 0.02
        if spikes.any():
            noise[spikes] += rng.exponential(60.0, size=int(spikes.sum()))
        samples = base + noise
        faults = self.active_faults()
        if faults is not None:
            down = (faults.landmark_down(a.host_id, self._fault_time)
                    or faults.landmark_down(b.host_id, self._fault_time))
            samples = faults.afflict_burst(samples, down, rng)
        return samples

    def rtt_samples_matrix_ms(self, a: Host, others: Sequence[Host], n: int,
                              rng: Optional[np.random.Generator] = None
                              ) -> np.ndarray:
        """``(len(others), n)`` RTT samples from ``a`` to each other host.

        One vectorised noise draw covers a whole measurement panel — the
        shape a proxy audit uses when it probes every landmark in a
        phase through the same tunnel.
        """
        if n < 1:
            raise ValueError(f"need at least one sample: {n!r}")
        rng = rng if rng is not None else self._rng
        k = len(others)
        if k == 0:
            return np.empty((0, n))
        bases = np.array([self.base_rtt_ms(a, b) for b in others])
        scale_a = self.topology.city(a.city_id).congestion_scale_ms
        scales = np.array(
            [scale_a + self.topology.city(b.city_id).congestion_scale_ms
             for b in others])
        noise = rng.exponential(1.0, size=(k, n)) * scales[:, None]
        spikes = rng.random((k, n)) < 0.02
        n_spikes = int(spikes.sum())
        if n_spikes:
            noise[spikes] += rng.exponential(60.0, size=n_spikes)
        samples = bases[:, None] + noise
        faults = self.active_faults()
        if faults is not None:
            a_down = faults.landmark_down(a.host_id, self._fault_time)
            down_rows = np.array(
                [a_down or faults.landmark_down(b.host_id, self._fault_time)
                 for b in others])
            samples = faults.afflict_matrix(samples, down_rows, rng)
        return samples

    def min_rtt_ms(self, a: Host, b: Host, n: int = 3,
                   rng: Optional[np.random.Generator] = None) -> float:
        """Minimum of ``n`` RTT samples — what ping-based tools report.

        Raises :class:`~repro.netsim.faults.MeasurementFailed` when every
        sample in the burst was lost or timed out, rather than handing an
        ``inf``/``nan`` downstream for the bestline fits to choke on.
        """
        samples = self.rtt_samples_ms(a, b, n, rng)
        finite = samples[np.isfinite(samples)]
        if finite.size == 0:
            raise MeasurementFailed(
                f"all {n} probes {a.name!r} -> {b.name!r} lost or timed out")
        return float(finite.min())
