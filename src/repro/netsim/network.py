"""The network facade: path latencies and RTT sampling.

Separates the *deterministic* part of a round-trip time (routed path
propagation + last miles, cached per router pair) from the *stochastic*
part (queueing noise, congestion spikes), which is resampled per
measurement.  The decomposition is what lets calibration behave like the
real Internet: the minimum of many samples approaches the routed-path
floor, which is still above the great-circle/200 km/ms physical floor
because routes are circuitous.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import networkx as nx
import numpy as np

from .hosts import Host
from .topology import RouterId, Topology


class Unreachable(Exception):
    """Raised when no path exists between two routers."""


class Network:
    """Latency oracle over a :class:`~repro.netsim.topology.Topology`."""

    _PATH_CACHE_SLOTS = 4096

    def __init__(self, topology: Topology, seed: int = 0):
        self.topology = topology
        self._rng = np.random.default_rng(seed)
        self._sssp_cache: Dict[RouterId, Dict[RouterId, float]] = {}
        self._cached_version = topology.version

    def _check_version(self) -> None:
        """Drop shortest-path caches if the topology grew new routers."""
        if self.topology.version != self._cached_version:
            self._sssp_cache.clear()
            self._cached_version = self.topology.version

    # -- deterministic part ---------------------------------------------------

    def _distances_from(self, router: RouterId) -> Dict[RouterId, float]:
        cached = self._sssp_cache.get(router)
        if cached is None:
            if router not in self.topology.graph:
                raise Unreachable(f"router {router!r} is not in the graph")
            cached = nx.single_source_dijkstra_path_length(
                self.topology.graph, router, weight="latency_ms")
            if len(self._sssp_cache) >= self._PATH_CACHE_SLOTS:
                self._sssp_cache.clear()
            self._sssp_cache[router] = cached
        return cached

    def path_one_way_ms(self, a: RouterId, b: RouterId) -> float:
        """Routed one-way delay between two routers, ms."""
        if a == b:
            return 0.0
        self._check_version()
        # Always resolve from the canonically-smaller endpoint.  The two
        # directions sum the same path in opposite orders and can differ
        # in the last ulp; choosing by whichever tree happens to be cached
        # would make measured RTTs depend on cache history, breaking the
        # serial == parallel bit-identity of audits.
        source, target = (a, b) if a <= b else (b, a)
        distances = self._sssp_cache.get(source)
        if distances is None:
            distances = self._distances_from(source)
        try:
            return float(distances[target])
        except KeyError:
            raise Unreachable(f"no path between {a!r} and {b!r}") from None

    def route(self, a: RouterId, b: RouterId) -> list:
        """The router-level path between two routers (for traceroute).

        Not cached: traceroute is a diagnostic, not a hot path.
        """
        if a not in self.topology.graph or b not in self.topology.graph:
            raise Unreachable(f"router {a!r} or {b!r} not in the graph")
        try:
            return nx.shortest_path(self.topology.graph, a, b,
                                    weight="latency_ms")
        except nx.NetworkXNoPath:
            raise Unreachable(f"no path between {a!r} and {b!r}") from None

    def base_one_way_ms(self, a: Host, b: Host) -> float:
        """Deterministic one-way delay between two hosts, ms."""
        return (a.last_mile_ms + self.path_one_way_ms(a.router, b.router)
                + b.last_mile_ms)

    def base_rtt_ms(self, a: Host, b: Host) -> float:
        """Deterministic round-trip floor between two hosts, ms."""
        return 2.0 * self.base_one_way_ms(a, b)

    # -- stochastic part ---------------------------------------------------------

    def _queueing_noise_ms(self, a: Host, b: Host,
                           rng: np.random.Generator) -> float:
        """One sample of round-trip queueing delay, ms.

        Exponential with a scale set by the endpoint cities' congestion,
        plus rare heavy congestion spikes (intermediate routers can add
        "unbounded delays" — Li et al., quoted in the paper).
        """
        scale = (self.topology.city(a.city_id).congestion_scale_ms
                 + self.topology.city(b.city_id).congestion_scale_ms)
        noise = float(rng.exponential(scale))
        if rng.random() < 0.02:
            noise += float(rng.exponential(60.0))
        return noise

    def rtt_sample_ms(self, a: Host, b: Host,
                      rng: Optional[np.random.Generator] = None) -> float:
        """One measured round-trip time between two hosts, ms."""
        rng = rng if rng is not None else self._rng
        return self.base_rtt_ms(a, b) + self._queueing_noise_ms(a, b, rng)

    def rtt_samples_ms(self, a: Host, b: Host, n: int,
                       rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """``n`` independent RTT samples between two hosts, ms.

        The noise for all ``n`` samples is drawn in one vectorised pass —
        same distribution as :meth:`rtt_sample_ms`, a fraction of the
        generator overhead.  Audits take hundreds of thousands of
        samples, so this is one of the pipeline's hottest paths.
        """
        if n < 1:
            raise ValueError(f"need at least one sample: {n!r}")
        rng = rng if rng is not None else self._rng
        base = self.base_rtt_ms(a, b)
        scale = (self.topology.city(a.city_id).congestion_scale_ms
                 + self.topology.city(b.city_id).congestion_scale_ms)
        noise = rng.exponential(scale, size=n)
        spikes = rng.random(n) < 0.02
        if spikes.any():
            noise[spikes] += rng.exponential(60.0, size=int(spikes.sum()))
        return base + noise

    def rtt_samples_matrix_ms(self, a: Host, others: Sequence[Host], n: int,
                              rng: Optional[np.random.Generator] = None
                              ) -> np.ndarray:
        """``(len(others), n)`` RTT samples from ``a`` to each other host.

        One vectorised noise draw covers a whole measurement panel — the
        shape a proxy audit uses when it probes every landmark in a
        phase through the same tunnel.
        """
        if n < 1:
            raise ValueError(f"need at least one sample: {n!r}")
        rng = rng if rng is not None else self._rng
        k = len(others)
        if k == 0:
            return np.empty((0, n))
        bases = np.array([self.base_rtt_ms(a, b) for b in others])
        scale_a = self.topology.city(a.city_id).congestion_scale_ms
        scales = np.array(
            [scale_a + self.topology.city(b.city_id).congestion_scale_ms
             for b in others])
        noise = rng.exponential(1.0, size=(k, n)) * scales[:, None]
        spikes = rng.random((k, n)) < 0.02
        n_spikes = int(spikes.sum())
        if n_spikes:
            noise[spikes] += rng.exponential(60.0, size=n_spikes)
        return bases[:, None] + noise

    def min_rtt_ms(self, a: Host, b: Host, n: int = 3,
                   rng: Optional[np.random.Generator] = None) -> float:
        """Minimum of ``n`` RTT samples — what ping-based tools report."""
        return float(self.rtt_samples_ms(a, b, n, rng).min())
