"""The two measurement tools: command-line and web-based.

The paper's CLI tool times a bare TCP ``connect()`` — exactly one network
round-trip, with negligible client-side overhead on Linux.  The web tool
must use the browser ``fetch`` API and times a request it knows will fail;
depending on whether the landmark listens on port 80 it observes **one or
two** round-trips (SYN/SYN-ACK, optionally + ClientHello/error), and it
cannot tell which.  On Windows the browser stack adds substantial noise
and, for some measurements, "high outliers" whose magnitude depends on the
browser rather than the distance (Figures 5–6).

These behaviours are modelled here so that the algorithm-validation
experiments face the same measurement pathologies the paper's did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from .atlas import Landmark
from .hosts import Host
from .network import Network

#: Browser-dependent mean of the Windows "high outlier" delay, ms.  The
#: paper found outlier magnitude "primarily dependent on the browser".
BROWSER_OUTLIER_MEAN_MS: Dict[str, float] = {
    "chrome-68": 900.0,
    "firefox-52": 1500.0,
    "firefox-61": 1200.0,
    "edge-17": 2400.0,
}

#: Probability that a single Windows web measurement is a high outlier.
WINDOWS_OUTLIER_PROBABILITY = 0.06

#: Per-browser overhead on Windows: (constant ms, noise scale ms).  The
#: paper's ANOVA finds a significant *browser* effect on Windows (but no
#: tool effect on Linux); these parameters are that effect.
WINDOWS_BROWSER_OVERHEAD_MS: Dict[str, tuple] = {
    "chrome-68": (6.0, 8.0),
    "firefox-52": (18.0, 16.0),
    "firefox-61": (12.0, 12.0),
    "edge-17": (28.0, 22.0),
}


@dataclass(frozen=True)
class MeasurementSample:
    """One timed exchange between a client and a landmark."""

    landmark_name: str
    distance_km: float       # true client–landmark distance (known in the sim)
    rtt_ms: float            # what the tool reports
    n_round_trips: int       # 1 or 2 (the web tool cannot observe this)
    tool: str                # "cli" or "web"
    browser: Optional[str] = None
    os: str = "linux"
    is_outlier: bool = False

    @property
    def apparent_one_way_ms(self) -> float:
        """What a consumer that assumes one round-trip would compute."""
        return self.rtt_ms / 2.0


class CliTool:
    """The standalone TCP-connect measurement program (Linux/NetBSD).

    ``connect()`` returns after exactly one round-trip whether the port is
    open (SYN-ACK) or closed (RST → "connection refused"); both outcomes
    are valid measurements.  Other errors are discarded by the real tool;
    the simulator's network never produces them.
    """

    name = "cli"

    def __init__(self, network: Network, seed: int = 0):
        self.network = network
        self._rng = np.random.default_rng(seed)

    def measure(self, client: Host, landmark: Landmark,
                rng: Optional[np.random.Generator] = None) -> MeasurementSample:
        rng = rng if rng is not None else self._rng
        rtt = self.network.rtt_sample_ms(client, landmark.host, rng)
        # Kernel-level socket timing: sub-millisecond client overhead.
        rtt += float(rng.uniform(0.05, 0.5))
        return MeasurementSample(
            landmark_name=landmark.name,
            distance_km=client.distance_to(landmark.host),
            rtt_ms=rtt,
            n_round_trips=1,
            tool=self.name,
            os=client.os,
        )

    def measure_many(self, client: Host, landmarks: Sequence[Landmark],
                     rng: Optional[np.random.Generator] = None
                     ) -> List[MeasurementSample]:
        return [self.measure(client, lm, rng) for lm in landmarks]


class NavigationTimingWebTool:
    """The paper's proposed web-tool successor (§8.1).

    The W3C Navigation Timing API exposes per-phase connection timings to
    the page, so a web application could report exactly one round-trip —
    *if* the measured server opts in ("it can only be used if each server
    involved allows it, and currently none of the RIPE Atlas anchors and
    probes do").  This tool uses the API against landmarks in
    ``supporting_landmarks`` and falls back to the classic 1-or-2-RTT
    behaviour elsewhere, so experiments can quantify how much accuracy a
    partial RIPE deployment would buy.
    """

    name = "web-navtiming"

    def __init__(self, network: Network, browser: str = "chrome-68",
                 seed: int = 0, supporting_landmarks: Sequence[str] = ()):
        self._classic = WebTool(network, browser=browser, seed=seed)
        self.network = network
        self.browser = browser
        self.supporting_landmarks = frozenset(supporting_landmarks)
        self._rng = np.random.default_rng(seed)

    def measure(self, client: Host, landmark: Landmark,
                rng: Optional[np.random.Generator] = None) -> MeasurementSample:
        rng = rng if rng is not None else self._rng
        if landmark.name not in self.supporting_landmarks:
            sample = self._classic.measure(client, landmark, rng)
            return MeasurementSample(
                landmark_name=sample.landmark_name,
                distance_km=sample.distance_km,
                rtt_ms=sample.rtt_ms,
                n_round_trips=sample.n_round_trips,
                tool=self.name,
                browser=sample.browser,
                os=sample.os,
                is_outlier=sample.is_outlier,
            )
        # The API reports connectEnd - connectStart: one clean round-trip,
        # free of the request/response phases and most browser overhead.
        rtt = self.network.rtt_sample_ms(client, landmark.host, rng)
        rtt += float(rng.uniform(0.1, 1.0))  # timestamp resolution + JS
        return MeasurementSample(
            landmark_name=landmark.name,
            distance_km=client.distance_to(landmark.host),
            rtt_ms=rtt,
            n_round_trips=1,
            tool=self.name,
            browser=self.browser,
            os=client.os,
        )

    def measure_many(self, client: Host, landmarks: Sequence[Landmark],
                     rng: Optional[np.random.Generator] = None
                     ) -> List[MeasurementSample]:
        return [self.measure(client, lm, rng) for lm in landmarks]


class WebTool:
    """The browser-based measurement application.

    Issues an HTTPS request to port 80 and times the failure.  If the
    landmark is not listening on port 80 the connection is refused after
    one round-trip; if it is listening, the TLS ClientHello triggers a
    protocol error after a *second* round-trip.  The client cannot
    distinguish the two cases.
    """

    name = "web"

    def __init__(self, network: Network, browser: str = "chrome-68", seed: int = 0):
        if browser not in BROWSER_OUTLIER_MEAN_MS:
            raise ValueError(f"unknown browser {browser!r}; "
                             f"expected one of {sorted(BROWSER_OUTLIER_MEAN_MS)}")
        self.network = network
        self.browser = browser
        self._rng = np.random.default_rng(seed)

    def _client_overhead_ms(self, client: Host, rng: np.random.Generator) -> float:
        """JavaScript / browser-stack overhead added to every measurement."""
        if client.os == "windows":
            # Timer coarseness + socket-pool contention, browser-dependent.
            constant, scale = WINDOWS_BROWSER_OVERHEAD_MS[self.browser]
            return float(constant + rng.exponential(scale)
                         + rng.uniform(2.0, 10.0))
        # "a testament to the efficiency of modern JavaScript interpreters"
        return float(rng.uniform(0.3, 2.5))

    def measure(self, client: Host, landmark: Landmark,
                rng: Optional[np.random.Generator] = None) -> MeasurementSample:
        rng = rng if rng is not None else self._rng
        n_round_trips = 2 if landmark.host.listens_on_port_80 else 1
        rtt = 0.0
        for _ in range(n_round_trips):
            rtt += self.network.rtt_sample_ms(client, landmark.host, rng)
        rtt += self._client_overhead_ms(client, rng)
        is_outlier = False
        if client.os == "windows" and rng.random() < WINDOWS_OUTLIER_PROBABILITY:
            mean = BROWSER_OUTLIER_MEAN_MS[self.browser]
            rtt += float(abs(rng.normal(mean, mean * 0.25)))
            is_outlier = True
        return MeasurementSample(
            landmark_name=landmark.name,
            distance_km=client.distance_to(landmark.host),
            rtt_ms=rtt,
            n_round_trips=n_round_trips,
            tool=self.name,
            browser=self.browser,
            os=client.os,
            is_outlier=is_outlier,
        )

    def measure_many(self, client: Host, landmarks: Sequence[Landmark],
                     rng: Optional[np.random.Generator] = None
                     ) -> List[MeasurementSample]:
        return [self.measure(client, lm, rng) for lm in landmarks]
