"""End hosts on the synthetic Internet.

A :class:`Host` is anything with a network position: a RIPE-Atlas-style
anchor, a probe, a crowdsourced volunteer's laptop, a measurement client,
or a proxy server.  Hosts attach to the access AS of their nearest city
with a stochastic last-mile delay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..geodesy.constants import BASELINE_SPEED_KM_PER_MS
from ..geodesy.greatcircle import haversine_km, haversine_km_select, validate_latlon
from .cities import City
from .topology import RouterId, Topology


@dataclass(frozen=True)
class Host:
    """A network endpoint in a known (to the simulator) location."""

    host_id: int
    name: str
    lat: float
    lon: float
    city_id: int
    router: RouterId
    last_mile_ms: float
    os: str = "linux"           # "linux" or "windows"; affects web-tool noise
    responds_to_ping: bool = True
    listens_on_port_80: bool = True

    def __post_init__(self) -> None:
        validate_latlon(self.lat, self.lon)
        if self.last_mile_ms < 0:
            raise ValueError(f"negative last-mile delay: {self.last_mile_ms!r}")
        if self.os not in ("linux", "windows"):
            raise ValueError(f"unsupported OS {self.os!r}")

    @property
    def location(self) -> Tuple[float, float]:
        return (self.lat, self.lon)

    def distance_to(self, other: "Host") -> float:
        """Great-circle distance to another host, km."""
        return haversine_km(self.lat, self.lon, other.lat, other.lon)


class HostFactory:
    """Creates hosts attached to a topology, with sequential ids."""

    def __init__(self, topology: Topology, seed: int = 0):
        self.topology = topology
        self._rng = np.random.default_rng(seed)
        self._next_id = 0
        self.hosts: List[Host] = []
        # The city list is immutable, so the coordinate arrays the
        # vectorised nearest-city search scans are built once.
        self._city_lats = np.array([c.lat for c in topology.cities])
        self._city_lons = np.array([c.lon for c in topology.cities])

    def nearest_city(self, lat: float, lon: float) -> City:
        """The topologically attachable city closest to a point.

        One vectorised distance pass over all cities; ``argmin`` returns
        the first minimum, matching the scalar ``min()`` it replaces.
        """
        distances = haversine_km_select(lat, lon,
                                        self._city_lats, self._city_lons)
        return self.topology.cities[int(np.argmin(distances))]

    def nearest_city_reference(self, lat: float, lon: float) -> City:
        """The original scalar nearest-city loop (regression oracle)."""
        return min(self.topology.cities,
                   key=lambda c: haversine_km(lat, lon, c.lat, c.lon))

    def create(self, lat: float, lon: float, name: Optional[str] = None,
               os: str = "linux", responds_to_ping: bool = True,
               listens_on_port_80: Optional[bool] = None,
               city_id: Optional[int] = None,
               router: Optional[RouterId] = None,
               last_mile_ms: Optional[float] = None) -> Host:
        """Attach a new host at the given coordinates.

        The host connects to its nearest city's access AS unless an
        explicit ``router`` (e.g. a hosting AS for a proxy) is given.
        Last-mile delay grows with the distance to the attachment city
        (local loops run well below long-haul fibre speed) unless
        ``last_mile_ms`` overrides it — data-centre servers sit on
        sub-millisecond uplinks.
        """
        city = (self.topology.city(city_id) if city_id is not None
                else self.nearest_city(lat, lon))
        if router is None:
            router = self.topology.access_router(city.city_id)
        access_distance = haversine_km(lat, lon, city.lat, city.lon)
        if last_mile_ms is not None:
            last_mile = last_mile_ms
        else:
            last_mile = (access_distance * 1.5 / BASELINE_SPEED_KM_PER_MS
                         + float(self._rng.uniform(0.4, 3.0)))
        if listens_on_port_80 is None:
            listens_on_port_80 = bool(self._rng.random() < 0.5)
        host = Host(
            host_id=self._next_id,
            name=name if name is not None else f"host-{self._next_id}",
            lat=lat,
            lon=lon,
            city_id=city.city_id,
            router=router,
            last_mile_ms=last_mile,
            os=os,
            responds_to_ping=responds_to_ping,
            listens_on_port_80=listens_on_port_80,
        )
        self._next_id += 1
        self.hosts.append(host)
        return host
