"""World cities for the synthetic Internet.

Cities are derived from the world map's country anchor points (real
major-city coordinates), so the network substrate and the geographic
substrate can never disagree about where a city is.  A curated table marks
the global interconnection hubs (Frankfurt, Amsterdam, London, Ashburn,
Singapore, ...) and regional hubs; everything else is an access city.

Each city also carries a *congestion scale* — the mean of the exponential
queueing delay added to measurements traversing it.  The scale varies by
continent (Europe and North America are well-provisioned; Africa and parts
of Asia are not), which is precisely the regional asymmetry the paper
leans on to explain why simple delay models beat sophisticated ones at
global scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..geo.countries import CountryRegistry

#: (iso2, anchor_index) -> proper name, for the world's major interconnection
#: hubs.  hub_level 2 = global hub (tier-1 backbones interconnect here).
GLOBAL_HUBS: Dict[Tuple[str, int], str] = {
    ("DE", 1): "Frankfurt",
    ("NL", 0): "Amsterdam",
    ("GB", 0): "London",
    ("FR", 0): "Paris",
    ("US", 0): "New York",
    ("US", 10): "Ashburn",
    ("US", 1): "Los Angeles",
    ("US", 7): "Miami",
    ("US", 5): "Seattle",
    ("SG", 0): "Singapore",
    ("JP", 0): "Tokyo",
    ("HK", 0): "Hong Kong",
    ("AU", 0): "Sydney",
    ("BR", 0): "São Paulo",
    ("ZA", 0): "Johannesburg",
    ("RU", 0): "Moscow",
    ("SE", 0): "Stockholm",
    ("IN", 0): "Mumbai",
}

#: hub_level 1 = regional hub (regional transit ASes interconnect here).
REGIONAL_HUBS: Dict[Tuple[str, int], str] = {
    ("DE", 0): "Berlin",
    ("DE", 2): "Munich",
    ("CZ", 0): "Prague",
    ("PL", 0): "Warsaw",
    ("AT", 0): "Vienna",
    ("CH", 0): "Zurich",
    ("IT", 1): "Milan",
    ("ES", 0): "Madrid",
    ("DK", 0): "Copenhagen",
    ("IE", 0): "Dublin",
    ("RO", 0): "Bucharest",
    ("TR", 0): "Istanbul",
    ("RU", 1): "Saint Petersburg",
    ("UA", 0): "Kyiv",
    ("US", 2): "Chicago",
    ("US", 3): "Houston",
    ("US", 4): "Atlanta",
    ("US", 6): "Denver",
    ("US", 9): "San Francisco",
    ("US", 11): "Dallas",
    ("CA", 0): "Toronto",
    ("CA", 1): "Montreal",
    ("CA", 2): "Vancouver",
    ("MX", 0): "Mexico City",
    ("BR", 1): "Rio de Janeiro",
    ("AR", 0): "Buenos Aires",
    ("CL", 0): "Santiago",
    ("CO", 0): "Bogotá",
    ("PA", 0): "Panama City",
    ("JP", 1): "Osaka",
    ("KR", 0): "Seoul",
    ("TW", 0): "Taipei",
    ("CN", 0): "Beijing",
    ("CN", 1): "Shanghai",
    ("CN", 2): "Guangzhou",
    ("IN", 1): "Delhi",
    ("IN", 2): "Bengaluru",
    ("TH", 0): "Bangkok",
    ("VN", 1): "Ho Chi Minh City",
    ("MY", 0): "Kuala Lumpur",
    ("ID", 0): "Jakarta",
    ("PH", 0): "Manila",
    ("AU", 1): "Melbourne",
    ("AU", 3): "Perth",
    ("NZ", 0): "Auckland",
    ("AE", 0): "Dubai",
    ("IL", 0): "Tel Aviv",
    ("EG", 0): "Cairo",
    ("KE", 0): "Nairobi",
    ("NG", 0): "Lagos",
    ("ZA", 1): "Cape Town",
}

#: Countries whose only connectivity is a geostationary satellite uplink.
#: One-way delays through these exceed the paper's 237 ms usefulness bound.
SATELLITE_ONLY_COUNTRIES = frozenset(
    {"PN", "FK", "SB", "GL", "KI", "MH", "FM", "NR", "NF"})

#: Mean queueing-delay scale (ms, exponential) by continent — the substrate's
#: model of regional congestion.
CONGESTION_SCALE_MS: Dict[str, float] = {
    "EU": 0.6,
    "NA": 0.8,
    "AU": 1.0,
    "OC": 2.0,
    "AS": 2.8,
    "AF": 3.5,
    "CA": 1.8,
    "SA": 2.0,
}

#: Extra congestion multiplier for countries with poor hosting infrastructure.
_TIER_CONGESTION_FACTOR = {1: 1.0, 2: 1.4, 3: 2.2}


@dataclass(frozen=True)
class City:
    """One city on the synthetic Internet."""

    city_id: int
    name: str
    iso2: str
    continent: str
    lat: float
    lon: float
    hub_level: int          # 2 global hub, 1 regional hub, 0 access city
    satellite_only: bool    # reachable only via geostationary satellite
    congestion_scale_ms: float

    @property
    def is_hub(self) -> bool:
        return self.hub_level > 0


def build_cities(registry: Optional[CountryRegistry] = None) -> List[City]:
    """Build the full city list from the country registry's anchors."""
    registry = registry if registry is not None else CountryRegistry.default()
    cities: List[City] = []
    for country in registry:
        satellite_only = country.iso2 in SATELLITE_ONLY_COUNTRIES
        base_congestion = CONGESTION_SCALE_MS[country.continent]
        congestion = base_congestion * _TIER_CONGESTION_FACTOR[country.hosting_tier]
        if satellite_only:
            congestion *= 3.0
        for anchor_index, (lat, lon) in enumerate(country.anchors):
            key = (country.iso2, anchor_index)
            if key in GLOBAL_HUBS:
                name, hub_level = GLOBAL_HUBS[key], 2
            elif key in REGIONAL_HUBS:
                name, hub_level = REGIONAL_HUBS[key], 1
            else:
                name, hub_level = f"{country.name} {anchor_index + 1}", 0
            cities.append(City(
                city_id=len(cities),
                name=name,
                iso2=country.iso2,
                continent=country.continent,
                lat=lat,
                lon=lon,
                hub_level=hub_level,
                satellite_only=satellite_only,
                congestion_scale_ms=congestion,
            ))
    return cities


def cities_by_continent(cities: List[City]) -> Dict[str, List[City]]:
    """Group a city list by continent code."""
    grouped: Dict[str, List[City]] = {}
    for city in cities:
        grouped.setdefault(city.continent, []).append(city)
    return grouped
