"""Commercial VPN providers and their (sometimes fictitious) server fleets.

Seven synthetic providers, A through G, mirror the paper's study
population: five of them claim very broad country coverage, two make
modest claims.  Each *claim* (provider, country) is backed by one or more
server IPs.  Whether a server is actually in its claimed country is
decided by the provider's honesty profile crossed with the country's
hosting tier: claims in easy-hosting countries are usually true, claims in
the long tail are usually backed by a server consolidated in one of the
provider's few real data centres (Czech Republic, Germany, Netherlands,
UK, USA, ... — the paper's finding).

Ground truth is retained on every :class:`ProxyServer`, which is what lets
the evaluation check the geolocation verdicts.  Servers at the same
provider + data centre share an ASN and a /24, enabling the paper's
metadata disambiguation (Figure 16).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..geo.countries import CountryRegistry
from ..geo.datacenters import DataCenterRegistry
from .atlas import Landmark
from .hosts import Host, HostFactory
from .network import Network
from .topology import Topology

#: Provider honesty profiles.  ``breadth`` is how many countries the
#: provider claims (None = every country in the registry); ``honesty`` is a
#: multiplier on the per-tier probability that a claim is backed by a real
#: in-country server.
PROVIDER_PROFILES: Dict[str, Dict[str, object]] = {
    "A": {"breadth": None, "honesty": 0.60},
    "B": {"breadth": 120, "honesty": 0.45},
    "C": {"breadth": 95, "honesty": 0.90},
    "D": {"breadth": 75, "honesty": 1.00},
    "E": {"breadth": 60, "honesty": 0.50},
    "F": {"breadth": 35, "honesty": 0.85},
    "G": {"breadth": 20, "honesty": 0.95},
}

#: P(claim is honest) by hosting tier, before the provider multiplier.
TIER_HONESTY = {1: 0.95, 2: 0.55, 3: 0.07}

#: Where consolidated (fake-location) servers actually live: weights over
#: tier-1 hosting countries, biased toward the paper's "probable country"
#: list (GB, DE, CZ, NL, US, FR, ...).
CONSOLIDATION_WEIGHTS: Dict[str, float] = {
    "US": 4.0, "DE": 3.5, "NL": 3.0, "GB": 3.0, "CZ": 2.5, "FR": 2.0,
    "CA": 1.5, "SE": 1.0, "RU": 1.0, "SG": 1.0, "JP": 0.8, "AU": 0.8,
    "PL": 0.6, "ES": 0.6, "LV": 0.6, "RO": 0.5, "CH": 0.5, "IT": 0.5,
}

#: Fraction of proxy servers that answer ICMP echo at all (paper: ~10 %).
PING_RESPONSE_RATE = 0.10


@dataclass(frozen=True)
class ProxyServer:
    """One VPN server IP, with simulator-side ground truth attached."""

    hostname: str
    ip: str
    provider: str
    claimed_country: str
    host: Host
    asn: int
    prefix: str                  # the /24 this IP belongs to
    datacenter_city_id: int
    honest: bool                 # ground truth: is it in the claimed country?
    responds_to_ping: bool
    gateway_responds: bool
    allows_traceroute: bool

    @property
    def true_location(self) -> Tuple[float, float]:
        return (self.host.lat, self.host.lon)


@dataclass
class VpnProvider:
    """A provider: its name, its claims, and its server fleet."""

    name: str
    claimed_countries: List[str]
    servers: List[ProxyServer] = field(default_factory=list)

    def servers_claiming(self, iso2: str) -> List[ProxyServer]:
        return [s for s in self.servers if s.claimed_country == iso2]

    @property
    def n_claimed_countries(self) -> int:
        return len(self.claimed_countries)


class _HostingAllocator:
    """Allocates hosting ASes and /24 prefixes per (provider, city)."""

    def __init__(self, topology: Topology, rng: np.random.Generator):
        self._topology = topology
        self._rng = rng
        self._by_site: Dict[Tuple[str, int], Tuple[int, str]] = {}
        self._hosts_in_prefix: Dict[str, int] = {}
        self._next_prefix_id = 1

    def allocate(self, provider: str, city_id: int) -> Tuple[int, str, str]:
        """Return (asn, prefix, ip) for a new server of this provider here."""
        site = (provider, city_id)
        if site not in self._by_site:
            hosting_as = self._topology.add_hosting_as(
                f"Hosting-{provider}-{self._topology.city(city_id).name}",
                city_id, self._rng)
            second_octet = self._next_prefix_id // 256
            third_octet = self._next_prefix_id % 256
            prefix = f"198.{second_octet}.{third_octet}.0/24"
            self._next_prefix_id += 1
            self._by_site[site] = (hosting_as.asn, prefix)
        asn, prefix = self._by_site[site]
        host_number = self._hosts_in_prefix.get(prefix, 0) + 1
        if host_number > 254:
            raise RuntimeError(f"prefix {prefix} exhausted")
        self._hosts_in_prefix[prefix] = host_number
        ip = prefix.rsplit(".", 1)[0] + f".{host_number}"
        return asn, prefix, ip

    def router_for(self, provider: str, city_id: int):
        asn, _ = self._by_site[(provider, city_id)]
        return (asn, city_id)


def _claim_list(registry: CountryRegistry, breadth: Optional[int],
                rng: np.random.Generator) -> List[str]:
    """Choose which countries a provider claims.

    Tier-1 and tier-2 countries are always claimed first (every real
    provider offers the popular locations); the long tail is sampled.
    """
    tier12 = [c.iso2 for c in registry if c.hosting_tier <= 2]
    tier3 = [c.iso2 for c in registry if c.hosting_tier == 3]
    if breadth is None or breadth >= len(registry):
        return tier12 + tier3
    claims = list(tier12[:breadth])
    remaining = breadth - len(claims)
    if remaining > 0:
        extras = rng.choice(tier3, size=min(remaining, len(tier3)), replace=False)
        claims.extend(str(e) for e in extras)
    return claims


def _servers_for_claim(claimed: str, tier: int, rng: np.random.Generator,
                       scale: float) -> int:
    """How many server IPs back one (provider, country) claim.

    Tier-1 counts are weighted by country popularity: the paper's fleets
    pile real servers into the US, Germany, the Netherlands, and the UK
    (its ten most-claimed countries hold 84 % of the credible cases).
    """
    if tier == 1:
        popularity = CONSOLIDATION_WEIGHTS.get(claimed, 0.4)
        base = float(rng.integers(3, 8)) * (0.6 + popularity)
    elif tier == 2:
        base = float(rng.integers(2, 5))
    else:
        base = float(rng.integers(1, 3))
    return max(1, int(round(base * scale)))


def build_proxy_fleet(network: Network, factory: HostFactory,
                      datacenters: DataCenterRegistry,
                      registry: Optional[CountryRegistry] = None,
                      seed: int = 0, scale: float = 1.0) -> List[VpnProvider]:
    """Generate the seven providers' full server fleets.

    ``scale`` shrinks or grows per-claim server counts; ``scale=1.0``
    yields roughly the paper's 2269 servers.
    """
    registry = registry if registry is not None else CountryRegistry.default()
    rng = np.random.default_rng(seed)
    topology = network.topology
    allocator = _HostingAllocator(topology, rng)

    consolidation_codes = [code for code in CONSOLIDATION_WEIGHTS if code in registry]
    weights = np.array([CONSOLIDATION_WEIGHTS[c] for c in consolidation_codes])
    weights = weights / weights.sum()

    providers: List[VpnProvider] = []
    for provider_name, profile in PROVIDER_PROFILES.items():
        claims = _claim_list(registry, profile["breadth"], rng)
        # Each provider consolidates its fake servers in a few countries.
        n_consolidation = int(rng.integers(3, 7))
        consolidation = list(rng.choice(consolidation_codes, size=n_consolidation,
                                        replace=False, p=weights))
        provider = VpnProvider(name=provider_name, claimed_countries=claims)
        for claimed in claims:
            country = registry.get(claimed)
            n_servers = _servers_for_claim(claimed, country.hosting_tier,
                                           rng, scale)
            p_honest = min(1.0, TIER_HONESTY[country.hosting_tier]
                           * float(profile["honesty"]))
            for server_number in range(n_servers):
                honest = bool(rng.random() < p_honest)
                if honest:
                    sites = datacenters.in_country(claimed)
                    if sites:
                        site = sites[int(rng.integers(len(sites)))]
                        lat, lon = site.lat, site.lon
                    else:
                        lat, lon = country.anchors[0]
                else:
                    # A fake server must actually be somewhere *else*.
                    pool = [code for code in consolidation if code != claimed]
                    if not pool:
                        pool = [code for code in consolidation_codes
                                if code != claimed]
                    fake_country = registry.get(
                        pool[int(rng.integers(len(pool)))])
                    sites = datacenters.in_country(fake_country.iso2)
                    if sites:
                        site = sites[int(rng.integers(len(sites)))]
                        lat, lon = site.lat, site.lon
                    else:
                        lat, lon = fake_country.anchors[0]
                city = factory.nearest_city(lat, lon)
                asn, prefix, ip = allocator.allocate(provider_name, city.city_id)
                host = factory.create(
                    lat, lon,
                    name=f"{provider_name.lower()}-{claimed.lower()}-{server_number}",
                    responds_to_ping=bool(rng.random() < PING_RESPONSE_RATE),
                    listens_on_port_80=True,
                    city_id=city.city_id,
                    router=allocator.router_for(provider_name, city.city_id),
                    # Data-centre uplink: sub-millisecond to the hosting AS.
                    last_mile_ms=float(rng.uniform(0.05, 0.6)))
                provider.servers.append(ProxyServer(
                    hostname=(f"{claimed.lower()}.{provider_name.lower()}"
                              f"-vpn.example"),
                    ip=ip,
                    provider=provider_name,
                    claimed_country=claimed,
                    host=host,
                    asn=asn,
                    prefix=prefix,
                    datacenter_city_id=city.city_id,
                    honest=honest,
                    responds_to_ping=bool(rng.random() < PING_RESPONSE_RATE),
                    gateway_responds=bool(rng.random() < 0.10),
                    allows_traceroute=bool(rng.random() < 0.66),
                ))
        providers.append(provider)
    return providers


class ProxiedClient:
    """A measurement client whose traffic is tunnelled through one proxy.

    Models the paper's section 5.3 setting: every RTT observed through the
    tunnel is the *sum* of client→proxy and proxy→landmark round trips
    (plus proxy processing), and the client→proxy component must be
    estimated by a self-ping through the tunnel because the proxy itself
    drops ICMP.
    """

    #: Per-packet processing delay added by the VPN software, ms.
    PROXY_OVERHEAD_MS = (0.3, 2.0)

    #: Which measurement burst a scheduled tunnel drop strikes.  Burst 0
    #: is the phase-1 panel; burst 1 is the phase-2 panel — a drop there
    #: is the paper's "proxy disappeared mid-campaign" case.  Later bursts
    #: are retries, by which time the tunnel has reconnected.
    _DROP_BURST = 1

    def __init__(self, network: Network, client: Host, proxy: ProxyServer,
                 seed: int = 0):
        self.network = network
        self.client = client
        self.proxy = proxy
        self._rng = np.random.default_rng(seed)
        self._burst_index = 0
        self._client_base: Optional[Tuple[int, float]] = None

    def _overhead(self, rng: np.random.Generator) -> float:
        low, high = self.PROXY_OVERHEAD_MS
        return float(rng.uniform(low, high))

    def _client_leg_base(self) -> float:
        """The client→proxy round-trip floor, resolved once per tunnel.

        Every burst through the tunnel reuses the same host pair, so the
        deterministic floor is cached (keyed on the topology version) and
        handed to the samplers instead of being re-resolved per burst.
        """
        version = self.network.topology.version
        if self._client_base is None or self._client_base[0] != version:
            self._client_base = (
                version, self.network.base_rtt_ms(self.client, self.proxy.host))
        return self._client_base[1]

    def rtt_through_proxy_ms(self, landmark: Landmark,
                             rng: Optional[np.random.Generator] = None) -> float:
        """TCP-connect time to a landmark, tunnelled through the proxy."""
        rng = rng if rng is not None else self._rng
        leg_client = self.network.rtt_sample_ms(self.client, self.proxy.host, rng)
        leg_landmark = self.network.rtt_sample_ms(self.proxy.host, landmark.host, rng)
        return leg_client + leg_landmark + self._overhead(rng)

    def rtt_through_proxy_samples_ms(self, landmark: Landmark, n: int,
                                     rng: Optional[np.random.Generator] = None
                                     ) -> np.ndarray:
        """``n`` tunnelled RTT samples to a landmark, drawn in batch."""
        rng = rng if rng is not None else self._rng
        legs_client = self.network.rtt_samples_ms(
            self.client, self.proxy.host, n, rng,
            base=self._client_leg_base())
        legs_landmark = self.network.rtt_samples_ms(
            self.proxy.host, landmark.host, n, rng)
        low, high = self.PROXY_OVERHEAD_MS
        return legs_client + legs_landmark + rng.uniform(low, high, size=n)

    def rtt_through_proxy_matrix_ms(self, landmarks: Sequence[Landmark],
                                    n: int,
                                    rng: Optional[np.random.Generator] = None
                                    ) -> np.ndarray:
        """``(len(landmarks), n)`` tunnelled RTT samples, one noise draw.

        The client→proxy leg is the same host pair for every landmark, so
        its ``len(landmarks) * n`` samples come from a single batch.
        """
        rng = rng if rng is not None else self._rng
        k = len(landmarks)
        if k == 0:
            return np.empty((0, n))
        legs_client = self.network.rtt_samples_ms(
            self.client, self.proxy.host, k * n, rng,
            base=self._client_leg_base()).reshape(k, n)
        legs_landmark = self.network.rtt_samples_matrix_ms(
            self.proxy.host, [lm.host for lm in landmarks], n, rng)
        low, high = self.PROXY_OVERHEAD_MS
        samples = (legs_client + legs_landmark
                   + rng.uniform(low, high, size=(k, n)))
        faults = self.network.active_faults()
        if faults is not None:
            if self._burst_index == self._DROP_BURST:
                drop_point = faults.tunnel_drop_point(self.proxy.host.host_id)
                if drop_point is not None:
                    # The tunnel drops partway through the panel: every
                    # probe from that landmark on is lost until the
                    # measurer retries (the reconnect).
                    samples[int(drop_point * k):] = np.nan
            self._burst_index += 1
        return samples

    def self_ping_through_proxy_ms(self,
                                   rng: Optional[np.random.Generator] = None) -> float:
        """Client pings itself through the tunnel: ≈ 2× the direct RTT.

        The packet travels client→proxy→client and the reply retraces the
        route, so the client→proxy path is traversed twice in each
        direction.
        """
        rng = rng if rng is not None else self._rng
        leg_out = self.network.rtt_sample_ms(self.client, self.proxy.host, rng)
        leg_back = self.network.rtt_sample_ms(self.client, self.proxy.host, rng)
        return leg_out + leg_back + self._overhead(rng)

    def self_ping_through_proxy_samples_ms(self, n: int,
                                           rng: Optional[np.random.Generator] = None
                                           ) -> np.ndarray:
        """``n`` tunnel self-ping samples, drawn in batch."""
        rng = rng if rng is not None else self._rng
        base = self._client_leg_base()
        legs_out = self.network.rtt_samples_ms(
            self.client, self.proxy.host, n, rng, base=base)
        legs_back = self.network.rtt_samples_ms(
            self.client, self.proxy.host, n, rng, base=base)
        low, high = self.PROXY_OVERHEAD_MS
        return legs_out + legs_back + rng.uniform(low, high, size=n)

    def direct_ping_ms(self, rng: Optional[np.random.Generator] = None) -> Optional[float]:
        """ICMP RTT to the proxy, or None when the proxy drops ICMP."""
        if not self.proxy.responds_to_ping:
            return None
        rng = rng if rng is not None else self._rng
        return self.network.rtt_sample_ms(self.client, self.proxy.host, rng)


def competitor_claim_counts(n_providers: int = 150, seed: int = 7,
                            max_countries: int = 197) -> List[int]:
    """Country-claim counts for the wider VPN market (Figure 14 backdrop).

    A heavy-tailed ranking: a few providers claim almost every sovereign
    state, most claim a handful.  Drawn once, deterministically.
    """
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, n_providers + 1, dtype=float)
    counts = max_countries * np.exp(-ranks / 11.0) + rng.integers(1, 8, size=n_providers)
    counts = np.clip(counts, 1, max_countries).astype(int)
    return sorted((int(c) for c in counts), reverse=True)
