"""Synthetic IP-to-location databases (the paper's Figure 21 comparators).

Five databases modelled on DB-IP, Eureka, IP2Location, IPInfo, and
MaxMind.  The paper's hypothesis is that such databases largely *echo the
providers' claims* — either because their compilers were fed location
codes the providers control, or because provider influence propagates with
some lag.  Each synthetic database therefore has:

* ``susceptibility`` — the probability it repeats a provider's claim even
  when the claim is false;
* ``registry_accuracy`` — when it does not repeat the claim, the chance it
  reports the *true* hosting country (IP registry information for
  commercial data centres is "reasonably close to the truth") rather than
  some stale third country.

True claims are almost always confirmed: nothing pushes a database away
from a correct location.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..geo.countries import CountryRegistry
from .proxies import ProxyServer


@dataclass(frozen=True)
class IpToLocationDatabase:
    """One commercial geolocation database, with its bias parameters."""

    name: str
    susceptibility: float      # P(repeat claim | claim false)
    registry_accuracy: float   # P(true country | not repeating a false claim)
    agree_when_true: float = 0.98

    def __post_init__(self) -> None:
        for attribute in ("susceptibility", "registry_accuracy", "agree_when_true"):
            value = getattr(self, attribute)
            if not (0.0 <= value <= 1.0):
                raise ValueError(f"{self.name}: {attribute} must be a probability")


DEFAULT_DATABASES = (
    IpToLocationDatabase("DB-IP", susceptibility=0.88, registry_accuracy=0.80),
    IpToLocationDatabase("Eureka", susceptibility=0.96, registry_accuracy=0.60),
    IpToLocationDatabase("IP2Location", susceptibility=0.78, registry_accuracy=0.85),
    IpToLocationDatabase("IPInfo", susceptibility=0.86, registry_accuracy=0.85),
    IpToLocationDatabase("MaxMind", susceptibility=0.95, registry_accuracy=0.70),
)


class IpdbPanel:
    """Deterministic lookups across the database panel.

    Lookups are seeded by (database, IP) so repeated queries agree — a
    database is a static snapshot, not a noise source.
    """

    def __init__(self, databases=DEFAULT_DATABASES,
                 registry: Optional[CountryRegistry] = None, seed: int = 0):
        self.databases: List[IpToLocationDatabase] = list(databases)
        self.registry = registry if registry is not None else CountryRegistry.default()
        self._seed = seed
        self._stale_pool = [c.iso2 for c in self.registry if c.hosting_tier <= 2]

    def _rng_for(self, database: IpToLocationDatabase, server: ProxyServer):
        key = hash((self._seed, database.name, server.ip)) & 0x7FFFFFFF
        return np.random.default_rng(key)

    def lookup(self, database_name: str, server: ProxyServer,
               true_country: str) -> str:
        """The country this database reports for the server's IP."""
        database = self.by_name(database_name)
        rng = self._rng_for(database, server)
        if server.claimed_country == true_country:
            if rng.random() < database.agree_when_true:
                return server.claimed_country
            return self._stale_country(rng, exclude=server.claimed_country)
        if rng.random() < database.susceptibility:
            return server.claimed_country
        if rng.random() < database.registry_accuracy:
            return true_country
        return self._stale_country(rng, exclude=server.claimed_country)

    def _stale_country(self, rng: np.random.Generator, exclude: str) -> str:
        candidates = [c for c in self._stale_pool if c != exclude]
        return candidates[int(rng.integers(len(candidates)))]

    def by_name(self, name: str) -> IpToLocationDatabase:
        for database in self.databases:
            if database.name == name:
                return database
        raise KeyError(f"unknown database {name!r}")

    def names(self) -> List[str]:
        return [d.name for d in self.databases]

    def agreement_with_claim(self, database_name: str, server: ProxyServer,
                             true_country: str) -> bool:
        """Does the database agree with the provider's claimed country?"""
        return self.lookup(database_name, server, true_country) == server.claimed_country

    def agreement_rates(self, servers_with_truth) -> Dict[str, float]:
        """Fraction of servers each database agrees with, over a fleet.

        ``servers_with_truth`` is an iterable of (server, true_country).
        """
        servers = list(servers_with_truth)
        if not servers:
            raise ValueError("no servers supplied")
        rates: Dict[str, float] = {}
        for database in self.databases:
            agreed = sum(
                1 for server, true_country in servers
                if self.agreement_with_claim(database.name, server, true_country))
            rates[database.name] = agreed / len(servers)
        return rates
