"""A RIPE-Atlas-like measurement constellation.

Roughly 250 "anchors" and a larger population of "probes", placed with the
same continental skew as the real RIPE Atlas (Figure 3 of the paper:
most anchors in Europe, North America well represented, a handful in
Africa).  Anchors continuously ping each other; the resulting full-mesh
database is what the geolocation algorithms calibrate their per-landmark
delay–distance models from, exactly as the paper does with RIPE's public
measurement archive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..geodesy.greatcircle import haversine_km
from .cities import City
from .hosts import Host, HostFactory
from .network import Network

#: Target anchor counts per continent, mirroring the paper's Figure 3 skew.
ANCHOR_QUOTAS: Dict[str, int] = {
    "EU": 118, "NA": 55, "AS": 28, "SA": 14, "AF": 12, "OC": 10, "AU": 8, "CA": 5,
}

#: Probe counts per continent (probes are also skewed, but less so).
PROBE_QUOTAS: Dict[str, int] = {
    "EU": 300, "NA": 180, "AS": 120, "SA": 60, "AF": 50, "OC": 40, "AU": 30, "CA": 25,
}


@dataclass(frozen=True)
class Landmark:
    """A constellation host usable as a geolocation landmark.

    ``reported_lat/lon`` model RIPE's user-supplied probe locations: for a
    small fraction of probes they are wrong, and the geolocation pipeline
    (which can only see the reported coordinates) inherits that error.
    Anchors' documented locations are accurate.
    """

    host: Host
    kind: str  # "anchor" or "probe"
    reported_lat: Optional[float] = None
    reported_lon: Optional[float] = None

    @property
    def lat(self) -> float:
        """The location the pipeline believes — reported, not true."""
        return self.reported_lat if self.reported_lat is not None else self.host.lat

    @property
    def lon(self) -> float:
        return self.reported_lon if self.reported_lon is not None else self.host.lon

    @property
    def location_is_wrong(self) -> bool:
        return (self.reported_lat is not None
                and (abs(self.reported_lat - self.host.lat) > 0.5
                     or abs(self.reported_lon - self.host.lon) > 0.5))

    @property
    def name(self) -> str:
        return self.host.name


class AtlasConstellation:
    """Anchors + probes + the mesh-ping database they continuously produce."""

    #: Ping samples per landmark pair in the "two-week" calibration window.
    CALIBRATION_SAMPLES = 8

    #: Fraction of probes whose user-reported location is wrong (shifted by
    #: hundreds of km).  Zero for anchors.
    PROBE_LOCATION_ERROR_RATE = 0.03

    def __init__(self, network: Network, factory: HostFactory, seed: int = 0,
                 anchor_quotas: Optional[Dict[str, int]] = None,
                 probe_quotas: Optional[Dict[str, int]] = None):
        self.network = network
        self._rng = np.random.default_rng(seed)
        self._factory = factory
        self.anchors: List[Landmark] = []
        self.probes: List[Landmark] = []
        self.decommissioned: List[Landmark] = []
        self._mesh_cache: Dict[Tuple[int, int], float] = {}
        self._churn_counter = 0
        self._place(factory, anchor_quotas or ANCHOR_QUOTAS,
                    probe_quotas or PROBE_QUOTAS)

    # -- placement ----------------------------------------------------------

    def _eligible_cities(self, continent: str, for_anchors: bool) -> List[City]:
        cities = [c for c in self.network.topology.cities
                  if c.continent == continent and not c.satellite_only]
        if for_anchors:
            # Anchors live in well-connected facilities; prefer hubs but
            # fall back to any city on sparse continents.
            hubs = [c for c in cities if c.is_hub]
            return hubs if hubs else cities
        return cities

    def _place_cohort(self, factory: HostFactory, quotas: Dict[str, int],
                      kind: str) -> List[Landmark]:
        cohort: List[Landmark] = []
        for continent, quota in sorted(quotas.items()):
            cities = self._eligible_cities(continent, for_anchors=(kind == "anchor"))
            if not cities:
                continue
            for i in range(quota):
                city = cities[int(self._rng.integers(len(cities)))]
                # Jitter within ~30 km of the city centre.
                lat = city.lat + float(self._rng.normal(0.0, 0.15))
                lon = city.lon + float(self._rng.normal(0.0, 0.15))
                lat = max(-89.9, min(89.9, lat))
                lon = max(-179.9, min(179.9, lon))
                host = factory.create(
                    lat, lon, name=f"{kind}-{continent}-{i}",
                    os="linux",
                    responds_to_ping=True,
                    listens_on_port_80=bool(self._rng.random() < 0.5),
                    city_id=city.city_id)
                reported_lat = reported_lon = None
                if (kind == "probe"
                        and self._rng.random() < self.PROBE_LOCATION_ERROR_RATE):
                    # User typo / stale registration: off by 200-1500 km.
                    reported_lat = max(-89.9, min(89.9, lat + float(
                        self._rng.uniform(-8.0, 8.0))))
                    reported_lon = max(-179.9, min(179.9, lon + float(
                        self._rng.uniform(-12.0, 12.0))))
                cohort.append(Landmark(host=host, kind=kind,
                                       reported_lat=reported_lat,
                                       reported_lon=reported_lon))
        return cohort

    def _place(self, factory: HostFactory, anchor_quotas: Dict[str, int],
               probe_quotas: Dict[str, int]) -> None:
        self.anchors = self._place_cohort(factory, anchor_quotas, "anchor")
        self.probes = self._place_cohort(factory, probe_quotas, "probe")

    # -- mesh database --------------------------------------------------------

    def all_landmarks(self) -> List[Landmark]:
        return self.anchors + self.probes

    def min_one_way_ms(self, a: Landmark, b: Landmark) -> float:
        """Minimum observed one-way delay between two landmarks, ms.

        Models the paper's use of two weeks of archived mesh pings: the
        reported value is half the minimum of several RTT samples, seeded
        deterministically per pair so the "database" is stable.
        """
        key = (min(a.host.host_id, b.host.host_id),
               max(a.host.host_id, b.host.host_id))
        cached = self._mesh_cache.get(key)
        if cached is None:
            pair_rng = np.random.default_rng(key)
            # Archived data: even when lazily materialised mid-audit, the
            # mesh ping must come from the pristine substrate, or the
            # cached value would depend on whose measurement epoch
            # happened to trigger it.
            with self.network.fault_free():
                rtt = self.network.min_rtt_ms(
                    a.host, b.host, n=self.CALIBRATION_SAMPLES, rng=pair_rng)
            cached = rtt / 2.0
            self._mesh_cache[key] = cached
        return cached

    def ensure_mesh(self, pairs) -> None:
        """Batch-materialise the archive for an iterable of landmark pairs.

        The deterministic round-trip floors of every not-yet-cached pair
        come from one vectorised :meth:`Network.base_rtt_pairs` call (one
        batched Dijkstra over all sources involved) instead of a scalar
        shortest-path resolution per pair.  Each pair then draws its
        noise from the same per-pair seeded generator the scalar path
        uses, in the same caller order, so the cached values are
        bit-identical to lazy materialisation — including the direction
        asymmetry: the floor is computed for the pair as *given*, exactly
        as the first scalar caller would have.
        """
        todo = []
        seen = set()
        for a, b in pairs:
            if a.host.host_id == b.host.host_id:
                continue
            key = (min(a.host.host_id, b.host.host_id),
                   max(a.host.host_id, b.host.host_id))
            if key in self._mesh_cache or key in seen:
                continue
            seen.add(key)
            todo.append((key, a, b))
        if not todo:
            return
        bases = self.network.base_rtt_pairs(
            [a.host for _, a, _ in todo], [b.host for _, _, b in todo])
        with self.network.fault_free():
            for (key, a, b), base in zip(todo, bases):
                pair_rng = np.random.default_rng(key)
                rtt = self.network.min_rtt_ms(
                    a.host, b.host, n=self.CALIBRATION_SAMPLES,
                    rng=pair_rng, base=float(base))
                self._mesh_cache[key] = rtt / 2.0

    def calibration_data(self, landmark: Landmark,
                         peers: Optional[Sequence[Landmark]] = None
                         ) -> List[Tuple[float, float]]:
        """(distance_km, min_one_way_ms) pairs for fitting a delay model.

        By default a landmark is calibrated against every *anchor* (probes
        do not ping the full mesh), excluding itself.
        """
        peers = peers if peers is not None else self.anchors
        self.ensure_mesh((landmark, peer) for peer in peers)
        data: List[Tuple[float, float]] = []
        for peer in peers:
            if peer.host.host_id == landmark.host.host_id:
                continue
            # Distances are computed from *reported* coordinates — the
            # pipeline cannot know a probe's registration is wrong.
            distance = haversine_km(landmark.lat, landmark.lon,
                                    peer.lat, peer.lon)
            data.append((distance, self.min_one_way_ms(landmark, peer)))
        if len(data) < 2:
            raise ValueError(
                f"not enough peers to calibrate {landmark.name!r}")
        return data

    def apply_churn(self, n_decommission: int = 0, n_add: int = 0,
                    rng: Optional[np.random.Generator] = None) -> None:
        """Simulate constellation churn over a measurement campaign.

        The paper (section 4): "At the time we began our experiments ...
        there were 207 usable anchors; during the course of the
        experiment, 12 were decommissioned and another 61 were added."
        Decommissioned anchors stop being selectable as landmarks (their
        archived mesh pings remain in the cache, as RIPE's archive does);
        added anchors appear at hub cities like the originals.

        Calibration sets built before churn keep working for surviving
        landmarks; rebuild :class:`~repro.core.calibrationset.CalibrationSet`
        to pick up the newcomers.
        """
        rng = rng if rng is not None else self._rng
        if n_decommission > len(self.anchors) - 8:
            raise ValueError("cannot decommission nearly the whole constellation")
        for _ in range(n_decommission):
            index = int(rng.integers(len(self.anchors)))
            self.decommissioned.append(self.anchors.pop(index))
        for i in range(n_add):
            continent = ("EU", "NA", "AS")[int(rng.integers(3))]
            cities = self._eligible_cities(continent, for_anchors=True)
            city = cities[int(rng.integers(len(cities)))]
            self._churn_counter += 1
            host = self._factory.create(
                city.lat + float(rng.normal(0.0, 0.15)),
                city.lon + float(rng.normal(0.0, 0.15)),
                name=f"anchor-new-{self._churn_counter}",
                os="linux", responds_to_ping=True,
                listens_on_port_80=bool(rng.random() < 0.5),
                city_id=city.city_id)
            self.anchors.append(Landmark(host=host, kind="anchor"))

    def landmarks_on_continent(self, continent: str) -> List[Landmark]:
        """Anchors and stable probes located on a continent."""
        topology = self.network.topology
        return [lm for lm in self.all_landmarks()
                if topology.city(lm.host.city_id).continent == continent]

    def anchors_on_continent(self, continent: str) -> List[Landmark]:
        topology = self.network.topology
        return [lm for lm in self.anchors
                if topology.city(lm.host.city_id).continent == continent]
