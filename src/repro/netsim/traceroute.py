"""Traceroute simulation and the measurement-channel survey (paper §4.2).

The paper could not use ICMP or traceroute against commercial proxies:
"roughly 90 % ignore ICMP ping requests", "90 % of the default gateways
… ignore ping requests and do not send time-exceeded packets", and
"roughly a third of the servers discard all time-exceeded packets, so it
is not possible to traceroute through them at all".  That filtering is
what forces the TCP-connect-to-port-80 measurement design.

This module reproduces the situation: a router-level traceroute over the
simulated topology, the proxies' filtering behaviour applied to it, and
:func:`survey_measurement_channels`, which re-derives the paper's
percentages from the simulated fleet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .hosts import Host
from .network import Network, Unreachable
from .proxies import ProxyServer
from .topology import RouterId


@dataclass(frozen=True)
class Hop:
    """One traceroute hop: the router, and its RTT if it answered."""

    index: int
    router: Optional[RouterId]      # None when the hop stayed silent
    rtt_ms: Optional[float]

    @property
    def responded(self) -> bool:
        return self.router is not None


@dataclass
class TracerouteResult:
    """A (possibly truncated) traceroute."""

    hops: List[Hop]
    reached_destination: bool

    @property
    def visible_hops(self) -> int:
        return sum(1 for hop in self.hops if hop.responded)


#: Fraction of transit routers that answer time-exceeded probes at all.
ROUTER_RESPONSE_RATE = 0.85


def traceroute(network: Network, source: Host, destination: Host,
               rng: Optional[np.random.Generator] = None) -> TracerouteResult:
    """Plain traceroute between two directly reachable hosts."""
    rng = rng if rng is not None else np.random.default_rng(
        (source.host_id, destination.host_id))
    path = network.route(source.router, destination.router)
    hops: List[Hop] = []
    cumulative = source.last_mile_ms
    for index, router in enumerate(path, start=1):
        if index > 1:
            cumulative += float(
                network.topology.graph[path[index - 2]][router]["latency_ms"])
        if rng.random() < ROUTER_RESPONSE_RATE:
            rtt = 2.0 * cumulative + float(rng.exponential(1.0))
            hops.append(Hop(index=index, router=router, rtt_ms=rtt))
        else:
            hops.append(Hop(index=index, router=None, rtt_ms=None))
    reached = destination.responds_to_ping
    return TracerouteResult(hops=hops, reached_destination=reached)


def traceroute_through_proxy(network: Network, client: Host,
                             proxy: ProxyServer, destination: Host,
                             rng: Optional[np.random.Generator] = None
                             ) -> TracerouteResult:
    """Traceroute tunnelled through a proxy, with its filtering applied.

    A proxy that discards time-exceeded packets makes every hop beyond
    it invisible; a silent default gateway hides the first hop even when
    the rest of the path answers.
    """
    rng = rng if rng is not None else np.random.default_rng(
        (client.host_id, proxy.host.host_id, destination.host_id))
    if not proxy.allows_traceroute:
        # All time-exceeded responses are discarded inside the tunnel.
        return TracerouteResult(hops=[], reached_destination=False)
    inner = traceroute(network, proxy.host, destination, rng)
    hops = list(inner.hops)
    if hops and not proxy.gateway_responds:
        first = hops[0]
        hops[0] = Hop(index=first.index, router=None, rtt_ms=None)
    return TracerouteResult(hops=hops,
                            reached_destination=inner.reached_destination)


def survey_measurement_channels(network: Network,
                                servers: Sequence[ProxyServer],
                                probe_target: Host,
                                rng: Optional[np.random.Generator] = None
                                ) -> Dict[str, float]:
    """Re-derive the paper's §4.2 channel statistics for a fleet.

    Returns fractions of the fleet that: answer ICMP directly, have a
    visible default gateway, permit traceroute through the tunnel, and —
    always — accept a TCP connection on port 80 (the one channel that
    reliably works, hence the paper's measurement design).
    """
    servers = list(servers)
    if not servers:
        raise ValueError("no servers supplied")
    rng = rng if rng is not None else np.random.default_rng(0)
    pingable = sum(1 for s in servers if s.responds_to_ping)
    gateway_visible = sum(1 for s in servers if s.gateway_responds)
    tracerouteable = 0
    for server in servers:
        result = traceroute_through_proxy(network, probe_target, server,
                                          probe_target, rng)
        if result.hops:
            tracerouteable += 1
    tcp_port_80 = sum(1 for s in servers if s.host.listens_on_port_80)
    n = len(servers)
    return {
        "icmp_ping": pingable / n,
        "gateway_visible": gateway_visible / n,
        "traceroute_through": tracerouteable / n,
        "tcp_port_80": tcp_port_80 / n,
    }
