"""Autonomous-system topology and the router-level graph.

The synthetic Internet is a three-tier AS hierarchy:

* **Tier 1** — a handful of global backbones, present at every global hub
  and a sample of regional hubs, densely interconnected.
* **Tier 2** — regional transit networks, one handful per continent,
  present at that continent's hubs and most of its access cities.  The
  *number* of tier-2 networks per continent encodes the paper's network-
  geometry observation: Europe and North America are richly connected
  (many alternative paths, low route circuitousness), Africa and parts of
  Asia are not (traffic detours through a few distant hubs).
* **Tier 3** — an access/eyeball AS in every city, plus hosting ASes
  created on demand for data centres (see :mod:`repro.netsim.proxies`).

Routers are ``(asn, city_id)`` pairs.  Intra-AS links follow a spanning
tree over the AS's presence cities plus a few shortcut links; inter-AS
links exist where two ASes share a city (an IXP).  Link delay is
great-circle distance at 200 km/ms (the physical floor the geolocation
algorithms assume) times a per-link cable-inflation factor, plus per-hop
processing.  Satellite-only cities attach via a geostationary hop with a
ungeographic ~250 ms one-way delay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from ..geodesy.constants import BASELINE_SPEED_KM_PER_MS, DEG_TO_RAD
from ..geodesy.greatcircle import haversine_km
from .cities import City

RouterId = Tuple[int, int]  # (asn, city_id)

#: Tier-2 transit ASes per continent: the substrate's "network geometry" knob.
REGIONAL_AS_COUNT: Dict[str, int] = {
    "EU": 6, "NA": 5, "AS": 3, "AF": 2, "SA": 2, "CA": 2, "OC": 2, "AU": 2,
}

#: Fraction of a continent's access cities each tier-2 AS reaches.
REGIONAL_AS_COVERAGE: Dict[str, float] = {
    "EU": 0.75, "NA": 0.75, "AS": 0.5, "AF": 0.4, "SA": 0.55, "CA": 0.5,
    "OC": 0.5, "AU": 0.9,
}

N_BACKBONES = 8

#: One-way delay of a geostationary satellite hop, ms (up + down).
SATELLITE_HOP_ONE_WAY_MS = 250.0


@dataclass(frozen=True)
class AutonomousSystem:
    """One AS: a number, a tier, and the cities where it has routers."""

    asn: int
    name: str
    tier: int
    city_ids: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.tier not in (1, 2, 3):
            raise ValueError(f"AS{self.asn}: tier must be 1, 2 or 3")
        if not self.city_ids:
            raise ValueError(f"AS{self.asn}: needs at least one presence city")


@dataclass
class Topology:
    """The router graph plus its AS bookkeeping.

    ``version`` increments on every structural mutation (hosting-AS
    creation); latency caches key off it to stay coherent.
    """

    cities: List[City]
    ases: List[AutonomousSystem]
    graph: nx.Graph
    access_as_of_city: Dict[int, int]
    _next_asn: int = field(default=0)
    version: int = field(default=0)

    def city(self, city_id: int) -> City:
        return self.cities[city_id]

    def as_by_asn(self, asn: int) -> AutonomousSystem:
        for autonomous_system in self.ases:
            if autonomous_system.asn == asn:
                return autonomous_system
        raise KeyError(f"unknown ASN {asn}")

    def access_router(self, city_id: int) -> RouterId:
        """The access-AS router in a city — where end hosts attach."""
        return (self.access_as_of_city[city_id], city_id)

    def add_hosting_as(self, name: str, city_id: int,
                       rng: np.random.Generator) -> AutonomousSystem:
        """Create a tier-3 hosting AS at a data-centre city.

        The new AS gets a router at the city, linked to every other AS
        present there (hosting networks are richly peered).  Used by the
        proxy substrate to give proxies realistic AS/prefix metadata.
        """
        asn = self._next_asn
        self._next_asn += 1
        self.version += 1
        hosting_as = AutonomousSystem(asn=asn, name=name, tier=3, city_ids=(city_id,))
        self.ases.append(hosting_as)
        router: RouterId = (asn, city_id)
        self.graph.add_node(router)
        peers = [node for node in self.graph.nodes
                 if node[1] == city_id and node != router]
        for peer in peers:
            self.graph.add_edge(router, peer,
                                latency_ms=float(rng.uniform(0.2, 0.8)))
        return hosting_as


def _link_latency_ms(a: City, b: City, rng: np.random.Generator,
                     inflation_range: Tuple[float, float] = (1.1, 1.7)) -> float:
    """Propagation delay of a physical link between two cities, one-way ms."""
    distance = haversine_km(a.lat, a.lon, b.lat, b.lon)
    inflation = float(rng.uniform(*inflation_range))
    processing = float(rng.uniform(0.2, 0.8))
    return distance * inflation / BASELINE_SPEED_KM_PER_MS + processing


def _spanning_links(city_ids: Sequence[int], cities: List[City],
                    extra_per_node: int = 1) -> List[Tuple[int, int]]:
    """A spanning tree over the cities plus nearest-neighbour shortcuts.

    Produces a connected intra-AS backbone whose paths are somewhat
    circuitous (traffic follows the tree) but with enough shortcuts for
    route diversity in dense regions.

    Vectorised Prim over a pairwise distance matrix; link *selection* and
    link *order* match :func:`_spanning_links_reference` (the original
    scalar loops) — distances only pick edges, every edge latency is
    drawn later from the same scalar formula, so the resulting topology
    is identical (regression-tested).
    """
    ids = list(city_ids)
    n = len(ids)
    if n == 1:
        return []
    lats = np.array([cities[i].lat for i in ids])
    lons = np.array([cities[i].lon for i in ids])
    phi = lats * DEG_TO_RAD
    dphi = (lats[None, :] - lats[:, None]) * DEG_TO_RAD
    dlam = (lons[None, :] - lons[:, None]) * DEG_TO_RAD
    a = (np.sin(dphi / 2.0) ** 2
         + np.cos(phi)[:, None] * np.cos(phi)[None, :]
         * np.sin(dlam / 2.0) ** 2)
    np.clip(a, 0.0, 1.0, out=a)
    distance = np.arcsin(np.sqrt(a))    # omitted constant factor: order-preserving
    links: List[Tuple[int, int]] = []
    # Prim's algorithm: track, per city outside the tree, the nearest
    # tree city seen so far; each round adds the globally nearest pair.
    visited = np.zeros(n, dtype=bool)
    visited[0] = True
    best_d = distance[0].copy()
    best_u = np.zeros(n, dtype=np.intp)
    for _ in range(n - 1):
        masked = np.where(visited, np.inf, best_d)
        v = int(np.argmin(masked))
        links.append((ids[int(best_u[v])], ids[v]))
        visited[v] = True
        improve = distance[v] < best_d
        best_u[improve] = v
        best_d = np.minimum(best_d, distance[v])
    # Shortcuts: each city also links to its nearest non-tree neighbours.
    if extra_per_node > 0 and n > 3:
        existing = {frozenset(link) for link in links}
        order = np.argsort(distance, axis=1, kind="stable")
        for i in range(n):
            u = ids[i]
            added = 0
            for j in order[i]:
                v = ids[int(j)]
                if v == u:          # self-distance 0 sorts first; skip it
                    continue
                key = frozenset((u, v))
                if key in existing:
                    continue
                links.append((u, v))
                existing.add(key)
                added += 1
                if added >= extra_per_node:
                    break
    return links


def _spanning_links_reference(city_ids: Sequence[int], cities: List[City],
                              extra_per_node: int = 1) -> List[Tuple[int, int]]:
    """The original scalar spanning-link construction (regression oracle)."""
    ids = list(city_ids)
    if len(ids) == 1:
        return []
    links: List[Tuple[int, int]] = []
    in_tree = {ids[0]}
    remaining = set(ids[1:])
    while remaining:
        best: Optional[Tuple[int, int]] = None
        best_distance = float("inf")
        for u in in_tree:
            cu = cities[u]
            for v in remaining:
                cv = cities[v]
                d = haversine_km(cu.lat, cu.lon, cv.lat, cv.lon)
                if d < best_distance:
                    best_distance = d
                    best = (u, v)
        assert best is not None
        links.append(best)
        in_tree.add(best[1])
        remaining.discard(best[1])
    if extra_per_node > 0 and len(ids) > 3:
        existing = {frozenset(link) for link in links}
        for u in ids:
            cu = cities[u]
            by_distance = sorted(
                (v for v in ids if v != u),
                key=lambda v: haversine_km(cu.lat, cu.lon, cities[v].lat, cities[v].lon))
            added = 0
            for v in by_distance:
                key = frozenset((u, v))
                if key in existing:
                    continue
                links.append((u, v))
                existing.add(key)
                added += 1
                if added >= extra_per_node:
                    break
    return links


def build_topology(cities: List[City], seed: int = 0) -> Topology:
    """Construct the full three-tier topology over a city list."""
    rng = np.random.default_rng(seed)
    ases: List[AutonomousSystem] = []
    next_asn = 64512  # private-use ASN space; purely cosmetic

    global_hubs = [c.city_id for c in cities if c.hub_level == 2]
    if not global_hubs:
        raise ValueError("city list has no global hubs; topology would be degenerate")

    # Tier 1 backbones.
    regional_hubs = [c.city_id for c in cities if c.hub_level == 1]
    for i in range(N_BACKBONES):
        sampled = [h for h in regional_hubs if rng.random() < 0.45]
        presence = tuple(sorted(set(global_hubs) | set(sampled)))
        ases.append(AutonomousSystem(next_asn, f"Backbone-{i + 1}", 1, presence))
        next_asn += 1

    # Tier 2 regional transit.
    by_continent: Dict[str, List[City]] = {}
    for city in cities:
        by_continent.setdefault(city.continent, []).append(city)
    for continent, continent_cities in sorted(by_continent.items()):
        hubs_here = [c.city_id for c in continent_cities if c.is_hub]
        access_here = [c.city_id for c in continent_cities
                       if not c.is_hub and not c.satellite_only]
        count = REGIONAL_AS_COUNT.get(continent, 2)
        coverage = REGIONAL_AS_COVERAGE.get(continent, 0.5)
        for i in range(count):
            n_access = max(1, int(round(coverage * len(access_here)))) if access_here else 0
            chosen = (list(rng.choice(access_here, size=n_access, replace=False))
                      if n_access else [])
            presence = tuple(sorted(set(hubs_here) | set(int(c) for c in chosen)))
            if not presence:
                continue
            ases.append(AutonomousSystem(
                next_asn, f"{continent}-Transit-{i + 1}", 2, presence))
            next_asn += 1

    # Tier 3 access AS in every city.
    access_as_of_city: Dict[int, int] = {}
    for city in cities:
        ases.append(AutonomousSystem(
            next_asn, f"Access-{city.name}", 3, (city.city_id,)))
        access_as_of_city[city.city_id] = next_asn
        next_asn += 1

    graph = nx.Graph()
    for autonomous_system in ases:
        for city_id in autonomous_system.city_ids:
            graph.add_node((autonomous_system.asn, city_id))

    # Intra-AS links for multi-city ASes.
    for autonomous_system in ases:
        if len(autonomous_system.city_ids) < 2:
            continue
        extra = 2 if autonomous_system.tier == 1 else 1
        for u, v in _spanning_links(autonomous_system.city_ids, cities, extra_per_node=extra):
            latency = _link_latency_ms(cities[u], cities[v], rng)
            graph.add_edge((autonomous_system.asn, u), (autonomous_system.asn, v),
                           latency_ms=latency)

    # Inter-AS peering at shared cities (IXPs).
    presence_at_city: Dict[int, List[int]] = {}
    for autonomous_system in ases:
        for city_id in autonomous_system.city_ids:
            presence_at_city.setdefault(city_id, []).append(autonomous_system.asn)
    for city_id, asns in presence_at_city.items():
        for i, asn_a in enumerate(asns):
            for asn_b in asns[i + 1:]:
                graph.add_edge((asn_a, city_id), (asn_b, city_id),
                               latency_ms=float(rng.uniform(0.3, 1.2)))

    # Backhaul for cities whose access AS is otherwise isolated: connect to
    # the nearest city that has transit.  Satellite-only cities get a
    # geostationary hop instead of fibre.
    transit_cities = sorted({city_id for a in ases if a.tier <= 2
                             for city_id in a.city_ids})
    for city in cities:
        router = (access_as_of_city[city.city_id], city.city_id)
        if graph.degree(router) > 0 and not city.satellite_only:
            continue
        candidates = [cid for cid in transit_cities if cid != city.city_id]
        nearest = min(candidates, key=lambda cid: haversine_km(
            city.lat, city.lon, cities[cid].lat, cities[cid].lon))
        target_asn = next(a.asn for a in ases
                          if a.tier <= 2 and nearest in a.city_ids)
        if city.satellite_only:
            latency = SATELLITE_HOP_ONE_WAY_MS + float(rng.uniform(0.0, 10.0))
        else:
            # Backhaul fibre is more circuitous than metro links.
            latency = _link_latency_ms(city, cities[nearest], rng,
                                       inflation_range=(1.3, 2.2))
        # Remove any IXP edges a satellite city might have picked up: its
        # only way out is the satellite hop.
        if city.satellite_only:
            for neighbor in list(graph.neighbors(router)):
                graph.remove_edge(router, neighbor)
        graph.add_edge(router, (target_asn, nearest), latency_ms=latency)

    return Topology(cities=cities, ases=ases, graph=graph,
                    access_as_of_city=access_as_of_city, _next_asn=next_asn)
