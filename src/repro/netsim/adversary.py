"""Adversarial proxies that manipulate round-trip times (paper §8).

The paper's discussion: a VPN operator who knows it is being actively
geolocated can fight back.  Being *in the middle* it can

* **selectively delay** packets — possible for any target, but delay can
  only be *added*, so measurements can only overestimate distance; and
* **forge early SYN-ACKs** — it sees the client's SYNs, so unlike the
  end-host attacker of Abdou et al. it needs no sequence-number guessing,
  and can make any landmark appear arbitrarily *close*.

:class:`AdversarialTunnel` wraps the honest tunnel with either strategy,
aiming measurements at a *pretended location*.  The companion experiment
(`benchmarks/test_bench_ext_adversary.py`) reproduces the qualitative
claims: delay-adding cannot evict the true location from CBG-family
regions (disks only grow), while it freely displaces the minimum-distance
models; SYN-ACK forgery defeats everything.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..geodesy.constants import BASELINE_SPEED_KM_PER_MS
from ..geodesy.greatcircle import haversine_km, validate_latlon
from .atlas import Landmark
from .hosts import Host
from .network import Network
from .proxies import ProxiedClient, ProxyServer

STRATEGIES = ("add-delay", "forge-synack")


class AdversarialTunnel(ProxiedClient):
    """A tunnel whose proxy fakes being at ``pretend_location``.

    The proxy computes, per landmark, the round-trip time a server at the
    pretended location would plausibly exhibit (great-circle distance at
    an assumed effective speed, plus a base overhead), and shapes its
    responses toward it:

    * ``add-delay`` — responses are held back until at least the target
      time has elapsed; they can never arrive earlier than the real path
      allows.
    * ``forge-synack`` — the proxy answers the client's SYN itself with a
      forged SYN-ACK timed to the target value, even when that is faster
      than the real landmark exchange.
    """

    #: Effective speed the adversary assumes when faking distances, km/ms.
    #: A real operator would calibrate this; half the fibre speed mimics
    #: typical Internet path inflation.
    FAKE_SPEED_KM_PER_MS = BASELINE_SPEED_KM_PER_MS / 2.0

    #: Base round-trip overhead the adversary adds to its fakes, ms.
    FAKE_BASE_RTT_MS = 6.0

    def __init__(self, network: Network, client: Host, proxy: ProxyServer,
                 pretend_location: Tuple[float, float],
                 strategy: str = "add-delay", seed: int = 0):
        super().__init__(network, client, proxy, seed=seed)
        validate_latlon(*pretend_location)
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; expected one of {STRATEGIES}")
        self.pretend_location = pretend_location
        self.strategy = strategy

    def _target_proxy_leg_ms(self, landmark: Landmark) -> float:
        """The proxy→landmark RTT the adversary wants observed."""
        distance = haversine_km(*self.pretend_location,
                                landmark.lat, landmark.lon)
        return 2.0 * distance / self.FAKE_SPEED_KM_PER_MS + self.FAKE_BASE_RTT_MS

    def rtt_through_proxy_ms(self, landmark: Landmark,
                             rng: Optional[np.random.Generator] = None) -> float:
        rng = rng if rng is not None else self._rng
        leg_client = self.network.rtt_sample_ms(self.client, self.proxy.host,
                                                rng)
        real_leg = (self.network.rtt_sample_ms(self.proxy.host, landmark.host,
                                               rng) + self._overhead(rng))
        target_leg = self._target_proxy_leg_ms(landmark) + float(
            rng.uniform(0.0, 2.0))
        if self.strategy == "add-delay":
            # Delay can only be added: the response is held until the
            # later of the real arrival and the target time.
            shaped = max(real_leg, target_leg)
        else:
            # Forged SYN-ACK: the proxy answers by itself at the target
            # time, regardless of the real landmark round trip.
            shaped = target_leg
        return leg_client + shaped

    # Self-pings are unaffected: the adversary cannot tell them apart from
    # ordinary tunnelled traffic to the client itself, and delaying them
    # would *inflate* the client-leg estimate, helping the investigator.
