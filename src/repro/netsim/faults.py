"""Seeded fault injection for the network simulator.

The paper's measurements contend with an unreliable substrate: probes are
lost, landmarks die mid-campaign (§4: 12 anchors decommissioned during the
experiment), VPN tunnels drop and reconnect, and transient congestion
inflates RTT floors (§4.3 discards unstable calibration hosts).  The
simulator's perfect delivery makes none of the pipeline's failure handling
exercisable; this module restores the failure modes, deterministically.

Design constraints, in order of importance:

1. **The zero-fault path is byte-identical to the fault-free simulator.**
   When no profile is active the injector consumes *no* random draws and
   touches no sample, so audits with and without the fault layer compiled
   in produce the same records bit for bit.
2. **Faults are order-independent.**  Scheduled faults (outages, tunnel
   drops, a server's position in campaign time) are pure functions of
   ``(fault seed, host id)``; per-probe faults (loss, congestion) draw from
   the caller's measurement stream, which audits key by
   ``(seed, host_id)`` — so serial, parallel, and resumed-from-checkpoint
   runs all see identical faults.
3. **Faults only afflict live measurements.**  The mesh-ping archive the
   algorithms calibrate from is two weeks of *already collected* data; the
   :class:`~repro.netsim.network.Network` applies the injector only inside
   an explicit measurement epoch (see ``Network.measurement_epoch_for``),
   leaving calibration and diagnostic paths untouched.

Lost probes surface as ``NaN`` samples; a burst that loses everything makes
:meth:`Network.min_rtt_ms` raise :class:`MeasurementFailed`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np


class MeasurementFailed(Exception):
    """Every probe of a measurement burst was lost or timed out."""


@dataclass(frozen=True)
class FaultProfile:
    """One named bundle of fault rates — the unit of configuration.

    ``loss_rate``
        Per-probe packet-loss probability on every measured link.
    ``timeout_ms``
        Probe timeout: samples slower than this are reported lost (the
        measuring tool gives up), not merely slow.
    ``n_landmark_outages``
        How many landmarks get a scheduled down window during the
        campaign (dead anchors, §4's decommissioning).
    ``outage_fraction``
        Fraction of the campaign each outage window covers.
    ``tunnel_drop_rate``
        Probability that a given proxy's VPN tunnel drops once mid-audit
        (and reconnects on retry).
    ``congestion_rate``
        Probability that a probe burst lands in a transient congestion
        episode, which inflates the whole burst's RTT floor.
    ``congestion_extra_ms``
        Mean floor inflation during a congestion episode.
    """

    name: str
    loss_rate: float = 0.0
    timeout_ms: float = math.inf
    n_landmark_outages: int = 0
    outage_fraction: float = 0.25
    tunnel_drop_rate: float = 0.0
    congestion_rate: float = 0.0
    congestion_extra_ms: float = 40.0

    def __post_init__(self) -> None:
        if not (0.0 <= self.loss_rate < 1.0) and self.loss_rate != 1.0:
            raise ValueError(f"loss_rate out of [0, 1]: {self.loss_rate!r}")
        if self.timeout_ms <= 0:
            raise ValueError(f"timeout_ms must be positive: {self.timeout_ms!r}")
        if not (0.0 <= self.outage_fraction < 1.0):
            raise ValueError(
                f"outage_fraction out of [0, 1): {self.outage_fraction!r}")

    @property
    def is_null(self) -> bool:
        """True when the profile injects nothing at all."""
        return (self.loss_rate == 0.0
                and math.isinf(self.timeout_ms)
                and self.n_landmark_outages == 0
                and self.tunnel_drop_rate == 0.0
                and self.congestion_rate == 0.0)


#: The named profiles the CLI exposes via ``--fault-profile``.
FAULT_PROFILES: Dict[str, FaultProfile] = {
    "none": FaultProfile(name="none"),
    # A long-haul consumer path: 5 % probe loss, two landmarks dead for
    # part of the campaign, the occasional tunnel drop and congestion
    # episode.  The acceptance profile for the resilient pipeline.
    "lossy-wan": FaultProfile(
        name="lossy-wan",
        loss_rate=0.05,
        timeout_ms=800.0,
        n_landmark_outages=2,
        outage_fraction=0.3,
        tunnel_drop_rate=0.02,
        congestion_rate=0.02,
        congestion_extra_ms=40.0,
    ),
    # A flaky VPN fleet: tunnels drop often, loss is heavy, and more of
    # the constellation goes dark.
    "flaky-vpn": FaultProfile(
        name="flaky-vpn",
        loss_rate=0.12,
        timeout_ms=600.0,
        n_landmark_outages=5,
        outage_fraction=0.4,
        tunnel_drop_rate=0.15,
        congestion_rate=0.05,
        congestion_extra_ms=60.0,
    ),
    # Total blackout — every probe lost.  Exercises the pipeline's
    # last-ditch paths: every server must still yield a (degraded,
    # unlocatable) record instead of an exception.
    "blackout": FaultProfile(name="blackout", loss_rate=1.0),
}


def resolve_fault_profile(profile) -> Optional[FaultProfile]:
    """Accept a profile, a profile name, or None; normalise nulls to None."""
    if profile is None:
        return None
    if isinstance(profile, str):
        try:
            profile = FAULT_PROFILES[profile]
        except KeyError:
            raise KeyError(
                f"unknown fault profile {profile!r}; "
                f"known: {sorted(FAULT_PROFILES)}") from None
    if not isinstance(profile, FaultProfile):
        raise TypeError(f"not a fault profile: {profile!r}")
    return None if profile.is_null else profile


class FaultInjector:
    """Applies one :class:`FaultProfile` to measurement sample streams.

    Scheduled state (outage windows, campaign times, tunnel drops) comes
    from private RNG streams keyed by ``(seed, tag, host_id)`` so it never
    perturbs — and is never perturbed by — the measurement noise streams.
    """

    #: Stream tags for the private RNG families (arbitrary, fixed).
    _TAG_OUTAGE = 0xFA01
    _TAG_CLOCK = 0xFA02
    _TAG_TUNNEL = 0xFA03

    def __init__(self, profile: FaultProfile, seed: int = 0):
        self.profile = profile
        self.seed = seed
        #: host_id -> (window_start, window_end) in campaign time [0, 1).
        self._outages: Dict[int, Tuple[float, float]] = {}

    # -- scheduled faults (pure functions of seed + host id) ----------------

    def schedule_outages(self, host_ids: Sequence[int]) -> None:
        """Pick which landmarks get a down window, and when.

        Deterministic in ``(seed, profile)`` and in the *set* of host ids
        (they are sorted first), not in the order they are supplied.
        """
        self._outages.clear()
        count = min(self.profile.n_landmark_outages, len(host_ids))
        if count == 0:
            return
        ordered = sorted(set(host_ids))
        rng = np.random.default_rng((self.seed, self._TAG_OUTAGE))
        chosen = rng.choice(len(ordered), size=count, replace=False)
        for index in sorted(int(i) for i in chosen):
            start = float(rng.uniform(0.0, 1.0 - self.profile.outage_fraction))
            self._outages[ordered[index]] = (
                start, start + self.profile.outage_fraction)

    @property
    def outage_schedule(self) -> Dict[int, Tuple[float, float]]:
        return dict(self._outages)

    def campaign_time(self, host_id: int) -> float:
        """When (in [0, 1) campaign time) this target's audit happens.

        A pure function of ``(seed, host_id)``, so a server is measured at
        the same logical instant no matter which worker audits it or in
        what order — the property that keeps serial, parallel, and resumed
        audits bit-identical.
        """
        return float(np.random.default_rng(
            (self.seed, self._TAG_CLOCK, host_id)).random())

    def landmark_down(self, host_id: int, t: float) -> bool:
        """Is this landmark inside its scheduled outage window at time t?"""
        window = self._outages.get(host_id)
        return window is not None and window[0] <= t < window[1]

    def tunnel_drop_point(self, proxy_host_id: int) -> Optional[float]:
        """Where in a proxy's first phase-2 burst its tunnel drops.

        Returns a fraction in (0, 1) — probes from that point on in the
        burst are lost until the measurer retries (the reconnect) — or
        None when this proxy's tunnel holds for the whole audit.
        """
        if self.profile.tunnel_drop_rate == 0.0:
            return None
        rng = np.random.default_rng(
            (self.seed, self._TAG_TUNNEL, proxy_host_id))
        if rng.random() >= self.profile.tunnel_drop_rate:
            return None
        return float(rng.uniform(0.1, 0.9))

    # -- per-probe faults (draw from the caller's measurement stream) --------

    def afflict_burst(self, samples: np.ndarray, down: bool,
                      rng: np.random.Generator) -> np.ndarray:
        """Apply faults to one ``(n,)`` burst of RTT samples, in place.

        Draw order is fixed (congestion, then loss) so a given stream
        position always produces the same afflicted burst.
        """
        if down:
            samples[:] = np.nan
            return samples
        p = self.profile
        if p.congestion_rate and rng.random() < p.congestion_rate:
            samples += float(rng.exponential(p.congestion_extra_ms))
        if p.loss_rate:
            samples[rng.random(samples.shape[0]) < p.loss_rate] = np.nan
        if not math.isinf(p.timeout_ms):
            samples[samples > p.timeout_ms] = np.nan
        return samples

    def afflict_matrix(self, samples: np.ndarray, down_rows: np.ndarray,
                       rng: np.random.Generator) -> np.ndarray:
        """Apply faults to a ``(k, n)`` measurement panel, in place.

        ``down_rows`` flags rows whose target landmark is inside an outage
        window: every probe to it is lost.  Congestion episodes strike
        whole rows (a burst to one landmark shares a path and a moment in
        time); loss strikes individual probes.
        """
        k, _ = samples.shape
        p = self.profile
        if p.congestion_rate:
            episodes = rng.random(k) < p.congestion_rate
            n_episodes = int(episodes.sum())
            if n_episodes:
                samples[episodes] += rng.exponential(
                    p.congestion_extra_ms, size=n_episodes)[:, None]
        if p.loss_rate:
            samples[rng.random(samples.shape) < p.loss_rate] = np.nan
        if not math.isinf(p.timeout_ms):
            samples[samples > p.timeout_ms] = np.nan
        if down_rows.any():
            samples[down_rows] = np.nan
        return samples
