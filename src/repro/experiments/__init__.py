"""Experiment drivers: one module per paper figure/table, plus the shared
scenario builder and the full audit pipeline.  See DESIGN.md section 4 for
the experiment index."""

from . import (
    fig02_calibration,
    fig04_tools,
    fig09_algorithms,
    fig10_underestimation,
    fig11_effectiveness,
    fig13_eta,
    fig14_claims,
    fig16_disambiguation,
    fig17_assessment,
    fig18_honesty,
    fig20_datacenter_error,
    fig21_databases,
    fig22_confusion,
    ext_adversary,
    ext_testbench,
)
from .audit import (AuditResult, AuditSink, RecordTally, cached_audit,
                    run_audit)
from .campaign import (CampaignAggregator, CampaignReport, CampaignRun,
                       DeploymentPlan, FleetTemplate, ShardSummary,
                       merge_campaign, run_campaign, run_campaign_shard,
                       single_shot_report)
from .checkpoint import AuditCheckpoint, CheckpointMismatch
from .scenario import (
    Scenario,
    build_scenario,
    default_scenario,
    paper_scale_scenario,
)

__all__ = [
    "AuditCheckpoint",
    "AuditResult",
    "AuditSink",
    "CampaignAggregator",
    "CampaignReport",
    "CampaignRun",
    "CheckpointMismatch",
    "DeploymentPlan",
    "FleetTemplate",
    "RecordTally",
    "Scenario",
    "ShardSummary",
    "build_scenario",
    "cached_audit",
    "default_scenario",
    "merge_campaign",
    "fig02_calibration",
    "fig04_tools",
    "fig09_algorithms",
    "fig10_underestimation",
    "fig11_effectiveness",
    "fig13_eta",
    "fig14_claims",
    "fig16_disambiguation",
    "fig17_assessment",
    "fig18_honesty",
    "fig20_datacenter_error",
    "fig21_databases",
    "fig22_confusion",
    "ext_adversary",
    "ext_testbench",
    "paper_scale_scenario",
    "run_audit",
    "run_campaign",
    "run_campaign_shard",
    "single_shot_report",
]
