"""Figure 11: which landmarks' measurements actually constrain the region.

For each crowd host, measure *all* anchors (as the paper did for this
analysis), build every bestline disk, and mark a measurement *effective*
when removing its disk changes the final intersection.  The paper's
findings: a large majority of measurements are ineffective (their disks
radically overestimate); effective ones skew toward nearby landmarks; but
among effective measurements, the area reduction does not correlate with
distance.

The leave-one-out intersections are computed with prefix/suffix AND
arrays, so the whole analysis is O(n) mask operations per host instead of
O(n²).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..core.cbgpp import CBGPlusPlus
from ..core.observations import RttObservation
from ..netsim.crowd import CrowdHost
from ..netsim.tools import CliTool
from .scenario import Scenario


@dataclass
class EffectivenessSample:
    """One (host, landmark) measurement's effect on the final region."""

    host_name: str
    landmark_name: str
    distance_km: float          # true landmark–target distance
    effective: bool
    area_reduction_km2: float   # 0 for ineffective measurements


@dataclass
class EffectivenessResult:
    samples: List[EffectivenessSample]

    def effective_rate(self) -> float:
        return sum(1 for s in self.samples if s.effective) / len(self.samples)

    def effective_rate_by_distance(self, edges=(0, 1000, 2500, 5000, 10000, 20040)):
        """(band label, effective fraction, n) per distance band."""
        rows = []
        for lo, hi in zip(edges, edges[1:]):
            band = [s for s in self.samples if lo <= s.distance_km < hi]
            if not band:
                continue
            rate = sum(1 for s in band if s.effective) / len(band)
            rows.append((f"{lo}-{hi} km", rate, len(band)))
        return rows

    def reduction_distance_correlation(self) -> Optional[float]:
        """Correlation of area reduction with distance, effective ones only.

        The paper finds essentially none: a distant landmark can still
        clip the region if it is distant in just the right direction.
        """
        effective = [s for s in self.samples if s.effective]
        if len(effective) < 3:
            return None
        x = np.array([s.distance_km for s in effective])
        y = np.array([s.area_reduction_km2 for s in effective])
        if x.std() == 0 or y.std() == 0:
            return 0.0
        return float(np.corrcoef(x, y)[0, 1])


def _leave_one_out_areas(masks: List[np.ndarray], areas: np.ndarray):
    """Full intersection plus every leave-one-out intersection's area.

    Prefix/suffix trick: loo[i] = prefix[i] AND suffix[i+1].
    """
    n = len(masks)
    prefix = [None] * (n + 1)
    suffix = [None] * (n + 1)
    prefix[0] = np.ones_like(masks[0])
    suffix[n] = np.ones_like(masks[0])
    for i in range(n):
        prefix[i + 1] = prefix[i] & masks[i]
    for i in range(n - 1, -1, -1):
        suffix[i] = suffix[i + 1] & masks[i]
    full = prefix[n]
    full_area = float(areas[full].sum())
    loo_areas = []
    for i in range(n):
        loo = prefix[i] & suffix[i + 1]
        loo_areas.append(float(areas[loo].sum()))
    return full, full_area, loo_areas


def run(scenario: Scenario, hosts: Optional[Sequence[CrowdHost]] = None,
        seed: int = 0) -> EffectivenessResult:
    """Measure every anchor from every host; score each disk's effect."""
    rng = np.random.default_rng(seed)
    hosts = hosts if hosts is not None else scenario.crowd
    anchors = scenario.atlas.anchors
    algorithm = CBGPlusPlus(scenario.calibrations, scenario.worldmap)
    grid = scenario.grid
    tool = CliTool(scenario.network, seed=seed)
    plausible = scenario.worldmap.plausibility_mask

    samples: List[EffectivenessSample] = []
    for crowd_host in hosts:
        observations = []
        for landmark in anchors:
            measured = tool.measure(crowd_host.host, landmark, rng)
            observations.append(RttObservation(
                landmark_name=measured.landmark_name,
                lat=landmark.lat,
                lon=landmark.lon,
                one_way_ms=measured.rtt_ms / 2.0,
            ))
        disks = algorithm.disks(observations)
        masks = [grid.disk_mask(d.lat, d.lon, d.radius_km) & plausible
                 for d in disks]
        _, full_area, loo_areas = _leave_one_out_areas(
            masks, grid.cell_areas_km2)
        for disk, obs, loo_area in zip(disks, observations, loo_areas):
            reduction = loo_area - full_area
            samples.append(EffectivenessSample(
                host_name=crowd_host.host.name,
                landmark_name=disk.landmark_name,
                distance_km=crowd_host.host.distance_to(
                    scenario.calibrations.landmark(disk.landmark_name).host),
                effective=reduction > 1e-6,
                area_reduction_km2=max(0.0, reduction),
            ))
    if not samples:
        raise ValueError("no hosts supplied")
    return EffectivenessResult(samples=samples)


def format_table(result: EffectivenessResult) -> str:
    lines = [
        f"Figure 11 — measurement effectiveness "
        f"({len(result.samples)} measurements)",
        f"  effective overall        {result.effective_rate():7.2%}",
        "  effective rate by landmark-target distance:",
    ]
    for band, rate, n in result.effective_rate_by_distance():
        lines.append(f"    {band:<16} {rate:7.2%}  (n={n})")
    correlation = result.reduction_distance_correlation()
    lines.append(f"  area-reduction vs distance correlation: "
                 f"{correlation if correlation is not None else float('nan'):+.3f} "
                 f"(paper: none)")
    return "\n".join(lines)
