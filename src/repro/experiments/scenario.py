"""Scenario construction: one call builds the entire simulated study.

A :class:`Scenario` bundles every substrate instance an experiment needs —
world map, topology, network, Atlas constellation, calibrations, crowd
cohort, proxy fleet, IP-database panel, and the Frankfurt measurement
client the paper used.  Scenarios are deterministic in their seed.

Two standard sizes:

* :func:`default_scenario` — memoised, reduced proxy fleet (~a quarter of
  the paper's), used by the test suite and the benchmark harness so a full
  run stays in minutes.
* :func:`paper_scale_scenario` — the full ~2269-server fleet.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..geo.countries import CountryRegistry
from ..geo.datacenters import DataCenterRegistry
from ..geo.grid import Grid
from ..geo.worldmap import WorldMap
from ..netsim.atlas import AtlasConstellation
from ..netsim.cities import build_cities
from ..netsim.faults import FaultProfile, resolve_fault_profile
from ..netsim.crowd import CrowdHost, build_crowd
from ..netsim.hosts import Host, HostFactory
from ..netsim.ipdb import IpdbPanel
from ..netsim.network import Network
from ..netsim.proxies import VpnProvider, build_proxy_fleet
from ..netsim.topology import build_topology
from ..core.calibrationset import CalibrationSet

#: Where the paper's measurement client lived.
FRANKFURT = (50.11, 8.68)

#: Reduced continental quotas for the default (fast) scenario.
SMALL_ANCHOR_QUOTAS: Dict[str, int] = {
    "EU": 40, "NA": 20, "AS": 12, "SA": 7, "AF": 6, "OC": 5, "AU": 4, "CA": 3,
}
SMALL_PROBE_QUOTAS: Dict[str, int] = {
    "EU": 60, "NA": 40, "AS": 25, "SA": 14, "AF": 12, "OC": 10, "AU": 7, "CA": 6,
}
SMALL_CROWD_QUOTAS: Dict[str, int] = {
    "EU": 16, "NA": 14, "AS": 7, "SA": 4, "AF": 3, "OC": 3, "CA": 2, "AU": 2,
}


@dataclass
class Scenario:
    """Every substrate instance one experiment run needs."""

    seed: int
    registry: CountryRegistry
    grid: Grid
    worldmap: WorldMap
    datacenters: DataCenterRegistry
    topology: object
    network: Network
    factory: HostFactory
    atlas: AtlasConstellation
    calibrations: CalibrationSet
    crowd: List[CrowdHost]
    providers: List[VpnProvider]
    ipdb: IpdbPanel
    client: Host
    #: Default fault profile for audits over this scenario (None = the
    #: perfect substrate).  ``run_audit``'s ``fault_profile`` argument
    #: overrides it per run.
    fault_profile: Optional[FaultProfile] = None

    def all_servers(self):
        """Every proxy server across all providers, in provider order."""
        return [server for provider in self.providers
                for server in provider.servers]

    def true_country_of(self, server) -> Optional[str]:
        """Ground-truth country for a proxy server, from the world map."""
        return self.worldmap.country_at(server.host.lat, server.host.lon)


def build_scenario(seed: int = 0,
                   grid_resolution: float = 1.0,
                   proxy_scale: float = 1.0,
                   anchor_quotas: Optional[Dict[str, int]] = None,
                   probe_quotas: Optional[Dict[str, int]] = None,
                   crowd_quotas: Optional[Dict[str, int]] = None,
                   fault_profile: Optional[object] = None,
                   path_engine: Optional[str] = None) -> Scenario:
    """Construct a fully wired scenario.

    Build order matters: the proxy fleet adds hosting ASes to the
    topology, so it is created before any latency caches warm up.

    ``fault_profile`` (a profile, a name from ``FAULT_PROFILES``, or
    None) becomes the scenario's default for audits; the substrate itself
    is built fault-free either way — faults afflict live measurements,
    never the calibration archive.
    """
    registry = CountryRegistry.default()
    grid = Grid(resolution_deg=grid_resolution)
    worldmap = WorldMap(registry=registry, grid=grid)
    datacenters = DataCenterRegistry.from_registry(registry)
    cities = build_cities(registry)
    topology = build_topology(cities, seed=seed)
    network = Network(topology, seed=seed + 1, path_engine=path_engine)
    factory = HostFactory(topology, seed=seed + 2)
    providers = build_proxy_fleet(network, factory, datacenters,
                                  registry=registry, seed=seed + 3,
                                  scale=proxy_scale)
    atlas = AtlasConstellation(network, factory, seed=seed + 4,
                               anchor_quotas=anchor_quotas,
                               probe_quotas=probe_quotas)
    calibrations = CalibrationSet(atlas)
    crowd = build_crowd(factory, worldmap, seed=seed + 5, quotas=crowd_quotas)
    ipdb = IpdbPanel(registry=registry, seed=seed + 6)
    client = factory.create(*FRANKFURT, name="client-frankfurt", os="linux")
    return Scenario(
        seed=seed,
        registry=registry,
        grid=grid,
        worldmap=worldmap,
        datacenters=datacenters,
        topology=topology,
        network=network,
        factory=factory,
        atlas=atlas,
        calibrations=calibrations,
        crowd=crowd,
        providers=providers,
        ipdb=ipdb,
        client=client,
        fault_profile=resolve_fault_profile(fault_profile),
    )


_SCENARIO_CACHE: Dict[Tuple, Scenario] = {}


def default_scenario(seed: int = 0,
                     path_engine: Optional[str] = None) -> Scenario:
    """The memoised fast scenario used by tests and benchmarks."""
    key = ("default", seed, path_engine)
    if key not in _SCENARIO_CACHE:
        _SCENARIO_CACHE[key] = build_scenario(
            seed=seed,
            proxy_scale=0.35,
            anchor_quotas=SMALL_ANCHOR_QUOTAS,
            probe_quotas=SMALL_PROBE_QUOTAS,
            crowd_quotas=SMALL_CROWD_QUOTAS,
            path_engine=path_engine,
        )
    return _SCENARIO_CACHE[key]


def paper_scale_scenario(seed: int = 0) -> Scenario:
    """The full-size scenario (~250 anchors, ~2269 proxies)."""
    key = ("paper", seed)
    if key not in _SCENARIO_CACHE:
        _SCENARIO_CACHE[key] = build_scenario(seed=seed, proxy_scale=1.0)
    return _SCENARIO_CACHE[key]
