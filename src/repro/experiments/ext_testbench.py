"""Extension (§8.1): test-bench VPN servers in known locations.

"In order to understand the errors added to our position estimates by the
indirect measurement procedure described in Section 5.3, we are planning
to set up test-bench VPN servers of our own, in known locations
worldwide, and attempt to measure their locations both directly and
indirectly."

This experiment does exactly that on the simulator: it stands up VPN
servers at known data-centre locations, locates each one **directly**
(the CLI tool running on the server measures the landmarks itself) and
**indirectly** (through the tunnel, with η-adapted RTTs), and compares
the two predictions — region area inflation, centroid offset, and
whether coverage of the true location survives the indirection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.base import GeolocationAlgorithm
from ..core.cbgpp import CBGPlusPlus
from ..core.observations import RttObservation
from ..core.proxy_adapter import ProxyMeasurer, estimate_eta
from ..geodesy.greatcircle import haversine_km
from ..netsim.proxies import ProxyServer
from ..netsim.tools import CliTool
from .scenario import Scenario


@dataclass
class TestbenchRow:
    """One test-bench server's direct-vs-indirect comparison."""

    server_name: str
    true_country: Optional[str]
    direct_area_km2: float
    indirect_area_km2: float
    direct_covers: bool
    indirect_covers: bool
    direct_miss_km: float        # region -> true location (0 when covered)
    indirect_miss_km: float
    centroid_offset_km: float    # distance between the two centroids

    @property
    def area_inflation(self) -> float:
        """How much bigger the indirect region is (≥ ~1 expected)."""
        if self.direct_area_km2 <= 0:
            return float("inf")
        return self.indirect_area_km2 / self.direct_area_km2


@dataclass
class TestbenchResult:
    rows: List[TestbenchRow]
    eta: float

    def coverage_rate(self, indirect: bool = True) -> float:
        flag = "indirect_covers" if indirect else "direct_covers"
        return sum(1 for r in self.rows if getattr(r, flag)) / len(self.rows)

    def median_area_inflation(self) -> float:
        return float(np.median([r.area_inflation for r in self.rows
                                if np.isfinite(r.area_inflation)]))

    def median_centroid_offset_km(self) -> float:
        return float(np.median([r.centroid_offset_km for r in self.rows]))

    def worst_miss_km(self, indirect: bool = True) -> float:
        field_name = "indirect_miss_km" if indirect else "direct_miss_km"
        finite = [getattr(r, field_name) for r in self.rows
                  if np.isfinite(getattr(r, field_name))]
        return max(finite) if finite else float("inf")


def _build_testbench_fleet(scenario: Scenario, n_servers: int,
                           rng: np.random.Generator) -> List[ProxyServer]:
    """Stand up our own VPN servers at known data-centre sites."""
    sites = scenario.datacenters.all()
    if len(sites) < n_servers:
        raise ValueError(f"only {len(sites)} data centres available")
    chosen = [sites[int(i)] for i in
              rng.choice(len(sites), size=n_servers, replace=False)]
    servers: List[ProxyServer] = []
    for number, site in enumerate(chosen):
        city = scenario.factory.nearest_city(site.lat, site.lon)
        hosting = scenario.topology.add_hosting_as(
            f"Testbench-{site.name}", city.city_id, rng)
        host = scenario.factory.create(
            site.lat, site.lon, name=f"testbench-{number}",
            responds_to_ping=True, listens_on_port_80=True,
            city_id=city.city_id, router=(hosting.asn, city.city_id),
            last_mile_ms=float(rng.uniform(0.05, 0.4)))
        servers.append(ProxyServer(
            hostname=f"testbench-{number}.example",
            ip=f"203.0.{number}.1",
            provider="testbench",
            claimed_country=site.country,
            host=host,
            asn=hosting.asn,
            prefix=f"203.0.{number}.0/24",
            datacenter_city_id=city.city_id,
            honest=True,
            responds_to_ping=True,
            gateway_responds=True,
            allows_traceroute=True,
        ))
    return servers


def run(scenario: Scenario, n_servers: int = 12, seed: int = 0,
        algorithm: Optional[GeolocationAlgorithm] = None) -> TestbenchResult:
    """Locate every test-bench server directly and through its own tunnel."""
    rng = np.random.default_rng(seed)
    if algorithm is None:
        algorithm = CBGPlusPlus(scenario.calibrations, scenario.worldmap)
    servers = _build_testbench_fleet(scenario, n_servers, rng)
    landmarks = scenario.atlas.anchors
    cli = CliTool(scenario.network, seed=seed)
    eta = estimate_eta(scenario.network, scenario.client, servers, rng)

    rows: List[TestbenchRow] = []
    for server in servers:
        # Direct: we own the server, so the CLI tool runs on it.
        direct_observations = [
            RttObservation(lm.name, lm.lat, lm.lon,
                           cli.measure(server.host, lm, rng).rtt_ms / 2.0)
            for lm in landmarks]
        direct = algorithm.predict(direct_observations)
        # Indirect: the standard through-the-tunnel procedure.
        measurer = ProxyMeasurer(scenario.network, scenario.client, server,
                                 eta=eta.eta, seed=server.host.host_id)
        indirect = algorithm.predict(measurer.observe(landmarks, rng))

        true_lat, true_lon = server.true_location
        direct_centroid = direct.region.centroid()
        indirect_centroid = indirect.region.centroid()
        offset = (haversine_km(*direct_centroid, *indirect_centroid)
                  if direct_centroid and indirect_centroid else float("nan"))
        direct_miss = direct.miss_distance_km(true_lat, true_lon)
        indirect_miss = indirect.miss_distance_km(true_lat, true_lon)
        rows.append(TestbenchRow(
            server_name=server.hostname,
            true_country=scenario.true_country_of(server),
            direct_area_km2=direct.area_km2(),
            indirect_area_km2=indirect.area_km2(),
            direct_covers=direct_miss == 0.0,
            indirect_covers=indirect_miss == 0.0,
            direct_miss_km=direct_miss,
            indirect_miss_km=indirect_miss,
            centroid_offset_km=offset,
        ))
    return TestbenchResult(rows=rows, eta=eta.eta)


def format_table(result: TestbenchResult) -> str:
    lines = [
        f"Extension — test-bench servers, direct vs indirect "
        f"({len(result.rows)} servers, eta={result.eta:.3f})",
        f"  coverage: direct {result.coverage_rate(indirect=False):.0%}, "
        f"indirect {result.coverage_rate(indirect=True):.0%}",
        f"  median area inflation (indirect/direct): "
        f"{result.median_area_inflation():.2f}x",
        f"  median centroid offset: "
        f"{result.median_centroid_offset_km():.0f} km",
        f"  worst miss: direct {result.worst_miss_km(indirect=False):.0f} km, "
        f"indirect {result.worst_miss_km(indirect=True):.0f} km",
        "  (clean direct measurement from DC-grade hosts exposes residual",
        "   bestline underestimation — the paper's section 8.1 anchor-",
        "   connectivity concern; the indirect procedure's upward bias is",
        "   protective)",
    ]
    return "\n".join(lines)
