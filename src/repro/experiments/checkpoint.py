"""Checkpoint/resume for the fleet audit.

A multi-hour audit over thousands of proxies must survive being killed —
the paper's own campaign ran for weeks and lost proxies mid-flight.  The
checkpoint is a JSON-lines file: one header line identifying the run
(seed, fault profile, fleet fingerprint, grid size) followed by one line
per *completed* server, appended and flushed as each server finishes.

Resume correctness rests on the audit's RNG discipline: every server's
measurement stream is keyed by ``(seed, host_id)``, independent of fleet
order, so skipping already-completed servers cannot perturb the
remainder.  Serialisation is exact — Python's ``json`` round-trips floats
through ``repr`` and the region mask travels as packed-bit hex — so a
resumed audit's records are bit-identical to an uninterrupted run's.
The mask bytes are exactly ``Region.packed_bytes()`` (MSB-first
``np.packbits`` order, the packed engine's native word layout minus the
zero tail padding), so under the packed engine a resumed record is
rebuilt by :meth:`Region.from_packbits` without touching a boolean mask.

A truncated final line (the kill arrived mid-write) is silently dropped;
that server is simply re-audited.  A header mismatch (different seed,
profile, fleet, or grid) raises :class:`CheckpointMismatch` rather than
splicing records from a different run.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

from .. import sanitize
from ..core.assessment import ClaimAssessment, ContinentVerdict, Verdict
from ..core.observations import RttObservation

#: (index, packed region mask, assessment, observations, landmark names,
#: degraded, failure notes) — the unit shipped between audit workers,
#: the parent, and the checkpoint file.
ServerPayload = Tuple[int, bytes, ClaimAssessment, list, List[str],
                      bool, List[str]]

FORMAT = "repro-audit-checkpoint"
VERSION = 1


class CheckpointMismatch(ValueError):
    """The checkpoint on disk belongs to a different audit run."""


def _assessment_to_json(assessment: ClaimAssessment) -> dict:
    return {
        "claimed": assessment.claimed_country,
        "verdict": assessment.verdict.value,
        "continent_verdict": assessment.continent_verdict.value,
        "covered": list(assessment.countries_covered),
        "area_km2": assessment.region_area_km2,
        "resolved": assessment.resolved_country,
        "method": assessment.resolution_method,
    }


def _assessment_from_json(data: dict) -> ClaimAssessment:
    return ClaimAssessment(
        claimed_country=data["claimed"],
        verdict=Verdict(data["verdict"]),
        continent_verdict=ContinentVerdict(data["continent_verdict"]),
        countries_covered=list(data["covered"]),
        region_area_km2=data["area_km2"],
        resolved_country=data["resolved"],
        resolution_method=data["method"],
    )


def payload_to_json(payload: ServerPayload) -> dict:
    index, packed, assessment, observations, names, degraded, notes = payload
    return {
        "i": index,
        "mask": packed.hex(),
        "assessment": _assessment_to_json(assessment),
        "obs": [[o.landmark_name, o.lat, o.lon, o.one_way_ms]
                for o in observations],
        "landmarks": list(names),
        "degraded": degraded,
        "notes": list(notes),
    }


def payload_from_json(data: dict) -> ServerPayload:
    return (
        int(data["i"]),
        bytes.fromhex(data["mask"]),
        _assessment_from_json(data["assessment"]),
        [RttObservation(name, lat, lon, one_way)
         for name, lat, lon, one_way in data["obs"]],
        list(data["landmarks"]),
        bool(data["degraded"]),
        list(data["notes"]),
    )


class AuditCheckpoint:
    """Append-only JSONL journal of completed per-server audit payloads."""

    def __init__(self, path, *, audit_seed: int, profile: Optional[str],
                 n_servers: int, n_cells: int, fleet_digest: str):
        self.path = os.fspath(path)
        self._header = {
            "format": FORMAT,
            "version": VERSION,
            "audit_seed": audit_seed,
            "profile": profile,
            "n_servers": n_servers,
            "n_cells": n_cells,
            "fleet": fleet_digest,
        }

    @staticmethod
    def fleet_digest(host_ids) -> str:
        """A stable fingerprint of the audited fleet (order-sensitive)."""
        import hashlib
        joined = ",".join(str(int(h)) for h in host_ids)
        return hashlib.sha256(joined.encode("ascii")).hexdigest()[:16]

    # -- reading -------------------------------------------------------------

    def load(self) -> Dict[int, ServerPayload]:
        """Completed payloads by server index; {} when starting fresh.

        Raises :class:`CheckpointMismatch` when the file's header does
        not match this run.  A torn final line is dropped.
        """
        if not os.path.exists(self.path):
            return {}
        completed: Dict[int, ServerPayload] = {}
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        if not lines:
            return {}
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            raise CheckpointMismatch(
                f"{self.path}: unreadable checkpoint header")
        if header != self._header:
            raise CheckpointMismatch(
                f"{self.path}: checkpoint belongs to a different run "
                f"(found {header!r}, expected {self._header!r})")
        for line in lines[1:]:
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                break  # torn tail write; re-audit that server
            payload = payload_from_json(data)
            completed[payload[0]] = payload
        return completed

    # -- writing -------------------------------------------------------------

    def start(self, fresh: bool) -> None:
        """Write the header (truncating when ``fresh`` or file absent)."""
        if fresh or not os.path.exists(self.path):
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            with open(self.path, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(self._header) + "\n")

    def append(self, payload: ServerPayload) -> None:
        """Durably record one completed server."""
        line = json.dumps(payload_to_json(payload))
        if sanitize.enabled():
            _check_roundtrip(payload, line)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())


def _check_roundtrip(payload: ServerPayload, line: str) -> None:
    """Sanitizer: the journalled line must decode back bit-identically.

    Catches non-round-trippable records (a NaN observation compares
    unequal to itself; an enum value json can't carry) at write time,
    where the failing server is still known, instead of as a resume
    mismatch hours later.
    """
    try:
        restored = payload_from_json(json.loads(line))
    except Exception as error:
        raise sanitize.SanitizerError(
            f"checkpoint record for server index {payload[0]} cannot be "
            f"decoded back from the journal: {error}") from error
    if restored != payload:
        raise sanitize.SanitizerError(
            f"checkpoint record for server index {payload[0]} does not "
            "round-trip through the JSON journal codec")
