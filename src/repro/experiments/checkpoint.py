"""Checkpoint/resume for the fleet audit.

A multi-hour audit over thousands of proxies must survive being killed —
the paper's own campaign ran for weeks and lost proxies mid-flight.  The
checkpoint is a JSON-lines file: one header line identifying the run
(seed, fault profile, fleet fingerprint, grid size) followed by one line
per *completed* server, appended and flushed as each server finishes.

Resume correctness rests on the audit's RNG discipline: every server's
measurement stream is keyed by ``(seed, host_id)``, independent of fleet
order, so skipping already-completed servers cannot perturb the
remainder.  Serialisation is exact — Python's ``json`` round-trips floats
through ``repr`` and the region mask travels as packed-bit hex — so a
resumed audit's records are bit-identical to an uninterrupted run's.
The mask bytes are exactly ``Region.packed_bytes()`` (MSB-first
``np.packbits`` order, the packed engine's native word layout minus the
zero tail padding), so under the packed engine a resumed record is
rebuilt by :meth:`Region.from_packbits` without touching a boolean mask.

A truncated final line (the kill arrived mid-write) is silently dropped;
that server is simply re-audited.  A header mismatch (different seed,
profile, fleet, or grid) raises :class:`CheckpointMismatch` rather than
splicing records from a different run.

Campaign journals add one more state: *finalized*.  :meth:`finalize`
atomically rewrites a complete journal index-sorted with a
``"complete": n`` marker in the header, and :meth:`merge_from` folds a
sequence of finalized shard journals into one campaign journal whose
bytes equal a finalized single-shot journal of the same fleet.  Because
finality lives in the header — not in a trailing footer a torn write
could silently drop — a half-finalized journal is indistinguishable from
an ordinary partial one (safe to resume), while a journal that *claims*
finality but lost records raises :class:`CheckpointMismatch`.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .. import sanitize
from ..core.assessment import ClaimAssessment, ContinentVerdict, Verdict
from ..core.observations import RttObservation

#: (index, packed region mask, assessment, observations, landmark names,
#: degraded, failure notes) — the unit shipped between audit workers,
#: the parent, and the checkpoint file.
ServerPayload = Tuple[int, bytes, ClaimAssessment, list, List[str],
                      bool, List[str]]

FORMAT = "repro-audit-checkpoint"
VERSION = 1


class CheckpointMismatch(ValueError):
    """The checkpoint on disk belongs to a different audit run."""


def _assessment_to_json(assessment: ClaimAssessment) -> dict:
    return {
        "claimed": assessment.claimed_country,
        "verdict": assessment.verdict.value,
        "continent_verdict": assessment.continent_verdict.value,
        "covered": list(assessment.countries_covered),
        "area_km2": assessment.region_area_km2,
        "resolved": assessment.resolved_country,
        "method": assessment.resolution_method,
    }


def _assessment_from_json(data: dict) -> ClaimAssessment:
    return ClaimAssessment(
        claimed_country=data["claimed"],
        verdict=Verdict(data["verdict"]),
        continent_verdict=ContinentVerdict(data["continent_verdict"]),
        countries_covered=list(data["covered"]),
        region_area_km2=data["area_km2"],
        resolved_country=data["resolved"],
        resolution_method=data["method"],
    )


def payload_to_json(payload: ServerPayload) -> dict:
    index, packed, assessment, observations, names, degraded, notes = payload
    return {
        "i": index,
        "mask": packed.hex(),
        "assessment": _assessment_to_json(assessment),
        "obs": [[o.landmark_name, o.lat, o.lon, o.one_way_ms]
                for o in observations],
        "landmarks": list(names),
        "degraded": degraded,
        "notes": list(notes),
    }


def payload_from_json(data: dict) -> ServerPayload:
    return (
        int(data["i"]),
        bytes.fromhex(data["mask"]),
        _assessment_from_json(data["assessment"]),
        [RttObservation(name, lat, lon, one_way)
         for name, lat, lon, one_way in data["obs"]],
        list(data["landmarks"]),
        bool(data["degraded"]),
        list(data["notes"]),
    )


def shard_journal_path(directory: str, shard_index: int, shards: int) -> str:
    """Canonical journal filename for one campaign shard."""
    if not 0 <= shard_index < shards:
        raise ValueError(
            f"shard index {shard_index} out of range for {shards} shards")
    name = f"shard-{shard_index:04d}-of-{shards:04d}.jsonl"
    return os.path.join(directory, name)


def _fsync_dir(directory: str) -> None:
    """Flush a directory entry so a rename survives power loss."""
    fd = os.open(directory or ".", os.O_RDONLY)
    try:
        os.fsync(fd)
    except OSError:
        pass  # some filesystems refuse directory fsync; rename still atomic
    finally:
        os.close(fd)


class AuditCheckpoint:
    """Append-only JSONL journal of completed per-server audit payloads.

    ``fsync_every`` batches the per-append fsync into group commits: the
    journal is flushed every append but synced to disk once per that many
    records (and always at :meth:`finalize`).  A kill loses at most the
    unsynced tail, which resume simply re-audits — the same contract as a
    torn final line.  The default of 1 keeps every record durable.
    """

    def __init__(self, path, *, audit_seed: int, profile: Optional[str],
                 n_servers: int, n_cells: int, fleet_digest: str,
                 fsync_every: int = 1):
        self.path = os.fspath(path)
        if fsync_every < 1:
            raise ValueError("fsync_every must be >= 1")
        self._fsync_every = fsync_every
        self._unsynced = 0
        self._header = {
            "format": FORMAT,
            "version": VERSION,
            "audit_seed": audit_seed,
            "profile": profile,
            "n_servers": n_servers,
            "n_cells": n_cells,
            "fleet": fleet_digest,
        }

    @staticmethod
    def fleet_digest(host_ids) -> str:
        """A stable fingerprint of the audited fleet (order-sensitive)."""
        import hashlib
        joined = ",".join(str(int(h)) for h in host_ids)
        return hashlib.sha256(joined.encode("ascii")).hexdigest()[:16]

    # -- reading -------------------------------------------------------------

    def _validate_header(self, line: str) -> Optional[int]:
        """Parse a header line; return its completeness claim (or None).

        Raises :class:`CheckpointMismatch` when the header (minus the
        finality marker) does not match this run.
        """
        try:
            header = json.loads(line)
        except json.JSONDecodeError:
            raise CheckpointMismatch(
                f"{self.path}: unreadable checkpoint header")
        complete = header.pop("complete", None) if isinstance(header, dict) \
            else None
        if header != self._header:
            raise CheckpointMismatch(
                f"{self.path}: checkpoint belongs to a different run "
                f"(found {header!r}, expected {self._header!r})")
        return complete

    def iter_payloads(self) -> Iterator[ServerPayload]:
        """Stream completed payloads in journal order.

        Validates the header before yielding anything.  In an ordinary
        (non-finalized) journal a torn or corrupt tail line ends the
        stream — that server is simply re-audited.  A *finalized* journal
        promises exactly ``complete`` intact records, so any corruption
        or shortfall raises :class:`CheckpointMismatch` instead of being
        silently accepted.
        """
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as handle:
            header_line = handle.readline()
            if not header_line:
                return
            complete = self._validate_header(header_line)
            count = 0
            for line in handle:
                try:
                    data = json.loads(line)
                except json.JSONDecodeError:
                    if complete is not None:
                        raise CheckpointMismatch(
                            f"{self.path}: finalized journal has a corrupt "
                            "record line — torn or tampered finalize")
                    return  # torn tail write; re-audit that server
                yield payload_from_json(data)
                count += 1
            if complete is not None and count != complete:
                raise CheckpointMismatch(
                    f"{self.path}: finalized journal holds {count} of "
                    f"{complete} records — torn or tampered finalize")

    def load(self) -> Dict[int, ServerPayload]:
        """Completed payloads by server index; {} when starting fresh.

        Raises :class:`CheckpointMismatch` when the file's header does
        not match this run.  A torn final line is dropped.
        """
        completed: Dict[int, ServerPayload] = {}
        for payload in self.iter_payloads():
            completed[payload[0]] = payload
        return completed

    @property
    def is_final(self) -> bool:
        """Whether the journal on disk carries the finality marker."""
        if not os.path.exists(self.path):
            return False
        with open(self.path, "r", encoding="utf-8") as handle:
            header_line = handle.readline()
        if not header_line:
            return False
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError:
            return False
        return isinstance(header, dict) and "complete" in header

    # -- writing -------------------------------------------------------------

    def start(self, fresh: bool) -> None:
        """Write the header (truncating when ``fresh`` or file absent).

        On resume the journal's torn tail — a record line the kill
        interrupted mid-write — is cut off first, so new appends start on
        a clean line instead of concatenating onto the fragment (which
        would leave one unparseable line that :meth:`finalize` must
        reject).
        """
        if fresh or not os.path.exists(self.path):
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            with open(self.path, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(self._header) + "\n")
            return
        with open(self.path, "rb+") as handle:
            handle.readline()  # header (already validated by load())
            good = handle.tell()
            while True:
                line = handle.readline()
                if not line:
                    break
                if not line.endswith(b"\n"):
                    break
                try:
                    json.loads(line)
                except ValueError:
                    break
                good = handle.tell()
            handle.truncate(good)

    def append(self, payload: ServerPayload) -> None:
        """Durably record one completed server."""
        line = json.dumps(payload_to_json(payload))
        if sanitize.enabled():
            _check_roundtrip(payload, line)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            self._unsynced += 1
            if self._unsynced >= self._fsync_every:
                os.fsync(handle.fileno())
                self._unsynced = 0

    # -- finalizing and merging ----------------------------------------------

    def finalize(self) -> None:
        """Atomically rewrite the journal finalized and index-sorted.

        Requires every server to be journalled.  The finalized file —
        header carrying ``"complete": n_servers``, then records in
        ascending index order regardless of completion order — is staged
        to a temp file, fsynced, and ``os.replace``d over the journal, so
        a kill at any instant leaves either the old resumable journal or
        the complete finalized one, never a half-written hybrid.
        Idempotent on an already-finalized journal.
        """
        if not os.path.exists(self.path):
            raise CheckpointMismatch(f"{self.path}: no journal to finalize")
        offsets: Dict[int, Tuple[int, int]] = {}
        with open(self.path, "rb") as src:
            complete = self._validate_header(
                src.readline().decode("utf-8"))
            while True:
                at = src.tell()
                line = src.readline()
                if not line:
                    break
                torn = not line.endswith(b"\n")
                index: Optional[int] = None
                if not torn:
                    try:
                        index = int(json.loads(line)["i"])
                    except (json.JSONDecodeError, KeyError, TypeError,
                            ValueError):
                        torn = True
                if torn:
                    if complete is not None:
                        raise CheckpointMismatch(
                            f"{self.path}: finalized journal has a corrupt "
                            "record line — torn or tampered finalize")
                    break  # torn tail; below the count check rejects it
                assert index is not None
                offsets[index] = (at, len(line))
            expected = int(self._header["n_servers"])
            if (len(offsets) != expected
                    or sorted(offsets) != list(range(expected))):
                raise CheckpointMismatch(
                    f"cannot finalize {self.path}: journal holds "
                    f"{len(offsets)} of {expected} servers")
            if complete is not None:
                return  # already finalized (and just re-validated)
            final_header = dict(self._header)
            final_header["complete"] = expected
            tmp = self.path + ".tmp"
            with open(tmp, "wb") as out:
                out.write((json.dumps(final_header) + "\n").encode("utf-8"))
                for index in range(expected):
                    at, size = offsets[index]
                    src.seek(at)
                    out.write(src.read(size))
                out.flush()
                os.fsync(out.fileno())
        os.replace(tmp, self.path)
        _fsync_dir(os.path.dirname(self.path))
        self._unsynced = 0

    def merge_from(self, shards: Sequence["AuditCheckpoint"]) -> int:
        """Fold finalized shard journals into this campaign journal.

        Shards must be passed in fleet order; each shard's local indices
        are remapped by the running offset, so the merged file carries
        globally ascending indices.  Every shard header must agree with
        the campaign header on format, seed, profile, and grid, and every
        shard must be finalized.  The merge is staged and ``os.replace``d
        like :meth:`finalize`, and its output is byte-identical to a
        finalized single-shot journal of the same fleet.  Returns the
        number of records merged.
        """
        total = int(self._header["n_servers"])
        final_header = dict(self._header)
        final_header["complete"] = total
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        tmp = self.path + ".tmp"
        offset = 0
        with open(tmp, "w", encoding="utf-8") as out:
            out.write(json.dumps(final_header) + "\n")
            for shard in shards:
                for key in ("format", "version", "audit_seed", "profile",
                            "n_cells"):
                    if shard._header[key] != self._header[key]:
                        raise CheckpointMismatch(
                            f"{shard.path}: shard journal {key!r} "
                            f"({shard._header[key]!r}) does not match the "
                            f"campaign ({self._header[key]!r})")
                shard_n = int(shard._header["n_servers"])
                merged = 0
                with open(shard.path, "r", encoding="utf-8") as src:
                    complete = shard._validate_header(src.readline())
                    if complete != shard_n:
                        raise CheckpointMismatch(
                            f"{shard.path}: shard journal is not finalized; "
                            "finalize every shard before merging")
                    for line in src:
                        try:
                            data = json.loads(line)
                        except json.JSONDecodeError:
                            raise CheckpointMismatch(
                                f"{shard.path}: finalized shard journal has "
                                "a corrupt record line")
                        data["i"] = int(data["i"]) + offset
                        out.write(json.dumps(data) + "\n")
                        merged += 1
                if merged != shard_n:
                    raise CheckpointMismatch(
                        f"{shard.path}: finalized shard journal holds "
                        f"{merged} of {shard_n} records")
                offset += shard_n
            if offset != total:
                raise CheckpointMismatch(
                    f"merged {offset} records but the campaign journal "
                    f"expects {total}")
            out.flush()
            os.fsync(out.fileno())
        os.replace(tmp, self.path)
        _fsync_dir(directory)
        return offset


def _check_roundtrip(payload: ServerPayload, line: str) -> None:
    """Sanitizer: the journalled line must decode back bit-identically.

    Catches non-round-trippable records (a NaN observation compares
    unequal to itself; an enum value json can't carry) at write time,
    where the failing server is still known, instead of as a resume
    mismatch hours later.
    """
    try:
        restored = payload_from_json(json.loads(line))
    except Exception as error:
        raise sanitize.SanitizerError(
            f"checkpoint record for server index {payload[0]} cannot be "
            f"decoded back from the journal: {error}") from error
    if restored != payload:
        raise sanitize.SanitizerError(
            f"checkpoint record for server index {payload[0]} does not "
            "round-trip through the JSON journal codec")
