"""Extension (§8): can a hostile proxy displace the geolocation?

The paper's discussion, distilled into a measurable experiment: take a
proxy, have it pretend to be somewhere else (the advertised country)
using either RTT manipulation strategy, run the standard pipeline, and
see where the prediction lands.

Expected shapes (Gill et al. 2010, quoted by the paper):

* **add-delay** — delays only *inflate* distances.  CBG-family disks can
  only grow, so the true location stays inside the (larger) region; but
  minimum-speed models (Spotter, Hybrid) can be dragged toward the
  pretended location.
* **forge-synack** — apparent distances shrink at will; every algorithm
  can be fully relocated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core.base import GeolocationAlgorithm
from ..core.cbgpp import CBGPlusPlus
from ..core.observations import RttObservation
from ..core.spotter import Spotter
from ..geodesy.greatcircle import haversine_km
from ..netsim.adversary import AdversarialTunnel
from ..netsim.proxies import ProxyServer
from .scenario import Scenario


@dataclass
class AdversaryOutcome:
    """One (strategy, algorithm) cell of the experiment."""

    strategy: str
    algorithm: str
    covers_truth: bool
    miss_truth_km: float         # distance region -> true location
    miss_pretend_km: float       # distance region -> pretended location
    area_km2: float

    @property
    def displaced(self) -> bool:
        """Did the attack pull the region closer to the lie than the truth?"""
        return self.miss_pretend_km < self.miss_truth_km


@dataclass
class AdversaryExperiment:
    proxy_name: str
    true_location: Tuple[float, float]
    pretend_location: Tuple[float, float]
    outcomes: List[AdversaryOutcome]

    def outcome(self, strategy: str, algorithm: str) -> AdversaryOutcome:
        for candidate in self.outcomes:
            if (candidate.strategy, candidate.algorithm) == (strategy, algorithm):
                return candidate
        raise KeyError((strategy, algorithm))


def _adapted_observations(tunnel: AdversarialTunnel, landmarks,
                          rng: np.random.Generator) -> List[RttObservation]:
    """Tunnel measurements with the standard η self-ping subtraction.

    The self-ping is honest (the adversary cannot distinguish it), so the
    client leg is estimated correctly even under attack.
    """
    self_ping = min(tunnel.self_ping_through_proxy_ms(rng) for _ in range(5))
    client_leg = 0.5 * self_ping
    observations = []
    for landmark in landmarks:
        rtt = min(tunnel.rtt_through_proxy_ms(landmark, rng) for _ in range(2))
        adapted = max(rtt - client_leg, 0.1)
        observations.append(RttObservation(
            landmark.name, landmark.lat, landmark.lon, adapted / 2.0))
    return observations


def run(scenario: Scenario, proxy: Optional[ProxyServer] = None,
        pretend_location: Optional[Tuple[float, float]] = None,
        seed: int = 0) -> AdversaryExperiment:
    """Attack one proxy with both strategies, locate with CBG++ and Spotter."""
    rng = np.random.default_rng(seed)
    if proxy is None:
        # A Frankfurt-hosted server pretending to be in Japan by default.
        proxy = next(s for s in scenario.all_servers()
                     if scenario.true_country_of(s) == "DE")
    if pretend_location is None:
        pretend_location = (35.68, 139.69)  # Tokyo
    landmarks = scenario.atlas.anchors
    algorithms: List[GeolocationAlgorithm] = [
        CBGPlusPlus(scenario.calibrations, scenario.worldmap),
        Spotter(scenario.calibrations, scenario.worldmap),
    ]
    true_location = proxy.true_location

    outcomes: List[AdversaryOutcome] = []
    for strategy in ("add-delay", "forge-synack"):
        tunnel = AdversarialTunnel(scenario.network, scenario.client, proxy,
                                   pretend_location=pretend_location,
                                   strategy=strategy,
                                   seed=proxy.host.host_id)
        observations = _adapted_observations(tunnel, landmarks, rng)
        for algorithm in algorithms:
            prediction = algorithm.predict(observations)
            if prediction.region.is_empty:
                outcomes.append(AdversaryOutcome(
                    strategy=strategy, algorithm=algorithm.name,
                    covers_truth=False, miss_truth_km=float("inf"),
                    miss_pretend_km=float("inf"), area_km2=0.0))
                continue
            miss_truth = prediction.region.distance_to_point_km(*true_location)
            miss_pretend = prediction.region.distance_to_point_km(
                *pretend_location)
            outcomes.append(AdversaryOutcome(
                strategy=strategy,
                algorithm=algorithm.name,
                covers_truth=miss_truth == 0.0,
                miss_truth_km=miss_truth,
                miss_pretend_km=miss_pretend,
                area_km2=prediction.area_km2(),
            ))
    return AdversaryExperiment(
        proxy_name=proxy.hostname,
        true_location=true_location,
        pretend_location=pretend_location,
        outcomes=outcomes,
    )


def format_table(experiment: AdversaryExperiment) -> str:
    lines = [
        f"Extension — adversarial proxy {experiment.proxy_name} pretending "
        f"to be at {experiment.pretend_location}",
        f"{'strategy':<14} {'algorithm':<10} {'covers truth':>13} "
        f"{'miss truth':>11} {'miss lie':>10} {'area km2':>12}",
    ]
    for outcome in experiment.outcomes:
        lines.append(
            f"{outcome.strategy:<14} {outcome.algorithm:<10} "
            f"{str(outcome.covers_truth):>13} "
            f"{outcome.miss_truth_km:>10.0f}km "
            f"{outcome.miss_pretend_km:>8.0f}km "
            f"{outcome.area_km2:>12,.0f}")
    return "\n".join(lines)
