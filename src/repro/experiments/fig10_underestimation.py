"""Figure 10: CBG bestline and baseline estimates vs. the true distance.

For every ordered pair of anchors, take the mesh one-way delay from A to
B, ask A's calibration how far B could be (bestline and baseline bounds,
with the slowline applied), and compare with the true A–B distance.  A
ratio below 1 is an *underestimate* — the failure mode CBG++'s two-tier
multilateration exists to absorb.  The paper: "A small fraction of all
bestline estimates are still too short, and for very short distances this
can happen for baseline estimates as well."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .scenario import Scenario


@dataclass
class RatioSample:
    """One landmark pair's estimates."""

    true_km: float
    bestline_ratio: float
    baseline_ratio: float


@dataclass
class UnderestimationResult:
    samples: List[RatioSample]

    def bestline_underestimate_rate(self) -> float:
        return sum(1 for s in self.samples if s.bestline_ratio < 1.0) / len(self.samples)

    def baseline_underestimate_rate(self) -> float:
        return sum(1 for s in self.samples if s.baseline_ratio < 1.0) / len(self.samples)

    def underestimates_by_distance(self, edges=(0, 1000, 3000, 6000, 20040)
                                   ) -> List[Tuple[str, float, float]]:
        """(band, bestline rate, baseline rate) per true-distance band."""
        rows = []
        for lo, hi in zip(edges, edges[1:]):
            band = [s for s in self.samples if lo <= s.true_km < hi]
            if not band:
                continue
            rows.append((
                f"{lo}-{hi} km",
                sum(1 for s in band if s.bestline_ratio < 1.0) / len(band),
                sum(1 for s in band if s.baseline_ratio < 1.0) / len(band),
            ))
        return rows

    def ratio_percentiles(self, which: str = "bestline",
                          qs=(0.01, 0.05, 0.5, 0.95)) -> List[Tuple[float, float]]:
        values = np.array([getattr(s, f"{which}_ratio") for s in self.samples])
        return [(q, float(np.quantile(values, q))) for q in qs]


def run(scenario: Scenario, max_anchors: int = 80) -> UnderestimationResult:
    """Evaluate estimate/true ratios over the anchor mesh.

    Uses the landmarks themselves rather than the crowd hosts, as the
    paper does: their positions and mutual delays are the most accurate
    available.
    """
    anchors = scenario.atlas.anchors[:max_anchors]
    samples: List[RatioSample] = []
    for a in anchors:
        calibration = scenario.calibrations.cbg(a.name, apply_slowline=True)
        for b in anchors:
            if a.name == b.name:
                continue
            true_km = a.host.distance_to(b.host)
            if true_km < 1.0:
                continue  # co-located pair: ratios are meaningless
            delay = scenario.atlas.min_one_way_ms(a, b)
            samples.append(RatioSample(
                true_km=true_km,
                bestline_ratio=calibration.max_distance_km(delay) / true_km,
                baseline_ratio=calibration.baseline_distance_km(delay) / true_km,
            ))
    if not samples:
        raise ValueError("no anchor pairs available")
    return UnderestimationResult(samples=samples)


def format_table(result: UnderestimationResult) -> str:
    lines = [
        f"Figure 10 — estimate/true distance ratios over "
        f"{len(result.samples)} landmark pairs",
        f"  bestline underestimates  {result.bestline_underestimate_rate():7.2%}",
        f"  baseline underestimates  {result.baseline_underestimate_rate():7.2%}",
        "  by true distance band (bestline / baseline):",
    ]
    for band, best_rate, base_rate in result.underestimates_by_distance():
        lines.append(f"    {band:<14} {best_rate:7.2%} / {base_rate:7.2%}")
    return "\n".join(lines)
