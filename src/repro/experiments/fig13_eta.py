"""Figure 13: the direct vs. indirect proxy RTT relationship (η).

For every proxy that answers ICMP both directly and through the tunnel,
plot the direct client→proxy RTT against the indirect self-ping RTT.  The
robust regression slope is η — "almost exactly 1/2" in the paper
(0.49, R² > 0.99) because the self-ping traverses the client→proxy path
twice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..core.proxy_adapter import collect_eta_data
from ..stats.regression import LinearFit, ols_fit, theil_sen_fit
from .scenario import Scenario


@dataclass
class EtaFigure:
    pairs: List[Tuple[float, float]]   # (indirect, direct) RTTs, ms
    robust_fit: LinearFit
    ols_fit_result: LinearFit

    @property
    def eta(self) -> float:
        return self.robust_fit.slope

    @property
    def n_proxies(self) -> int:
        return len(self.pairs)

    def residual_quantiles(self, qs=(0.05, 0.5, 0.95)) -> List[Tuple[float, float]]:
        x = np.array([p[0] for p in self.pairs])
        y = np.array([p[1] for p in self.pairs])
        residuals = self.robust_fit.residuals(x, y)
        return [(q, float(np.quantile(residuals, q))) for q in qs]


def run(scenario: Scenario, seed: int = 0,
        samples_per_proxy: int = 3) -> EtaFigure:
    """Collect (indirect, direct) pairs over the pingable fleet and fit η."""
    rng = np.random.default_rng(seed)
    pairs = collect_eta_data(scenario.network, scenario.client,
                             scenario.all_servers(), rng,
                             samples_per_proxy=samples_per_proxy)
    if len(pairs) < 3:
        raise ValueError("too few pingable proxies to fit eta")
    indirect = [p[0] for p in pairs]
    direct = [p[1] for p in pairs]
    return EtaFigure(
        pairs=pairs,
        robust_fit=theil_sen_fit(indirect, direct),
        ols_fit_result=ols_fit(indirect, direct),
    )


def format_table(figure: EtaFigure) -> str:
    return "\n".join([
        f"Figure 13 — direct vs indirect RTT over "
        f"{figure.n_proxies} pingable proxies",
        f"  robust slope (eta)  {figure.eta:.3f}   (paper: 0.49)",
        f"  robust R^2          {figure.robust_fit.r_squared:.4f}   (paper: >0.99)",
        f"  OLS slope           {figure.ols_fit_result.slope:.3f}",
    ])
