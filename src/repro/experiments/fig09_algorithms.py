"""Figure 9: precision of predicted regions on the crowdsourced test hosts.

Every crowd host is measured with the web tool (under the contributor's own
browser and OS — the paper's noisy regime) against the anchors, and each
algorithm predicts a region.  Three panels:

* **A** — ECDF of the distance from the region's edge to the true location
  (0 = the region covers the truth);
* **B** — ECDF of the distance from the region's *centroid* to the truth;
* **C** — ECDF of region area as a fraction of Earth's land area.

The paper's findings to reproduce: CBG covers ~90 % of hosts (the others
roughly half or less); centroid distances are similar across algorithms;
CBG's regions are much larger.  CBG++ (run with ``include_cbgpp=True``)
covers every host.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.base import GeolocationAlgorithm
from ..core.cbg import CBG
from ..core.cbgpp import CBGPlusPlus
from ..core.hybrid import OctantSpotterHybrid
from ..core.observations import RttObservation
from ..core.octant import QuasiOctant
from ..core.spotter import Spotter
from ..geodesy.constants import EARTH_LAND_AREA_KM2
from ..geodesy.greatcircle import haversine_km
from ..netsim.crowd import CrowdHost
from ..netsim.tools import WebTool
from ..stats.cdf import Ecdf, ecdf
from .scenario import Scenario


@dataclass
class HostOutcome:
    """One (host, algorithm) prediction, reduced to the panel metrics."""

    host_name: str
    algorithm: str
    covered: bool
    miss_km: float             # panel A (inf when the region is empty)
    centroid_km: Optional[float]   # panel B (None when the region is empty)
    area_fraction: float       # panel C


@dataclass
class AlgorithmComparison:
    """All outcomes, grouped per algorithm, plus the panel ECDFs."""

    outcomes: List[HostOutcome] = field(default_factory=list)

    def algorithms(self) -> List[str]:
        seen: List[str] = []
        for outcome in self.outcomes:
            if outcome.algorithm not in seen:
                seen.append(outcome.algorithm)
        return seen

    def for_algorithm(self, name: str) -> List[HostOutcome]:
        return [o for o in self.outcomes if o.algorithm == name]

    def coverage(self, name: str) -> float:
        """Fraction of hosts whose true location is inside the region."""
        rows = self.for_algorithm(name)
        return sum(1 for o in rows if o.covered) / len(rows)

    def miss_ecdf(self, name: str) -> Ecdf:
        """Panel A: empty predictions are censored at +inf."""
        return ecdf([o.miss_km for o in self.for_algorithm(name)])

    def centroid_ecdf(self, name: str) -> Ecdf:
        """Panel B: hosts with empty predictions are excluded."""
        values = [o.centroid_km for o in self.for_algorithm(name)
                  if o.centroid_km is not None]
        return ecdf(values)

    def area_ecdf(self, name: str) -> Ecdf:
        return ecdf([o.area_fraction for o in self.for_algorithm(name)])

    def fraction_within(self, name: str, km: float) -> float:
        """P(miss <= km) — the "off by less than 5000 km" style numbers."""
        return self.miss_ecdf(name).at(km)


def measure_crowd_host(scenario: Scenario, crowd_host: CrowdHost,
                       rng: np.random.Generator) -> List[RttObservation]:
    """The web-tool measurement set one contributor uploads."""
    tool = WebTool(scenario.network, browser=crowd_host.browser,
                   seed=crowd_host.host.host_id)
    observations = []
    for landmark in scenario.atlas.anchors:
        sample = tool.measure(crowd_host.host, landmark, rng)
        # The web tool cannot tell 1 from 2 round-trips; consumers must
        # assume one round-trip, as the paper's pipeline does.
        observations.append(RttObservation(
            landmark_name=sample.landmark_name,
            lat=landmark.lat,
            lon=landmark.lon,
            one_way_ms=sample.apparent_one_way_ms,
        ))
    return observations


def default_algorithms(scenario: Scenario,
                       include_cbgpp: bool = False) -> List[GeolocationAlgorithm]:
    classes = [CBG, QuasiOctant, Spotter, OctantSpotterHybrid]
    if include_cbgpp:
        classes.append(CBGPlusPlus)
    return [cls(scenario.calibrations, scenario.worldmap) for cls in classes]


def run(scenario: Scenario, hosts: Optional[Sequence[CrowdHost]] = None,
        include_cbgpp: bool = False, seed: int = 0) -> AlgorithmComparison:
    """Predict every crowd host with every algorithm."""
    rng = np.random.default_rng(seed)
    hosts = hosts if hosts is not None else scenario.crowd
    algorithms = default_algorithms(scenario, include_cbgpp=include_cbgpp)
    comparison = AlgorithmComparison()
    for crowd_host in hosts:
        observations = measure_crowd_host(scenario, crowd_host, rng)
        true_lat, true_lon = crowd_host.true_location
        for algorithm in algorithms:
            prediction = algorithm.predict(observations)
            if prediction.region.is_empty:
                comparison.outcomes.append(HostOutcome(
                    host_name=crowd_host.host.name,
                    algorithm=algorithm.name,
                    covered=False,
                    miss_km=float("inf"),
                    centroid_km=None,
                    area_fraction=0.0,
                ))
                continue
            miss = prediction.miss_distance_km(true_lat, true_lon)
            centroid = prediction.region.centroid()
            centroid_km = haversine_km(true_lat, true_lon, *centroid)
            comparison.outcomes.append(HostOutcome(
                host_name=crowd_host.host.name,
                algorithm=algorithm.name,
                covered=(miss == 0.0),
                miss_km=miss,
                centroid_km=centroid_km,
                area_fraction=prediction.area_km2() / EARTH_LAND_AREA_KM2,
            ))
    return comparison


def format_table(comparison: AlgorithmComparison) -> str:
    lines = ["Figure 9 — prediction precision on crowdsourced hosts",
             f"{'algorithm':<14} {'coverage':>9} {'<5000km':>9} "
             f"{'med miss':>10} {'med centroid':>13} {'med area':>10}"]
    for name in comparison.algorithms():
        rows = comparison.for_algorithm(name)
        finite = [o.miss_km for o in rows if np.isfinite(o.miss_km)]
        centroids = [o.centroid_km for o in rows if o.centroid_km is not None]
        lines.append(
            f"{name:<14} {comparison.coverage(name):>8.0%} "
            f"{comparison.fraction_within(name, 5000.0):>8.0%} "
            f"{np.median(finite) if finite else float('nan'):>9.0f}km "
            f"{np.median(centroids) if centroids else float('nan'):>12.0f}km "
            f"{np.median([o.area_fraction for o in rows]):>9.3f}")
    return "\n".join(lines)
