"""Figure 21: agreement with provider claims — active geolocation vs
IP-to-location databases.

Per provider, the percentage of claims agreed with by: CBG++ counted
generously (uncertain → credible), CBG++ counted strictly (uncertain →
false), the ICLab speed-limit checker, and each of the five synthetic
IP-to-location databases.  The paper's shape: the databases agree with the
providers far more often than either active method; ICLab is the
strictest; "generous" CBG++ sits in between.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.iclab import IclabChecker
from .audit import cached_audit
from .scenario import Scenario


@dataclass
class DatabaseComparison:
    providers: List[str]
    rows: Dict[str, Dict[str, float]]   # row label -> provider -> agreement

    ROW_ORDER = ("CBG++ (generous)", "CBG++ (strict)", "ICLab",
                 "DB-IP", "Eureka", "IP2Location", "IPInfo", "MaxMind")

    def row(self, label: str) -> Dict[str, float]:
        return self.rows[label]

    def mean_agreement(self, label: str) -> float:
        values = list(self.rows[label].values())
        return sum(values) / len(values)

    def databases_more_agreeable(self) -> bool:
        """Do all five databases agree more than strict CBG++, on average?"""
        strict = self.mean_agreement("CBG++ (strict)")
        return all(self.mean_agreement(db) > strict
                   for db in ("DB-IP", "Eureka", "IP2Location", "IPInfo",
                              "MaxMind"))


def run(scenario: Scenario, max_servers: Optional[int] = None,
        seed: int = 0) -> DatabaseComparison:
    audit = cached_audit(scenario, max_servers=max_servers, seed=seed)
    providers = sorted({r.server.provider for r in audit.records})
    rows: Dict[str, Dict[str, float]] = {label: {} for label
                                         in DatabaseComparison.ROW_ORDER}

    checker = IclabChecker(scenario.worldmap)
    for provider in providers:
        records = [r for r in audit.records if r.server.provider == provider]
        n = len(records)
        rows["CBG++ (generous)"][provider] = audit.agreement_rate(
            provider, generous=True)
        rows["CBG++ (strict)"][provider] = audit.agreement_rate(
            provider, generous=False)
        accepted = sum(
            1 for r in records
            if checker.check(r.server.claimed_country, r.observations).accepted)
        rows["ICLab"][provider] = accepted / n
        for db_name in scenario.ipdb.names():
            agreed = 0
            for record in records:
                true_country = (scenario.true_country_of(record.server)
                                or record.server.claimed_country)
                if scenario.ipdb.agreement_with_claim(db_name, record.server,
                                                      true_country):
                    agreed += 1
            rows[db_name][provider] = agreed / n
    return DatabaseComparison(providers=providers, rows=rows)


def format_table(comparison: DatabaseComparison) -> str:
    header = f"{'':<18}" + "".join(f"{p:>6}" for p in comparison.providers)
    lines = ["Figure 21 — agreement with provider claims (%)", header]
    for label in DatabaseComparison.ROW_ORDER:
        row = comparison.rows[label]
        cells = "".join(f"{row[p] * 100:>5.0f}%" for p in comparison.providers)
        lines.append(f"{label:<18}{cells}")
    lines.append(
        f"  all databases more agreeable than strict CBG++: "
        f"{comparison.databases_more_agreeable()} (paper: yes)")
    return "\n".join(lines)
