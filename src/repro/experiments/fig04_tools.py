"""Figures 4–6: measurement-tool validation.

One client host in a known location measures every anchor with the CLI
tool and with the web tool under several browsers, on Linux and on
Windows.  The analyses mirror section 4.3:

* **Figure 4 (Linux)** — web measurements split into one- and two-round-
  trip groups; the two-RTT regression slope should be ≈ 2× the one-RTT
  slope; ANOVA should find *no* significant tool effect.
* **Figure 5 (Windows)** — the same, but noisier: the slope ratio drifts
  from 2, and ANOVA *does* find a significant browser effect.
* **Figure 6** — the Windows "high outliers": magnitude depends on the
  browser, not the distance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..netsim.tools import BROWSER_OUTLIER_MEAN_MS, CliTool, MeasurementSample, WebTool
from ..stats.regression import (
    AnovaResult,
    LinearFit,
    bootstrap_slope_ci,
    f_test_nested,
    ols_fit,
)
from .scenario import Scenario

LINUX_BROWSERS = ("chrome-68", "firefox-52")
WINDOWS_BROWSERS = ("chrome-68", "firefox-52", "firefox-61", "edge-17")


@dataclass
class ToolValidationResult:
    """The regression summary for one OS's panel."""

    os: str
    samples: List[MeasurementSample]
    one_rtt_fit: LinearFit
    two_rtt_fit: LinearFit
    slope_ratio: float
    pooled_r_squared: float
    tool_effect: AnovaResult           # Fig 4: tool; Fig 5: browser
    n_outliers: int = 0
    outlier_mean_by_browser: Dict[str, float] = field(default_factory=dict)
    #: Bootstrap 95% CIs for the per-group slopes (uncertainty on the
    #: paper's point estimates).
    one_rtt_slope_ci: Optional[tuple] = None
    two_rtt_slope_ci: Optional[tuple] = None

    def ratio_consistent_with(self, expected: float = 2.0) -> bool:
        """Is the expected slope ratio inside the bootstrap band?"""
        if self.one_rtt_slope_ci is None or self.two_rtt_slope_ci is None:
            return abs(self.slope_ratio - expected) < 0.5
        low = self.two_rtt_slope_ci[0] / self.one_rtt_slope_ci[1]
        high = self.two_rtt_slope_ci[1] / self.one_rtt_slope_ci[0]
        return low <= expected <= high

    @property
    def outliers(self) -> List[MeasurementSample]:
        return [s for s in self.samples if s.is_outlier]


def _fit_by_round_trips(samples: Sequence[MeasurementSample]):
    """Separate one- and two-RTT regressions of delay on distance."""
    one = [s for s in samples if s.n_round_trips == 1 and not s.is_outlier]
    two = [s for s in samples if s.n_round_trips == 2 and not s.is_outlier]
    if len(one) < 3 or len(two) < 3:
        raise ValueError("need both one- and two-round-trip samples")
    fit1 = ols_fit([s.distance_km for s in one], [s.rtt_ms for s in one])
    fit2 = ols_fit([s.distance_km for s in two], [s.rtt_ms for s in two])
    return fit1, fit2, one, two


def _pooled_r_squared(fit1: LinearFit, fit2: LinearFit, one, two) -> float:
    """Adjusted-R²-style quality of the two-line model, treated jointly."""
    y = np.array([s.rtt_ms for s in one] + [s.rtt_ms for s in two])
    predicted = np.concatenate([
        fit1.predict(np.array([s.distance_km for s in one])),
        fit2.predict(np.array([s.distance_km for s in two])),
    ])
    ss_res = float(((y - predicted) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    return 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0


def _group_effect_anova(samples: Sequence[MeasurementSample],
                        group_of) -> AnovaResult:
    """Does splitting per group significantly improve the two-line model?

    Reduced model: one line per round-trip count.  Full model: one line
    per (round-trip count, group).
    """
    clean = [s for s in samples if not s.is_outlier]
    x = np.array([s.distance_km for s in clean])
    y = np.array([s.rtt_ms for s in clean])
    rt = np.array([s.n_round_trips for s in clean])
    groups = np.array([group_of(s) for s in clean])

    def rss_for(labels) -> tuple:
        total = 0.0
        params = 0
        for label in np.unique(labels):
            mask = labels == label
            if mask.sum() < 3:
                continue
            fit = ols_fit(x[mask], y[mask])
            total += float((fit.residuals(x[mask], y[mask]) ** 2).sum())
            params += 2
        return total, params

    reduced_labels = rt.astype(str)
    full_labels = np.array([f"{r}|{g}" for r, g in zip(rt, groups)])
    rss_reduced, params_reduced = rss_for(reduced_labels)
    rss_full, params_full = rss_for(full_labels)
    if params_full <= params_reduced:
        # Degenerate grouping (a single group): no extra parameters.
        return AnovaResult(f_statistic=0.0, p_value=1.0, df_extra=1,
                           df_residual=len(clean) - params_reduced)
    return f_test_nested(rss_reduced, params_reduced, rss_full, params_full,
                         n=len(clean))


def run(scenario: Scenario, os: str = "linux",
        seed: int = 0) -> ToolValidationResult:
    """Measure every anchor with every tool from a fixed client host."""
    if os not in ("linux", "windows"):
        raise ValueError(f"unsupported OS {os!r}")
    rng = np.random.default_rng(seed)
    factory = scenario.factory
    client = factory.create(48.14, 11.58, name=f"toolcheck-{os}-{seed}", os=os)
    landmarks = scenario.atlas.anchors

    samples: List[MeasurementSample] = []
    if os == "linux":
        cli = CliTool(scenario.network, seed=seed)
        samples.extend(cli.measure(client, lm, rng) for lm in landmarks)
        browsers = LINUX_BROWSERS
    else:
        browsers = WINDOWS_BROWSERS
    for browser in browsers:
        web = WebTool(scenario.network, browser=browser, seed=seed + 1)
        samples.extend(web.measure(client, lm, rng) for lm in landmarks)

    fit1, fit2, one, two = _fit_by_round_trips(samples)
    group_of = (lambda s: s.tool) if os == "linux" else (lambda s: s.browser or s.tool)
    effect = _group_effect_anova(samples, group_of)
    outliers = [s for s in samples if s.is_outlier]
    outlier_means: Dict[str, float] = {}
    for browser in browsers:
        values = [s.rtt_ms for s in outliers if s.browser == browser]
        if values:
            outlier_means[browser] = float(np.mean(values))
    ci_one = bootstrap_slope_ci([s.distance_km for s in one],
                                [s.rtt_ms for s in one], seed=seed)
    ci_two = bootstrap_slope_ci([s.distance_km for s in two],
                                [s.rtt_ms for s in two], seed=seed)
    return ToolValidationResult(
        os=os,
        samples=samples,
        one_rtt_fit=fit1,
        two_rtt_fit=fit2,
        slope_ratio=fit2.slope / fit1.slope,
        pooled_r_squared=_pooled_r_squared(fit1, fit2, one, two),
        tool_effect=effect,
        n_outliers=len(outliers),
        outlier_mean_by_browser=outlier_means,
        one_rtt_slope_ci=ci_one,
        two_rtt_slope_ci=ci_two,
    )


def outlier_distance_correlation(result: ToolValidationResult) -> Optional[float]:
    """Pearson correlation of outlier RTT with distance (Figure 6: ~none)."""
    outliers = result.outliers
    if len(outliers) < 3:
        return None
    x = np.array([s.distance_km for s in outliers])
    y = np.array([s.rtt_ms for s in outliers])
    if x.std() == 0 or y.std() == 0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


def format_table(result: ToolValidationResult) -> str:
    label = "Figure 4 (Linux)" if result.os == "linux" else "Figures 5-6 (Windows)"
    lines = [
        f"{label} — tool validation, {len(result.samples)} measurements",
        f"  1-RTT line   t = {result.one_rtt_fit.slope:.5f} d + "
        f"{result.one_rtt_fit.intercept:.2f}",
        f"  2-RTT line   t = {result.two_rtt_fit.slope:.5f} d + "
        f"{result.two_rtt_fit.intercept:.2f}",
        f"  slope ratio  {result.slope_ratio:.2f}   (paper: 1.96 Linux / 2.29 Windows; "
        f"ratio of 2 {'inside' if result.ratio_consistent_with(2.0) else 'outside'} "
        f"the bootstrap band)",
        f"  pooled R^2   {result.pooled_r_squared:.4f}",
        f"  group effect F = {result.tool_effect.f_statistic:.2f}, "
        f"p = {result.tool_effect.p_value:.2e} "
        f"({'significant' if result.tool_effect.significant else 'not significant'})",
        f"  high outliers {result.n_outliers}",
    ]
    for browser, mean in sorted(result.outlier_mean_by_browser.items()):
        lines.append(f"    outlier mean [{browser}]  {mean:8.0f} ms "
                     f"(model mean {BROWSER_OUTLIER_MEAN_MS[browser]:.0f})")
    return "\n".join(lines)
