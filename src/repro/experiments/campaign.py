"""Sharded streaming campaign orchestrator: paper scale and beyond.

The paper audited 2,269 proxies; a modern audit wants 100k.  The fleet
engine (PR 6) made per-server *compute* flat, so the remaining scale
bottleneck is orchestration memory: a materialized audit holds every
record's packed region (~8 KB each ⇒ ~800 MB at 100k servers) until the
end of the run.  A campaign removes that term:

* a declarative :class:`DeploymentPlan` expands deterministically into
  the fleet slice under audit, which is cut into contiguous shards;
* each shard runs the existing :func:`~repro.experiments.audit.run_audit`
  with its own JSONL journal, **streaming** records through an
  :class:`~repro.experiments.audit.AuditSink` — a record's region is
  garbage the moment it is journalled and tallied, so peak memory is
  O(chunk), not O(fleet);
* a merge step folds the finalized shard journals into one campaign
  journal and streams it through :class:`CampaignAggregator`, producing
  a :class:`CampaignReport` **byte-identical** to a single-shot
  ``run_audit`` of the same fleet, at any shard count, serial or
  parallel, resumed or not.

Byte-identity is possible because every aggregate in the report is
commutative (integer tallies, co-occurrence counts, running group
intersections) and the two disambiguation passes decompose: the
data-centre pass is per-record (applied at accept time), and the
metadata pass needs only each group's running country-set intersection
plus the skeletons of still-uncertain records — never their regions.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from .. import config
from ..core.assessment import Verdict
from ..core.disambiguation import (AuditRecord, _reclassify,
                                   disambiguate_by_datacenters,
                                   metadata_group_key)
from ..core.proxy_adapter import EtaEstimate
from ..geo.countries import CONTINENTS
from ..netsim.faults import FaultProfile, resolve_fault_profile
from ..netsim.proxies import ProxyServer
from ..stats.confusion import CooccurrenceMatrix
from .audit import (RecordTally, _record_from_payload, campaign_eta,
                    run_audit)
from .checkpoint import AuditCheckpoint, shard_journal_path
from .scenario import Scenario

#: Filename of the merged campaign journal inside the journal directory.
MERGED_JOURNAL = "campaign.jsonl"


# -- deployment plans ---------------------------------------------------------

@dataclass(frozen=True)
class FleetTemplate:
    """One provider × countries × per-country-cap row of a deployment plan.

    ``None`` fields are wildcards: the default template admits the whole
    fleet.  ``max_per_country`` caps how many servers this template
    accepts per (provider, claimed country) pair — the idiom commercial
    fleet managers use ("3 servers per country per provider").
    """

    provider: Optional[str] = None
    countries: Optional[Tuple[str, ...]] = None
    max_per_country: Optional[int] = None

    def admits(self, server: ProxyServer) -> bool:
        if self.provider is not None and server.provider != self.provider:
            return False
        if (self.countries is not None
                and server.claimed_country not in self.countries):
            return False
        return True

    def to_dict(self) -> dict:
        return {
            "provider": self.provider,
            "countries": list(self.countries) if self.countries else None,
            "max_per_country": self.max_per_country,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FleetTemplate":
        countries = data.get("countries")
        return cls(
            provider=data.get("provider"),
            countries=tuple(countries) if countries else None,
            max_per_country=data.get("max_per_country"),
        )


@dataclass(frozen=True)
class DeploymentPlan:
    """A declarative fleet spec that expands deterministically.

    Expansion walks the scenario fleet in its canonical (provider) order
    and admits each server through the first template that matches and
    still has per-country budget; ``max_servers`` truncates the overall
    selection.  The same plan over the same scenario always yields the
    same server list — which is what lets independently-launched shard
    processes agree on the shard boundaries without coordination.
    """

    name: str = "full-fleet"
    templates: Tuple[FleetTemplate, ...] = (FleetTemplate(),)
    max_servers: Optional[int] = None

    def expand(self, scenario: Scenario) -> List[ProxyServer]:
        chosen: List[ProxyServer] = []
        taken: Dict[Tuple[int, str, str], int] = {}
        for server in scenario.all_servers():
            for at, template in enumerate(self.templates):
                if not template.admits(server):
                    continue
                key = (at, server.provider, server.claimed_country)
                count = taken.get(key, 0)
                if (template.max_per_country is not None
                        and count >= template.max_per_country):
                    continue
                taken[key] = count + 1
                chosen.append(server)
                break
            if self.max_servers is not None and len(chosen) >= self.max_servers:
                break
        return chosen

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "templates": [template.to_dict() for template in self.templates],
            "max_servers": self.max_servers,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "DeploymentPlan":
        templates = tuple(FleetTemplate.from_dict(entry)
                          for entry in data.get("templates", []))
        return cls(
            name=data.get("name", "unnamed"),
            templates=templates or (FleetTemplate(),),
            max_servers=data.get("max_servers"),
        )

    @classmethod
    def from_json(cls, text: str) -> "DeploymentPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: str) -> "DeploymentPlan":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())


def shard_bounds(n_servers: int, shards: int) -> List[Tuple[int, int]]:
    """Contiguous, balanced [lo, hi) index ranges, one per shard.

    The first ``n_servers % shards`` shards take one extra server.
    Contiguity matters: concatenating the shard slices reproduces the
    fleet order, so a merge is a pure index-offset remap.
    """
    if shards < 1:
        raise ValueError(f"need at least one shard, got {shards}")
    base, extra = divmod(n_servers, shards)
    bounds: List[Tuple[int, int]] = []
    lo = 0
    for index in range(shards):
        hi = lo + base + (1 if index < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


# -- streaming aggregation ----------------------------------------------------

class CampaignAggregator:
    """An :class:`AuditSink` that computes the campaign report in one pass.

    Per accepted record: integer tallies and co-occurrence counts are
    updated, the data-centre disambiguation pass is applied (it is
    per-record, so it commutes), the record's metadata group gets its
    running country-set intersection updated, and then the record is
    either *settled* into the final tallies (verdict no longer
    uncertain) or retained as a skeleton — server, assessment, flags —
    with its region and observations dropped.  ``close()`` replays the
    metadata pass over the skeletons using the completed group
    intersections; the result is exactly
    :func:`~repro.core.disambiguation.refine_assessments` semantics
    without ever holding more than the uncertain skeletons in memory.
    """

    def __init__(self, scenario: Scenario) -> None:
        self._scenario = scenario
        self._settled = RecordTally()
        self._providers: Dict[str, Dict[str, int]] = {}
        self._claimed: Dict[str, int] = {}
        self._country_matrix = CooccurrenceMatrix(scenario.registry.codes())
        self._continent_matrix = CooccurrenceMatrix(list(CONTINENTS))
        self._groups: Dict[Tuple[str, int, str], list] = {}
        self._uncertain: List[AuditRecord] = []
        self._reclassified_dc = 0
        self._reclassified_md = 0
        self.n_accepted = 0
        self._closed = False

    def accept(self, record: AuditRecord) -> None:
        if self._closed:
            raise RuntimeError("aggregator already closed")
        self.n_accepted += 1
        claimed = record.server.claimed_country
        self._claimed[claimed] = self._claimed.get(claimed, 0) + 1
        covered = record.assessment.countries_covered
        if covered:
            # The Appendix A confusion counts, exactly as fig22 builds
            # them — one add_set per record, nothing retained.
            self._country_matrix.add_set(covered)
            self._continent_matrix.add_set(
                self._scenario.registry.continent_of(code)
                for code in covered)
        # Data-centre disambiguation touches only this record, so
        # applying it at accept time is order-independent.
        self._reclassified_dc += disambiguate_by_datacenters(
            [record], self._scenario.datacenters)
        key = metadata_group_key(record.server)
        entry = self._groups.get(key)
        if entry is None:
            self._groups[key] = [1, set(covered)]
        else:
            entry[0] += 1
            entry[1] &= set(covered)
        if record.assessment.verdict is Verdict.UNCERTAIN:
            # Retain only the skeleton: the region (~8 KB packed) and the
            # observations are what the streaming design exists to shed.
            self._uncertain.append(replace(
                record, region=None, observations=None, landmark_names=None))
        else:
            self._settle(record)

    def _settle(self, record: AuditRecord) -> None:
        self._settled.add(record)
        provider = self._providers.setdefault(record.server.provider, {})
        verdict = record.assessment.verdict
        assert verdict is not None
        provider[verdict.value] = provider.get(verdict.value, 0) + 1

    def close(self) -> None:
        """Run the deferred metadata pass and settle the skeletons."""
        if self._closed:
            return
        # Mirrors disambiguate_by_metadata: a group of >= 2 co-located
        # proxies whose regions all cover exactly one common country
        # pins its still-uncertain members to that country.  The running
        # intersections were built over *every* group member, settled or
        # not, exactly as the batch pass computes them.
        for record in self._uncertain:
            members, common = self._groups[metadata_group_key(record.server)]
            if members >= 2 and len(common) == 1:
                _reclassify(record.assessment, next(iter(common)), "metadata")
                self._reclassified_md += 1
            self._settle(record)
        self._uncertain = []
        self._closed = True

    def report(self, *, eta: EtaEstimate,
               fault_profile: Optional[str] = None,
               plan_name: str = "full-fleet") -> "CampaignReport":
        self.close()
        continent_pairs = sorted(
            self._continent_matrix.nonzero_pairs(),
            key=lambda entry: (-entry[2], entry[0], entry[1]))
        return CampaignReport(
            plan_name=plan_name,
            n_servers=self.n_accepted,
            fault_profile=fault_profile,
            eta={
                "eta": eta.eta,
                "r_squared": eta.r_squared,
                "n_proxies": eta.n_proxies,
                "n_samples": eta.n_samples,
                "degraded": eta.degraded,
            },
            verdicts_initial=dict(self._settled.verdicts_initial),
            verdicts_final=dict(self._settled.verdicts),
            categories=dict(self._settled.categories),
            reclassified={
                "datacenter": self._reclassified_dc,
                "metadata": self._reclassified_md,
                "total": self._reclassified_dc + self._reclassified_md,
            },
            degraded=self._settled.degraded,
            providers={name: dict(counts)
                       for name, counts in self._providers.items()},
            claimed_countries=dict(self._claimed),
            ground_truth=self._settled.ground_truth_accuracy(),
            continent_confusion=[list(entry) for entry in continent_pairs],
        )


class ShardTally:
    """Minimal sink for one shard: pre-disambiguation verdicts only."""

    def __init__(self) -> None:
        self.n_records = 0
        self.degraded = 0
        self.verdicts: Dict[str, int] = {}

    def accept(self, record: AuditRecord) -> None:
        self.add_assessment_verdict(record.assessment.verdict.value,
                                    record.degraded)

    def add_assessment_verdict(self, verdict: str, degraded: bool) -> None:
        self.n_records += 1
        if degraded:
            self.degraded += 1
        self.verdicts[verdict] = self.verdicts.get(verdict, 0) + 1


@dataclass(frozen=True)
class ShardSummary:
    """What one shard run produced (pre-disambiguation, commutative)."""

    shard_index: int
    shards: int
    n_servers: int
    journal_path: str
    verdicts: Dict[str, int]
    degraded: int
    #: True when the shard's journal was already finalized and the run
    #: was skipped (idempotent re-launch of a finished shard).
    skipped: bool = False


@dataclass(frozen=True)
class CampaignReport:
    """The merged campaign result.

    Deliberately contains nothing shard-dependent: every field is a
    commutative aggregate over the fleet, so the same fleet yields the
    same report — and the same ``to_json()`` bytes — at any shard count.
    """

    plan_name: str
    n_servers: int
    fault_profile: Optional[str]
    eta: Dict[str, object]
    verdicts_initial: Dict[str, int]
    verdicts_final: Dict[str, int]
    categories: Dict[str, int]
    reclassified: Dict[str, int]
    degraded: int
    providers: Dict[str, Dict[str, int]]
    claimed_countries: Dict[str, int]
    ground_truth: Dict[str, float]
    continent_confusion: List[list] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "plan_name": self.plan_name,
            "n_servers": self.n_servers,
            "fault_profile": self.fault_profile,
            "eta": self.eta,
            "verdicts_initial": self.verdicts_initial,
            "verdicts_final": self.verdicts_final,
            "categories": self.categories,
            "reclassified": self.reclassified,
            "degraded": self.degraded,
            "providers": self.providers,
            "claimed_countries": self.claimed_countries,
            "ground_truth": self.ground_truth,
            "continent_confusion": self.continent_confusion,
        }

    def to_json(self) -> str:
        """Canonical serialisation — the byte-identity comparison unit."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CampaignReport":
        data = json.loads(text)
        return cls(**data)


@dataclass(frozen=True)
class CampaignRun:
    """A full orchestrated campaign: the report plus per-shard summaries."""

    report: CampaignReport
    shards: List[ShardSummary]
    merged_journal: Optional[str] = None


# -- orchestration ------------------------------------------------------------

def _resolve_profile(scenario: Scenario,
                     fault_profile: Optional[object]) -> Optional[FaultProfile]:
    return resolve_fault_profile(
        fault_profile if fault_profile is not None
        else scenario.fault_profile)


def _shard_checkpoint(scenario: Scenario, servers: Sequence[ProxyServer],
                      path: str, seed: int,
                      profile_name: Optional[str]) -> AuditCheckpoint:
    """The exact checkpoint run_audit would build for this server slice."""
    return AuditCheckpoint(
        path,
        audit_seed=seed,
        profile=profile_name,
        n_servers=len(servers),
        n_cells=scenario.worldmap.grid.n_cells,
        fleet_digest=AuditCheckpoint.fleet_digest(
            server.host.host_id for server in servers))


def run_campaign_shard(scenario: Scenario,
                       plan: Optional[DeploymentPlan] = None, *,
                       shards: int, shard_index: int, journal_dir: str,
                       seed: int = 0, workers: int = 1,
                       fault_profile: Optional[object] = None,
                       resume: bool = False) -> ShardSummary:
    """Audit one shard of the plan's fleet, streaming to its journal.

    Records flow through a :class:`ShardTally` sink and the shard's
    JSONL journal; nothing is materialized.  The journal is finalized
    (atomic, index-sorted) on completion — the form the merge step
    requires.  With ``resume``, a shard whose journal is already
    finalized is skipped entirely (the summary is re-tallied from the
    journal), and a partial journal continues where it was killed.
    """
    plan = plan or DeploymentPlan()
    servers = plan.expand(scenario)
    bounds = shard_bounds(len(servers), shards)
    lo, hi = bounds[shard_index]
    shard_servers = servers[lo:hi]
    path = shard_journal_path(journal_dir, shard_index, shards)
    profile = _resolve_profile(scenario, fault_profile)
    profile_name = profile.name if profile is not None else None
    tally = ShardTally()
    checkpoint = _shard_checkpoint(scenario, shard_servers, path, seed,
                                   profile_name)
    if resume and checkpoint.is_final:
        for payload in checkpoint.iter_payloads():
            tally.add_assessment_verdict(payload[2].verdict.value,
                                         bool(payload[5]))
        skipped = True
    else:
        run_audit(scenario, servers=shard_servers, seed=seed,
                  workers=workers, fault_profile=profile,
                  disambiguate=False, checkpoint_path=path, resume=resume,
                  sink=tally, finalize_checkpoint=True)
        skipped = False
    return ShardSummary(
        shard_index=shard_index,
        shards=shards,
        n_servers=len(shard_servers),
        journal_path=path,
        verdicts=dict(tally.verdicts),
        degraded=tally.degraded,
        skipped=skipped,
    )


def merge_campaign(scenario: Scenario,
                   plan: Optional[DeploymentPlan] = None, *,
                   shards: int, journal_dir: str, seed: int = 0,
                   fault_profile: Optional[object] = None,
                   merged_path: Optional[str] = None) -> CampaignReport:
    """Fold finalized shard journals into the campaign report.

    The merged journal (``campaign.jsonl``) is byte-identical to a
    finalized single-shot journal of the whole fleet; the report comes
    from streaming it through :class:`CampaignAggregator` one record at
    a time, so merge memory is O(uncertain records), independent of
    fleet size.
    """
    plan = plan or DeploymentPlan()
    servers = plan.expand(scenario)
    profile = _resolve_profile(scenario, fault_profile)
    profile_name = profile.name if profile is not None else None
    bounds = shard_bounds(len(servers), shards)
    shard_checkpoints = [
        _shard_checkpoint(scenario, servers[lo:hi],
                          shard_journal_path(journal_dir, index, shards),
                          seed, profile_name)
        for index, (lo, hi) in enumerate(bounds)]
    merged_path = merged_path or os.path.join(journal_dir, MERGED_JOURNAL)
    merged = _shard_checkpoint(scenario, servers, merged_path, seed,
                               profile_name)
    merged.merge_from(shard_checkpoints)
    grid = scenario.worldmap.grid
    aggregator = CampaignAggregator(scenario)
    for payload in merged.iter_payloads():
        aggregator.accept(_record_from_payload(servers, grid, payload))
    eta = campaign_eta(scenario, seed, profile)
    return aggregator.report(eta=eta, fault_profile=profile_name,
                             plan_name=plan.name)


def run_campaign(scenario: Scenario,
                 plan: Optional[DeploymentPlan] = None, *,
                 shards: Optional[int] = None, workers: int = 1,
                 seed: int = 0, fault_profile: Optional[object] = None,
                 journal_dir: Optional[str] = None,
                 resume: bool = False) -> CampaignRun:
    """Run every shard, then merge: the one-call campaign entry point.

    ``shards`` defaults to the ``REPRO_CAMPAIGN_SHARDS`` knob and
    ``journal_dir`` to ``REPRO_CAMPAIGN_DIR``; with neither set the
    journals live in a temporary directory that is removed after the
    merge (the report survives, the journals do not).
    """
    plan = plan or DeploymentPlan()
    if shards is None:
        shards = int(config.env_value("REPRO_CAMPAIGN_SHARDS"))
    if shards < 1:
        raise ValueError(f"need at least one shard, got {shards}")
    cleanup: Optional[tempfile.TemporaryDirectory] = None
    if journal_dir is None:
        knob_dir = config.env_value("REPRO_CAMPAIGN_DIR")
        if knob_dir:
            journal_dir = str(knob_dir)
        else:
            cleanup = tempfile.TemporaryDirectory(prefix="repro-campaign-")
            journal_dir = cleanup.name
    try:
        summaries = [
            run_campaign_shard(scenario, plan, shards=shards,
                               shard_index=index, journal_dir=journal_dir,
                               seed=seed, workers=workers,
                               fault_profile=fault_profile, resume=resume)
            for index in range(shards)]
        report = merge_campaign(scenario, plan, shards=shards,
                                journal_dir=journal_dir, seed=seed,
                                fault_profile=fault_profile)
    finally:
        if cleanup is not None:
            cleanup.cleanup()
    merged = (None if cleanup is not None
              else os.path.join(journal_dir, MERGED_JOURNAL))
    return CampaignRun(report=report, shards=summaries, merged_journal=merged)


def single_shot_report(scenario: Scenario,
                       plan: Optional[DeploymentPlan] = None, *,
                       seed: int = 0, workers: int = 1,
                       fault_profile: Optional[object] = None
                       ) -> CampaignReport:
    """The byte-identity reference: one unsharded, materialized audit.

    Runs the legacy (list-returning) ``run_audit`` path and feeds the
    records through the same aggregator the merge uses.  Campaign
    correctness is defined as ``run_campaign(...).report.to_json() ==
    single_shot_report(...).to_json()`` for every shard count.
    """
    plan = plan or DeploymentPlan()
    servers = plan.expand(scenario)
    profile = _resolve_profile(scenario, fault_profile)
    result = run_audit(scenario, servers=servers, seed=seed, workers=workers,
                       fault_profile=profile, disambiguate=False)
    aggregator = CampaignAggregator(scenario)
    for record in result.records:
        aggregator.accept(record)
    return aggregator.report(eta=result.eta,
                             fault_profile=result.fault_profile,
                             plan_name=plan.name)
