"""Figure 2: example calibration scatterplots and fitted delay models.

For one landmark, produce the (distance, min one-way delay) scatter from
the mesh database and the three fitted models drawn in the paper's figure:
CBG's bestline (with baseline and slowline), Quasi-Octant's convex-hull
boundaries, and Spotter's cubic μ/σ curves.  The experiment reports the
fitted parameters and the invariants the figure illustrates (bestline
between slowline and baseline; all scatter points above the bestline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.calibration import CbgCalibration, OctantCalibration
from ..geodesy.constants import BASELINE_SPEED_KM_PER_MS, SLOWLINE_SPEED_KM_PER_MS
from .scenario import Scenario


@dataclass
class CalibrationFigure:
    """Everything Figure 2 shows for one landmark."""

    landmark_name: str
    n_points: int
    scatter: List[Tuple[float, float]]          # (distance_km, one_way_ms)
    bestline_speed: float                        # km/ms
    bestline_intercept_ms: float
    bestline_speed_slowline: float               # with CBG++ slowline applied
    octant_fast_cutoff_ms: float
    octant_slow_cutoff_ms: float
    spotter_mu_at: Dict[int, float]              # μ(t) samples, km
    spotter_sigma_at: Dict[int, float]           # σ(t) samples, km

    def points_below_bestline(self) -> int:
        """How many scatter points fall below the bestline (must be ~0)."""
        calibration = CbgCalibration(self.scatter)
        line = calibration.bestline
        return sum(1 for d, t in self.scatter if t < line.delay_at(d) - 1e-9)


def run(scenario: Scenario, landmark_index: int = 0,
        spotter_sample_delays=(10, 40, 80, 160, 240)) -> CalibrationFigure:
    """Calibrate one anchor and extract the figure's quantities."""
    anchors = scenario.atlas.anchors
    if not (0 <= landmark_index < len(anchors)):
        raise IndexError(f"no anchor at index {landmark_index}")
    landmark = anchors[landmark_index]
    scatter = scenario.atlas.calibration_data(landmark)
    plain = CbgCalibration(scatter, apply_slowline=False)
    slow = CbgCalibration(scatter, apply_slowline=True)
    octant = OctantCalibration(scatter)
    spotter = scenario.calibrations.spotter()
    mu_at: Dict[int, float] = {}
    sigma_at: Dict[int, float] = {}
    for delay in spotter_sample_delays:
        mu, sigma = spotter.mu_sigma(float(delay))
        mu_at[delay] = mu
        sigma_at[delay] = sigma
    return CalibrationFigure(
        landmark_name=landmark.name,
        n_points=len(scatter),
        scatter=scatter,
        bestline_speed=plain.speed_km_per_ms,
        bestline_intercept_ms=plain.bestline.intercept,
        bestline_speed_slowline=slow.speed_km_per_ms,
        octant_fast_cutoff_ms=octant.fast_cutoff_ms,
        octant_slow_cutoff_ms=octant.slow_cutoff_ms,
        spotter_mu_at=mu_at,
        spotter_sigma_at=sigma_at,
    )


def format_table(figure: CalibrationFigure) -> str:
    """Human-readable summary, one row per fitted quantity."""
    lines = [
        f"Figure 2 — calibration for landmark {figure.landmark_name} "
        f"({figure.n_points} mesh pairs)",
        f"  baseline speed             {BASELINE_SPEED_KM_PER_MS:8.1f} km/ms",
        f"  CBG bestline speed         {figure.bestline_speed:8.1f} km/ms "
        f"(intercept {figure.bestline_intercept_ms:.2f} ms)",
        f"  CBG++ bestline (slowline)  {figure.bestline_speed_slowline:8.1f} km/ms",
        f"  slowline speed             {SLOWLINE_SPEED_KM_PER_MS:8.1f} km/ms",
        f"  points below bestline      {figure.points_below_bestline():8d}",
        f"  Octant hull cutoffs        {figure.octant_fast_cutoff_ms:.1f} ms (50%), "
        f"{figure.octant_slow_cutoff_ms:.1f} ms (75%)",
    ]
    for delay in sorted(figure.spotter_mu_at):
        lines.append(
            f"  Spotter mu/sigma @ {delay:3d} ms   "
            f"{figure.spotter_mu_at[delay]:8.0f} km / "
            f"{figure.spotter_sigma_at[delay]:6.0f} km")
    return "\n".join(lines)
