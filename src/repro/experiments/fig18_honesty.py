"""Figures 18 & 19: claim honesty by provider and by country.

Figure 18's matrix — providers × the twenty most-commonly-claimed
countries, each cell the fraction of that provider's claims there that
CBG++ backs up (credible or uncertain, after disambiguation).  Figure 19
generalises to every claimed country per provider.  The shape to
reproduce: honesty concentrates in the commonly claimed, easy-hosting
countries; the long tail is almost entirely false.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.assessment import Verdict
from .audit import AuditResult, cached_audit
from .scenario import Scenario


@dataclass
class HonestyMatrix:
    providers: List[str]
    countries: List[str]                       # column order (most-claimed first)
    honesty: Dict[Tuple[str, str], float]      # (provider, country) -> rate
    claims: Dict[Tuple[str, str], int]         # (provider, country) -> n claims

    def rate(self, provider: str, country: str) -> Optional[float]:
        return self.honesty.get((provider, country))

    def provider_mean(self, provider: str) -> float:
        values = [rate for (p, _), rate in self.honesty.items() if p == provider]
        if not values:
            raise KeyError(f"no claims for provider {provider!r}")
        return sum(values) / len(values)

    def country_mean(self, country: str) -> float:
        values = [rate for (_, c), rate in self.honesty.items() if c == country]
        if not values:
            raise KeyError(f"no claims for country {country!r}")
        return sum(values) / len(values)

    def tier_means(self, scenario: Scenario) -> Dict[int, float]:
        """Mean honesty by the claimed country's hosting tier."""
        sums: Dict[int, List[float]] = {1: [], 2: [], 3: []}
        for (_, country), rate in self.honesty.items():
            tier = scenario.registry.get(country).hosting_tier
            sums[tier].append(rate)
        return {tier: (sum(v) / len(v) if v else 0.0)
                for tier, v in sums.items()}


def _claim_backed(record) -> bool:
    """Is the claim backed up (credible or still-uncertain)?"""
    return record.assessment.verdict in (Verdict.CREDIBLE, Verdict.UNCERTAIN)


def run(scenario: Scenario, n_countries: int = 20,
        max_servers: Optional[int] = None, seed: int = 0,
        all_countries: bool = False) -> HonestyMatrix:
    """Build the honesty matrix from the shared audit run.

    ``all_countries=True`` produces the Figure 19 variant (every claimed
    country, not just the twenty most-claimed).
    """
    audit = cached_audit(scenario, max_servers=max_servers, seed=seed)
    return summarize(audit, n_countries=n_countries, all_countries=all_countries)


def summarize(audit: AuditResult, n_countries: int = 20,
              all_countries: bool = False) -> HonestyMatrix:
    claim_counts: Dict[str, int] = {}
    for record in audit.records:
        code = record.server.claimed_country
        claim_counts[code] = claim_counts.get(code, 0) + 1
    ordered = sorted(claim_counts, key=lambda code: -claim_counts[code])
    countries = ordered if all_countries else ordered[:n_countries]
    country_set = set(countries)

    providers = sorted({r.server.provider for r in audit.records})
    backed: Dict[Tuple[str, str], int] = {}
    totals: Dict[Tuple[str, str], int] = {}
    for record in audit.records:
        code = record.server.claimed_country
        if code not in country_set:
            continue
        key = (record.server.provider, code)
        totals[key] = totals.get(key, 0) + 1
        if _claim_backed(record):
            backed[key] = backed.get(key, 0) + 1
    honesty = {key: backed.get(key, 0) / total
               for key, total in totals.items()}
    return HonestyMatrix(
        providers=providers,
        countries=countries,
        honesty=honesty,
        claims=totals,
    )


def format_table(matrix: HonestyMatrix) -> str:
    header = "prov " + " ".join(f"{code:>4}" for code in matrix.countries[:15])
    lines = ["Figure 18 — honesty by provider and country (top countries)",
             header]
    for provider in matrix.providers:
        cells = []
        for code in matrix.countries[:15]:
            rate = matrix.rate(provider, code)
            cells.append("   ." if rate is None else f"{rate:4.0%}")
        lines.append(f"   {provider}  " + " ".join(cells))
    lines.append("  provider means: " + "  ".join(
        f"{p}:{matrix.provider_mean(p):.0%}" for p in matrix.providers))
    return "\n".join(lines)
