"""The full proxy audit pipeline (section 6): the paper's main experiment.

For every proxy server: estimate the client→proxy leg (η-adapted
self-ping), run the two-phase measurement through the tunnel, multilaterate
with CBG++, assess the provider's country claim, then refine uncertain
verdicts with data-centre and metadata disambiguation.
"""

from __future__ import annotations

import itertools
import multiprocessing
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import (Callable, Dict, Iterable, List, Optional, Protocol,
                    Sequence)

import numpy as np

from ..core.assessment import ClaimAssessment, Verdict, assess_claim
from ..core.base import GeolocationAlgorithm
from ..core.cbgpp import CBGPlusPlus
from ..core.disambiguation import AuditRecord, refine_assessments
from ..core.proxy_adapter import EtaEstimate, ProxyMeasurer, estimate_eta
from ..core.twophase import (
    MIN_MULTILATERATION_OBSERVATIONS,
    TwoPhaseDriver,
    TwoPhaseResult,
    TwoPhaseSelector,
)
from .. import config
from ..geo.region import Region
from ..lrucache import CacheInfo, LruCache
from ..netsim.faults import (
    FaultInjector,
    FaultProfile,
    MeasurementFailed,
    resolve_fault_profile,
)
from ..netsim.proxies import ProxyServer
from .checkpoint import AuditCheckpoint, ServerPayload
from .scenario import Scenario


class AuditSink(Protocol):
    """A streaming consumer of completed audit records.

    ``run_audit(sink=...)`` hands each record to :meth:`accept` the
    moment its payload exists — journal-resume records first (ascending
    index), then live records in *completion* order — and never holds a
    reference afterwards, so the record's packed region is garbage the
    instant the sink is done with it.  Implementations must therefore
    compute only commutative (order-independent) aggregates, which is
    also exactly what makes sharded campaign reports independent of the
    shard count.
    """

    def accept(self, record: AuditRecord) -> None:
        """Consume one completed record; must not retain its region."""


class RecordTally:
    """Single-pass commutative aggregates over audit records.

    One ``add`` per record maintains every integer tally the audit
    report needs — verdicts (initial and current), Figure 17 categories,
    degraded counts, and the ground-truth soundness counters — without
    retaining the record.  Shared by :class:`AuditResult` (which feeds
    it a materialized list) and the streaming campaign sinks (which feed
    it record by record), so both paths count by identical rules.
    """

    def __init__(self) -> None:
        self.n_records = 0
        self.degraded = 0
        self.verdicts: Dict[str, int] = {}
        self.verdicts_initial: Dict[str, int] = {}
        self.categories: Dict[str, int] = {}
        self.false_verdicts = 0
        self.false_verdicts_wrong = 0
        self.credible_verdicts = 0
        self.credible_verdicts_right = 0

    def add(self, record: AuditRecord) -> None:
        self.n_records += 1
        if record.degraded:
            self.degraded += 1
        verdict = record.assessment.verdict
        initial = record.initial_verdict
        assert verdict is not None and initial is not None
        self.verdicts[verdict.value] = self.verdicts.get(verdict.value, 0) + 1
        self.verdicts_initial[initial.value] = \
            self.verdicts_initial.get(initial.value, 0) + 1
        category = record.assessment.category()
        self.categories[category] = self.categories.get(category, 0) + 1
        if record.assessment.is_false:
            self.false_verdicts += 1
            if record.server.honest:
                self.false_verdicts_wrong += 1
        if record.assessment.is_credible:
            self.credible_verdicts += 1
            if record.server.honest:
                self.credible_verdicts_right += 1

    def extend(self, records: Iterable[AuditRecord]) -> "RecordTally":
        for record in records:
            self.add(record)
        return self

    def ground_truth_accuracy(self) -> Dict[str, float]:
        """The audit soundness summary (see AuditResult for semantics)."""
        return {
            "false_verdicts": self.false_verdicts,
            "false_verdicts_wrong": self.false_verdicts_wrong,
            "credible_verdicts": self.credible_verdicts,
            "credible_verdicts_right": self.credible_verdicts_right,
            "false_precision": (
                1.0 - self.false_verdicts_wrong / self.false_verdicts
                if self.false_verdicts else 1.0),
            "credible_precision": (
                self.credible_verdicts_right / self.credible_verdicts
                if self.credible_verdicts else 1.0),
        }


@dataclass
class AuditResult:
    """Everything one audit run produced."""

    records: List[AuditRecord]
    eta: EtaEstimate
    reclassified: Dict[str, int] = field(default_factory=dict)
    #: Name of the fault profile the audit ran under, None for fault-free.
    fault_profile: Optional[str] = None
    #: Records handed to a streaming sink instead of ``records``.
    n_streamed: int = 0

    @property
    def degraded_count(self) -> int:
        """How many servers needed a fallback path to yield a record."""
        return sum(1 for record in self.records if record.degraded)

    # -- tallies -------------------------------------------------------------

    def verdict_counts(self, initial: bool = False) -> Dict[str, int]:
        """Counts per verdict; ``initial=True`` gives pre-disambiguation."""
        tally = RecordTally().extend(self.records)
        return tally.verdicts_initial if initial else tally.verdicts

    def category_counts(self) -> Dict[str, int]:
        """Counts per Figure 17 bar category (post-disambiguation)."""
        return RecordTally().extend(self.records).categories

    def by_provider(self) -> Dict[str, List[AuditRecord]]:
        grouped: Dict[str, List[AuditRecord]] = {}
        for record in self.records:
            grouped.setdefault(record.server.provider, []).append(record)
        return grouped

    def agreement_rate(self, provider: Optional[str] = None,
                       generous: bool = True) -> float:
        """Fraction of claims CBG++ agrees with (the Figure 21 rows).

        ``generous`` counts uncertain claims as credible; strict counts
        them as false.
        """
        records = [r for r in self.records
                   if provider is None or r.server.provider == provider]
        if not records:
            raise ValueError(f"no records for provider {provider!r}")
        agreed = 0
        for record in records:
            verdict = record.assessment.verdict
            if verdict is Verdict.CREDIBLE:
                agreed += 1
            elif verdict in (Verdict.UNCERTAIN, Verdict.UNLOCATABLE) and generous:
                agreed += 1
        return agreed / len(records)

    def ground_truth_accuracy(self) -> Dict[str, float]:
        """How often the verdicts match simulator ground truth.

        Soundness is measured the way the paper wants it: a FALSE verdict
        against an honest server is the error that must not happen.
        """
        return RecordTally().extend(self.records).ground_truth_accuracy()


#: Shared state for forked audit workers.  Set immediately before the
#: pool is created so the fork snapshot carries it; the children read it,
#: the parent clears it once the pool is done.
_FORK_STATE: Optional[tuple] = None


def _audit_one(scenario: Scenario, driver: TwoPhaseDriver,
               server: ProxyServer, eta: EtaEstimate, seed: int):
    """Locate one proxy and assess its claim.

    The measurement stream is keyed by ``(seed, host_id)`` — independent
    of fleet order and of which process runs the server — which is what
    makes serial, parallel, and resumed-from-checkpoint audits
    bit-identical.  A proxy whose tunnel never answers (the paper's
    servers that dropped mid-campaign) yields a degraded UNLOCATABLE
    record rather than an exception.
    """
    rng = np.random.default_rng((seed, server.host.host_id))
    measurer = ProxyMeasurer(scenario.network, scenario.client, server,
                             eta=eta.eta, seed=server.host.host_id)
    with scenario.network.measurement_epoch_for(server.host):
        try:
            result = driver.locate(measurer.observe, rng)
        except MeasurementFailed as exc:
            region = Region.empty(driver.algorithm.grid)
            assessment = assess_claim(region, server.claimed_country,
                                      scenario.worldmap)
            return (region, assessment, [], [], True,
                    [f"tunnel unreachable: {exc}"])
    assessment = assess_claim(result.prediction.region,
                              server.claimed_country, scenario.worldmap)
    observations = (list(result.phase2_observations)
                    + list(result.phase1_observations))
    return (result.prediction.region, assessment, observations,
            list(result.phase2_landmarks), result.degraded,
            list(result.notes))


def _payload_for(scenario: Scenario, driver: TwoPhaseDriver,
                 servers: List[ProxyServer], index: int, eta: EtaEstimate,
                 seed: int) -> ServerPayload:
    region, assessment, observations, names, degraded, notes = _audit_one(
        scenario, driver, servers[index], eta, seed)
    # packed_bytes() emits exactly np.packbits(region.mask).tobytes(),
    # straight from the packed words when the region is packed-native.
    return (index, region.packed_bytes(), assessment,
            observations, names, degraded, notes)


def _collect_one(scenario: Scenario, driver: TwoPhaseDriver,
                 server: ProxyServer, eta: EtaEstimate, seed: int):
    """Measure one proxy without multilaterating: the fleet front half.

    RNG keying, measurer construction, and measurement-epoch scoping are
    identical to :func:`_audit_one` — only the prediction is deferred so
    a whole batch of measurements can share one vectorised sweep.
    Returns the :class:`TwoPhaseMeasurement`, or the
    :class:`MeasurementFailed` exception for a dead tunnel.
    """
    rng = np.random.default_rng((seed, server.host.host_id))
    measurer = ProxyMeasurer(scenario.network, scenario.client, server,
                             eta=eta.eta, seed=server.host.host_id)
    with scenario.network.measurement_epoch_for(server.host):
        try:
            return driver.collect(measurer.observe, rng)
        except MeasurementFailed as exc:
            return exc


def _payload_from_result(scenario: Scenario, servers: List[ProxyServer],
                         index: int, result: TwoPhaseResult) -> ServerPayload:
    server = servers[index]
    assessment = assess_claim(result.prediction.region,
                              server.claimed_country, scenario.worldmap)
    observations = (list(result.phase2_observations)
                    + list(result.phase1_observations))
    return (index, result.prediction.region.packed_bytes(), assessment,
            observations, list(result.phase2_landmarks), result.degraded,
            list(result.notes))


def _fleet_payloads(scenario: Scenario, driver: TwoPhaseDriver,
                    servers: List[ProxyServer], indices: List[int],
                    eta: EtaEstimate, seed: int) -> List[ServerPayload]:
    """Audit a batch of servers through the fleet multilateration engine.

    Measurement stays per-server (streams keyed by ``(seed, host_id)``,
    exactly as the scalar engine); only the multilateration step is
    batched into one ``predict_fleet`` sweep.  Servers that cannot take
    that sweep use the scalar engine's own fallbacks: a dead tunnel
    yields the empty-region payload, an observation-starved (degraded)
    measurement is finished without multilateration.  Payloads come back
    in ``indices`` order, so checkpoint journals are written in the same
    order as the per-server engine's.
    """
    payloads: List[ServerPayload] = []
    fleet: List[tuple] = []
    for index in indices:
        server = servers[index]
        collected = _collect_one(scenario, driver, server, eta, seed)
        if isinstance(collected, MeasurementFailed):
            region = Region.empty(driver.algorithm.grid)
            assessment = assess_claim(region, server.claimed_country,
                                      scenario.worldmap)
            payloads.append((index, region.packed_bytes(), assessment,
                             [], [], True,
                             [f"tunnel unreachable: {collected}"]))
        elif (len(collected.observations)
              < MIN_MULTILATERATION_OBSERVATIONS):
            payloads.append(_payload_from_result(
                scenario, servers, index, driver.finish(collected)))
        else:
            fleet.append((index, collected))
    if fleet:
        predictions = driver.algorithm.predict_fleet(
            [measurement.observations for _, measurement in fleet])
        for (index, measurement), prediction in zip(fleet, predictions):
            payloads.append(_payload_from_result(
                scenario, servers, index,
                driver.finish(measurement, prediction)))
    order = {index: at for at, index in enumerate(indices)}
    payloads.sort(key=lambda payload: order[payload[0]])
    return payloads


def _chunk_payloads(scenario: Scenario, driver: TwoPhaseDriver,
                    servers: List[ProxyServer], indices: List[int],
                    eta: EtaEstimate, seed: int,
                    engine: str) -> List[ServerPayload]:
    """One work unit's payloads, through the selected audit engine."""
    if engine == "fleet":
        return _fleet_payloads(scenario, driver, servers, indices, eta, seed)
    return [_payload_for(scenario, driver, servers, index, eta, seed)
            for index in indices]


def _record_from(server: ProxyServer, region: Region,
                 assessment: ClaimAssessment, observations: list,
                 landmark_names: List[str], degraded: bool,
                 notes: List[str]) -> AuditRecord:
    return AuditRecord(
        server=server,
        region=region,
        assessment=assessment,
        initial_verdict=assessment.verdict,
        observations=observations,
        landmark_names=landmark_names,
        degraded=degraded,
        failure_notes=notes,
    )


def _record_from_payload(servers: List[ProxyServer], grid,
                         payload: ServerPayload) -> AuditRecord:
    index, packed, assessment, observations, names, degraded, notes = payload
    # Under the packed engine the payload bytes are adopted as uint64
    # words without ever materialising the per-record boolean mask —
    # the source of the fleet audit's ~8x region-memory reduction.
    return _record_from(servers[index], Region.from_packbits(grid, packed),
                        assessment, observations, names, degraded, notes)


def _fork_worker(indices: List[int]) -> List[ServerPayload]:
    scenario, driver, servers, eta, seed, engine = _FORK_STATE
    return _chunk_payloads(scenario, driver, servers, indices, eta, seed,
                           engine)


#: Servers per checkpointed work unit: small enough that a killed audit
#: loses little progress, large enough to amortise pool round trips.
_CHECKPOINT_CHUNK = 4


def _parallel_payloads(scenario: Scenario, driver: TwoPhaseDriver,
                       servers: List[ProxyServer], eta: EtaEstimate,
                       seed: int, workers: int, indices: List[int],
                       deliver: Callable[[ServerPayload], None],
                       engine: str, fine_chunks: bool) -> None:
    """Fan the per-server audits over forked worker processes.

    Fork (not spawn) is required: the children inherit the scenario —
    topology, shortest-path caches, the grid's distance bank — as
    copy-on-write pages instead of re-pickling hundreds of megabytes.
    Each worker ships back only a packed region mask plus the small
    assessment/observation records, each of which goes straight to
    ``deliver`` in completion order.  With ``fine_chunks`` (a checkpoint
    or streaming sink downstream) work is split into small chunks so a
    kill loses at most a chunk and memory holds at most a chunk per
    in-flight future; otherwise one round-robin chunk per worker
    minimises IPC.
    """
    global _FORK_STATE
    context = multiprocessing.get_context("fork")
    if fine_chunks:
        chunks = [indices[at:at + _CHECKPOINT_CHUNK]
                  for at in range(0, len(indices), _CHECKPOINT_CHUNK)]
    else:
        chunks = [indices[worker::workers] for worker in range(workers)]
    chunks = [chunk for chunk in chunks if chunk]
    _FORK_STATE = (scenario, driver, servers, eta, seed, engine)
    try:
        with ProcessPoolExecutor(max_workers=workers,
                                 mp_context=context) as pool:
            futures = [pool.submit(_fork_worker, chunk) for chunk in chunks]
            for future in as_completed(futures):
                for payload in future.result():
                    deliver(payload)
    finally:
        _FORK_STATE = None


#: Campaign-level η estimates, keyed by (scenario token, seed, profile).
#: η is a pure function of that key: the fitting rng is derived from the
#: seed alone, fault epochs are order-independent functions of host ids,
#: and the draws never feed any later per-server stream — so a cache hit
#: is bit-identical to refitting, and repeated quick audits of the same
#: campaign skip the whole-fleet self-ping sweep.
_ETA_CACHE: "LruCache[tuple, EtaEstimate]" = LruCache(maxsize=16)


def _campaign_eta(scenario: Scenario, seed: int,
                  profile: Optional[FaultProfile],
                  rng: np.random.Generator) -> EtaEstimate:
    """The memoised whole-fleet η fit for one (scenario, seed, profile)."""
    key = (_scenario_token(scenario), seed, profile)
    eta = _ETA_CACHE.get(key)
    if eta is None:
        eta = estimate_eta(scenario.network, scenario.client,
                           scenario.all_servers(), rng)
        _ETA_CACHE.put(key, eta)
    return eta


def campaign_eta(scenario: Scenario, seed: int = 0,
                 fault_profile: Optional[object] = None) -> EtaEstimate:
    """The η estimate a ``run_audit`` with these parameters would use.

    Replays run_audit's exact fitting environment — profile resolution,
    fault installation, outage schedule, and the seed-derived rng — so a
    campaign merge running in a fresh process (no audit, no warm
    ``_ETA_CACHE``) reports bit-identically to the shards that measured.
    """
    profile = resolve_fault_profile(
        fault_profile if fault_profile is not None
        else scenario.fault_profile)
    injector: Optional[FaultInjector] = None
    if profile is not None:
        injector = FaultInjector(profile, seed=seed)
        injector.schedule_outages(
            [lm.host.host_id for lm in scenario.atlas.all_landmarks()])
    rng = np.random.default_rng(seed)
    with scenario.network.faults_installed(injector):
        return _campaign_eta(scenario, seed, profile, rng)


def run_audit(scenario: Scenario,
              algorithm: Optional[GeolocationAlgorithm] = None,
              servers: Optional[Sequence[ProxyServer]] = None,
              max_servers: Optional[int] = None,
              seed: int = 0,
              disambiguate: bool = True,
              workers: int = 1,
              fault_profile: Optional[object] = None,
              checkpoint_path: Optional[str] = None,
              resume: bool = False,
              sink: Optional[AuditSink] = None,
              finalize_checkpoint: bool = False) -> AuditResult:
    """Audit a proxy fleet end to end.

    Parameters
    ----------
    algorithm:
        Defaults to CBG++, the paper's choice for the audit.
    servers:
        Defaults to the scenario's entire fleet; ``max_servers`` truncates
        (deterministically, in fleet order) for quick runs.
    workers:
        Number of audit processes.  Per-server measurement noise is keyed
        by ``(seed, host_id)``, so any worker count — including 1 —
        produces bit-identical records; parallelism only changes
        wall-clock time.  Falls back to serial where ``fork`` is
        unavailable.
    fault_profile:
        A :class:`~repro.netsim.faults.FaultProfile`, a profile name from
        ``FAULT_PROFILES``, or None.  Defaults to the scenario's own
        ``fault_profile``.  A null profile is byte-identical to no
        profile at all.
    checkpoint_path:
        Journal completed servers to this JSONL file as the audit runs.
    resume:
        With ``checkpoint_path``, load previously completed servers from
        the journal (validating that it belongs to this exact run) and
        audit only the remainder; the merged records are bit-identical to
        an uninterrupted run.  Without ``resume`` an existing journal is
        overwritten.
    sink:
        Stream each completed record to this :class:`AuditSink` instead
        of materialising a result list — journal-resumed records first in
        ascending index order, then live records in completion order, so
        the sink must aggregate commutatively.  Memory stays flat in
        fleet size: each record (and its packed region) is dropped the
        moment the sink returns.  The returned :class:`AuditResult` has
        empty ``records`` and carries the count in ``n_streamed``.
        Incompatible with ``disambiguate`` (which needs the whole fleet
        at once); pass ``disambiguate=False`` and let the campaign
        aggregator apply the streaming-equivalent refinement.
    finalize_checkpoint:
        After the last server is journalled, atomically rewrite the
        journal finalized and index-sorted (see
        :meth:`AuditCheckpoint.finalize`) — the form shard journals must
        be in before a campaign merge.
    """
    # Resolve the engine up front so a typo'd knob fails before any
    # measurement, not in the middle of a forked worker.
    engine = str(config.env_value("REPRO_AUDIT_ENGINE"))
    if sink is not None and disambiguate:
        raise ValueError(
            "a streaming audit cannot disambiguate: refinement needs the "
            "whole fleet at once; pass disambiguate=False and refine in "
            "the sink (see experiments.campaign.CampaignAggregator)")
    if finalize_checkpoint and checkpoint_path is None:
        raise ValueError("finalize_checkpoint requires checkpoint_path")
    rng = np.random.default_rng(seed)
    if algorithm is None:
        algorithm = CBGPlusPlus(scenario.calibrations, scenario.worldmap)
    if servers is None:
        servers = scenario.all_servers()
    if max_servers is not None:
        servers = list(servers)[:max_servers]
    servers = list(servers)
    grid = algorithm.grid

    profile: Optional[FaultProfile] = resolve_fault_profile(
        fault_profile if fault_profile is not None
        else scenario.fault_profile)
    injector: Optional[FaultInjector] = None
    if profile is not None:
        injector = FaultInjector(profile, seed=seed)
        injector.schedule_outages(
            [lm.host.host_id for lm in scenario.atlas.all_landmarks()])

    checkpoint: Optional[AuditCheckpoint] = None
    completed: Dict[int, ServerPayload] = {}
    if checkpoint_path is not None:
        checkpoint = AuditCheckpoint(
            checkpoint_path,
            audit_seed=seed,
            profile=profile.name if profile is not None else None,
            n_servers=len(servers),
            n_cells=grid.n_cells,
            fleet_digest=AuditCheckpoint.fleet_digest(
                server.host.host_id for server in servers))
        if resume:
            completed = checkpoint.load()
        checkpoint.start(fresh=not resume)

    # Warm the shortest-path engine for every router this audit can
    # touch — one batched Dijkstra — before any measurement and before
    # the worker pool forks, so children inherit the rows as
    # copy-on-write pages (a no-op under the networkx oracle).  Only the
    # *audited* servers are warmed: a truncated quick run must not pay a
    # full-fleet Dijkstra for servers it will never measure.
    scenario.network.warm_paths(
        [scenario.client]
        + [lm.host for lm in scenario.atlas.all_landmarks()]
        + [server.host for server in servers])

    # Every completed payload flows through one delivery point: journal
    # first (durability before anything observes the record), then either
    # straight into the streaming sink — after which the payload and its
    # packed region are garbage — or into the legacy completion map.
    n_streamed = 0

    def deliver(payload: ServerPayload, journal: bool = True) -> None:
        nonlocal n_streamed
        if checkpoint is not None and journal:
            checkpoint.append(payload)
        if sink is not None:
            sink.accept(_record_from_payload(servers, grid, payload))
            n_streamed += 1
        else:
            completed[payload[0]] = payload

    if sink is not None and completed:
        # Resumed records reach the sink before any live ones, in
        # ascending index order; the journal already holds them.
        resumed = completed
        completed = {}
        for index in sorted(resumed):
            deliver(resumed[index], journal=False)
        pending = [index for index in range(len(servers))
                   if index not in resumed]
    else:
        pending = [index for index in range(len(servers))
                   if index not in completed]

    with scenario.network.faults_installed(injector):
        # η is a campaign-level calibration: it is always fitted over the
        # scenario's whole fleet (never the truncated slice), so the same
        # (scenario, seed, profile) yields the same η no matter which
        # servers are audited — truncated quick runs stay bit-identical
        # to the corresponding slice of a full audit.
        eta = _campaign_eta(scenario, seed, profile, rng)
        selector = TwoPhaseSelector(scenario.atlas, seed=seed)
        driver = TwoPhaseDriver(selector, algorithm)

        fine_chunks = checkpoint is not None or sink is not None
        use_fork = (workers > 1 and len(pending) > 1
                    and "fork" in multiprocessing.get_all_start_methods())
        if use_fork:
            _parallel_payloads(
                scenario, driver, servers, eta, seed,
                min(workers, len(pending)), pending, deliver, engine,
                fine_chunks)
        else:
            # Serial: one fleet batch over everything pending — unless a
            # checkpoint journal or streaming sink wants finer
            # granularity, in which case the batches mirror the parallel
            # path's chunking so a kill loses at most a chunk and memory
            # holds at most a chunk of payloads either way.
            if not fine_chunks:
                batches = [pending] if pending else []
            else:
                batches = [pending[at:at + _CHECKPOINT_CHUNK]
                           for at in range(0, len(pending),
                                           _CHECKPOINT_CHUNK)]
            for batch in batches:
                for payload in _chunk_payloads(scenario, driver, servers,
                                               batch, eta, seed, engine):
                    deliver(payload)

    if finalize_checkpoint and checkpoint is not None:
        checkpoint.finalize()

    if sink is not None:
        return AuditResult(records=[], eta=eta,
                           reclassified={"datacenter": 0, "metadata": 0,
                                         "total": 0},
                           fault_profile=profile.name if profile else None,
                           n_streamed=n_streamed)

    # The legacy API contract: callers get the full record list.  Bounded
    # by design to figure-sized fleets; campaigns use the sink path above.
    records = [  # reprolint: disable=R008 (legacy materialising API; campaign-scale callers pass a sink)
        _record_from_payload(servers, grid, completed[index])
        for index in range(len(servers))]

    reclassified: Dict[str, int] = {"datacenter": 0, "metadata": 0, "total": 0}
    if disambiguate:
        reclassified = refine_assessments(records, scenario.datacenters,
                                          scenario.worldmap)
    return AuditResult(records=records, eta=eta, reclassified=reclassified,
                       fault_profile=profile.name if profile else None)


_AUDIT_CACHE_SLOTS = 8
_AUDIT_CACHE: "LruCache[tuple, AuditResult]" = LruCache(
    maxsize=_AUDIT_CACHE_SLOTS)
_scenario_tokens = itertools.count()

#: The shared cache-counter record (`functools.lru_cache` field order
#: plus ``evictions``), common to ``cached_audit`` and the verdict
#: service's caches.
AuditCacheInfo = CacheInfo


def _scenario_token(scenario: Scenario) -> int:
    """A stable identity token for a scenario object.

    ``id()`` is unusable as a cache key: after a scenario is garbage
    collected a *different* scenario can be allocated at the same address
    and silently inherit the old audit.  The token lives on the object,
    so it dies with it.
    """
    token = getattr(scenario, "_audit_cache_token", None)
    if token is None:
        token = next(_scenario_tokens)
        scenario._audit_cache_token = token
    return token


def cached_audit(scenario: Scenario, max_servers: Optional[int] = None,
                 seed: int = 0) -> AuditResult:
    """Memoised full-fleet audit, shared by the figure experiments.

    Figures 16 through 23 all consume the same audit run; recomputing it
    per figure would dominate the benchmark harness.  Bounded LRU: the
    oldest audit is dropped once ``_AUDIT_CACHE_SLOTS`` distinct
    (scenario, max_servers, seed) combinations have been seen.

    ``cached_audit.cache_info()`` reports hit/miss/eviction counters
    (the perf benches use them to prove cache effectiveness) and
    ``cached_audit.cache_clear()`` empties both the cache and the
    counters, mirroring :func:`functools.lru_cache`'s wrapper API.  Both
    ride on the shared :class:`repro.lrucache.LruCache`, the same
    implementation behind the verdict service's caches.
    """
    key = (_scenario_token(scenario), max_servers, seed)
    result = _AUDIT_CACHE.get(key)
    if result is None:
        result = run_audit(scenario, max_servers=max_servers, seed=seed)
        _AUDIT_CACHE.put(key, result)
    return result


cached_audit.cache_info = _AUDIT_CACHE.cache_info
cached_audit.cache_clear = _AUDIT_CACHE.cache_clear
