"""The full proxy audit pipeline (section 6): the paper's main experiment.

For every proxy server: estimate the client→proxy leg (η-adapted
self-ping), run the two-phase measurement through the tunnel, multilaterate
with CBG++, assess the provider's country claim, then refine uncertain
verdicts with data-centre and metadata disambiguation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.assessment import Verdict, assess_claim
from ..core.base import GeolocationAlgorithm
from ..core.cbgpp import CBGPlusPlus
from ..core.disambiguation import AuditRecord, refine_assessments
from ..core.proxy_adapter import EtaEstimate, ProxyMeasurer, estimate_eta
from ..core.twophase import TwoPhaseDriver, TwoPhaseSelector
from ..netsim.proxies import ProxyServer
from .scenario import Scenario


@dataclass
class AuditResult:
    """Everything one audit run produced."""

    records: List[AuditRecord]
    eta: EtaEstimate
    reclassified: Dict[str, int] = field(default_factory=dict)

    # -- tallies -------------------------------------------------------------

    def verdict_counts(self, initial: bool = False) -> Dict[str, int]:
        """Counts per verdict; ``initial=True`` gives pre-disambiguation."""
        counts: Dict[str, int] = {}
        for record in self.records:
            verdict = (record.initial_verdict if initial
                       else record.assessment.verdict)
            assert verdict is not None
            counts[verdict.value] = counts.get(verdict.value, 0) + 1
        return counts

    def category_counts(self) -> Dict[str, int]:
        """Counts per Figure 17 bar category (post-disambiguation)."""
        counts: Dict[str, int] = {}
        for record in self.records:
            category = record.assessment.category()
            counts[category] = counts.get(category, 0) + 1
        return counts

    def by_provider(self) -> Dict[str, List[AuditRecord]]:
        grouped: Dict[str, List[AuditRecord]] = {}
        for record in self.records:
            grouped.setdefault(record.server.provider, []).append(record)
        return grouped

    def agreement_rate(self, provider: Optional[str] = None,
                       generous: bool = True) -> float:
        """Fraction of claims CBG++ agrees with (the Figure 21 rows).

        ``generous`` counts uncertain claims as credible; strict counts
        them as false.
        """
        records = [r for r in self.records
                   if provider is None or r.server.provider == provider]
        if not records:
            raise ValueError(f"no records for provider {provider!r}")
        agreed = 0
        for record in records:
            verdict = record.assessment.verdict
            if verdict is Verdict.CREDIBLE:
                agreed += 1
            elif verdict in (Verdict.UNCERTAIN, Verdict.UNLOCATABLE) and generous:
                agreed += 1
        return agreed / len(records)

    def ground_truth_accuracy(self) -> Dict[str, float]:
        """How often the verdicts match simulator ground truth.

        Soundness is measured the way the paper wants it: a FALSE verdict
        against an honest server is the error that must not happen.
        """
        false_verdicts = [r for r in self.records if r.assessment.is_false]
        credible_verdicts = [r for r in self.records if r.assessment.is_credible]
        wrongly_accused = sum(1 for r in false_verdicts if r.server.honest)
        rightly_confirmed = sum(1 for r in credible_verdicts if r.server.honest)
        return {
            "false_verdicts": len(false_verdicts),
            "false_verdicts_wrong": wrongly_accused,
            "credible_verdicts": len(credible_verdicts),
            "credible_verdicts_right": rightly_confirmed,
            "false_precision": (1.0 - wrongly_accused / len(false_verdicts)
                                if false_verdicts else 1.0),
            "credible_precision": (rightly_confirmed / len(credible_verdicts)
                                   if credible_verdicts else 1.0),
        }


def run_audit(scenario: Scenario,
              algorithm: Optional[GeolocationAlgorithm] = None,
              servers: Optional[Sequence[ProxyServer]] = None,
              max_servers: Optional[int] = None,
              seed: int = 0,
              disambiguate: bool = True) -> AuditResult:
    """Audit a proxy fleet end to end.

    Parameters
    ----------
    algorithm:
        Defaults to CBG++, the paper's choice for the audit.
    servers:
        Defaults to the scenario's entire fleet; ``max_servers`` truncates
        (deterministically, in fleet order) for quick runs.
    """
    rng = np.random.default_rng(seed)
    if algorithm is None:
        algorithm = CBGPlusPlus(scenario.calibrations, scenario.worldmap)
    if servers is None:
        servers = scenario.all_servers()
    if max_servers is not None:
        servers = list(servers)[:max_servers]

    eta = estimate_eta(scenario.network, scenario.client,
                       scenario.all_servers(), rng)
    selector = TwoPhaseSelector(scenario.atlas, seed=seed)
    driver = TwoPhaseDriver(selector, algorithm)

    records: List[AuditRecord] = []
    for server in servers:
        measurer = ProxyMeasurer(scenario.network, scenario.client, server,
                                 eta=eta.eta, seed=server.host.host_id)
        result = driver.locate(measurer.observe, rng)
        assessment = assess_claim(result.prediction.region,
                                  server.claimed_country, scenario.worldmap)
        records.append(AuditRecord(
            server=server,
            region=result.prediction.region,
            assessment=assessment,
            initial_verdict=assessment.verdict,
            observations=(list(result.phase2_observations)
                          + list(result.phase1_observations)),
            landmark_names=list(result.phase2_landmarks),
        ))

    reclassified: Dict[str, int] = {"datacenter": 0, "metadata": 0, "total": 0}
    if disambiguate:
        reclassified = refine_assessments(records, scenario.datacenters,
                                          scenario.worldmap)
    return AuditResult(records=records, eta=eta, reclassified=reclassified)


_AUDIT_CACHE: Dict[tuple, AuditResult] = {}


def cached_audit(scenario: Scenario, max_servers: Optional[int] = None,
                 seed: int = 0) -> AuditResult:
    """Memoised full-fleet audit, shared by the figure experiments.

    Figures 16 through 23 all consume the same audit run; recomputing it
    per figure would dominate the benchmark harness.
    """
    key = (id(scenario), max_servers, seed)
    if key not in _AUDIT_CACHE:
        _AUDIT_CACHE[key] = run_audit(scenario, max_servers=max_servers,
                                      seed=seed)
    return _AUDIT_CACHE[key]
