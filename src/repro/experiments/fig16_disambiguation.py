"""Figures 15 & 16: resolving uncertain predictions with side information.

Figure 15's data-centre heuristic and Figure 16's shared-AS/prefix
heuristic, quantified over the full audit: how many uncertain verdicts
each pass resolves, how large the metadata groups are, and a showcase
group (the paper's AS63128 analogue — many co-located proxies whose
individually uncertain regions all cover one country).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.disambiguation import AuditRecord, group_by_metadata
from .audit import AuditResult, cached_audit
from .scenario import Scenario


@dataclass
class DisambiguationSummary:
    n_records: int
    n_initially_uncertain: int
    resolved_by_datacenter: int
    resolved_by_metadata: int
    group_sizes: List[int]
    showcase_group: Optional[Tuple[Tuple[str, int, str], List[AuditRecord]]]

    @property
    def total_resolved(self) -> int:
        return self.resolved_by_datacenter + self.resolved_by_metadata

    def resolution_rate(self) -> float:
        """Fraction of uncertain verdicts the two passes cleared up."""
        if self.n_initially_uncertain == 0:
            return 0.0
        return self.total_resolved / self.n_initially_uncertain


def run(scenario: Scenario, max_servers: Optional[int] = None,
        seed: int = 0) -> DisambiguationSummary:
    audit = cached_audit(scenario, max_servers=max_servers, seed=seed)
    return summarize(audit)


def summarize(audit: AuditResult) -> DisambiguationSummary:
    records = audit.records
    initially_uncertain = sum(
        1 for r in records
        if r.initial_verdict is not None and r.initial_verdict.value == "uncertain")
    groups = group_by_metadata(records)
    sizes = sorted((len(g) for g in groups.values()), reverse=True)
    showcase = None
    # The showcase: the largest group whose members' regions all overlap a
    # single common country (the Figure 16 situation).
    for key, group in sorted(groups.items(), key=lambda item: -len(item[1])):
        if len(group) < 3:
            break
        common = None
        for record in group:
            covered = set(record.assessment.countries_covered)
            common = covered if common is None else common & covered
        if common and len(common) >= 1:
            showcase = (key, group)
            break
    return DisambiguationSummary(
        n_records=len(records),
        n_initially_uncertain=initially_uncertain,
        resolved_by_datacenter=audit.reclassified.get("datacenter", 0),
        resolved_by_metadata=audit.reclassified.get("metadata", 0),
        group_sizes=sizes,
        showcase_group=showcase,
    )


def format_table(summary: DisambiguationSummary) -> str:
    lines = [
        "Figures 15-16 — disambiguation of uncertain predictions",
        f"  proxies audited            {summary.n_records}",
        f"  initially uncertain        {summary.n_initially_uncertain}",
        f"  resolved by data centres   {summary.resolved_by_datacenter}",
        f"  resolved by metadata       {summary.resolved_by_metadata}",
        f"  resolution rate            {summary.resolution_rate():.0%} "
        f"(paper: 353/642 = 55%)",
        f"  metadata group sizes (top) {summary.group_sizes[:8]}",
    ]
    if summary.showcase_group is not None:
        (provider, asn, prefix), group = summary.showcase_group
        lines.append(
            f"  showcase group: provider {provider}, AS{asn}, {prefix} — "
            f"{len(group)} hosts, claims "
            f"{sorted({r.server.claimed_country for r in group})}")
    return "\n".join(lines)
