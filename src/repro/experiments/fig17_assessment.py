"""Figure 17 (and the section 6 headline numbers): the overall assessment.

The stacked bars of the paper reduced to their rows:

* verdict counts with and without disambiguation,
* the Figure 17 category breakdown (continent-credible/uncertain/false),
* the "alleged country" vs "probable country" top-ten lists, and
* the concentration statistic: the ten most-claimed countries hold most
  of the credible cases but few of the false ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.assessment import Verdict
from .audit import AuditResult, RecordTally, cached_audit
from .scenario import Scenario


@dataclass
class AssessmentFigure:
    n_proxies: int
    verdicts_initial: Dict[str, int]
    verdicts_final: Dict[str, int]
    categories: Dict[str, int]
    alleged_top: List[Tuple[str, int]]     # most-claimed countries
    probable_top: List[Tuple[str, int]]    # most-likely-actual countries
    top10_share_of_credible: float
    top10_share_of_false: float
    false_fraction: float                  # the ">= one third" headline

    def credible(self) -> int:
        return self.verdicts_final.get("credible", 0)

    def uncertain(self) -> int:
        return self.verdicts_final.get("uncertain", 0)

    def false(self) -> int:
        return self.verdicts_final.get("false", 0)


def probable_country(record, scenario: Scenario) -> Optional[str]:
    """Best single-country guess for where a proxy actually is.

    Resolution order mirrors the paper's Figure 17 "probable country" bar:
    disambiguated country if any, the claimed country when credible, then
    the covered country that actually hosts a data centre inside the
    region (proxies live in data centres), and only then raw area.
    """
    assessment = record.assessment
    if assessment.resolved_country is not None:
        return assessment.resolved_country
    if assessment.verdict is Verdict.CREDIBLE:
        return assessment.claimed_country
    if not assessment.countries_covered:
        return None
    dc_countries = set(
        scenario.datacenters.countries_with_dc_in_region(record.region))
    for code in assessment.countries_covered:
        if code in dc_countries:
            return code
    return assessment.countries_covered[0]


def run(scenario: Scenario, max_servers: Optional[int] = None,
        seed: int = 0) -> AssessmentFigure:
    audit = cached_audit(scenario, max_servers=max_servers, seed=seed)
    return summarize(audit, scenario)


def summarize(audit: AuditResult, scenario: Scenario) -> AssessmentFigure:
    # One pass over the records: per-country credible/false counts stand
    # in for the record lists the old comprehensions retained, so the
    # figure costs O(countries) memory however large the fleet is.
    tally = RecordTally()
    alleged: Dict[str, int] = {}
    probable: Dict[str, int] = {}
    credible_by_country: Dict[str, int] = {}
    false_by_country: Dict[str, int] = {}
    for record in audit.records:
        tally.add(record)
        claimed = record.server.claimed_country
        alleged[claimed] = alleged.get(claimed, 0) + 1
        guess = probable_country(record, scenario)
        if guess is not None:
            probable[guess] = probable.get(guess, 0) + 1
        if record.assessment.is_credible:
            credible_by_country[claimed] = credible_by_country.get(claimed, 0) + 1
        if record.assessment.is_false:
            false_by_country[claimed] = false_by_country.get(claimed, 0) + 1
    alleged_top = sorted(alleged.items(), key=lambda item: -item[1])[:10]
    probable_top = sorted(probable.items(), key=lambda item: -item[1])[:10]
    top10 = {code for code, _ in alleged_top}
    n_credible = tally.credible_verdicts
    n_false = tally.false_verdicts
    top10_credible = (sum(count for code, count in credible_by_country.items()
                          if code in top10) / n_credible
                      if n_credible else 0.0)
    top10_false = (sum(count for code, count in false_by_country.items()
                       if code in top10) / n_false
                   if n_false else 0.0)
    return AssessmentFigure(
        n_proxies=tally.n_records,
        verdicts_initial=tally.verdicts_initial,
        verdicts_final=tally.verdicts,
        categories=tally.categories,
        alleged_top=alleged_top,
        probable_top=probable_top,
        top10_share_of_credible=top10_credible,
        top10_share_of_false=top10_false,
        false_fraction=n_false / tally.n_records if tally.n_records else 0.0,
    )


def format_table(figure: AssessmentFigure) -> str:
    lines = [
        f"Figure 17 — overall assessment of {figure.n_proxies} proxies",
        f"  verdicts (no DCs)   {figure.verdicts_initial}",
        f"  verdicts (final)    {figure.verdicts_final}",
        f"  false fraction      {figure.false_fraction:.0%} "
        f"(paper: at least one third)",
        "  categories:",
    ]
    for category, count in sorted(figure.categories.items(),
                                  key=lambda item: -item[1]):
        lines.append(f"    {category:<38} {count:5d}")
    lines.append("  alleged top-10:  " + " ".join(
        f"{code.lower()}:{count}" for code, count in figure.alleged_top))
    lines.append("  probable top-10: " + " ".join(
        f"{code.lower()}:{count}" for code, count in figure.probable_top))
    lines.append(
        f"  top-10 countries hold {figure.top10_share_of_credible:.0%} of "
        f"credible but {figure.top10_share_of_false:.0%} of false cases "
        f"(paper: 84% vs 11%)")
    return "\n".join(lines)
