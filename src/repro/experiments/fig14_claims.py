"""Figure 14: the country-claim landscape of the commercial VPN market.

157 providers ranked by how many countries and dependencies they claim,
with the seven studied providers placed in that ranking.  The paper's
observation to reproduce: providers A–E are among the top 20 broadest
claimants, F and G make modest, typical claims — and narrow-claim
providers tend to claim the *same* few easy-hosting countries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..netsim.proxies import competitor_claim_counts
from .scenario import Scenario


@dataclass
class ClaimLandscape:
    market_counts: List[int]                # descending claim counts, market-wide
    studied_counts: Dict[str, int]          # provider -> n claimed countries
    studied_ranks: Dict[str, int]           # provider -> rank in the market

    def top20_providers(self) -> List[str]:
        """Studied providers ranking inside the market's top 20."""
        return [name for name, rank in self.studied_ranks.items() if rank <= 20]

    def tier1_claim_overlap(self) -> float:
        """Not used for ranking; kept for API symmetry."""
        return 1.0


def run(scenario: Scenario, n_market_providers: int = 150,
        seed: int = 7) -> ClaimLandscape:
    """Merge the studied providers into the synthetic market ranking."""
    market = competitor_claim_counts(n_providers=n_market_providers, seed=seed)
    studied = {p.name: p.n_claimed_countries for p in scenario.providers}
    combined = sorted(market + list(studied.values()), reverse=True)
    ranks: Dict[str, int] = {}
    for name, count in studied.items():
        # Rank = 1 + number of providers claiming strictly more.
        ranks[name] = 1 + sum(1 for c in combined if c > count)
    return ClaimLandscape(
        market_counts=market,
        studied_counts=studied,
        studied_ranks=ranks,
    )


def format_table(landscape: ClaimLandscape) -> str:
    lines = [
        f"Figure 14 — claimed-country counts across "
        f"{len(landscape.market_counts) + len(landscape.studied_counts)} providers",
        f"  market max/median claims: {max(landscape.market_counts)} / "
        f"{landscape.market_counts[len(landscape.market_counts) // 2]}",
    ]
    for name in sorted(landscape.studied_counts):
        lines.append(
            f"  provider {name}: {landscape.studied_counts[name]:3d} countries "
            f"(rank {landscape.studied_ranks[name]})")
    lines.append(f"  studied providers in top 20: "
                 f"{', '.join(landscape.top20_providers())}")
    return "\n".join(lines)
