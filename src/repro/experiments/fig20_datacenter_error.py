"""Figure 20: prediction spread across one data centre's proxies.

All proxies in one metadata group are physically co-located, so if
geolocation were perfect their regions would be identical.  They are not
(each two-phase run samples different landmarks); the paper checks whether
the variation is explained by geography — and finds *no* correlation
between a prediction's area and the distance from the group's consensus
location to the nearest landmark used for it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core.disambiguation import AuditRecord, group_by_metadata
from ..geodesy.greatcircle import haversine_km
from .audit import cached_audit
from .scenario import Scenario


@dataclass
class GroupSpread:
    group_key: Tuple[str, int, str]
    n_hosts: int
    areas_km2: List[float]
    nearest_landmark_km: List[float]
    common_subregion: bool        # do all regions share at least one cell?
    correlation: Optional[float]  # area vs nearest-landmark distance

    @property
    def area_spread(self) -> float:
        """Max/min area ratio across the group — the visual spread."""
        positive = [a for a in self.areas_km2 if a > 0]
        if len(positive) < 2:
            return 1.0
        return max(positive) / min(positive)


def _group_centroid(group: List[AuditRecord]) -> Tuple[float, float]:
    """Consensus location: centroid of all members' region centroids."""
    lats, lons = [], []
    for record in group:
        centroid = record.region.centroid()
        if centroid is not None:
            lats.append(centroid[0])
            lons.append(centroid[1])
    if not lats:
        # Fall back to the (simulator-known) true location.
        return (group[0].server.host.lat, group[0].server.host.lon)
    return float(np.mean(lats)), float(np.mean(lons))


def analyze_group(scenario: Scenario, group_key, group: List[AuditRecord]
                  ) -> GroupSpread:
    centroid_lat, centroid_lon = _group_centroid(group)
    areas: List[float] = []
    nearest: List[float] = []
    common_mask = None
    for record in group:
        areas.append(record.region.area_km2())
        distances = [haversine_km(centroid_lat, centroid_lon,
                                  scenario.calibrations.landmark(name).lat,
                                  scenario.calibrations.landmark(name).lon)
                     for name in (record.landmark_names or [])]
        nearest.append(min(distances) if distances else float("nan"))
        mask = record.region.mask
        common_mask = mask.copy() if common_mask is None else (common_mask & mask)
    correlation: Optional[float] = None
    clean = [(a, d) for a, d in zip(areas, nearest)
             if np.isfinite(d) and a > 0]
    if len(clean) >= 3:
        x = np.array([c[1] for c in clean])
        y = np.array([c[0] for c in clean])
        if x.std() > 0 and y.std() > 0:
            correlation = float(np.corrcoef(x, y)[0, 1])
    return GroupSpread(
        group_key=group_key,
        n_hosts=len(group),
        areas_km2=areas,
        nearest_landmark_km=nearest,
        common_subregion=bool(common_mask is not None and common_mask.any()),
        correlation=correlation,
    )


def run(scenario: Scenario, min_group_size: int = 5,
        max_servers: Optional[int] = None, seed: int = 0) -> GroupSpread:
    """Analyse the largest clear-cut co-located group (the AS63128 analogue)."""
    audit = cached_audit(scenario, max_servers=max_servers, seed=seed)
    groups = group_by_metadata(audit.records)
    eligible = [(key, group) for key, group in groups.items()
                if len(group) >= min_group_size]
    if not eligible:
        raise ValueError(
            f"no metadata group of size >= {min_group_size}; "
            "increase the fleet scale")
    key, group = max(eligible, key=lambda item: len(item[1]))
    return analyze_group(scenario, key, group)


def format_table(spread: GroupSpread) -> str:
    provider, asn, prefix = spread.group_key
    return "\n".join([
        f"Figure 20 — prediction spread for provider {provider}, "
        f"AS{asn}, {prefix} ({spread.n_hosts} hosts)",
        f"  region areas (km2): min {min(spread.areas_km2):,.0f}, "
        f"median {np.median(spread.areas_km2):,.0f}, "
        f"max {max(spread.areas_km2):,.0f}",
        f"  area spread (max/min)        {spread.area_spread:.1f}x",
        f"  all regions share a cell     {spread.common_subregion} "
        f"(paper: not even a single common sub-region)",
        f"  area vs nearest-landmark correlation: "
        f"{spread.correlation if spread.correlation is not None else float('nan'):+.3f} "
        f"(paper: none)",
    ])
