"""Figures 22 & 23 (Appendix A): confusion among continents and countries.

Every prediction region that covers several countries makes those
countries mutually confusable; the appendix matrices count these
co-occurrences.  Reproduced shapes: intercontinental confusion follows
geography (Europe↔Africa↔Asia, the Americas with each other), and within
continents nearly every neighbour pair co-occurs, with sparse regions
(southern Africa, Oceania) confusable with far-away hubs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..geo.countries import CONTINENTS
from ..stats.confusion import CooccurrenceMatrix
from .audit import cached_audit
from .scenario import Scenario


@dataclass
class ConfusionFigures:
    continent_matrix: CooccurrenceMatrix
    country_matrix: CooccurrenceMatrix

    def most_confused_continents(self, n: int = 5) -> List[Tuple[str, str, int]]:
        pairs = [(a, b, count)
                 for a, b, count in self.continent_matrix.nonzero_pairs()
                 if a < b]
        return pairs[:n]

    def most_confused_countries(self, n: int = 10) -> List[Tuple[str, str, int]]:
        pairs = [(a, b, count)
                 for a, b, count in self.country_matrix.nonzero_pairs()
                 if a < b]
        return pairs[:n]

    def same_continent_confusion_rate(self, scenario: Scenario) -> float:
        """Count-weighted fraction of country confusion within a continent.

        Weighting by co-occurrence count matters: a single exotic region
        covering two continents creates many one-off cross-continent
        pairs, but the confusion *mass* sits between neighbours.
        """
        total = 0
        same = 0
        for a, b, count in self.country_matrix.nonzero_pairs():
            if a >= b:
                continue
            total += count
            if (scenario.registry.continent_of(a)
                    == scenario.registry.continent_of(b)):
                same += count
        if total == 0:
            return 1.0
        return same / total


def run(scenario: Scenario, max_servers: Optional[int] = None,
        seed: int = 0) -> ConfusionFigures:
    audit = cached_audit(scenario, max_servers=max_servers, seed=seed)
    country_matrix = CooccurrenceMatrix(scenario.registry.codes())
    continent_matrix = CooccurrenceMatrix(list(CONTINENTS))
    for record in audit.records:
        covered = record.assessment.countries_covered
        if not covered:
            continue
        country_matrix.add_set(covered)
        continent_matrix.add_set(
            scenario.registry.continent_of(code) for code in covered)
    return ConfusionFigures(
        continent_matrix=continent_matrix,
        country_matrix=country_matrix,
    )


def format_table(figures: ConfusionFigures) -> str:
    matrix = figures.continent_matrix
    header = "      " + "".join(f"{c:>6}" for c in matrix.labels)
    lines = ["Figure 22 — continent co-occurrence matrix", header]
    for row_label in matrix.labels:
        row = matrix.row(row_label)
        lines.append(f"  {row_label:<4}" + "".join(
            f"{row[c]:>6}" for c in matrix.labels))
    lines.append("Figure 23 — most confusable country pairs:")
    for a, b, count in figures.most_confused_countries(12):
        lines.append(f"  {a} <-> {b}: {count}")
    return "\n".join(lines)
