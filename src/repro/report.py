"""Terminal rendering of regions and world maps.

The paper communicates through maps (Figures 1, 3, 8, 15, 16, 19); this
module gives the CLI and the examples an ASCII equivalent: an
equirectangular character raster of the world with land, a prediction
region, and markers overlaid.

Legend::

    .   land
        ocean (blank)
    #   prediction region
    +   region over ocean (possible before plausibility clipping)
    X   marker (true location, claimed capital, ...)

Rendering downsamples the analysis grid to the requested character size;
a cell block is drawn as region if *any* underlying region cell is set,
so thin regions stay visible.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .geo.region import Region
from .geo.worldmap import WorldMap

#: Default character dimensions: fits a classic 100-column terminal.
DEFAULT_WIDTH = 96
DEFAULT_HEIGHT = 30


class MapCanvas:
    """An equirectangular character canvas over (part of) the world."""

    def __init__(self, worldmap: WorldMap,
                 width: int = DEFAULT_WIDTH, height: int = DEFAULT_HEIGHT,
                 bounds: Optional[Tuple[float, float, float, float]] = None):
        """``bounds`` is (lat_min, lat_max, lon_min, lon_max); the whole
        world by default."""
        if width < 10 or height < 5:
            raise ValueError("canvas too small to draw anything")
        self.worldmap = worldmap
        self.width = width
        self.height = height
        if bounds is None:
            bounds = (-60.0, 85.0, -180.0, 180.0)
        lat_min, lat_max, lon_min, lon_max = bounds
        if not (lat_min < lat_max and lon_min < lon_max):
            raise ValueError(f"bad bounds {bounds!r}")
        self.bounds = bounds
        self._cells: List[List[str]] = [[" "] * width for _ in range(height)]
        self._draw_land()

    # -- coordinate mapping ---------------------------------------------------

    def _rowcol(self, lat: float, lon: float) -> Optional[Tuple[int, int]]:
        lat_min, lat_max, lon_min, lon_max = self.bounds
        if not (lat_min <= lat <= lat_max and lon_min <= lon <= lon_max):
            return None
        # Row 0 is the top (max latitude).
        row = int((lat_max - lat) / (lat_max - lat_min) * self.height)
        col = int((lon - lon_min) / (lon_max - lon_min) * self.width)
        return (min(row, self.height - 1), min(col, self.width - 1))

    def _block_latlon(self, row: int, col: int) -> Tuple[float, float]:
        lat_min, lat_max, lon_min, lon_max = self.bounds
        lat = lat_max - (row + 0.5) / self.height * (lat_max - lat_min)
        lon = lon_min + (col + 0.5) / self.width * (lon_max - lon_min)
        return lat, lon

    # -- layers ----------------------------------------------------------------

    def _draw_land(self) -> None:
        for row in range(self.height):
            for col in range(self.width):
                lat, lon = self._block_latlon(row, col)
                if self.worldmap.is_land(lat, lon):
                    self._cells[row][col] = "."

    def draw_region(self, region: Region, char: str = "#",
                    ocean_char: str = "+") -> None:
        """Overlay a region.

        Two passes: each character block whose centre lies in the region
        lights up (correct when blocks are finer than grid cells, i.e.
        zoomed in), and each region cell lights its block (correct when
        grid cells are finer than blocks, i.e. zoomed out).
        """
        if region.is_empty:
            return

        def paint(row: int, col: int) -> None:
            current = self._cells[row][col]
            if current == " ":
                self._cells[row][col] = ocean_char
            elif current not in (char, "X"):
                self._cells[row][col] = char

        for row in range(self.height):
            for col in range(self.width):
                lat, lon = self._block_latlon(row, col)
                if region.contains(lat, lon):
                    paint(row, col)
        grid = region.grid
        lats = grid.cell_lats[region.mask]
        lons = grid.cell_lons[region.mask]
        for lat, lon in zip(lats, lons):
            position = self._rowcol(float(lat), float(lon))
            if position is not None:
                paint(*position)

    def draw_marker(self, lat: float, lon: float, char: str = "X") -> None:
        position = self._rowcol(lat, lon)
        if position is not None:
            row, col = position
            self._cells[row][col] = char

    def render(self) -> str:
        border = "+" + "-" * self.width + "+"
        body = "\n".join("|" + "".join(row) + "|" for row in self._cells)
        return f"{border}\n{body}\n{border}"


def region_map(worldmap: WorldMap, region: Region,
               markers: Iterable[Tuple[float, float]] = (),
               width: int = DEFAULT_WIDTH, height: int = DEFAULT_HEIGHT,
               zoom: bool = True, pad_deg: float = 12.0) -> str:
    """Render a region (optionally zoomed to its bounding box) as text."""
    bounds = None
    if zoom and not region.is_empty:
        lats = region.grid.cell_lats[region.mask]
        lons = region.grid.cell_lons[region.mask]
        marker_lats = [m[0] for m in markers]
        marker_lons = [m[1] for m in markers]
        all_lats = np.concatenate([lats, marker_lats]) if marker_lats else lats
        all_lons = np.concatenate([lons, marker_lons]) if marker_lons else lons
        bounds = (max(-60.0, float(all_lats.min()) - pad_deg),
                  min(85.0, float(all_lats.max()) + pad_deg),
                  max(-180.0, float(all_lons.min()) - pad_deg * 1.6),
                  min(180.0, float(all_lons.max()) + pad_deg * 1.6))
    canvas = MapCanvas(worldmap, width=width, height=height, bounds=bounds)
    canvas.draw_region(region)
    for lat, lon in markers:
        canvas.draw_marker(lat, lon)
    return canvas.render()


def honesty_strip(honesty_by_country: Dict[str, float],
                  countries: Sequence[str]) -> str:
    """A Figure 18-style one-line colour strip, in ASCII shades.

    ``█`` fully backed, ``▓``/``▒``/``░`` partial, space fully false.
    """
    shades = " ░▒▓█"
    cells = []
    for code in countries:
        rate = honesty_by_country.get(code)
        if rate is None:
            cells.append("·")
            continue
        index = min(len(shades) - 1, int(rate * (len(shades) - 1) + 0.5))
        cells.append(shades[index])
    return "".join(cells)


def campaign_table(report) -> str:
    """Render a campaign report (``experiments.campaign.CampaignReport``).

    Takes the report object (or anything with its fields) rather than
    records: campaign aggregation is streaming, so by the time a table
    is printed no record list exists to iterate.
    """
    lines = [
        f"campaign '{report.plan_name}' — {report.n_servers} servers"
        + (f" under fault profile {report.fault_profile}"
           if report.fault_profile else ""),
        f"  eta={report.eta['eta']:.3f} (R^2={report.eta['r_squared']:.3f}, "
        f"{report.eta['n_proxies']} proxies)",
        f"  verdicts (before disambiguation): {report.verdicts_initial}",
        f"  verdicts (after):                 {report.verdicts_final}",
        f"  reclassified: {report.reclassified}",
        f"  degraded records: {report.degraded}",
    ]
    for category, count in sorted(report.categories.items(),
                                  key=lambda kv: -kv[1]):
        lines.append(f"    {category:<40} {count:5d}")
    lines.append("  per-provider verdicts:")
    for provider in sorted(report.providers):
        lines.append(f"    {provider:<14} {report.providers[provider]}")
    truth = report.ground_truth
    lines.append(
        f"  ground truth: false_precision={truth['false_precision']:.3f} "
        f"credible_precision={truth['credible_precision']:.3f} "
        f"({truth['false_verdicts']} false / "
        f"{truth['credible_verdicts']} credible verdicts)")
    top = sorted(report.claimed_countries.items(),
                 key=lambda kv: (-kv[1], kv[0]))[:10]
    lines.append("  most-claimed countries: " + " ".join(
        f"{code.lower()}:{count}" for code, count in top))
    return "\n".join(lines)
