"""Central registry of ``REPRO_*`` environment knobs.

Every runtime switch the reproduction honours is declared here — name,
type, default, allowed values, and a docstring — and read through
:func:`env_value`.  Reading a ``REPRO_*`` variable anywhere else is a
``reprolint`` R003 violation: scattering ``os.environ`` reads is how a
typo'd knob silently falls back to a default and quietly changes which
engine produced a fleet's verdicts.

The registry enforces three things the scattered reads never did:

* **unknown knob values are a hard error at read time** — setting
  ``REPRO_REGION_ENGINE=typo`` raises :class:`KnobError` listing the
  allowed values instead of silently picking an engine;
* **an empty string means unset** for every knob (the shell idiom
  ``REPRO_X= cmd`` clears a knob rather than smuggling ``""`` in as a
  value), consistently across knobs;
* **documentation stays honest** — ``reprolint`` cross-checks that every
  knob registered here is mentioned in README.md, and the README's knob
  table is generated from :func:`knob_table_markdown`.

The module deliberately has no repro-internal imports so any module —
including :mod:`repro.geo.region` at the bottom of the dependency
graph — can use it without cycles.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

#: Values a knob read can produce: choice/path knobs yield strings (path
#: knobs ``None`` when unset), flag knobs yield booleans, int knobs yield
#: non-negative integers.
KnobValue = Union[str, bool, int, None]

_TRUE_WORDS = ("1", "true", "yes", "on")
_FALSE_WORDS = ("0", "false", "no", "off")


class KnobError(ValueError):
    """A ``REPRO_*`` variable is set to a value the knob does not allow."""


@dataclass(frozen=True)
class Knob:
    """Declaration of one ``REPRO_*`` environment knob.

    ``kind`` is one of ``"choice"`` (value must be one of ``choices``),
    ``"flag"`` (boolean words), ``"path"`` (any non-empty string,
    ``None`` when unset), or ``"int"`` (a non-negative integer).
    """

    name: str
    kind: str
    default: KnobValue
    doc: str
    choices: Optional[Tuple[str, ...]] = None

    def parse(self, raw: Optional[str]) -> KnobValue:
        """Parse a raw environment string (``None``/empty = unset)."""
        if raw is None or raw == "":
            return self.default
        if self.kind == "choice":
            assert self.choices is not None
            if raw not in self.choices:
                raise KnobError(
                    f"{self.name} must be one of {self.choices}, got {raw!r}")
            return raw
        if self.kind == "flag":
            lowered = raw.lower()
            if lowered in _TRUE_WORDS:
                return True
            if lowered in _FALSE_WORDS:
                return False
            raise KnobError(
                f"{self.name} must be a boolean word "
                f"({'/'.join(_TRUE_WORDS)} or {'/'.join(_FALSE_WORDS)}), "
                f"got {raw!r}")
        if self.kind == "path":
            return raw
        if self.kind == "int":
            try:
                value = int(raw, 10)
            except ValueError:
                raise KnobError(
                    f"{self.name} must be a non-negative integer, "
                    f"got {raw!r}") from None
            if value < 0:
                raise KnobError(
                    f"{self.name} must be a non-negative integer, "
                    f"got {raw!r}")
            return value
        raise AssertionError(f"unknown knob kind {self.kind!r}")

    def allowed_text(self) -> str:
        """Human-readable allowed-values column for the README table."""
        if self.kind == "choice":
            assert self.choices is not None
            return " / ".join(f"`{choice}`" for choice in self.choices)
        if self.kind == "flag":
            return "`0` / `1`"
        if self.kind == "int":
            return "integer >= 0"
        return "any path"

    def default_text(self) -> str:
        if self.default is None:
            return "unset"
        if isinstance(self.default, bool):
            return "`1`" if self.default else "`0`"
        return f"`{self.default}`"


_REGISTRY: Dict[str, Knob] = {}


def _register(knob: Knob) -> Knob:
    if not knob.name.startswith("REPRO_"):
        raise AssertionError(f"knob {knob.name!r} must start with REPRO_")
    if knob.name in _REGISTRY:
        raise AssertionError(f"knob {knob.name!r} registered twice")
    _REGISTRY[knob.name] = knob
    return knob


REGION_ENGINE = _register(Knob(
    name="REPRO_REGION_ENGINE",
    kind="choice",
    default="packed",
    choices=("packed", "bool"),
    doc="Region representation: packed uint64 bitsets (the native "
        "engine) or the historical boolean-mask reference.",
))

PATH_ENGINE = _register(Knob(
    name="REPRO_PATH_ENGINE",
    kind="choice",
    default="csr",
    choices=("csr", "networkx"),
    doc="Routed-delay oracle: the batched scipy CSR engine or the "
        "per-source pure-Python networkx Dijkstra fallback.",
))

PATHENGINE_CACHE = _register(Knob(
    name="REPRO_PATHENGINE_CACHE",
    kind="path",
    default=None,
    doc="Directory for memmapped warm-start shortest-path matrices; "
        "unset disables persistence.",
))

AUDIT_ENGINE = _register(Knob(
    name="REPRO_AUDIT_ENGINE",
    kind="choice",
    default="fleet",
    choices=("fleet", "perserver"),
    doc="Fleet-audit multilateration engine: one vectorised NumPy pass "
        "over all servers at once (the native engine) or the historical "
        "per-server Python pipeline; both emit byte-identical records.",
))

CAMPAIGN_SHARDS = _register(Knob(
    name="REPRO_CAMPAIGN_SHARDS",
    kind="int",
    default=1,
    doc="Default shard count for campaign audits (`repro campaign` and "
        "run_campaign when no shard count is given): each shard journals "
        "to its own checkpoint and the merge step folds the journals "
        "into one report, byte-identical at any shard count.",
))

CAMPAIGN_DIR = _register(Knob(
    name="REPRO_CAMPAIGN_DIR",
    kind="path",
    default=None,
    doc="Directory for campaign shard journals and the merged campaign "
        "journal; unset uses a per-run temporary directory (resume "
        "across invocations then needs an explicit --journal-dir).",
))

SANITIZE = _register(Knob(
    name="REPRO_SANITIZE",
    kind="flag",
    default=False,
    doc="Enable the runtime sanitizer: cheap invariant assertions at "
        "module boundaries (packed-region padding, distance-bank "
        "finiteness, path-engine cross-check, checkpoint round-trip).",
))


SERVICE_CACHE_SLOTS = _register(Knob(
    name="REPRO_SERVICE_CACHE_SLOTS",
    kind="int",
    default=4096,
    doc="Verdict-cache capacity for the always-on verdict service "
        "(`repro serve` / VerdictService): entries beyond this are "
        "evicted least-recently-used; 0 means the built-in default.",
))

SERVICE_BATCH_MAX = _register(Knob(
    name="REPRO_SERVICE_BATCH_MAX",
    kind="int",
    default=32,
    doc="Largest micro-batch the verdict service coalesces uncached "
        "queries into before one vectorised predict_fleet sweep; "
        "0 means the built-in default.",
))

SERVICE_QUEUE_MAX = _register(Knob(
    name="REPRO_SERVICE_QUEUE_MAX",
    kind="int",
    default=256,
    doc="Bound on the verdict service's pending-request queue; arrivals "
        "past it are shed as degraded verdicts instead of queueing "
        "without bound; 0 means the built-in default.",
))

SERVICE_WORKERS = _register(Knob(
    name="REPRO_SERVICE_WORKERS",
    kind="int",
    default=1,
    doc="Fork-pool workers the verdict service evaluates uncached "
        "micro-batches with (1 = in-process, no pool); verdicts are "
        "byte-identical at any worker count.",
))


def knob(name: str) -> Knob:
    """The :class:`Knob` registered under ``name`` (KeyError if none)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"{name!r} is not a registered REPRO_* knob; "
            f"known knobs: {sorted(_REGISTRY)}") from None


def all_knobs() -> Tuple[Knob, ...]:
    """Every registered knob, in registration order."""
    return tuple(_REGISTRY.values())


def env_value(name: str) -> KnobValue:
    """The knob's current value from the environment, validated.

    Unset (or empty-string) variables yield the declared default; any
    other value is parsed per the knob's kind and an invalid value
    raises :class:`KnobError` naming the allowed values.  This is the
    only sanctioned way to read a ``REPRO_*`` variable.
    """
    declared = knob(name)
    return declared.parse(os.environ.get(name))


def is_set(name: str) -> bool:
    """Was the knob explicitly set (to a non-empty string)?"""
    knob(name)  # unknown names are programming errors, not "unset"
    raw = os.environ.get(name)
    return raw is not None and raw != ""


def knob_table_markdown() -> str:
    """The README's knob table, generated so docs can't drift."""
    lines = [
        "| Knob | Values | Default | What it does |",
        "| --- | --- | --- | --- |",
    ]
    for declared in all_knobs():
        lines.append(
            f"| `{declared.name}` | {declared.allowed_text()} "
            f"| {declared.default_text()} | {declared.doc} |")
    return "\n".join(lines)
