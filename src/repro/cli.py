"""Command-line interface: ``python -m repro <command>``.

Subcommands mirror the workflows a downstream user of the paper's system
would run:

* ``audit``     — audit a slice of the simulated VPN fleet end to end;
* ``locate``    — geolocate an arbitrary coordinate (a host is attached
  there and measured, as a volunteer running the CLI tool would be);
* ``figure``    — regenerate one paper figure's table;
* ``channels``  — the §4.2 measurement-channel survey;
* ``eta``       — fit the direct/indirect RTT factor (Figure 13).

Everything runs against the deterministic default scenario; ``--seed``
rebuilds the world from a different seed.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np


def _scenario(args):
    from .experiments import build_scenario, default_scenario
    if args.seed == 0:
        return default_scenario()
    from .experiments.scenario import (
        SMALL_ANCHOR_QUOTAS,
        SMALL_CROWD_QUOTAS,
        SMALL_PROBE_QUOTAS,
    )
    return build_scenario(seed=args.seed, proxy_scale=0.35,
                          anchor_quotas=SMALL_ANCHOR_QUOTAS,
                          probe_quotas=SMALL_PROBE_QUOTAS,
                          crowd_quotas=SMALL_CROWD_QUOTAS)


def _cmd_audit(args) -> int:
    from .experiments import run_audit
    if args.resume and not args.checkpoint:
        print("--resume requires --checkpoint", file=sys.stderr)
        return 2
    scenario = _scenario(args)
    result = run_audit(scenario, max_servers=args.servers, seed=args.seed,
                       workers=args.workers,
                       fault_profile=args.fault_profile,
                       checkpoint_path=args.checkpoint,
                       resume=args.resume)
    print(f"audited {len(result.records)} servers "
          f"(eta={result.eta.eta:.3f}, R^2={result.eta.r_squared:.3f})")
    if result.fault_profile:
        print(f"fault profile: {result.fault_profile} "
              f"({result.degraded_count} degraded records)")
    print(f"verdicts (before disambiguation): {result.verdict_counts(initial=True)}")
    print(f"verdicts (after):                 {result.verdict_counts()}")
    print(f"reclassified: {result.reclassified}")
    for category, count in sorted(result.category_counts().items(),
                                  key=lambda kv: -kv[1]):
        print(f"  {category:<40} {count:5d}")
    if args.ground_truth:
        print(f"ground truth: {result.ground_truth_accuracy()}")
    return 0


def _cmd_campaign(args) -> int:
    from . import config
    from .experiments.campaign import (
        DeploymentPlan,
        merge_campaign,
        run_campaign,
        run_campaign_shard,
    )
    from .experiments.scenario import paper_scale_scenario
    from .report import campaign_table
    if args.shard_index is not None and args.merge:
        print("--shard-index and --merge are mutually exclusive",
              file=sys.stderr)
        return 2
    journal_dir = args.journal_dir or config.env_value("REPRO_CAMPAIGN_DIR")
    if (args.shard_index is not None or args.merge) and not journal_dir:
        print("--shard-index/--merge need --journal-dir (or "
              "REPRO_CAMPAIGN_DIR): the journals must outlive this "
              "invocation", file=sys.stderr)
        return 2
    shards = args.shards
    if shards is None:
        shards = int(config.env_value("REPRO_CAMPAIGN_SHARDS"))
    plan = (DeploymentPlan.from_file(args.plan) if args.plan
            else DeploymentPlan())
    scenario = (paper_scale_scenario(seed=args.seed) if args.paper_scale
                else _scenario(args))
    if args.shard_index is not None:
        summary = run_campaign_shard(
            scenario, plan, shards=shards, shard_index=args.shard_index,
            journal_dir=str(journal_dir), seed=args.seed,
            workers=args.workers, fault_profile=args.fault_profile,
            resume=args.resume)
        state = "skipped (already finalized)" if summary.skipped else "done"
        print(f"shard {summary.shard_index + 1}/{summary.shards}: "
              f"{summary.n_servers} servers {state} -> {summary.journal_path}")
        print(f"  verdicts (pre-disambiguation): {summary.verdicts} "
              f"({summary.degraded} degraded)")
        return 0
    if args.merge:
        report = merge_campaign(scenario, plan, shards=shards,
                                journal_dir=str(journal_dir),
                                seed=args.seed,
                                fault_profile=args.fault_profile)
    else:
        run = run_campaign(scenario, plan, shards=shards,
                           workers=args.workers, seed=args.seed,
                           fault_profile=args.fault_profile,
                           journal_dir=(str(journal_dir) if journal_dir
                                        else None),
                           resume=args.resume)
        for summary in run.shards:
            state = "skipped" if summary.skipped else "done"
            print(f"shard {summary.shard_index + 1}/{summary.shards}: "
                  f"{summary.n_servers} servers {state}")
        report = run.report
    print(campaign_table(report))
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            handle.write(report.to_json() + "\n")
        print(f"report written to {args.report}")
    return 0


def _cmd_locate(args) -> int:
    from .core import CBG, CBGPlusPlus, QuasiOctant, RttObservation, Spotter
    from .netsim import CliTool
    algorithms = {"cbg": CBG, "cbg++": CBGPlusPlus,
                  "quasi-octant": QuasiOctant, "spotter": Spotter}
    scenario = _scenario(args)
    host = scenario.factory.create(args.lat, args.lon, name="cli-target")
    tool = CliTool(scenario.network, seed=args.seed)
    rng = np.random.default_rng(args.seed)
    observations = [
        RttObservation(lm.name, lm.lat, lm.lon,
                       tool.measure(host, lm, rng).rtt_ms / 2.0)
        for lm in scenario.atlas.anchors]
    algorithm = algorithms[args.algorithm](scenario.calibrations,
                                           scenario.worldmap)
    prediction = algorithm.predict(observations)
    if prediction.failed:
        print("prediction failed (empty region)")
        return 1
    covered = scenario.worldmap.countries_covered(prediction.region)
    centroid = prediction.region.centroid()
    print(f"algorithm: {algorithm.name}")
    print(f"region: {prediction.region.n_cells} cells, "
          f"{prediction.area_km2():,.0f} km^2")
    print(f"centroid: ({centroid[0]:.2f}, {centroid[1]:.2f})")
    print(f"countries: {', '.join(covered)}")
    if args.map:
        from .report import region_map
        print(region_map(scenario.worldmap, prediction.region,
                         markers=[(args.lat, args.lon)]))
    return 0


def _cmd_figure(args) -> int:
    from .experiments import (
        ext_adversary,
        ext_testbench,
        fig02_calibration,
        fig04_tools,
        fig09_algorithms,
        fig10_underestimation,
        fig11_effectiveness,
        fig13_eta,
        fig14_claims,
        fig16_disambiguation,
        fig17_assessment,
        fig18_honesty,
        fig22_confusion,
    )
    scenario = _scenario(args)
    simple = {
        "fig02": fig02_calibration,
        "fig10": fig10_underestimation,
        "fig13": fig13_eta,
        "fig14": fig14_claims,
        "fig16": fig16_disambiguation,
        "fig17": fig17_assessment,
        "fig22": fig22_confusion,
        "adversary": ext_adversary,
        "testbench": ext_testbench,
    }
    name = args.name
    if name in simple:
        module = simple[name]
        print(module.format_table(module.run(scenario)))
    elif name == "fig04":
        print(fig04_tools.format_table(fig04_tools.run(scenario, os="linux")))
    elif name in ("fig05", "fig06"):
        print(fig04_tools.format_table(fig04_tools.run(scenario, os="windows")))
    elif name == "fig09":
        comparison = fig09_algorithms.run(scenario, include_cbgpp=True)
        print(fig09_algorithms.format_table(comparison))
    elif name == "fig11":
        result = fig11_effectiveness.run(scenario,
                                         hosts=scenario.crowd[:10])
        print(fig11_effectiveness.format_table(result))
    elif name == "fig18":
        print(fig18_honesty.format_table(fig18_honesty.run(scenario)))
    elif name == "fig21":
        from .experiments import fig21_databases
        print(fig21_databases.format_table(fig21_databases.run(scenario)))
    elif name == "fig23":
        figures = fig22_confusion.run(scenario)
        pairs = figures.most_confused_countries(15)
        print("Figure 23 — most confusable country pairs:")
        for a, b, count in pairs:
            print(f"  {a} <-> {b}: {count}")
    else:
        print(f"unknown figure {name!r}", file=sys.stderr)
        return 2
    return 0


def _cmd_channels(args) -> int:
    from .netsim import survey_measurement_channels
    scenario = _scenario(args)
    stats = survey_measurement_channels(
        scenario.network, scenario.all_servers(), scenario.client)
    print("measurement channels over the proxy fleet (paper section 4.2):")
    print(f"  answers ICMP ping            {stats['icmp_ping']:.0%} "
          f"(paper: ~10%)")
    print(f"  default gateway visible      {stats['gateway_visible']:.0%} "
          f"(paper: ~10%)")
    print(f"  traceroute through tunnel    {stats['traceroute_through']:.0%} "
          f"(paper: ~2/3)")
    print(f"  accepts TCP on port 80       {stats['tcp_port_80']:.0%} "
          f"(the channel the tools use)")
    return 0


def _cmd_eta(args) -> int:
    from .experiments import fig13_eta
    scenario = _scenario(args)
    print(fig13_eta.format_table(fig13_eta.run(scenario, seed=args.seed)))
    return 0


def _cmd_serve(args) -> int:
    from .service import VerdictService
    from .service.frontend import serve_blocking
    scenario = _scenario(args)
    service = VerdictService(scenario, seed=args.seed,
                             fault_profile=args.fault_profile,
                             cache_slots=args.cache_slots,
                             batch_max=args.batch_max,
                             workers=args.workers)
    print(f"verdict service ready: epoch {service.epoch.digest[:16]}, "
          f"{len(scenario.all_servers())} fleet servers, "
          f"eta={service.eta.eta:.3f}")
    if args.warm:
        warmed = service.verdict_batch(
            [(server, None) for server in scenario.all_servers()])
        print(f"warmed {len(warmed)} verdicts into the cache")
    stats = serve_blocking(service, host=args.host, port=args.port,
                           queue_max=args.queue_max,
                           batch_max=args.batch_max,
                           max_requests=args.max_requests)
    info = service.cache_info()
    print(f"served {stats.responses} verdicts "
          f"({stats.shed} shed, {stats.errors} errors, "
          f"{stats.batches} batches, largest {stats.max_batch}); "
          f"verdict cache {info['verdicts'].hits} hits / "
          f"{info['verdicts'].misses} misses")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Active geolocation of network proxies (IMC 2018 reproduction)")
    parser.add_argument("--seed", type=int, default=0,
                        help="world seed (0 = the memoised default scenario)")
    commands = parser.add_subparsers(dest="command", required=True)

    audit = commands.add_parser("audit", help="audit the simulated VPN fleet")
    audit.add_argument("--servers", type=int, default=None,
                       help="limit the number of servers (default: all)")
    audit.add_argument("--ground-truth", action="store_true",
                       help="also report accuracy vs simulator ground truth")
    audit.add_argument("--workers", type=int, default=1,
                       help="audit servers in N parallel processes")
    from .netsim.faults import FAULT_PROFILES
    audit.add_argument("--fault-profile", default=None,
                       choices=sorted(FAULT_PROFILES),
                       help="inject deterministic network faults "
                            "(loss, outages, tunnel drops)")
    audit.add_argument("--checkpoint", default=None, metavar="PATH",
                       help="journal completed servers to PATH "
                            "(JSON lines, crash-safe)")
    audit.add_argument("--resume", action="store_true",
                       help="resume from --checkpoint instead of starting over")
    audit.set_defaults(func=_cmd_audit)

    campaign = commands.add_parser(
        "campaign",
        help="sharded streaming fleet audit (paper scale in bounded memory)")
    campaign.add_argument("--plan", default=None, metavar="PATH",
                          help="JSON DeploymentPlan (default: whole fleet)")
    campaign.add_argument("--paper-scale", action="store_true",
                          help="audit the full paper-scale (~2,269+) fleet")
    campaign.add_argument("--shards", type=int, default=None,
                          help="shard count (default: REPRO_CAMPAIGN_SHARDS)")
    campaign.add_argument("--shard-index", type=int, default=None,
                          metavar="I",
                          help="run only shard I (needs --journal-dir; "
                               "merge later with --merge)")
    campaign.add_argument("--merge", action="store_true",
                          help="merge finalized shard journals into the "
                               "campaign report without auditing")
    campaign.add_argument("--journal-dir", default=None, metavar="DIR",
                          help="directory for shard + merged journals "
                               "(default: REPRO_CAMPAIGN_DIR or a "
                               "temporary directory)")
    campaign.add_argument("--workers", type=int, default=1,
                          help="audit processes per shard")
    campaign.add_argument("--fault-profile", default=None,
                          choices=sorted(FAULT_PROFILES),
                          help="inject deterministic network faults")
    campaign.add_argument("--resume", action="store_true",
                          help="resume partial shard journals; skip "
                               "finalized ones")
    campaign.add_argument("--report", default=None, metavar="PATH",
                          help="also write the merged report JSON to PATH")
    campaign.set_defaults(func=_cmd_campaign)

    locate = commands.add_parser("locate", help="geolocate a coordinate")
    locate.add_argument("lat", type=float)
    locate.add_argument("lon", type=float)
    locate.add_argument("--algorithm", default="cbg++",
                        choices=["cbg", "cbg++", "quasi-octant", "spotter"])
    locate.add_argument("--map", action="store_true",
                        help="render the prediction region as an ASCII map")
    locate.set_defaults(func=_cmd_locate)

    figure = commands.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("name", help="fig02, fig04..fig22, adversary, testbench")
    figure.set_defaults(func=_cmd_figure)

    channels = commands.add_parser(
        "channels", help="survey usable measurement channels (section 4.2)")
    channels.set_defaults(func=_cmd_channels)

    eta = commands.add_parser("eta", help="fit the direct/indirect factor")
    eta.set_defaults(func=_cmd_eta)

    serve = commands.add_parser(
        "serve",
        help="run the always-on verdict service (claim queries over TCP)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="interface to bind (default: loopback)")
    serve.add_argument("--port", type=int, default=8737,
                       help="TCP port (0 = ephemeral)")
    serve.add_argument("--workers", type=int, default=None,
                       help="fork-pool workers for uncached micro-batches "
                            "(default: REPRO_SERVICE_WORKERS)")
    serve.add_argument("--batch-max", type=int, default=None,
                       help="largest coalesced micro-batch "
                            "(default: REPRO_SERVICE_BATCH_MAX)")
    serve.add_argument("--queue-max", type=int, default=None,
                       help="pending-request bound before shedding "
                            "(default: REPRO_SERVICE_QUEUE_MAX)")
    serve.add_argument("--cache-slots", type=int, default=None,
                       help="verdict-cache capacity "
                            "(default: REPRO_SERVICE_CACHE_SLOTS)")
    serve.add_argument("--fault-profile", default=None,
                       choices=sorted(FAULT_PROFILES),
                       help="serve under a deterministic fault profile")
    serve.add_argument("--warm", action="store_true",
                       help="pre-audit the whole fleet into the cache "
                            "before accepting connections")
    serve.add_argument("--max-requests", type=int, default=None,
                       help="exit after N requests (for scripted runs)")
    serve.set_defaults(func=_cmd_serve)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
