"""repro — reproduction of "How to Catch when Proxies Lie" (IMC 2018).

Verifies the physical locations of network proxies with active
geolocation: measure round-trip times from a target to landmarks in known
locations, bound the feasible distances, and intersect the bounds into a
prediction region.  The package contains the paper's CBG++ algorithm, the
three published algorithms it was compared against, and a complete
synthetic measurement substrate (world map, Internet topology, RIPE-Atlas-
style constellation, VPN provider fleets) so every experiment in the paper
can be re-run offline.

Quick start::

    from repro.experiments import default_scenario, run_audit

    scenario = default_scenario()
    result = run_audit(scenario, max_servers=50)
    print(result.verdict_counts())
"""

from . import core, geo, geodesy, netsim, stats

__version__ = "1.0.0"

__all__ = ["core", "geo", "geodesy", "netsim", "stats", "__version__"]
