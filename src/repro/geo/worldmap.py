"""The rasterised world: country/continent assignment on the analysis grid.

A :class:`WorldMap` binds a :class:`~repro.geo.countries.CountryRegistry`
to a :class:`~repro.geo.grid.Grid` and precomputes, for every grid cell:

* which country owns it (or ocean),
* which continent that country belongs to,
* whether it is "plausible terrain" for the paper's final clipping step
  (on land, south of 85°N, north of 60°S).

Cells claimed by multiple countries' footprint boxes are awarded to the
country with the nearest anchor point (a major population centre), which
resolves sloppy box overlaps along borders.  Every country is guaranteed at
least one cell — the one containing its first anchor — so even micro-states
(Vatican, Monaco) exist on the map.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..geodesy.constants import MAX_PLAUSIBLE_LATITUDE_DEG, MIN_PLAUSIBLE_LATITUDE_DEG
from ..geodesy.greatcircle import haversine_km, haversine_km_vec
from .countries import CONTINENTS, Country, CountryRegistry
from .grid import Grid
from .region import Region, pack_bits

OCEAN = -1


class WorldMap:
    """Country and continent rasters over an analysis grid."""

    def __init__(self, registry: Optional[CountryRegistry] = None,
                 grid: Optional[Grid] = None):
        self.registry = registry if registry is not None else CountryRegistry.default()
        self.grid = grid if grid is not None else Grid()
        self._countries: List[Country] = list(self.registry)
        self.country_raster = self._rasterize()
        self.continent_raster = self._continent_raster()
        self.land_mask = self.country_raster != OCEAN
        self.plausibility_mask = self.land_mask & self.grid.latitude_band_mask(
            MIN_PLAUSIBLE_LATITUDE_DEG, MAX_PLAUSIBLE_LATITUDE_DEG)
        # Packed (uint64 word) twins of the rasters, built lazily: the
        # packed region engine clips and checks country overlap with
        # word-wide AND instead of cell-by-cell boolean sweeps.
        self._plausibility_words: Optional[np.ndarray] = None
        self._land_words: Optional[np.ndarray] = None
        self._country_words: Optional[np.ndarray] = None

    # -- raster construction -------------------------------------------------

    def _rasterize(self) -> np.ndarray:
        grid = self.grid
        raster = np.full(grid.n_cells, OCEAN, dtype=np.int16)
        claim_count = np.zeros(grid.n_cells, dtype=np.int16)
        claims: List[Tuple[int, np.ndarray]] = []
        for idx, country in enumerate(self._countries):
            mask = np.zeros(grid.n_cells, dtype=bool)
            for lat_min, lat_max, lon_min, lon_max in country.boxes:
                mask |= ((grid.cell_lats >= lat_min) & (grid.cell_lats <= lat_max)
                         & (grid.cell_lons >= lon_min) & (grid.cell_lons <= lon_max))
            # An anchor near a box edge can sit in a cell whose *centre*
            # falls outside the box; the country claims that cell too, so
            # coastal capitals are never rasterised into the ocean.
            for anchor_lat, anchor_lon in country.anchors:
                mask[grid.cell_index(anchor_lat, anchor_lon)] = True
            claims.append((idx, mask))
            claim_count += mask
        # Uncontested cells are assigned directly.
        for idx, mask in claims:
            sole = mask & (claim_count == 1)
            raster[sole] = idx
        # Contested cells go to the country with the nearest anchor point.
        contested = np.flatnonzero(claim_count > 1)
        for cell in contested:
            lat = float(grid.cell_lats[cell])
            lon = float(grid.cell_lons[cell])
            best_idx, best_distance = OCEAN, float("inf")
            for idx, mask in claims:
                if not mask[cell]:
                    continue
                for anchor_lat, anchor_lon in self._countries[idx].anchors:
                    d = haversine_km(lat, lon, anchor_lat, anchor_lon)
                    if d < best_distance:
                        best_distance = d
                        best_idx = idx
            raster[cell] = best_idx
        # Guarantee every country at least one cell.  Micro-states whose
        # footprint is smaller than a cell get the cell nearest their
        # anchor that does not hold another country's anchor (so Vatican
        # City cannot erase Rome).
        anchor_cell_of: Dict[int, int] = {}
        for i, c in enumerate(self._countries):
            # First-registered country keeps the cell when two anchors
            # share it (Rome's cell belongs to Italy, not Vatican City).
            anchor_cell_of.setdefault(grid.cell_index(*c.anchors[0]), i)
        forced_cells: Dict[int, int] = {}
        for idx, country in enumerate(self._countries):
            if (raster == idx).any():
                continue
            anchor_lat, anchor_lon = country.anchors[0]
            distances = grid.distances_from(anchor_lat, anchor_lon)
            for cell in np.argsort(distances)[:64]:
                cell = int(cell)
                owner = anchor_cell_of.get(cell)
                if cell in forced_cells:
                    continue  # already granted to another micro-state
                if owner is None or owner == idx:
                    raster[cell] = idx
                    forced_cells[cell] = idx
                    break
            else:
                raster[grid.cell_index(anchor_lat, anchor_lon)] = idx
        return raster

    def _continent_raster(self) -> np.ndarray:
        continent_index = {code: i for i, code in enumerate(CONTINENTS)}
        lookup = np.full(len(self._countries) + 1, OCEAN, dtype=np.int8)
        for idx, country in enumerate(self._countries):
            lookup[idx] = continent_index[country.continent]
        # country_raster has OCEAN == -1; np fancy-indexing with -1 hits the
        # sentinel slot we appended at the end of `lookup`.
        return lookup[self.country_raster]

    # -- point queries ----------------------------------------------------------

    def country_at(self, lat: float, lon: float) -> Optional[str]:
        """ISO-2 code of the country owning the cell at this point, or None."""
        idx = int(self.country_raster[self.grid.cell_index(lat, lon)])
        if idx == OCEAN:
            return None
        return self._countries[idx].iso2

    def continent_at(self, lat: float, lon: float) -> Optional[str]:
        """Continent code at this point, or None over ocean."""
        code = self.country_at(lat, lon)
        if code is None:
            return None
        return self.registry.continent_of(code)

    def is_land(self, lat: float, lon: float) -> bool:
        return bool(self.land_mask[self.grid.cell_index(lat, lon)])

    # -- packed raster views ------------------------------------------------------

    @property
    def plausibility_words(self) -> np.ndarray:
        """``plausibility_mask`` as packed uint64 words (lazy, cached)."""
        if self._plausibility_words is None:
            self._plausibility_words = pack_bits(self.plausibility_mask)
        return self._plausibility_words

    @property
    def land_words(self) -> np.ndarray:
        """``land_mask`` as packed uint64 words (lazy, cached)."""
        if self._land_words is None:
            self._land_words = pack_bits(self.land_mask)
        return self._land_words

    @property
    def country_words(self) -> np.ndarray:
        """Per-country packed masks, one uint64 word row per country.

        Row ``i`` packs ``country_raster == i`` (registry order), so a
        region↔country overlap test is one word-level AND + ``any`` —
        the packed engine's replacement for gathering the raster over
        every member cell.
        """
        if self._country_words is None:
            raster = self.country_raster
            matrix = raster[None, :] == np.arange(
                len(self._countries), dtype=raster.dtype)[:, None]
            self._country_words = pack_bits(matrix)
        return self._country_words

    # -- region queries -----------------------------------------------------------

    def clip_to_plausible(self, region: Region) -> Region:
        """Apply the paper's final clipping: land only, 60°S..85°N."""
        if region.is_packed_native:
            return region.intersect_words(self.plausibility_words)
        return region.intersect_mask(self.plausibility_mask)

    def country_region(self, iso2: str) -> Region:
        """The region consisting of every cell owned by ``iso2``."""
        idx = self.registry.index_of(iso2)
        return Region(self.grid, self.country_raster == idx)

    def continent_region(self, continent: str) -> Region:
        if continent not in CONTINENTS:
            raise ValueError(f"unknown continent {continent!r}")
        continent_idx = CONTINENTS.index(continent)
        return Region(self.grid, self.continent_raster == continent_idx)

    def countries_covered(self, region: Region) -> List[str]:
        """ISO-2 codes of all countries the region overlaps, sorted by area overlap."""
        # Word-level early exit for packed regions: an all-ocean region
        # (common for blown-out predictions) never unpacks a single cell.
        if (region.is_packed_native
                and not (region.words & self.land_words).any()):
            return []
        cells = region.cell_indices()
        owners = self.country_raster[cells]
        land = owners != OCEAN
        if not land.any():
            return []
        totals = np.bincount(owners[land].astype(np.intp),
                             weights=self.grid.cell_areas_km2[cells][land],
                             minlength=len(self._countries))
        covered = np.flatnonzero(totals > 0)
        ordered = covered[np.argsort(-totals[covered], kind="stable")]
        return [self._countries[int(idx)].iso2 for idx in ordered]

    def continents_covered(self, region: Region) -> List[str]:
        """Continent codes the region overlaps, most-covered first."""
        seen: Dict[str, float] = {}
        for code in self.countries_covered(region):
            continent = self.registry.continent_of(code)
            seen[continent] = seen.get(continent, 0.0) + 1.0
        return sorted(seen, key=lambda c: -seen[c])

    def distance_to_country_km(self, region: Region, iso2: str) -> float:
        """Minimum distance between a region and a country's cells, km.

        Zero when they overlap; infinity when the region is empty.
        """
        idx = self.registry.index_of(iso2)
        if region.is_empty:
            return float("inf")
        if region.is_packed_native:
            overlaps = bool((self.country_words[idx] & region.words).any())
        else:
            overlaps = bool(
                ((self.country_raster == idx) & region.mask).any())
        if overlaps:
            return 0.0
        # Member gathers by index: identical vectors (values and order)
        # to the boolean-mask gathers, so the distance sweep below is
        # float-for-float the same under either engine.
        region_cells = region.cell_indices()
        country_mask = self.country_raster == idx
        region_lats = self.grid.cell_lats[region_cells]
        region_lons = self.grid.cell_lons[region_cells]
        country_lats = self.grid.cell_lats[country_mask]
        country_lons = self.grid.cell_lons[country_mask]
        # Chunk the pairwise sweep: a continent-sized region against a
        # large country would otherwise materialise a multi-hundred-MB
        # distance matrix in one piece.
        best = float("inf")
        chunk = max(1, 4_000_000 // max(1, len(country_lats)))
        for start in range(0, len(region_lats), chunk):
            distances = haversine_km_vec(
                region_lats[start:start + chunk][:, None],
                region_lons[start:start + chunk][:, None],
                country_lats[None, :], country_lons[None, :])
            best = min(best, float(distances.min()))
        return best

    def covers_country(self, region: Region, iso2: str) -> bool:
        """Does the region overlap any cell of the country?"""
        idx = self.registry.index_of(iso2)
        if region.is_packed_native:
            return bool((self.country_words[idx] & region.words).any())
        return bool((self.country_raster[region.mask] == idx).any())

    def within_country(self, region: Region, iso2: str) -> bool:
        """Is every land cell of the region inside the country?

        Ocean cells are ignored: a coastal disk that spills over water but
        touches only one country's land is "entirely within" that country
        for assessment purposes (matching the paper's land clipping).
        """
        covered = self.countries_covered(region)
        return covered == [iso2] if covered else False

    # -- sampling -----------------------------------------------------------------

    def random_point_in(self, iso2: str, rng: np.random.Generator) -> Tuple[float, float]:
        """A uniformly random land point inside the country (cell-jittered)."""
        region = self.country_region(iso2)
        indices = region.cell_indices()
        if len(indices) == 0:
            raise ValueError(f"country {iso2!r} owns no cells at this resolution")
        weights = self.grid.cell_areas_km2[indices]
        chosen = int(rng.choice(indices, p=weights / weights.sum()))
        lat, lon = self.grid.cell_center(chosen)
        half = self.grid.resolution_deg / 2.0
        jitter_lat = float(rng.uniform(-half, half)) * 0.9
        jitter_lon = float(rng.uniform(-half, half)) * 0.9
        return (max(-90.0, min(90.0, lat + jitter_lat)),
                max(-180.0, min(179.999, lon + jitter_lon)))

    def countries(self) -> Sequence[Country]:
        return tuple(self._countries)
