"""The analysis grid: a lat/lon raster over the Earth's surface.

Prediction regions (the output of every multilateration algorithm) are
represented as boolean masks over this grid.  Cell areas carry the
``cos(latitude)`` weighting, so region areas are correct in km² even though
cells are equal-angle rather than equal-area.

A :class:`Grid` also memoises per-point distance fields (the great-circle
distance from a point to every cell centre), delegated to a per-grid
:class:`~repro.geo.bank.DistanceBank`.  Landmarks are reused across
hundreds of targets, so this cache is the difference between seconds and
hours for a full proxy audit — and the bank's contiguous layout is what
the batched mask kernels and forked audit workers build on.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

import numpy as np

from ..geodesy.constants import EARTH_RADIUS_KM
from ..geodesy.greatcircle import normalize_lon, validate_latlon


class Grid:
    """Equal-angle lat/lon grid with cosine-weighted cell areas.

    Parameters
    ----------
    resolution_deg:
        Cell edge length in degrees.  1.0° (the default) gives 64 800
        cells, plenty for country-level assessment; 0.5° quadruples the
        cell count for finer area estimates.
    """

    #: Soft bound on distance fields held by the per-grid bank.  Sized to
    #: hold a full RIPE-Atlas-scale constellation (~1100 landmarks, ~290 MB
    #: at 1° resolution): a fleet audit's working set is the whole
    #: landmark universe, and an undersized bank thrashes its eviction
    #: path on every prediction.
    _DISTANCE_CACHE_SLOTS = 1280

    def __init__(self, resolution_deg: float = 1.0):
        if not (0.05 <= resolution_deg <= 10.0):
            raise ValueError(f"resolution out of supported range: {resolution_deg!r}")
        if (180.0 / resolution_deg) != round(180.0 / resolution_deg):
            raise ValueError(f"resolution must divide 180 evenly: {resolution_deg!r}")
        self.resolution_deg = float(resolution_deg)
        self.n_lat = int(round(180.0 / resolution_deg))
        self.n_lon = int(round(360.0 / resolution_deg))
        half = resolution_deg / 2.0
        self.lat_centers = np.linspace(-90.0 + half, 90.0 - half, self.n_lat)
        self.lon_centers = np.linspace(-180.0 + half, 180.0 - half, self.n_lon)
        lon_mesh, lat_mesh = np.meshgrid(self.lon_centers, self.lat_centers)
        #: Flattened cell-centre coordinates, shape (n_cells,).
        self.cell_lats = lat_mesh.ravel()
        self.cell_lons = lon_mesh.ravel()
        res_rad = math.radians(resolution_deg)
        self.cell_areas_km2 = (
            EARTH_RADIUS_KM ** 2 * res_rad * res_rad * np.cos(np.radians(self.cell_lats))
        )
        self._bank: Optional["DistanceBank"] = None

    @property
    def bank(self) -> "DistanceBank":
        """The grid's :class:`~repro.geo.bank.DistanceBank` (lazily built)."""
        if self._bank is None:
            from .bank import DistanceBank
            self._bank = DistanceBank(self, max_points=self._DISTANCE_CACHE_SLOTS)
        return self._bank

    def __getstate__(self) -> Dict[str, object]:
        # The bank can hold hundreds of MB of recomputable distance
        # fields; never ship it inside a pickle (parallel audit workers
        # share it through fork instead).
        state = self.__dict__.copy()
        state["_bank"] = None
        return state

    @property
    def n_cells(self) -> int:
        return self.n_lat * self.n_lon

    def cell_index(self, lat: float, lon: float) -> int:
        """Index of the cell containing ``(lat, lon)``."""
        validate_latlon(lat, lon)
        lon = normalize_lon(lon)
        row = min(int((lat + 90.0) / self.resolution_deg), self.n_lat - 1)
        col = min(int((lon + 180.0) / self.resolution_deg), self.n_lon - 1)
        return row * self.n_lon + col

    def cell_center(self, index: int) -> Tuple[float, float]:
        """Centre coordinates of the cell at ``index``."""
        if not (0 <= index < self.n_cells):
            raise IndexError(f"cell index out of range: {index!r}")
        return float(self.cell_lats[index]), float(self.cell_lons[index])

    def distances_from(self, lat: float, lon: float) -> np.ndarray:
        """Great-circle distance (km) from a point to every cell centre.

        Results are memoised in the grid's :class:`DistanceBank` because
        landmarks recur across targets.  The returned array is shared —
        treat it as read-only.
        """
        return self.bank.field(lat, lon)

    def disk_mask(self, lat: float, lon: float, radius_km: float) -> np.ndarray:
        """Boolean mask of cells within ``radius_km`` of the point."""
        if radius_km < 0:
            raise ValueError(f"negative radius: {radius_km!r}")
        return self.distances_from(lat, lon) <= radius_km

    def ring_mask(self, lat: float, lon: float, inner_km: float, outer_km: float) -> np.ndarray:
        """Boolean mask of cells in the annulus [inner_km, outer_km]."""
        if inner_km < 0 or outer_km < inner_km:
            raise ValueError(f"bad ring radii: ({inner_km!r}, {outer_km!r})")
        d = self.distances_from(lat, lon)
        return (d >= inner_km) & (d <= outer_km)

    def latitude_band_mask(self, lat_min: float, lat_max: float) -> np.ndarray:
        """Mask of cells whose centres lie in [lat_min, lat_max]."""
        return (self.cell_lats >= lat_min) & (self.cell_lats <= lat_max)
