"""DistanceBank: a contiguous bank of landmark→cell distance fields.

Every multilateration primitive reduces to comparisons against the
great-circle distance from some landmark to every cell of the analysis
grid.  The bank stores those distance fields as rows of one contiguous
``(n_points, n_cells)`` float32 matrix, so that

* a whole constraint set becomes a single broadcasted comparison
  (``fields <= radii[:, None]``) instead of a Python loop of per-landmark
  mask calls,
* missing fields for a batch of points are computed in **one** vectorised
  haversine sweep rather than one sweep per point,
* a forked audit worker inherits the parent's fully-warmed matrix as
  copy-on-write pages, giving the process pool shared, zero-copy access
  to the heaviest data structure in the pipeline.

Rows are keyed by rounded ``(lat, lon)`` exactly like the old per-point
LRU cache, so the bank returns bit-identical distance values — it changes
how fields are stored and batched, never what they contain.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import sanitize
from ..geodesy.greatcircle import haversine_km_vec, validate_latlon
from .region import n_words_for, pack_bits

#: Decimal places used to key a coordinate (matches the old grid LRU).
_KEY_DECIMALS = 5


def _key(lat: float, lon: float) -> Tuple[float, float]:
    return (round(float(lat), _KEY_DECIMALS), round(float(lon), _KEY_DECIMALS))


class DistanceBank:
    """Precomputed distance fields for a :class:`~repro.geo.grid.Grid`.

    Parameters
    ----------
    grid:
        The analysis grid whose cell centres the fields are measured to.
    max_points:
        Soft bound on stored rows.  When exceeded, the oldest half of the
        bank is evicted (landmarks recur heavily, so in practice a fleet
        audit never evicts).
    """

    #: Preferred block edge lengths (in cells) for the coarse aggregates,
    #: best first.  The first one dividing both grid dimensions wins.
    _BLOCK_SIDES = (10, 12, 9, 6, 8, 5, 4, 3, 2)

    def __init__(self, grid, max_points: int = 512):
        if max_points < 2:
            raise ValueError(f"max_points too small: {max_points!r}")
        self.grid = grid
        self.max_points = int(max_points)
        self._row_of: Dict[Tuple[float, float], int] = {}
        self._fields = np.empty((0, grid.n_cells), dtype=np.float32)
        self._views: List[np.ndarray] = []
        self._block_cache: Dict[Tuple[int, ...], np.ndarray] = {}
        # Coarse per-block min/max of every field row: the disk
        # intersection kernel classifies whole blocks as inside/outside
        # and only inspects cells where a disk boundary actually passes.
        self._block_side = next(
            (side for side in self._BLOCK_SIDES
             if grid.n_lat % side == 0 and grid.n_lon % side == 0), None)
        if self._block_side:
            self._n_blocks = (grid.n_lat // self._block_side) * \
                (grid.n_lon // self._block_side)
        else:
            self._n_blocks = 0
        self._block_min = np.empty((0, self._n_blocks), dtype=np.float32)
        self._block_max = np.empty((0, self._n_blocks), dtype=np.float32)
        self._block_cells: Optional[np.ndarray] = None
        self._rows_memo: Dict[tuple, np.ndarray] = {}

    # -- storage -------------------------------------------------------------

    @property
    def n_points(self) -> int:
        """Number of distance fields currently stored."""
        return len(self._views)

    @property
    def nbytes(self) -> int:
        """Bytes held by the field matrix (capacity, not just live rows)."""
        return self._fields.nbytes

    def _grow(self, extra: int) -> None:
        needed = self.n_points + extra
        capacity = self._fields.shape[0]
        if needed <= capacity:
            return
        # Doubling growth, clamped at max_points: eviction keeps live rows
        # under the bound, so capacity beyond it would never be reached.
        new_capacity = max(needed, min(max(8, capacity * 2), self.max_points))
        grown = np.empty((new_capacity, self.grid.n_cells), dtype=np.float32)
        grown[:self.n_points] = self._fields[:self.n_points]
        self._fields = grown
        self._views = [self._fields[i] for i in range(self.n_points)]
        if self._block_side:
            for name in ("_block_min", "_block_max"):
                old = getattr(self, name)
                fresh = np.empty((new_capacity, self._n_blocks), dtype=np.float32)
                fresh[:self.n_points] = old[:self.n_points]
                setattr(self, name, fresh)

    def _evict_oldest_half(self) -> None:
        keep = self.n_points // 2
        survivors = sorted(self._row_of.items(), key=lambda kv: kv[1])[-keep:]
        compacted = np.empty_like(self._fields)
        self._row_of = {}
        old_rows = [old_row for _, old_row in survivors]
        for new_row, (key, old_row) in enumerate(survivors):
            compacted[new_row] = self._fields[old_row]
            self._row_of[key] = new_row
        self._fields = compacted
        self._views = [self._fields[i] for i in range(keep)]
        if self._block_side:
            for name in ("_block_min", "_block_max"):
                old = getattr(self, name)
                fresh = np.empty_like(old)
                fresh[:keep] = old[old_rows]
                setattr(self, name, fresh)
        # Row numbers changed; keyed caches are stale.
        self._block_cache.clear()
        self._rows_memo.clear()

    def _blockify(self, start: int, stop: int) -> None:
        """(Re)compute the coarse block aggregates for rows [start, stop)."""
        if not self._block_side or stop <= start:
            return
        side = self._block_side
        shaped = self._fields[start:stop].reshape(
            stop - start, self.grid.n_lat // side, side,
            self.grid.n_lon // side, side)
        self._block_min[start:stop] = shaped.min(axis=(2, 4)).reshape(
            stop - start, self._n_blocks)
        self._block_max[start:stop] = shaped.max(axis=(2, 4)).reshape(
            stop - start, self._n_blocks)

    def _cells_of_blocks(self, blocks: np.ndarray) -> np.ndarray:
        """Flat cell indices covered by the given block indices."""
        if self._block_cells is None:
            side = self._block_side
            n_blat = self.grid.n_lat // side
            n_blon = self.grid.n_lon // side
            cells = np.arange(self.grid.n_cells, dtype=np.int64).reshape(
                n_blat, side, n_blon, side)
            # (block_lat, block_lon, side, side) -> one row per block
            self._block_cells = np.ascontiguousarray(
                cells.transpose(0, 2, 1, 3)).reshape(
                self._n_blocks, side * side)
        return self._block_cells[blocks].ravel()

    def rows(self, lats: Sequence[float], lons: Sequence[float]) -> np.ndarray:
        """Row indices for a batch of points, computing any missing fields.

        All missing points are filled with a single broadcasted haversine
        sweep — the batched equivalent of the old one-point-at-a-time
        cache fill.
        """
        memo_key = None
        if type(lats) is list and type(lons) is list:
            # The hot callers re-resolve the same landmark panel on every
            # prediction; short-circuit the per-point keying for them.
            memo_key = (tuple(lats), tuple(lons))
            memoised = self._rows_memo.get(memo_key)
            if memoised is not None:
                return memoised
        lats = np.atleast_1d(np.asarray(lats, dtype=float))
        lons = np.atleast_1d(np.asarray(lons, dtype=float))
        if lats.shape != lons.shape:
            raise ValueError("lats and lons must have matching shapes")
        keys = [_key(lat, lon) for lat, lon in zip(lats, lons)]
        missing: Dict[Tuple[float, float], int] = {}
        for position, key in enumerate(keys):
            if key not in self._row_of and key not in missing:
                validate_latlon(float(lats[position]), float(lons[position]))
                missing[key] = position
        if missing:
            if self.n_points + len(missing) > self.max_points:
                self._evict_oldest_half()
                # Eviction may have dropped keys that were still present
                # when the batch was scanned above — rescan so they are
                # refilled rather than looked up as stale rows.
                missing = {}
                for position, key in enumerate(keys):
                    if key not in self._row_of and key not in missing:
                        missing[key] = position
            self._grow(len(missing))
            positions = list(missing.values())
            fresh = haversine_km_vec(
                lats[positions][:, None], lons[positions][:, None],
                self.grid.cell_lats[None, :], self.grid.cell_lons[None, :],
            ).astype(np.float32)
            base = self.n_points
            self._fields[base:base + len(positions)] = fresh
            for offset, key in enumerate(missing):
                row = base + offset
                self._row_of[key] = row
                self._views.append(self._fields[row])
            self._blockify(base, base + len(positions))
        resolved = np.array([self._row_of[key] for key in keys], dtype=np.intp)
        if memo_key is not None:
            if len(self._rows_memo) >= 32:
                self._rows_memo.pop(next(iter(self._rows_memo)))
            self._rows_memo[memo_key] = resolved
        return resolved

    def warm(self, points: Sequence[Tuple[float, float]]) -> None:
        """Precompute fields for many points (e.g. a whole constellation).

        Called before forking audit workers so every child inherits the
        full bank as shared copy-on-write memory.
        """
        if not points:
            return
        lats = [p[0] for p in points]
        lons = [p[1] for p in points]
        self.rows(lats, lons)

    # -- field access --------------------------------------------------------

    def field(self, lat: float, lon: float) -> np.ndarray:
        """The distance field of one point (a shared row — read-only)."""
        row = int(self.rows([lat], [lon])[0])
        values = self._views[row]
        if sanitize.enabled():
            sanitize.check_distance_fields(values, "DistanceBank.field")
        return values

    def field_block(self, lats: Sequence[float], lons: Sequence[float]
                    ) -> np.ndarray:
        """A ``(k, n_cells)`` float32 block of distance fields.

        Returns a zero-copy slice when the rows happen to be contiguous
        (the common case right after a batch fill); a gather otherwise.
        Treat the result as read-only.
        """
        rows = self.rows(lats, lons)
        if len(rows) > 0:
            start, stop = int(rows[0]), int(rows[-1]) + 1
            if stop - start == len(rows) and np.array_equal(
                    rows, np.arange(start, stop)):
                block = self._fields[start:stop]
                if sanitize.enabled():
                    sanitize.check_distance_fields(
                        block, "DistanceBank.field_block")
                return block
        key = tuple(int(r) for r in rows)
        cached = self._block_cache.get(key)
        if cached is None:
            if len(self._block_cache) >= 6:   # a handful of landmark panels
                self._block_cache.pop(next(iter(self._block_cache)))
            cached = self._fields[rows]
            self._block_cache[key] = cached
        if sanitize.enabled():
            sanitize.check_distance_fields(cached, "DistanceBank.field_block")
        return cached

    # -- batched mask kernels ------------------------------------------------

    def disk_masks(self, lats: Sequence[float], lons: Sequence[float],
                   radii: Sequence[float],
                   columns: Optional[np.ndarray] = None) -> np.ndarray:
        """Boolean ``(k, n_cells)`` matrix of per-landmark disk masks.

        ``columns`` restricts the evaluation to a subset of grid cells
        (returning ``(k, len(columns))``), which is exact for any purely
        intersective downstream use.
        """
        radii = np.asarray(radii, dtype=np.float32)
        if (radii < 0).any():
            raise ValueError("negative disk radius")
        block = self.field_block(lats, lons)
        if columns is not None:
            block = block[:, columns]
        return block <= radii[:, None]

    def disk_intersections(self, lats: Sequence[float], lons: Sequence[float],
                           radii_families: Sequence[Sequence[float]],
                           packed: bool = False) -> np.ndarray:
        """AND of per-landmark disks, for one or more radius families.

        ``radii_families`` is an ``(m, k)`` matrix: each row gives one
        radius per landmark, and the result row ``f`` is the boolean mask
        ``AND_i (distance_i <= radii_families[f, i])`` over all cells.
        The families share one pass over the coarse block aggregates —
        whole blocks strictly inside (or outside) every disk are settled
        without touching cell-level data, and only cells of blocks crossed
        by some disk boundary are compared exactly.  Results are
        bit-identical to the naive broadcasted comparison.

        With ``packed=True`` the result rows are uint64 bitset words
        (``(m, n_words)``, padding bits zero) ready for zero-copy
        adoption by :meth:`Region.from_words`.
        """
        radii = np.asarray(radii_families, dtype=np.float32)
        if radii.ndim == 1:
            radii = radii[None, :]
        if (radii < 0).any():
            raise ValueError("negative disk radius")
        n_families, n_disks = radii.shape
        rows = self.rows(lats, lons)
        if n_disks != len(rows):
            raise ValueError("radii and points disagree in length")
        n_cells = self.grid.n_cells
        out = np.zeros((n_families, n_cells), dtype=bool)
        if not self._block_side:
            # Grid indivisible into blocks: plain full-width evaluation.
            block = self.field_block(lats, lons)
            for f in range(n_families):
                acc = block[0] <= radii[f, 0]
                for i in range(1, n_disks):
                    acc &= block[i] <= radii[f, i]
                out[f] = acc
            return pack_bits(out) if packed else out
        side = self._block_side
        block_max = self._block_max[rows]          # (k, n_blocks) — small
        block_min = self._block_min[rows]
        shape4 = (self.grid.n_lat // side, 1, self.grid.n_lon // side, 1)
        for f in range(n_families):
            family_radii = radii[f][:, None]
            inside = (block_max <= family_radii).all(axis=0)
            maybe = (block_min <= family_radii).all(axis=0)
            out[f].reshape(self.grid.n_lat // side, side,
                           self.grid.n_lon // side, side)[:] = \
                inside.reshape(shape4)
            edge_blocks = np.flatnonzero(maybe & ~inside)
            if not edge_blocks.size:
                continue
            # Disks covering every edge block entirely cannot change the
            # verdict; only disks whose boundary crosses one of them can.
            uncertain = np.flatnonzero(
                (block_max[:, edge_blocks] > family_radii).any(axis=1))
            cells = self._cells_of_blocks(edge_blocks)
            verdict = np.ones(cells.size, dtype=bool)
            for i in uncertain:
                verdict &= self._fields[rows[i]][cells] <= radii[f, i]
            out[f][cells] = verdict
        return pack_bits(out) if packed else out

    # -- fleet-level kernels -------------------------------------------------
    #
    # The per-server kernels above answer "one target, k landmarks"; a
    # fleet audit asks the same question for hundreds of targets whose
    # landmark panels heavily overlap.  The fleet front ends take padded
    # ``(n_servers, k)`` matrices of *bank row indices* (resolve them
    # with :meth:`rows` immediately beforehand — eviction renumbers rows)
    # plus per-server radii, and sweep the whole fleet through the block
    # aggregates in chunks of servers.  Padding slots carry ``+inf``
    # radii (disks) or ``+inf`` rings, which constrain nothing, so ragged
    # panels need no masking logic.  Results are bit-identical, server
    # for server, to the per-server kernels: both settle whole blocks
    # from the same aggregates and compare the same float32 fields
    # against the same float32 radii on edge cells.

    #: Servers per fleet-kernel sweep: bounds scratch memory at
    #: ~(chunk × k × n_blocks) floats regardless of fleet size, which is
    #: what keeps the 1k-server marginal cost flat.
    FLEET_CHUNK = 64

    #: (server, edge-block) pairs refined per gather; bounds the exact
    #: edge-cell scratch at ~(pairs × k × block cells) float32.
    _EDGE_PAIR_CHUNK = 2048

    def _validate_fleet_rows(self, rows: np.ndarray) -> np.ndarray:
        rows = np.asarray(rows, dtype=np.intp)
        if rows.ndim != 2:
            raise ValueError(f"fleet rows must be 2-D, got {rows.ndim}-D")
        if rows.size and (rows.min() < 0 or rows.max() >= self.n_points):
            raise ValueError("fleet row index out of range; resolve rows "
                             "with DistanceBank.rows() first")
        return rows

    def disk_intersections_fleet(self, rows: np.ndarray,
                                 radii_families: np.ndarray,
                                 packed: bool = False) -> np.ndarray:
        """AND of per-landmark disks for every server of a fleet at once.

        ``rows`` is ``(n_servers, k)`` bank row indices; ``radii_families``
        is ``(m, n_servers, k)`` float32 (``(n_servers, k)`` is promoted to
        one family).  Result ``[f, s]`` is the AND over slot ``i`` of
        ``distance(rows[s, i]) <= radii_families[f, s, i]`` — exactly what
        :meth:`disk_intersections` returns for server ``s`` alone.  With
        ``packed=True`` the result is ``(m, n_servers, n_words)`` uint64
        bitset words (the only layout that scales to 1k+ fleets; the
        boolean form exists for the cross-engine identity tests).
        """
        rows = self._validate_fleet_rows(rows)
        radii = np.asarray(radii_families, dtype=np.float32)
        if radii.ndim == 2:
            radii = radii[None]
        if radii.ndim != 3 or radii.shape[1:] != rows.shape:
            raise ValueError("radii families and fleet rows disagree in shape")
        if (radii < 0).any():
            raise ValueError("negative disk radius")
        n_servers, k = rows.shape
        m = radii.shape[0]
        n_cells = self.grid.n_cells
        if packed:
            out = np.zeros((m, n_servers, n_words_for(n_cells)),
                           dtype=np.uint64)
        else:
            out = np.zeros((m, n_servers, n_cells), dtype=bool)
        if n_servers == 0 or k == 0:
            return out
        side = self._block_side
        for start in range(0, n_servers, self.FLEET_CHUNK):
            stop = min(start + self.FLEET_CHUNK, n_servers)
            span = stop - start
            chunk_rows = rows[start:stop]
            scratch = np.empty((span, n_cells), dtype=bool)
            if not side:
                # Grid indivisible into blocks: full-width evaluation,
                # slot by slot, vectorised over the server chunk.
                fields = self._fields
                for f in range(m):
                    scratch[:] = True
                    for i in range(k):
                        scratch &= (fields[chunk_rows[:, i]]
                                    <= radii[f, start:stop, i, None])
                    out[f, start:stop] = pack_bits(scratch) if packed \
                        else scratch
                continue
            n_blat = self.grid.n_lat // side
            n_blon = self.grid.n_lon // side
            for f in range(m):
                # Slot-major accumulation keeps the working set at one
                # (span, n_blocks) plane per operand instead of gathering
                # a (span, k, n_blocks) cube — ANDs commute, so the
                # verdicts are bit-identical either way.
                inside = np.ones((span, self._n_blocks), dtype=bool)
                maybe = np.ones((span, self._n_blocks), dtype=bool)
                for i in range(k):
                    slot_radii = radii[f, start:stop, i, None]  # (span, 1)
                    inside &= self._block_max[chunk_rows[:, i]] <= slot_radii
                    maybe &= self._block_min[chunk_rows[:, i]] <= slot_radii
                scratch.reshape(span, n_blat, side, n_blon, side)[:] = \
                    inside.reshape(span, n_blat, 1, n_blon, 1)
                # Edge blocks, refined exactly — vectorised over every
                # (server, block) pair at once.  Only *uncertain* disks
                # are gathered: a slot with ``block_max <= r`` passes
                # every cell of the block (so ANDing it cannot change a
                # bit), and no slot has ``r < block_min`` or the block
                # would not be "maybe" — the AND over uncertain slots is
                # therefore bit-identical to the AND over all k slots.
                pair_server, pair_block = np.nonzero(maybe & ~inside)
                for p0 in range(0, pair_server.size, self._EDGE_PAIR_CHUNK):
                    p1 = min(p0 + self._EDGE_PAIR_CHUNK, pair_server.size)
                    srv = pair_server[p0:p1]
                    blocks = pair_block[p0:p1]
                    cells = self._cells_of_blocks(blocks).reshape(
                        p1 - p0, -1)
                    unc = np.empty((srv.size, k), dtype=bool)
                    for i in range(k):
                        unc[:, i] = (self._block_max[chunk_rows[srv, i],
                                                     blocks]
                                     > radii[f, start + srv, i])
                    pair_idx, slot_idx = np.nonzero(unc)  # grouped by pair
                    values = self._fields[
                        chunk_rows[srv[pair_idx], slot_idx][:, None],
                        cells[pair_idx]]
                    ok = values <= radii[f, start + srv[pair_idx],
                                         slot_idx][:, None]
                    counts = unc.sum(axis=1)  # >= 1: the block is ~inside
                    starts = np.concatenate(
                        ([0], np.cumsum(counts[:-1])))
                    verdict = np.logical_and.reduceat(ok, starts, axis=0)
                    scratch[srv[:, None], cells] = verdict
                out[f, start:stop] = pack_bits(scratch) if packed else scratch
        return out

    def ring_votes_fleet(self, rows: np.ndarray, inner: np.ndarray,
                         outer: np.ndarray) -> np.ndarray:
        """Per-cell annulus vote counts for every server of a fleet.

        ``rows``/``inner``/``outer`` are padded ``(n_servers, k)``
        matrices; result row ``s`` equals :meth:`ring_votes` for server
        ``s``'s panel (integer addition is exact, so the slot-major
        accumulation order cannot change a count).  Padding slots use
        ``+inf`` rings, which cover no cell and add no vote.
        """
        rows = self._validate_fleet_rows(rows)
        inner = np.asarray(inner, dtype=np.float32)
        outer = np.asarray(outer, dtype=np.float32)
        if inner.shape != rows.shape or outer.shape != rows.shape:
            raise ValueError("ring radii and fleet rows disagree in shape")
        finite_inner = np.where(np.isfinite(inner), inner, 0.0)
        if (finite_inner < 0).any() or (outer < inner).any():
            raise ValueError("bad ring radii")
        n_servers, k = rows.shape
        votes = np.zeros((n_servers, self.grid.n_cells), dtype=np.int32)
        if n_servers == 0 or k == 0:
            return votes
        for start in range(0, n_servers, self.FLEET_CHUNK):
            stop = min(start + self.FLEET_CHUNK, n_servers)
            covered = np.empty((stop - start, self.grid.n_cells), dtype=bool)
            for i in range(k):
                fields = self._fields[rows[start:stop, i]]
                np.greater_equal(fields, inner[start:stop, i, None],
                                 out=covered)
                covered &= fields <= outer[start:stop, i, None]
                votes[start:stop] += covered
        return votes

    def ring_masks(self, lats: Sequence[float], lons: Sequence[float],
                   inner: Sequence[float], outer: Sequence[float],
                   columns: Optional[np.ndarray] = None) -> np.ndarray:
        """Boolean ``(k, n_cells)`` matrix of per-landmark annulus masks."""
        inner = np.asarray(inner, dtype=np.float32)
        outer = np.asarray(outer, dtype=np.float32)
        if (inner < 0).any() or (outer < inner).any():
            raise ValueError("bad ring radii")
        block = self.field_block(lats, lons)
        if columns is not None:
            block = block[:, columns]
        return (block >= inner[:, None]) & (block <= outer[:, None])

    def ring_intersection(self, lats: Sequence[float], lons: Sequence[float],
                          inner: Sequence[float], outer: Sequence[float],
                          packed: bool = False) -> np.ndarray:
        """Fused AND of every per-landmark annulus.

        Equivalent to ``ring_masks(...).all(axis=0)`` but AND-reduced ring
        by ring with two reused scratch rows, so the ``(k, n_cells)``
        boolean matrix is never materialised.  AND is associative, so the
        result is bit-identical to the matrix reduction.  ``packed=True``
        returns uint64 bitset words instead of a boolean row.
        """
        inner = np.asarray(inner, dtype=np.float32)
        outer = np.asarray(outer, dtype=np.float32)
        if (inner < 0).any() or (outer < inner).any():
            raise ValueError("bad ring radii")
        block = self.field_block(lats, lons)
        acc = (block[0] >= inner[0]) & (block[0] <= outer[0])
        lower = np.empty_like(acc)
        upper = np.empty_like(acc)
        for i in range(1, block.shape[0]):
            np.greater_equal(block[i], inner[i], out=lower)
            np.less_equal(block[i], outer[i], out=upper)
            lower &= upper
            acc &= lower
        return pack_bits(acc) if packed else acc

    def ring_votes(self, lats: Sequence[float], lons: Sequence[float],
                   inner: Sequence[float], outer: Sequence[float]
                   ) -> np.ndarray:
        """Per-cell count of covering annuli (Octant's unit-weight votes).

        Equivalent to ``ring_masks(...).sum(axis=0, dtype=int32)`` —
        integer addition is exact, so accumulating one ring at a time
        into a single int32 row changes nothing but the peak footprint
        (one boolean scratch row instead of the ``(k, n_cells)`` matrix).
        """
        inner = np.asarray(inner, dtype=np.float32)
        outer = np.asarray(outer, dtype=np.float32)
        if (inner < 0).any() or (outer < inner).any():
            raise ValueError("bad ring radii")
        block = self.field_block(lats, lons)
        votes = np.zeros(block.shape[1], dtype=np.int32)
        lower = np.empty(block.shape[1], dtype=bool)
        upper = np.empty(block.shape[1], dtype=bool)
        for i in range(block.shape[0]):
            np.greater_equal(block[i], inner[i], out=lower)
            np.less_equal(block[i], outer[i], out=upper)
            lower &= upper
            votes += lower
        return votes

    def gaussian_log_likelihood(self, lats: Sequence[float],
                                lons: Sequence[float],
                                mu: Sequence[float], sigma: Sequence[float],
                                columns: Optional[np.ndarray] = None
                                ) -> np.ndarray:
        """Summed Gaussian ring log-likelihood over the grid.

        Accumulates landmark by landmark in float64, preserving the exact
        addition order (and therefore the exact rounding) of the scalar
        implementation it replaces.
        """
        mu = np.asarray(mu, dtype=np.float64)
        sigma = np.asarray(sigma, dtype=np.float64)
        if (sigma <= 0).any():
            raise ValueError("sigma must be positive")
        block = self.field_block(lats, lons)
        if columns is not None:
            block = block[:, columns]
        log_likelihood = np.zeros(block.shape[1], dtype=np.float64)
        for i in range(block.shape[0]):
            distances = block[i].astype(np.float64)
            log_likelihood -= ((distances - mu[i]) ** 2) / (2.0 * sigma[i] ** 2)
        return log_likelihood
