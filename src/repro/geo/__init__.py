"""World model: countries, continents, the analysis grid, regions, data centres.

This package is the reproduction's substitute for the Natural Earth map and
the Wisconsin Internet Atlas data-centre list the paper used.  See
DESIGN.md for the substitution rationale.
"""

from .bank import DistanceBank
from .countries import CONTINENT_NAMES, CONTINENTS, Country, CountryRegistry
from .datacenters import DataCenter, DataCenterRegistry
from .grid import Grid
from .region import Region
from .worldmap import OCEAN, WorldMap

__all__ = [
    "CONTINENTS",
    "CONTINENT_NAMES",
    "Country",
    "CountryRegistry",
    "DataCenter",
    "DataCenterRegistry",
    "DistanceBank",
    "Grid",
    "OCEAN",
    "Region",
    "WorldMap",
]
