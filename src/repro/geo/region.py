"""Prediction regions: sets of grid cells with geometric queries.

Every geolocation algorithm in :mod:`repro.core` ultimately produces a
:class:`Region` — the set of places the target could be.  Regions support
the operations the paper's evaluation needs:

* set algebra (intersection/union/difference) for multilateration,
* area in km² (Figure 9 panel C, Figure 11, Figure 20),
* centroid (Figure 9 panel B, Figure 20),
* distance from a point to the region's edge (Figure 9 panel A),
* country/continent coverage (the credible/uncertain/false assessment).

Regions are immutable in style: operations return new regions and never
mutate ``self.mask`` in place (callers may share masks).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

import numpy as np

from ..geodesy.geometry import SphericalDisk, SphericalRing
from ..geodesy.greatcircle import haversine_km_vec
from .grid import Grid


class Region:
    """A set of grid cells on an analysis :class:`~repro.geo.grid.Grid`."""

    __slots__ = ("grid", "mask")

    def __init__(self, grid: Grid, mask: np.ndarray):
        if mask.shape != (grid.n_cells,):
            raise ValueError(
                f"mask shape {mask.shape} does not match grid with {grid.n_cells} cells")
        if mask.dtype != np.bool_:
            mask = mask.astype(bool)
        self.grid = grid
        self.mask = mask

    # -- constructors -------------------------------------------------------

    @classmethod
    def empty(cls, grid: Grid) -> "Region":
        return cls(grid, np.zeros(grid.n_cells, dtype=bool))

    @classmethod
    def full(cls, grid: Grid) -> "Region":
        return cls(grid, np.ones(grid.n_cells, dtype=bool))

    @classmethod
    def from_disk(cls, grid: Grid, disk: SphericalDisk) -> "Region":
        return cls(grid, grid.disk_mask(disk.lat, disk.lon, disk.radius_km))

    @classmethod
    def from_ring(cls, grid: Grid, ring: SphericalRing) -> "Region":
        return cls(grid, grid.ring_mask(ring.lat, ring.lon, ring.inner_km, ring.outer_km))

    @classmethod
    def from_cells(cls, grid: Grid, indices: Iterable[int]) -> "Region":
        mask = np.zeros(grid.n_cells, dtype=bool)
        for index in indices:
            if not (0 <= index < grid.n_cells):
                raise IndexError(f"cell index out of range: {index!r}")
            mask[index] = True
        return cls(grid, mask)

    # -- set algebra ----------------------------------------------------------

    def intersect(self, other: "Region") -> "Region":
        self._check_same_grid(other)
        return Region(self.grid, self.mask & other.mask)

    def union(self, other: "Region") -> "Region":
        self._check_same_grid(other)
        return Region(self.grid, self.mask | other.mask)

    def difference(self, other: "Region") -> "Region":
        self._check_same_grid(other)
        return Region(self.grid, self.mask & ~other.mask)

    def intersect_mask(self, mask: np.ndarray) -> "Region":
        """Intersect with a raw boolean mask (e.g. a land or latitude mask)."""
        return Region(self.grid, self.mask & mask)

    def _check_same_grid(self, other: "Region") -> None:
        if other.grid is not self.grid:
            raise ValueError("regions live on different grids")

    def __and__(self, other: "Region") -> "Region":
        return self.intersect(other)

    def __or__(self, other: "Region") -> "Region":
        return self.union(other)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Region):
            return NotImplemented
        return self.grid is other.grid and bool(np.array_equal(self.mask, other.mask))

    def __hash__(self):  # regions are mutable-array holders; no hashing
        raise TypeError("Region is unhashable")

    # -- queries ---------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not bool(self.mask.any())

    @property
    def n_cells(self) -> int:
        return int(self.mask.sum())

    def area_km2(self) -> float:
        """Total surface area of the region, km²."""
        return float(self.grid.cell_areas_km2[self.mask].sum())

    def contains(self, lat: float, lon: float) -> bool:
        """Is the cell containing this point part of the region?"""
        return bool(self.mask[self.grid.cell_index(lat, lon)])

    def centroid(self) -> Optional[Tuple[float, float]]:
        """Area-weighted centroid, or None for an empty region.

        Computed via mean 3-D unit vector, so regions straddling the
        antimeridian get a sensible answer.
        """
        if self.is_empty:
            return None
        lats = np.radians(self.grid.cell_lats[self.mask])
        lons = np.radians(self.grid.cell_lons[self.mask])
        weights = self.grid.cell_areas_km2[self.mask]
        x = float(np.average(np.cos(lats) * np.cos(lons), weights=weights))
        y = float(np.average(np.cos(lats) * np.sin(lons), weights=weights))
        z = float(np.average(np.sin(lats), weights=weights))
        norm = np.sqrt(x * x + y * y + z * z)
        if norm < 1e-12:
            # Perfectly antipodally-balanced region; fall back to any cell.
            index = int(np.flatnonzero(self.mask)[0])
            return self.grid.cell_center(index)
        lat = float(np.degrees(np.arcsin(z / norm)))
        lon = float(np.degrees(np.arctan2(y, x)))
        return lat, lon

    def distance_to_point_km(self, lat: float, lon: float) -> float:
        """Distance from the point to the nearest cell of the region.

        Zero when the point is inside the region (the Figure 9A
        "distance from edge to location" metric).  Raises on an empty
        region — an empty prediction has no edge.
        """
        if self.is_empty:
            raise ValueError("empty region has no distance to anything")
        if self.contains(lat, lon):
            return 0.0
        member_lats = self.grid.cell_lats[self.mask]
        member_lons = self.grid.cell_lons[self.mask]
        return float(haversine_km_vec(lat, lon, member_lats, member_lons).min())

    def cell_indices(self) -> np.ndarray:
        """Indices of all member cells (ascending)."""
        return np.flatnonzero(self.mask)

    def sample_points(self, max_points: int = 32) -> List[Tuple[float, float]]:
        """Up to ``max_points`` evenly strided member cell centres.

        Used by disambiguation heuristics that need representative points
        rather than the full raster.
        """
        indices = self.cell_indices()
        if len(indices) == 0:
            return []
        stride = max(1, len(indices) // max_points)
        chosen = indices[::stride][:max_points]
        return [self.grid.cell_center(int(i)) for i in chosen]

    def __repr__(self) -> str:
        return (f"Region(cells={self.n_cells}/{self.grid.n_cells}, "
                f"area={self.area_km2():.0f} km2)")
