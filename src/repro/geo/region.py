"""Prediction regions: sets of grid cells with geometric queries.

Every geolocation algorithm in :mod:`repro.core` ultimately produces a
:class:`Region` — the set of places the target could be.  Regions support
the operations the paper's evaluation needs:

* set algebra (intersection/union/difference) for multilateration,
* area in km² (Figure 9 panel C, Figure 11, Figure 20),
* centroid (Figure 9 panel B, Figure 20),
* distance from a point to the region's edge (Figure 9 panel A),
* country/continent coverage (the credible/uncertain/false assessment).

Since PR 4 the *native* representation is a packed uint64 bitset — one
bit per grid cell, padding bits always zero — plus a lazily built
per-block popcount index.  A fleet audit holds one region per audited
server resident in memory, and packing shrinks that footprint ~8x while
letting set algebra, emptiness tests, and country-overlap checks run as
word-wide AND/OR/popcount instead of byte-per-cell boolean sweeps.  The
historical boolean API (``region.mask``) remains available as a lazy,
cached view, so read-side consumers keep working unchanged.

Two invariants keep the packed engine bit-identical to the boolean
reference it replaced (set ``REPRO_REGION_ENGINE=bool`` to get the
reference back):

* boolean decisions (emptiness, overlap, membership) are computed on
  words but are logically equal to the mask versions because padding
  bits are zero by construction;
* float reductions (area, centroid, distances) always gather *the same
  member vector in the same order* (``values[mask]`` and
  ``values[flatnonzero(mask)]`` are the same array) and reduce it with
  the same NumPy calls, so not a single ulp moves.

Regions are immutable in style: operations return new regions and never
mutate ``self.mask`` in place (callers may share masks).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from .. import config, sanitize
from ..geodesy.geometry import SphericalDisk, SphericalRing
from ..geodesy.greatcircle import haversine_km_vec
from .grid import Grid

#: Environment switch for the region engine: ``packed`` (default) stores
#: uint64 bitsets natively; ``bool`` restores the boolean reference.
#: Declared in :mod:`repro.config`; kept here for importers.
REGION_ENGINE_ENV = config.REGION_ENGINE.name

#: Words per block of the popcount index (32 words = 2048 cells): small
#: enough that member gathers skip empty ocean wholesale, large enough
#: that the index itself stays a few hundred bytes per region.
WORDS_PER_BLOCK = 32


def region_engine() -> str:
    """The active region engine, from ``REPRO_REGION_ENGINE``.

    An unrecognised value is a hard :class:`~repro.config.KnobError`
    (a ``ValueError``) naming the allowed engines — never a silent
    fallback to a default engine.
    """
    engine = config.env_value(REGION_ENGINE_ENV)
    assert isinstance(engine, str)
    return engine


def _sanitize_operands(context: str, *regions: "Region") -> None:
    """Re-verify operand padding under ``REPRO_SANITIZE=1``.

    Padding is clear by construction (:meth:`Region.from_words` rejects
    dirty words), but a shared word buffer corrupted *in place* after
    construction can poison ops whose results stay padding-clear (e.g.
    ``difference``'s ``self & ~other``) without tripping any always-on
    check — this boundary assertion catches that the moment the buffer
    feeds an operation.
    """
    if not sanitize.enabled():
        return
    for region in regions:
        if region._words is not None:
            sanitize.check_region_padding(
                region._words, region.grid.n_cells, context)


def n_words_for(n_bits: int) -> int:
    """uint64 words needed to hold ``n_bits`` packed bits."""
    return (n_bits + 63) // 64


def pack_bits(mask: np.ndarray) -> np.ndarray:
    """Pack a boolean vector (or ``(k, n)`` matrix) into uint64 words.

    Bit order matches :func:`numpy.packbits` (MSB-first within each
    byte); padding bits beyond the mask length are zero, so word-level
    AND/OR/any/popcount agree exactly with the boolean operations.
    """
    matrix = np.asarray(mask)
    if matrix.dtype != np.bool_:
        matrix = matrix.astype(bool)
    squeeze = matrix.ndim == 1
    if squeeze:
        matrix = matrix[None, :]
    packed8 = np.packbits(matrix, axis=-1)
    pad = (-packed8.shape[-1]) % 8
    if pad:
        packed8 = np.concatenate(
            [packed8, np.zeros((packed8.shape[0], pad), dtype=np.uint8)],
            axis=-1)
    words = np.ascontiguousarray(packed8).view(np.uint64)
    return words[0] if squeeze else words


def unpack_bits(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Invert :func:`pack_bits` for a single packed row."""
    return np.unpackbits(words.view(np.uint8), count=n_bits).astype(bool)


def _tail_keep_byte_mask(n_bits: int) -> Tuple[int, int]:
    """(index of first padding byte, keep-mask for the straddling byte)."""
    full_bytes, spare_bits = divmod(n_bits, 8)
    keep = (0xFF << (8 - spare_bits)) & 0xFF if spare_bits else 0
    return full_bytes, keep


def _check_padding_clear(words: np.ndarray, n_bits: int) -> bool:
    """Are all bits beyond ``n_bits`` zero?"""
    n_bytes = (n_bits + 7) // 8
    as_bytes = words.view(np.uint8)
    first_pad_byte, keep = _tail_keep_byte_mask(n_bits)
    if first_pad_byte < n_bytes and int(as_bytes[first_pad_byte]) & (~keep & 0xFF):
        return False
    return not as_bytes[n_bytes:].any()


class Region:
    """A set of grid cells on an analysis :class:`~repro.geo.grid.Grid`."""

    __slots__ = ("grid", "_mask", "_words", "_packed",
                 "_block_pop", "_area_km2", "_n_members")

    def __init__(self, grid: Grid, mask: np.ndarray):
        if mask.shape != (grid.n_cells,):
            raise ValueError(
                f"mask shape {mask.shape} does not match grid with {grid.n_cells} cells")
        if mask.dtype != np.bool_:
            mask = mask.astype(bool)
        self.grid = grid
        self._block_pop = None
        self._area_km2 = None
        self._n_members = None
        if region_engine() == "packed":
            self._packed = True
            self._words = pack_bits(mask)
            self._mask = None
        else:
            self._packed = False
            self._mask = mask
            self._words = None

    # -- constructors -------------------------------------------------------

    @classmethod
    def empty(cls, grid: Grid) -> "Region":
        if region_engine() == "packed":
            return cls.from_words(
                grid, np.zeros(n_words_for(grid.n_cells), dtype=np.uint64))
        return cls(grid, np.zeros(grid.n_cells, dtype=bool))

    @classmethod
    def full(cls, grid: Grid) -> "Region":
        if region_engine() == "packed":
            return cls.from_words(grid, _full_words(grid.n_cells))
        return cls(grid, np.ones(grid.n_cells, dtype=bool))

    @classmethod
    def from_disk(cls, grid: Grid, disk: SphericalDisk) -> "Region":
        return cls(grid, grid.disk_mask(disk.lat, disk.lon, disk.radius_km))

    @classmethod
    def from_ring(cls, grid: Grid, ring: SphericalRing) -> "Region":
        return cls(grid, grid.ring_mask(ring.lat, ring.lon, ring.inner_km, ring.outer_km))

    @classmethod
    def from_cells(cls, grid: Grid, indices: Iterable[int]) -> "Region":
        mask = np.zeros(grid.n_cells, dtype=bool)
        for index in indices:
            if not (0 <= index < grid.n_cells):
                raise IndexError(f"cell index out of range: {index!r}")
            mask[index] = True
        return cls(grid, mask)

    @classmethod
    def from_words(cls, grid: Grid, words: np.ndarray) -> "Region":
        """Adopt packed uint64 words directly (padding bits must be zero).

        This is the zero-copy constructor the packed mask kernels and the
        checkpoint round-trip use; the boolean view is built lazily only
        if some consumer asks for it.
        """
        words = np.ascontiguousarray(words, dtype=np.uint64)
        expected = n_words_for(grid.n_cells)
        if words.shape != (expected,):
            raise ValueError(
                f"words shape {words.shape} does not match grid needing "
                f"{expected} uint64 words")
        if not _check_padding_clear(words, grid.n_cells):
            raise ValueError("packed region has set bits beyond n_cells")
        region = cls.__new__(cls)
        region.grid = grid
        region._block_pop = None
        region._area_km2 = None
        region._n_members = None
        if region_engine() == "packed":
            region._packed = True
            region._words = words
            region._mask = None
        else:
            region._packed = False
            region._mask = unpack_bits(words, grid.n_cells)
            region._words = None
        return region

    @classmethod
    def from_packbits(cls, grid: Grid, data: bytes) -> "Region":
        """Rebuild a region from :meth:`packed_bytes` output.

        The byte string is exactly ``np.packbits(mask).tobytes()`` — the
        format audit payloads and checkpoint journals carry — so in the
        packed engine this is a straight copy into words with no
        cell-level unpacking at all.
        """
        expected = (grid.n_cells + 7) // 8
        if len(data) != expected:
            raise ValueError(
                f"packed region has {len(data)} bytes; grid needs {expected}")
        as_bytes = np.frombuffer(data, dtype=np.uint8)
        pad = (-len(data)) % 8
        if pad:
            as_bytes = np.concatenate(
                [as_bytes, np.zeros(pad, dtype=np.uint8)])
        return cls.from_words(grid, np.ascontiguousarray(as_bytes).view(np.uint64))

    # -- representations ----------------------------------------------------

    @property
    def mask(self) -> np.ndarray:
        """Boolean view of the region (lazy, cached).  Treat as read-only."""
        if self._mask is None:
            self._mask = unpack_bits(self._words, self.grid.n_cells)
        return self._mask

    @property
    def words(self) -> np.ndarray:
        """Packed uint64 view (lazy, cached).  Treat as read-only."""
        if self._words is None:
            self._words = pack_bits(self._mask)
        return self._words

    @property
    def is_packed_native(self) -> bool:
        """Does this region store packed words as its primary form?"""
        return self._packed

    @property
    def has_bool_view(self) -> bool:
        """Has the boolean view been materialised (and cached)?"""
        return self._mask is not None

    def resident_nbytes(self) -> int:
        """Bytes this region currently keeps resident (all cached forms)."""
        total = 0
        if self._words is not None:
            total += self._words.nbytes
        if self._mask is not None:
            total += self._mask.nbytes
        if self._block_pop is not None:
            total += self._block_pop.nbytes
        return total

    def packed_bytes(self) -> bytes:
        """``np.packbits(self.mask).tobytes()``, straight from the words.

        The exact byte string the checkpoint journal stores, with the
        word-level zero padding truncated away.
        """
        _sanitize_operands("Region.packed_bytes", self)
        n_bytes = (self.grid.n_cells + 7) // 8
        if self._packed or self._words is not None:
            return self._words.view(np.uint8)[:n_bytes].tobytes()
        return np.packbits(self._mask).tobytes()

    @property
    def block_popcounts(self) -> np.ndarray:
        """Member count per :data:`WORDS_PER_BLOCK`-word block (cached).

        The coarse index lets member gathers, area, and iteration skip
        all-zero stretches of ocean without touching cell-level data.
        """
        if self._block_pop is None:
            counts = np.bitwise_count(self.words)
            boundaries = np.arange(0, len(counts), WORDS_PER_BLOCK)
            self._block_pop = np.add.reduceat(
                counts.astype(np.int64), boundaries)
        return self._block_pop

    # -- set algebra ----------------------------------------------------------

    def intersect(self, other: "Region") -> "Region":
        self._check_same_grid(other)
        _sanitize_operands("Region.intersect", self, other)
        if self._packed and other._packed:
            return Region.from_words(self.grid, self._words & other._words)
        return Region(self.grid, self.mask & other.mask)

    def union(self, other: "Region") -> "Region":
        self._check_same_grid(other)
        _sanitize_operands("Region.union", self, other)
        if self._packed and other._packed:
            return Region.from_words(self.grid, self._words | other._words)
        return Region(self.grid, self.mask | other.mask)

    def difference(self, other: "Region") -> "Region":
        self._check_same_grid(other)
        _sanitize_operands("Region.difference", self, other)
        if self._packed and other._packed:
            # other's padding flips to 1 under ~, but self's padding is 0,
            # so the AND keeps the result's padding clear.
            return Region.from_words(self.grid, self._words & ~other._words)
        return Region(self.grid, self.mask & ~other.mask)

    def complement(self) -> "Region":
        """Every cell not in this region."""
        _sanitize_operands("Region.complement", self)
        if self._packed:
            return Region.from_words(
                self.grid, self._words ^ _full_words(self.grid.n_cells))
        return Region(self.grid, ~self.mask)

    def intersect_mask(self, mask: np.ndarray) -> "Region":
        """Intersect with a raw boolean mask (e.g. a land or latitude mask)."""
        _sanitize_operands("Region.intersect_mask", self)
        if self._packed:
            return Region.from_words(self.grid, self._words & pack_bits(mask))
        return Region(self.grid, self.mask & mask)

    def intersect_words(self, words: np.ndarray) -> "Region":
        """Intersect with pre-packed words (e.g. the plausibility bitset).

        The hot path of every prediction's terrain clipping: one AND over
        ~1k words instead of ~65k boolean bytes, with no unpacking.
        """
        _sanitize_operands("Region.intersect_words", self)
        if sanitize.enabled():
            sanitize.check_region_padding(
                np.ascontiguousarray(words, dtype=np.uint64),
                self.grid.n_cells, "Region.intersect_words operand words")
        if self._packed:
            return Region.from_words(self.grid, self._words & words)
        return Region(self.grid, self.mask & unpack_bits(words, self.grid.n_cells))

    def _check_same_grid(self, other: "Region") -> None:
        if other.grid is not self.grid:
            raise ValueError("regions live on different grids")

    def __and__(self, other: "Region") -> "Region":
        return self.intersect(other)

    def __or__(self, other: "Region") -> "Region":
        return self.union(other)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Region):
            return NotImplemented
        if self.grid is not other.grid:
            return False
        if self._words is not None and other._words is not None:
            return bool(np.array_equal(self._words, other._words))
        return bool(np.array_equal(self.mask, other.mask))

    def __hash__(self) -> int:  # regions are mutable-array holders; no hashing
        raise TypeError("Region is unhashable")

    # -- queries ---------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        if self._packed:
            return not bool(self._words.any())
        return not bool(self._mask.any())

    @property
    def n_cells(self) -> int:
        if self._n_members is None:
            if self._packed:
                self._n_members = int(self.block_popcounts.sum())
            else:
                self._n_members = int(self._mask.sum())
        return self._n_members

    def _member_values(self, per_cell: np.ndarray) -> np.ndarray:
        """``per_cell[self.mask]`` without materialising the bool view.

        Integer-gathering by :meth:`cell_indices` yields the identical
        vector (same values, same order), so every float reduction over
        it is bit-identical to the boolean reference.
        """
        if self._mask is not None:
            return per_cell[self._mask]
        return per_cell[self.cell_indices()]

    def area_km2(self) -> float:
        """Total surface area of the region, km²."""
        if self._area_km2 is None:
            self._area_km2 = float(
                self._member_values(self.grid.cell_areas_km2).sum())
        return self._area_km2

    def contains(self, lat: float, lon: float) -> bool:
        """Is the cell containing this point part of the region?"""
        index = self.grid.cell_index(lat, lon)
        if self._mask is not None:
            return bool(self._mask[index])
        byte = self._words.view(np.uint8)[index >> 3]
        return bool((int(byte) >> (7 - (index & 7))) & 1)

    def contains_cells(self, indices: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`contains` over precomputed cell indices.

        Same bit test per cell, so ``contains_cells(cells)[i] ==
        contains(*grid.cell_center(cells[i]))`` for cell-centre points;
        callers resolve points to indices once and reuse them across
        many regions (the data-centre disambiguation pattern).
        """
        indices = np.asarray(indices, dtype=np.intp)
        if self._mask is not None:
            return self._mask[indices]
        view = self._words.view(np.uint8)
        shifts = (7 - (indices & 7)).astype(np.uint8)
        return (view[indices >> 3] >> shifts) & 1 != 0

    def centroid(self) -> Optional[Tuple[float, float]]:
        """Area-weighted centroid, or None for an empty region.

        Computed via mean 3-D unit vector, so regions straddling the
        antimeridian get a sensible answer.
        """
        if self.is_empty:
            return None
        lats = np.radians(self._member_values(self.grid.cell_lats))
        lons = np.radians(self._member_values(self.grid.cell_lons))
        weights = self._member_values(self.grid.cell_areas_km2)
        x = float(np.average(np.cos(lats) * np.cos(lons), weights=weights))
        y = float(np.average(np.cos(lats) * np.sin(lons), weights=weights))
        z = float(np.average(np.sin(lats), weights=weights))
        norm = np.sqrt(x * x + y * y + z * z)
        if norm < 1e-12:
            # Perfectly antipodally-balanced region; fall back to any cell.
            index = int(self.cell_indices()[0])
            return self.grid.cell_center(index)
        lat = float(np.degrees(np.arcsin(z / norm)))
        lon = float(np.degrees(np.arctan2(y, x)))
        return lat, lon

    def distance_to_point_km(self, lat: float, lon: float) -> float:
        """Distance from the point to the nearest cell of the region.

        Zero when the point is inside the region (the Figure 9A
        "distance from edge to location" metric).  Raises on an empty
        region — an empty prediction has no edge.
        """
        if self.is_empty:
            raise ValueError("empty region has no distance to anything")
        if self.contains(lat, lon):
            return 0.0
        member_lats = self._member_values(self.grid.cell_lats)
        member_lons = self._member_values(self.grid.cell_lons)
        return float(haversine_km_vec(lat, lon, member_lats, member_lons).min())

    def cell_indices(self) -> np.ndarray:
        """Indices of all member cells (ascending)."""
        if self._mask is not None:
            return np.flatnonzero(self._mask)
        return self._indices_from_words()

    def _indices_from_words(self) -> np.ndarray:
        """Member cell indices, unpacking only non-empty word blocks."""
        nonzero_blocks = np.flatnonzero(self.block_popcounts)
        if nonzero_blocks.size == 0:
            return np.empty(0, dtype=np.intp)
        words = self._words
        pad = (-len(words)) % WORDS_PER_BLOCK
        if pad:
            words = np.concatenate(
                [words, np.zeros(pad, dtype=np.uint64)])
        blocked = words.reshape(-1, WORDS_PER_BLOCK)[nonzero_blocks]
        bits_per_block = WORDS_PER_BLOCK * 64
        bits = np.unpackbits(
            blocked.view(np.uint8).reshape(len(nonzero_blocks), -1), axis=1)
        flat = np.flatnonzero(bits)
        within = flat % bits_per_block
        base = nonzero_blocks[flat // bits_per_block].astype(np.intp)
        return base * bits_per_block + within

    def sample_points(self, max_points: int = 32) -> List[Tuple[float, float]]:
        """Up to ``max_points`` evenly strided member cell centres.

        Used by disambiguation heuristics that need representative points
        rather than the full raster.
        """
        indices = self.cell_indices()
        if len(indices) == 0:
            return []
        stride = max(1, len(indices) // max_points)
        chosen = indices[::stride][:max_points]
        return [self.grid.cell_center(int(i)) for i in chosen]

    def __repr__(self) -> str:
        return (f"Region(cells={self.n_cells}/{self.grid.n_cells}, "
                f"area={self.area_km2():.0f} km2)")


#: Cache of all-ones word vectors keyed by bit count (grids recur).
_FULL_WORDS: Dict[int, np.ndarray] = {}


def _full_words(n_bits: int) -> np.ndarray:
    words = _FULL_WORDS.get(n_bits)
    if words is None:
        words = pack_bits(np.ones(n_bits, dtype=bool))
        words.setflags(write=False)
        if len(_FULL_WORDS) >= 8:
            _FULL_WORDS.pop(next(iter(_FULL_WORDS)))
        _FULL_WORDS[n_bits] = words
    return words
