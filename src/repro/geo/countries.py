"""Built-in world map: countries as unions of latitude/longitude boxes.

This module is the reproduction's substitute for the Natural Earth
shapefiles the paper used.  Every country is a union of axis-aligned
lat/lon boxes, coarse but positioned correctly, plus a set of "anchor
points" (major population centres) used to resolve cells claimed by more
than one country's boxes.  The world model is *internally consistent*:
hosts, landmarks, proxies, and data centres in :mod:`repro.netsim` are all
placed with these same polygons, so country-level assessments are exact
with respect to the model.

Continent codes follow the paper's Appendix A split:

========  =================================================================
``EU``    Europe, including Russia, Turkey, Iceland, Georgia
``AF``    Africa *and the Middle East* (the paper folds them together)
``AS``    Asia (India through Japan, Central Asia, Iran, Armenia)
``OC``    Oceania, including Malaysia, Singapore, Indonesia, New Zealand
``AU``    Australia (its own continent in Figure 22)
``NA``    Northern North America (USA, Canada, Greenland)
``CA``    Central America, Mexico, and the Caribbean
``SA``    South America
========  =================================================================

Hosting tiers model how easy it is to lease server space (paper section 6):
tier 1 countries have abundant cheap hosting (the places proxies actually
live); tier 2 have commercial data centres; tier 3 are places where hosting
is difficult, rare, or implausible (the long tail of claimed-but-fake
locations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

Box = Tuple[float, float, float, float]  # (lat_min, lat_max, lon_min, lon_max)

CONTINENTS = ("EU", "AF", "AS", "OC", "AU", "NA", "CA", "SA")

CONTINENT_NAMES = {
    "EU": "Europe",
    "AF": "Africa",
    "AS": "Asia",
    "OC": "Oceania",
    "AU": "Australia",
    "NA": "North America",
    "CA": "Central America",
    "SA": "South America",
}


@dataclass(frozen=True)
class Country:
    """One country: code, name, continent, hosting tier, and its footprint."""

    iso2: str
    name: str
    continent: str
    hosting_tier: int
    boxes: Tuple[Box, ...]
    anchors: Tuple[Tuple[float, float], ...] = field(default=())

    def __post_init__(self) -> None:
        if self.continent not in CONTINENTS:
            raise ValueError(f"{self.iso2}: unknown continent {self.continent!r}")
        if self.hosting_tier not in (1, 2, 3):
            raise ValueError(f"{self.iso2}: hosting tier must be 1..3")
        if not self.boxes:
            raise ValueError(f"{self.iso2}: needs at least one box")
        for lat_min, lat_max, lon_min, lon_max in self.boxes:
            if not (-90 <= lat_min < lat_max <= 90):
                raise ValueError(f"{self.iso2}: bad latitude range ({lat_min}, {lat_max})")
            if not (-180 <= lon_min < lon_max <= 180):
                raise ValueError(f"{self.iso2}: bad longitude range ({lon_min}, {lon_max})")
        if not self.anchors:
            object.__setattr__(self, "anchors", tuple(self._box_centers()))

    def _box_centers(self) -> List[Tuple[float, float]]:
        return [((b[0] + b[1]) / 2.0, (b[2] + b[3]) / 2.0) for b in self.boxes]

    @property
    def centroid(self) -> Tuple[float, float]:
        """Representative point: the first anchor (largest population centre)."""
        return self.anchors[0]

    def contains(self, lat: float, lon: float) -> bool:
        """Point-in-footprint test against the raw boxes (no tiebreak)."""
        return any(b[0] <= lat <= b[1] and b[2] <= lon <= b[3] for b in self.boxes)

    def bounding_box(self) -> Box:
        """The tightest single box enclosing every footprint box."""
        return (
            min(b[0] for b in self.boxes),
            max(b[1] for b in self.boxes),
            min(b[2] for b in self.boxes),
            max(b[3] for b in self.boxes),
        )


def _c(iso2: str, name: str, continent: str, tier: int,
       boxes: Sequence[Box], anchors: Sequence[Tuple[float, float]] = ()) -> Country:
    return Country(iso2, name, continent, tier, tuple(boxes), tuple(anchors))


# ---------------------------------------------------------------------------
# The registry.  Boxes are deliberately coarse (the paper evaluates claims at
# country granularity only); anchors are real major-city coordinates.
# ---------------------------------------------------------------------------

_COUNTRY_DATA: List[Country] = [
    # --- Europe ------------------------------------------------------------
    _c("DE", "Germany", "EU", 1, [(47.3, 55.1, 5.9, 15.0)],
       [(52.52, 13.40), (50.11, 8.68), (48.14, 11.58), (53.55, 9.99)]),
    _c("CZ", "Czech Republic", "EU", 1, [(48.5, 51.1, 12.1, 18.9)], [(50.08, 14.44), (49.20, 16.61)]),
    _c("PL", "Poland", "EU", 1, [(49.0, 54.8, 14.1, 24.1)], [(52.23, 21.01), (50.06, 19.94)]),
    _c("NL", "Netherlands", "EU", 1, [(50.8, 53.6, 3.3, 7.2)], [(52.37, 4.90), (51.92, 4.48)]),
    _c("BE", "Belgium", "EU", 2, [(49.5, 51.5, 2.5, 6.4)], [(50.85, 4.35), (51.22, 4.40)]),
    _c("FR", "France", "EU", 1, [(42.3, 51.1, -4.8, 8.2)],
       [(48.86, 2.35), (45.76, 4.84), (43.30, 5.37), (44.84, -0.58)]),
    _c("LU", "Luxembourg", "EU", 2, [(49.4, 50.2, 5.7, 6.5)], [(49.61, 6.13)]),
    _c("AT", "Austria", "EU", 2, [(46.4, 49.0, 9.5, 17.2)], [(48.21, 16.37)]),
    _c("CH", "Switzerland", "EU", 1, [(45.8, 47.8, 6.0, 10.5)], [(47.38, 8.54), (46.20, 6.14)]),
    _c("IT", "Italy", "EU", 1, [(36.6, 47.1, 6.6, 18.5)], [(41.89, 12.49), (45.46, 9.19)]),
    _c("LI", "Liechtenstein", "EU", 3, [(47.0, 47.3, 9.4, 9.7)], [(47.14, 9.52)]),
    _c("DK", "Denmark", "EU", 2, [(54.5, 57.8, 8.0, 12.7)], [(55.68, 12.57)]),
    _c("GB", "United Kingdom", "EU", 1, [(49.9, 58.7, -8.2, 1.8)],
       [(51.51, -0.13), (53.48, -2.24), (55.95, -3.19)]),
    _c("SI", "Slovenia", "EU", 2, [(45.4, 46.9, 13.4, 16.6)], [(46.06, 14.51)]),
    _c("SK", "Slovakia", "EU", 2, [(47.7, 49.6, 16.8, 22.6)], [(48.15, 17.11)]),
    _c("SE", "Sweden", "EU", 1, [(55.3, 69.1, 11.1, 24.2)], [(59.33, 18.07), (57.71, 11.97)]),
    _c("HU", "Hungary", "EU", 2, [(45.7, 48.6, 16.1, 22.9)], [(47.50, 19.04)]),
    _c("HR", "Croatia", "EU", 2, [(42.4, 46.5, 13.5, 19.4)], [(45.81, 15.98)]),
    _c("BA", "Bosnia and Herzegovina", "EU", 3, [(42.6, 45.3, 15.7, 19.6)], [(43.86, 18.41)]),
    _c("NO", "Norway", "EU", 2, [(58.0, 71.2, 4.6, 31.1)], [(59.91, 10.75)]),
    _c("RU", "Russia", "EU", 1, [(41.2, 77.0, 27.3, 180.0), (54.3, 55.3, 19.9, 22.9)],
       [(55.76, 37.62), (59.93, 30.36), (55.03, 82.92), (43.12, 131.89)]),
    _c("RS", "Serbia", "EU", 2, [(42.2, 46.2, 18.8, 23.0)], [(44.79, 20.45)]),
    _c("IE", "Ireland", "EU", 1, [(51.4, 55.4, -10.5, -6.0)], [(53.35, -6.26)]),
    _c("RO", "Romania", "EU", 1, [(43.6, 48.3, 20.2, 29.7)], [(44.43, 26.10)]),
    _c("LT", "Lithuania", "EU", 2, [(53.9, 56.4, 21.0, 26.8)], [(54.69, 25.28)]),
    _c("BY", "Belarus", "EU", 3, [(51.3, 56.2, 23.2, 32.8)], [(53.90, 27.57)]),
    _c("ES", "Spain", "EU", 1, [(36.0, 43.8, -9.3, 3.3)], [(40.42, -3.70), (41.39, 2.17)]),
    _c("UA", "Ukraine", "EU", 2, [(44.4, 52.4, 22.1, 40.2)], [(50.45, 30.52)]),
    _c("ME", "Montenegro", "EU", 3, [(41.9, 43.6, 18.4, 20.4)], [(42.44, 19.26)]),
    _c("BG", "Bulgaria", "EU", 2, [(41.2, 44.2, 22.4, 28.6)], [(42.70, 23.32)]),
    _c("AL", "Albania", "EU", 3, [(39.6, 42.7, 19.3, 21.1)], [(41.33, 19.82)]),
    _c("LV", "Latvia", "EU", 1, [(55.7, 58.1, 20.9, 28.2)], [(56.95, 24.11)]),
    _c("MK", "North Macedonia", "EU", 3, [(40.9, 42.4, 20.5, 23.0)], [(41.99, 21.43)]),
    _c("GR", "Greece", "EU", 2, [(34.8, 41.8, 19.4, 28.3)], [(37.98, 23.73)]),
    _c("PT", "Portugal", "EU", 2, [(36.9, 42.2, -9.5, -6.2)], [(38.72, -9.14)]),
    _c("EE", "Estonia", "EU", 2, [(57.5, 59.7, 21.8, 28.2)], [(59.44, 24.75)]),
    _c("TR", "Turkey", "EU", 2, [(35.8, 42.1, 26.0, 44.8)], [(41.01, 28.98), (39.93, 32.87)]),
    _c("MD", "Moldova", "EU", 3, [(45.5, 48.5, 26.6, 30.2)], [(47.01, 28.86)]),
    _c("MT", "Malta", "EU", 3, [(35.8, 36.1, 14.2, 14.6)], [(35.90, 14.51)]),
    _c("FI", "Finland", "EU", 2, [(59.8, 70.1, 20.6, 31.6)], [(60.17, 24.94)]),
    _c("IS", "Iceland", "EU", 2, [(63.3, 66.6, -24.5, -13.5)], [(64.15, -21.94)]),
    _c("GE", "Georgia", "EU", 3, [(41.1, 43.6, 40.0, 46.7)], [(41.72, 44.78)]),
    _c("VA", "Vatican City", "EU", 3, [(41.88, 41.92, 12.42, 12.47)], [(41.90, 12.45)]),
    _c("AD", "Andorra", "EU", 3, [(42.4, 42.7, 1.4, 1.8)], [(42.51, 1.52)]),
    _c("MC", "Monaco", "EU", 3, [(43.7, 43.78, 7.38, 7.46)], [(43.73, 7.42)]),
    _c("SM", "San Marino", "EU", 3, [(43.88, 44.0, 12.4, 12.52)], [(43.94, 12.46)]),
    _c("XK", "Kosovo", "EU", 3, [(41.9, 43.2, 20.0, 21.8)], [(42.66, 21.17)]),
    _c("GI", "Gibraltar", "EU", 3, [(36.1, 36.16, -5.37, -5.33)], [(36.14, -5.35)]),
    _c("JE", "Jersey", "EU", 3, [(49.16, 49.27, -2.26, -2.0)], [(49.19, -2.11)]),
    _c("GG", "Guernsey", "EU", 3, [(49.4, 49.52, -2.68, -2.45)], [(49.45, -2.54)]),
    _c("IM", "Isle of Man", "EU", 3, [(54.03, 54.42, -4.85, -4.3)], [(54.15, -4.48)]),
    _c("FO", "Faroe Islands", "EU", 3, [(61.4, 62.4, -7.7, -6.2)], [(62.01, -6.77)]),
    _c("AX", "Aland Islands", "EU", 3, [(59.9, 60.5, 19.3, 21.1)], [(60.10, 19.94)]),
    _c("CY", "Cyprus", "AF", 2, [(34.6, 35.7, 32.3, 34.6)], [(35.17, 33.36)]),
    # --- Africa and the Middle East -----------------------------------------
    _c("DZ", "Algeria", "AF", 2, [(19.0, 37.1, -8.7, 12.0)], [(36.75, 3.06)]),
    _c("TN", "Tunisia", "AF", 3, [(30.2, 37.5, 7.5, 11.6)], [(36.81, 10.18)]),
    _c("LY", "Libya", "AF", 3, [(19.5, 33.2, 9.3, 25.2)], [(32.89, 13.19)]),
    _c("MA", "Morocco", "AF", 2, [(27.7, 35.9, -13.2, -1.0)], [(33.57, -7.59)]),
    _c("EG", "Egypt", "AF", 2, [(22.0, 31.7, 24.7, 36.9)], [(30.04, 31.24)]),
    _c("IL", "Israel", "AF", 1, [(29.5, 33.3, 34.3, 35.9)], [(32.09, 34.78)]),
    _c("LB", "Lebanon", "AF", 3, [(33.0, 34.7, 35.1, 36.6)], [(33.89, 35.50)]),
    _c("SY", "Syria", "AF", 3, [(32.3, 37.3, 35.7, 42.4)], [(33.51, 36.29)]),
    _c("JO", "Jordan", "AF", 3, [(29.2, 33.4, 34.9, 39.3)], [(31.95, 35.93)]),
    _c("IQ", "Iraq", "AF", 3, [(29.1, 37.4, 38.8, 48.6)], [(33.31, 44.36)]),
    _c("SA", "Saudi Arabia", "AF", 2, [(16.4, 32.2, 34.5, 55.7)], [(24.71, 46.68)]),
    _c("KW", "Kuwait", "AF", 3, [(28.5, 30.1, 46.6, 48.4)], [(29.38, 47.98)]),
    _c("BH", "Bahrain", "AF", 3, [(25.8, 26.3, 50.4, 50.7)], [(26.23, 50.59)]),
    _c("QA", "Qatar", "AF", 3, [(24.5, 26.2, 50.8, 51.6)], [(25.29, 51.53)]),
    _c("AE", "United Arab Emirates", "AF", 2, [(22.6, 26.1, 51.5, 56.4)], [(25.20, 55.27)]),
    _c("OM", "Oman", "AF", 3, [(16.6, 26.4, 52.0, 59.8)], [(23.59, 58.41)]),
    _c("YE", "Yemen", "AF", 3, [(12.1, 19.0, 42.5, 54.5)], [(15.37, 44.19)]),
    _c("NG", "Nigeria", "AF", 2, [(4.3, 13.9, 2.7, 14.7)], [(6.52, 3.38), (9.06, 7.49)]),
    _c("SN", "Senegal", "AF", 3, [(12.3, 16.7, -17.5, -11.4)], [(14.72, -17.47)]),
    _c("GH", "Ghana", "AF", 2, [(4.7, 11.2, -3.3, 1.2)], [(5.60, -0.19)]),
    _c("CM", "Cameroon", "AF", 3, [(1.7, 13.1, 8.5, 16.2)], [(4.05, 9.70)]),
    _c("CI", "Ivory Coast", "AF", 3, [(4.4, 10.7, -8.6, -2.5)], [(5.36, -4.01)]),
    _c("KE", "Kenya", "AF", 2, [(-4.7, 5.0, 33.9, 41.9)], [(-1.29, 36.82)]),
    _c("ET", "Ethiopia", "AF", 3, [(3.4, 14.9, 33.0, 48.0)], [(9.01, 38.75)]),
    _c("TZ", "Tanzania", "AF", 3, [(-11.7, -1.0, 29.3, 40.4)], [(-6.79, 39.21)]),
    _c("UG", "Uganda", "AF", 3, [(-1.5, 4.2, 29.6, 35.0)], [(0.35, 32.58)]),
    _c("ZA", "South Africa", "AF", 1, [(-34.8, -22.1, 16.5, 32.9)],
       [(-26.20, 28.05), (-33.92, 18.42)]),
    _c("ZW", "Zimbabwe", "AF", 3, [(-22.4, -15.6, 25.2, 33.1)], [(-17.83, 31.05)]),
    _c("MZ", "Mozambique", "AF", 3, [(-26.9, -10.5, 30.2, 40.8)], [(-25.97, 32.58)]),
    _c("MG", "Madagascar", "AF", 3, [(-25.6, -12.0, 43.2, 50.5)], [(-18.88, 47.51)]),
    _c("MU", "Mauritius", "AF", 3, [(-20.5, -19.9, 57.3, 57.8)], [(-20.16, 57.50)]),
    _c("SC", "Seychelles", "AF", 3, [(-4.8, -4.5, 55.4, 55.6)], [(-4.62, 55.45)]),
    _c("SD", "Sudan", "AF", 3, [(8.7, 22.0, 21.8, 38.6)], [(15.50, 32.56)]),
    _c("ML", "Mali", "AF", 3, [(10.2, 25.0, -12.2, 4.3)], [(12.64, -8.00)]),
    _c("NE", "Niger", "AF", 3, [(11.7, 23.5, 0.2, 16.0)], [(13.51, 2.13)]),
    _c("TD", "Chad", "AF", 3, [(7.4, 23.4, 13.5, 24.0)], [(12.13, 15.06)]),
    _c("MR", "Mauritania", "AF", 3, [(14.7, 27.3, -17.1, -4.8)], [(18.09, -15.98)]),
    _c("BF", "Burkina Faso", "AF", 3, [(9.4, 15.1, -5.5, 2.4)], [(12.37, -1.52)]),
    _c("AO", "Angola", "AF", 3, [(-18.0, -4.4, 11.7, 24.1)], [(-8.84, 13.23)]),
    _c("CD", "DR Congo", "AF", 3, [(-13.5, 5.4, 12.2, 31.3)], [(-4.32, 15.31)]),
    _c("ZM", "Zambia", "AF", 3, [(-18.1, -8.2, 22.0, 33.7)], [(-15.39, 28.32)]),
    _c("BW", "Botswana", "AF", 3, [(-26.9, -17.8, 20.0, 29.4)], [(-24.63, 25.92)]),
    _c("NA", "Namibia", "AF", 3, [(-29.0, -16.9, 11.7, 25.3)], [(-22.56, 17.08)]),
    _c("DJ", "Djibouti", "AF", 3, [(10.9, 12.7, 41.8, 43.4)], [(11.59, 43.15)]),
    _c("SO", "Somalia", "AF", 3, [(-1.7, 12.0, 41.0, 51.4)], [(2.05, 45.32)]),
    _c("CV", "Cape Verde", "AF", 3, [(14.8, 17.2, -25.4, -22.7)], [(14.93, -23.51)]),
    _c("GM", "Gambia", "AF", 3, [(13.0, 13.9, -16.9, -13.8)], [(13.45, -16.58)]),
    _c("SL", "Sierra Leone", "AF", 3, [(6.9, 10.0, -13.4, -10.3)], [(8.47, -13.23)]),
    _c("LR", "Liberia", "AF", 3, [(4.3, 8.6, -11.6, -7.4)], [(6.30, -10.80)]),
    _c("TG", "Togo", "AF", 3, [(6.1, 11.1, -0.2, 1.8)], [(6.14, 1.21)]),
    _c("BJ", "Benin", "AF", 3, [(6.2, 12.4, 0.8, 3.9)], [(6.37, 2.39)]),
    _c("GA", "Gabon", "AF", 3, [(-4.0, 2.3, 8.7, 14.5)], [(0.39, 9.45)]),
    _c("CG", "Congo", "AF", 3, [(-5.1, 3.7, 11.2, 18.6)], [(-4.27, 15.28)]),
    _c("RW", "Rwanda", "AF", 3, [(-2.9, -1.0, 28.9, 30.9)], [(-1.94, 30.06)]),
    _c("BI", "Burundi", "AF", 3, [(-4.5, -2.3, 29.0, 30.9)], [(-3.38, 29.36)]),
    _c("MW", "Malawi", "AF", 3, [(-17.2, -9.4, 32.7, 35.9)], [(-13.97, 33.79)]),
    _c("LS", "Lesotho", "AF", 3, [(-30.7, -28.6, 27.0, 29.5)], [(-29.31, 27.48)]),
    _c("SZ", "Eswatini", "AF", 3, [(-27.3, -25.7, 30.8, 32.2)], [(-26.31, 31.14)]),
    _c("GN", "Guinea", "AF", 3, [(7.2, 12.7, -15.1, -7.6)], [(9.64, -13.58)]),
    # --- Asia ----------------------------------------------------------------
    _c("CN", "China", "AS", 1, [(18.2, 53.6, 73.5, 134.8)],
       [(39.90, 116.41), (31.23, 121.47), (23.13, 113.26), (30.57, 104.07)]),
    _c("IN", "India", "AS", 1, [(8.1, 35.5, 68.1, 97.4)],
       [(19.08, 72.88), (28.61, 77.21), (12.97, 77.59), (22.57, 88.36)]),
    _c("JP", "Japan", "AS", 1, [(31.0, 45.5, 129.4, 145.8)], [(35.68, 139.69), (34.69, 135.50)]),
    _c("KR", "South Korea", "AS", 1, [(34.4, 38.6, 126.1, 129.6)], [(37.57, 126.98)]),
    _c("KP", "North Korea", "AS", 3, [(37.7, 43.0, 124.2, 130.7)], [(39.03, 125.75)]),
    _c("TW", "Taiwan", "AS", 2, [(21.9, 25.3, 120.0, 122.0)], [(25.03, 121.57)]),
    _c("HK", "Hong Kong", "AS", 1, [(22.15, 22.56, 113.84, 114.41)], [(22.32, 114.17)]),
    _c("MO", "Macao", "AS", 3, [(22.06, 22.22, 113.52, 113.60)], [(22.20, 113.55)]),
    _c("TH", "Thailand", "AS", 2, [(5.6, 20.5, 97.3, 105.6)], [(13.76, 100.50)]),
    _c("VN", "Vietnam", "AS", 2, [(8.6, 23.4, 102.1, 109.5)], [(21.03, 105.85), (10.82, 106.63)]),
    _c("LA", "Laos", "AS", 3, [(13.9, 22.5, 100.1, 107.7)], [(17.98, 102.63)]),
    _c("KH", "Cambodia", "AS", 3, [(10.4, 14.7, 102.3, 107.6)], [(11.56, 104.92)]),
    _c("MM", "Myanmar", "AS", 3, [(9.8, 28.5, 92.2, 101.2)], [(16.87, 96.20)]),
    _c("BD", "Bangladesh", "AS", 3, [(20.7, 26.6, 88.0, 92.7)], [(23.81, 90.41)]),
    _c("LK", "Sri Lanka", "AS", 3, [(5.9, 9.8, 79.7, 81.9)], [(6.93, 79.85)]),
    _c("NP", "Nepal", "AS", 3, [(26.3, 30.4, 80.1, 88.2)], [(27.72, 85.32)]),
    _c("PK", "Pakistan", "AS", 2, [(23.7, 37.1, 60.9, 77.8)], [(24.86, 67.01), (31.55, 74.34)]),
    _c("AF", "Afghanistan", "AS", 3, [(29.4, 38.5, 60.5, 74.9)], [(34.56, 69.21)]),
    _c("IR", "Iran", "AS", 3, [(25.1, 39.8, 44.0, 63.3)], [(35.69, 51.39)]),
    _c("KZ", "Kazakhstan", "AS", 2, [(40.6, 55.4, 46.5, 87.3)], [(43.22, 76.85)]),
    _c("UZ", "Uzbekistan", "AS", 3, [(37.2, 45.6, 56.0, 73.1)], [(41.30, 69.24)]),
    _c("TM", "Turkmenistan", "AS", 3, [(35.1, 42.8, 52.4, 66.7)], [(37.96, 58.33)]),
    _c("KG", "Kyrgyzstan", "AS", 3, [(39.2, 43.3, 69.3, 80.3)], [(42.87, 74.59)]),
    _c("TJ", "Tajikistan", "AS", 3, [(36.7, 41.0, 67.3, 75.2)], [(38.56, 68.77)]),
    _c("MN", "Mongolia", "AS", 3, [(41.6, 52.1, 87.7, 119.9)], [(47.89, 106.91)]),
    _c("AM", "Armenia", "AS", 3, [(38.8, 41.3, 43.4, 46.6)], [(40.18, 44.51)]),
    _c("AZ", "Azerbaijan", "AS", 3, [(38.4, 41.9, 44.8, 50.4)], [(40.41, 49.87)]),
    _c("BT", "Bhutan", "AS", 3, [(26.7, 28.3, 88.7, 92.1)], [(27.47, 89.64)]),
    # --- Oceania (including maritime Southeast Asia, per the paper) ---------
    _c("MY", "Malaysia", "OC", 1, [(0.9, 7.4, 99.6, 104.5), (0.9, 7.0, 109.6, 119.3)],
       [(3.14, 101.69)]),
    _c("SG", "Singapore", "OC", 1, [(1.16, 1.47, 103.6, 104.0)], [(1.35, 103.82)]),
    _c("ID", "Indonesia", "OC", 2, [(-8.8, 5.9, 95.0, 119.0), (-10.4, -8.0, 112.0, 127.0),
                                    (-4.5, 2.0, 119.5, 141.0)],
       [(-6.21, 106.85)]),
    _c("PH", "Philippines", "OC", 2, [(5.0, 19.4, 117.2, 126.6)], [(14.60, 120.98)]),
    _c("BN", "Brunei", "OC", 3, [(4.0, 5.1, 114.1, 115.4)], [(4.90, 114.94)]),
    _c("PG", "Papua New Guinea", "OC", 3, [(-10.7, -1.3, 141.0, 155.0)], [(-9.44, 147.18)]),
    _c("NZ", "New Zealand", "OC", 2, [(-47.3, -34.4, 166.4, 178.6)],
       [(-36.85, 174.76), (-41.29, 174.78)]),
    _c("FJ", "Fiji", "OC", 3, [(-19.2, -16.1, 177.0, 180.0)], [(-18.14, 178.44)]),
    _c("NC", "New Caledonia", "OC", 3, [(-22.7, -19.5, 163.6, 167.1)], [(-22.28, 166.46)]),
    _c("GU", "Guam", "OC", 3, [(13.2, 13.7, 144.6, 145.0)], [(13.48, 144.75)]),
    _c("TL", "Timor-Leste", "OC", 3, [(-9.5, -8.1, 124.0, 127.3)], [(-8.56, 125.57)]),
    _c("MV", "Maldives", "OC", 3, [(-0.7, 7.1, 72.7, 73.7)], [(4.18, 73.51)]),
    _c("SB", "Solomon Islands", "OC", 3, [(-10.8, -6.6, 155.5, 162.8)], [(-9.43, 159.96)]),
    _c("PN", "Pitcairn Islands", "OC", 3, [(-25.1, -24.3, -130.8, -124.7)], [(-25.07, -130.10)]),
    _c("KI", "Kiribati", "OC", 3, [(1.0, 2.1, -157.7, -157.1)], [(1.33, -157.36)]),
    _c("MH", "Marshall Islands", "OC", 3, [(6.9, 7.4, 171.0, 171.6)], [(7.09, 171.38)]),
    _c("FM", "Micronesia", "OC", 3, [(6.7, 7.1, 158.0, 158.4)], [(6.92, 158.16)]),
    _c("NR", "Nauru", "OC", 3, [(-0.6, -0.48, 166.88, 167.0)], [(-0.53, 166.92)]),
    _c("PW", "Palau", "OC", 3, [(7.2, 7.8, 134.1, 134.8)], [(7.34, 134.48)]),
    _c("MP", "Northern Mariana Islands", "OC", 3, [(14.9, 15.3, 145.6, 145.9)], [(15.19, 145.75)]),
    _c("WS", "Samoa", "OC", 3, [(-14.1, -13.4, -172.8, -171.4)], [(-13.83, -171.77)]),
    _c("TO", "Tonga", "OC", 3, [(-21.3, -21.0, -175.4, -175.0)], [(-21.14, -175.20)]),
    _c("VU", "Vanuatu", "OC", 3, [(-17.9, -17.5, 168.1, 168.5)], [(-17.73, 168.32)]),
    _c("NF", "Norfolk Island", "OC", 3, [(-29.1, -29.0, 167.9, 168.0)], [(-29.06, 167.96)]),
    # --- Australia -----------------------------------------------------------
    _c("AU", "Australia", "AU", 1, [(-43.7, -10.6, 113.2, 153.6)],
       [(-33.87, 151.21), (-37.81, 144.96), (-27.47, 153.03), (-31.95, 115.86)]),
    # --- North America -------------------------------------------------------
    _c("US", "United States", "NA", 1,
       [(31.3, 49.0, -124.8, -95.0), (24.5, 42.0, -95.0, -75.0),
        (25.8, 31.3, -106.6, -93.5), (33.0, 42.5, -75.0, -66.9),
        (40.5, 47.5, -80.0, -66.9), (42.0, 49.0, -95.0, -82.0),
        (54.0, 71.4, -168.0, -141.0), (18.9, 22.2, -160.3, -154.8)],
       [(40.71, -74.01), (34.05, -118.24), (41.88, -87.63), (29.76, -95.37),
        (33.75, -84.39), (47.61, -122.33), (39.74, -104.99), (25.76, -80.19),
        (42.36, -71.06), (37.77, -122.42), (38.91, -77.04), (32.78, -96.80)]),
    _c("CA", "Canada", "NA", 1,
       [(49.0, 70.0, -128.0, -55.0), (42.0, 49.0, -83.5, -74.0), (44.5, 49.0, -74.0, -60.0)],
       [(43.70, -79.42), (45.50, -73.57), (49.28, -123.12), (51.05, -114.07),
        (45.42, -75.70), (44.65, -63.58), (46.81, -71.21)]),
    _c("GL", "Greenland", "NA", 3, [(59.8, 83.6, -73.0, -12.0)], [(64.18, -51.72)]),
    # --- Central America, Mexico, Caribbean ----------------------------------
    _c("MX", "Mexico", "CA", 2, [(14.5, 32.7, -117.1, -86.7)],
       [(19.43, -99.13), (25.69, -100.32), (20.67, -103.35)]),
    _c("GT", "Guatemala", "CA", 3, [(13.7, 17.8, -92.2, -88.2)], [(14.63, -90.51)]),
    _c("BZ", "Belize", "CA", 3, [(15.9, 18.5, -89.2, -87.8)], [(17.50, -88.20)]),
    _c("HN", "Honduras", "CA", 3, [(13.0, 16.5, -89.4, -83.1)], [(14.07, -87.19)]),
    _c("SV", "El Salvador", "CA", 3, [(13.1, 14.5, -90.1, -87.7)], [(13.69, -89.19)]),
    _c("NI", "Nicaragua", "CA", 3, [(10.7, 15.0, -87.7, -83.1)], [(12.11, -86.24)]),
    _c("CR", "Costa Rica", "CA", 2, [(8.0, 11.2, -85.9, -82.5)], [(9.93, -84.08)]),
    _c("PA", "Panama", "CA", 2, [(7.2, 9.6, -83.0, -77.2)], [(8.98, -79.52)]),
    _c("CU", "Cuba", "CA", 3, [(19.8, 23.2, -85.0, -74.1)], [(23.11, -82.37)]),
    _c("JM", "Jamaica", "CA", 3, [(17.7, 18.5, -78.4, -76.2)], [(18.02, -76.80)]),
    _c("HT", "Haiti", "CA", 3, [(18.0, 20.1, -74.5, -71.6)], [(18.54, -72.34)]),
    _c("DO", "Dominican Republic", "CA", 3, [(17.5, 19.9, -71.7, -68.3)], [(18.49, -69.93)]),
    _c("PR", "Puerto Rico", "CA", 2, [(17.9, 18.5, -67.3, -65.6)], [(18.47, -66.11)]),
    _c("BS", "Bahamas", "CA", 3, [(22.8, 27.0, -78.5, -74.0)], [(25.05, -77.36)]),
    _c("BB", "Barbados", "CA", 3, [(13.0, 13.4, -59.7, -59.4)], [(13.10, -59.61)]),
    _c("BM", "Bermuda", "CA", 3, [(32.2, 32.4, -64.9, -64.6)], [(32.29, -64.78)]),
    _c("KY", "Cayman Islands", "CA", 3, [(19.2, 19.4, -81.4, -81.1)], [(19.29, -81.37)]),
    _c("VG", "British Virgin Islands", "CA", 3, [(18.3, 18.8, -64.85, -64.25)], [(18.43, -64.62)]),
    _c("VI", "US Virgin Islands", "CA", 3, [(17.67, 18.42, -65.1, -64.55)], [(18.34, -64.93)]),
    _c("AG", "Antigua and Barbuda", "CA", 3, [(16.95, 17.75, -62.0, -61.65)], [(17.12, -61.85)]),
    _c("AI", "Anguilla", "CA", 3, [(18.15, 18.30, -63.2, -62.9)], [(18.22, -63.05)]),
    _c("AW", "Aruba", "CA", 3, [(12.4, 12.65, -70.1, -69.85)], [(12.52, -70.03)]),
    _c("CW", "Curacao", "CA", 3, [(12.0, 12.4, -69.2, -68.7)], [(12.11, -68.93)]),
    _c("DM", "Dominica", "CA", 3, [(15.2, 15.65, -61.5, -61.2)], [(15.30, -61.39)]),
    _c("GD", "Grenada", "CA", 3, [(11.98, 12.25, -61.8, -61.55)], [(12.05, -61.75)]),
    _c("KN", "Saint Kitts and Nevis", "CA", 3, [(17.1, 17.45, -62.9, -62.5)], [(17.30, -62.73)]),
    _c("LC", "Saint Lucia", "CA", 3, [(13.7, 14.1, -61.1, -60.85)], [(14.01, -60.99)]),
    _c("MS", "Montserrat", "CA", 3, [(16.67, 16.83, -62.25, -62.12)], [(16.74, -62.19)]),
    _c("SX", "Sint Maarten", "CA", 3, [(18.0, 18.07, -63.15, -62.97)], [(18.03, -63.05)]),
    _c("TC", "Turks and Caicos", "CA", 3, [(21.4, 21.98, -72.5, -71.1)], [(21.46, -71.14)]),
    _c("VC", "Saint Vincent and the Grenadines", "CA", 3,
       [(13.1, 13.4, -61.3, -61.1)], [(13.16, -61.23)]),
    # --- South America --------------------------------------------------------
    _c("BR", "Brazil", "SA", 1, [(-33.8, 5.3, -74.0, -34.8)],
       [(-23.55, -46.63), (-22.91, -43.17), (-15.78, -47.93), (-3.12, -60.02)]),
    _c("AR", "Argentina", "SA", 2, [(-55.0, -21.8, -73.6, -53.6)], [(-34.60, -58.38)]),
    _c("CL", "Chile", "SA", 2, [(-55.9, -17.5, -75.7, -66.9)], [(-33.45, -70.67)]),
    _c("PE", "Peru", "SA", 3, [(-18.4, -0.04, -81.3, -68.7)], [(-12.05, -77.04)]),
    _c("CO", "Colombia", "SA", 2, [(-4.2, 12.5, -79.0, -66.9)], [(4.71, -74.07)]),
    _c("VE", "Venezuela", "SA", 3, [(0.6, 12.2, -73.4, -59.8)], [(10.48, -66.90)]),
    _c("EC", "Ecuador", "SA", 3, [(-5.0, 1.5, -81.1, -75.2)], [(-0.18, -78.47)]),
    _c("BO", "Bolivia", "SA", 3, [(-22.9, -9.7, -69.6, -57.5)], [(-16.49, -68.12)]),
    _c("PY", "Paraguay", "SA", 3, [(-27.6, -19.3, -62.6, -54.3)], [(-25.26, -57.58)]),
    _c("UY", "Uruguay", "SA", 3, [(-35.0, -30.1, -58.4, -53.1)], [(-34.90, -56.16)]),
    _c("GY", "Guyana", "SA", 3, [(1.2, 8.6, -61.4, -56.5)], [(6.80, -58.16)]),
    _c("SR", "Suriname", "SA", 3, [(1.8, 6.0, -58.1, -54.0)], [(5.85, -55.20)]),
    _c("TT", "Trinidad and Tobago", "SA", 3, [(10.0, 10.9, -61.9, -60.5)], [(10.65, -61.51)]),
    _c("FK", "Falkland Islands", "SA", 3, [(-52.4, -51.2, -61.3, -57.7)], [(-51.70, -57.85)]),
]


class CountryRegistry:
    """Indexable collection of :class:`Country` records.

    The default registry (``CountryRegistry.default()``) contains the
    built-in world map above.  A custom registry (e.g. a toy two-country
    world for tests) can be built by passing any iterable of countries.
    """

    def __init__(self, countries: Sequence[Country] = ()):  # noqa: D401
        data = list(countries) if countries else list(_COUNTRY_DATA)
        self._by_iso: Dict[str, Country] = {}
        for country in data:
            if country.iso2 in self._by_iso:
                raise ValueError(f"duplicate country code {country.iso2!r}")
            self._by_iso[country.iso2] = country
        self._ordered: List[Country] = data
        self._index_cache: Dict[str, int] = {}

    @classmethod
    def default(cls) -> "CountryRegistry":
        return cls()

    def __len__(self) -> int:
        return len(self._ordered)

    def __iter__(self):
        return iter(self._ordered)

    def __contains__(self, iso2: str) -> bool:
        return iso2 in self._by_iso

    def get(self, iso2: str) -> Country:
        try:
            return self._by_iso[iso2]
        except KeyError:
            raise KeyError(f"unknown country code {iso2!r}") from None

    def codes(self) -> List[str]:
        """All ISO-2 codes, in registry order."""
        return [c.iso2 for c in self._ordered]

    def index_of(self, iso2: str) -> int:
        """Registry-order index of a country code.

        This index is the canonical country id everywhere a raster or a
        packed per-country bitset is keyed by country (the world map's
        rasters and word matrices use registry order), so lookups against
        those structures all resolve through one place.
        """
        if not self._index_cache:
            self._index_cache.update(
                {c.iso2: i for i, c in enumerate(self._ordered)})
        try:
            return self._index_cache[iso2]
        except KeyError:
            raise KeyError(f"unknown country code {iso2!r}") from None

    def by_continent(self, continent: str) -> List[Country]:
        if continent not in CONTINENTS:
            raise ValueError(f"unknown continent {continent!r}")
        return [c for c in self._ordered if c.continent == continent]

    def by_hosting_tier(self, tier: int) -> List[Country]:
        return [c for c in self._ordered if c.hosting_tier == tier]

    def continent_of(self, iso2: str) -> str:
        return self.get(iso2).continent

    def candidates_at(self, lat: float, lon: float) -> List[Country]:
        """Every country whose raw boxes contain the point (no tiebreak)."""
        return [c for c in self._ordered if c.contains(lat, lon)]
