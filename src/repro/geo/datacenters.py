"""Known data-center locations (substitute for the Wisconsin Internet Atlas).

The paper resolves "uncertain" predictions by checking which known data
centres fall inside the predicted region (Figure 15): a region that covers
Argentina and Chile, but contains data centres only in Chile, pins the
proxy to Chile.  We build the registry synthetically from the world map's
hosting tiers: tier-1 countries get a data centre at every anchor city,
tier-2 countries get one at their primary anchor, tier-3 countries get
none.  This mirrors reality — commercial hosting clusters in a small set
of countries — and is exactly the asymmetry the disambiguation step
exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..geodesy.greatcircle import haversine_km, validate_latlon
from .countries import CountryRegistry
from .region import Region


@dataclass(frozen=True)
class DataCenter:
    """One known hosting facility."""

    name: str
    country: str
    lat: float
    lon: float

    def __post_init__(self) -> None:
        validate_latlon(self.lat, self.lon)


class DataCenterRegistry:
    """Queryable collection of known data centres."""

    def __init__(self, datacenters: Sequence[DataCenter]):
        self._datacenters = list(datacenters)

    @classmethod
    def from_registry(cls, registry: Optional[CountryRegistry] = None) -> "DataCenterRegistry":
        """Build the default synthetic registry from country hosting tiers."""
        registry = registry if registry is not None else CountryRegistry.default()
        datacenters: List[DataCenter] = []
        for country in registry:
            if country.hosting_tier == 1:
                sites = country.anchors
            elif country.hosting_tier == 2:
                sites = country.anchors[:1]
            else:
                continue
            for site_number, (lat, lon) in enumerate(sites, start=1):
                datacenters.append(DataCenter(
                    name=f"{country.iso2}-DC{site_number}",
                    country=country.iso2,
                    lat=lat,
                    lon=lon,
                ))
        return cls(datacenters)

    def __len__(self) -> int:
        return len(self._datacenters)

    def __iter__(self):
        return iter(self._datacenters)

    def all(self) -> List[DataCenter]:
        return list(self._datacenters)

    def in_country(self, iso2: str) -> List[DataCenter]:
        return [dc for dc in self._datacenters if dc.country == iso2]

    def in_region(self, region: Region) -> List[DataCenter]:
        """All data centres whose location falls inside the region."""
        return [dc for dc in self._datacenters if region.contains(dc.lat, dc.lon)]

    def countries_with_dc_in_region(self, region: Region) -> List[str]:
        """Distinct country codes of data centres inside the region."""
        seen: List[str] = []
        for dc in self.in_region(region):
            if dc.country not in seen:
                seen.append(dc.country)
        return seen

    def nearest(self, lat: float, lon: float) -> Optional[DataCenter]:
        """The data centre closest to a point, or None if the registry is empty."""
        if not self._datacenters:
            return None
        return min(self._datacenters,
                   key=lambda dc: haversine_km(lat, lon, dc.lat, dc.lon))
