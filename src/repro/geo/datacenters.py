"""Known data-center locations (substitute for the Wisconsin Internet Atlas).

The paper resolves "uncertain" predictions by checking which known data
centres fall inside the predicted region (Figure 15): a region that covers
Argentina and Chile, but contains data centres only in Chile, pins the
proxy to Chile.  We build the registry synthetically from the world map's
hosting tiers: tier-1 countries get a data centre at every anchor city,
tier-2 countries get one at their primary anchor, tier-3 countries get
none.  This mirrors reality — commercial hosting clusters in a small set
of countries — and is exactly the asymmetry the disambiguation step
exploits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..geodesy.greatcircle import haversine_km, validate_latlon
from .countries import CountryRegistry
from .region import Region


@dataclass(frozen=True)
class DataCenter:
    """One known hosting facility."""

    name: str
    country: str
    lat: float
    lon: float

    def __post_init__(self) -> None:
        validate_latlon(self.lat, self.lon)


class DataCenterRegistry:
    """Queryable collection of known data centres."""

    def __init__(self, datacenters: Sequence[DataCenter]):
        self._datacenters = list(datacenters)
        # Cell index of every data centre, resolved once per grid: the
        # disambiguation pass probes the same ~hundred points against
        # every uncertain region, so the per-point cell lookups are
        # hoisted out of the per-region loop.  Keyed by grid identity,
        # holding the grid so a recycled id() can never alias.
        self._cell_cache: dict = {}

    @classmethod
    def from_registry(cls, registry: Optional[CountryRegistry] = None) -> "DataCenterRegistry":
        """Build the default synthetic registry from country hosting tiers."""
        registry = registry if registry is not None else CountryRegistry.default()
        datacenters: List[DataCenter] = []
        for country in registry:
            if country.hosting_tier == 1:
                sites = country.anchors
            elif country.hosting_tier == 2:
                sites = country.anchors[:1]
            else:
                continue
            for site_number, (lat, lon) in enumerate(sites, start=1):
                datacenters.append(DataCenter(
                    name=f"{country.iso2}-DC{site_number}",
                    country=country.iso2,
                    lat=lat,
                    lon=lon,
                ))
        return cls(datacenters)

    def __len__(self) -> int:
        return len(self._datacenters)

    def __iter__(self):
        return iter(self._datacenters)

    def all(self) -> List[DataCenter]:
        return list(self._datacenters)

    def in_country(self, iso2: str) -> List[DataCenter]:
        return [dc for dc in self._datacenters if dc.country == iso2]

    def _cells_for(self, grid) -> "np.ndarray":
        cached = self._cell_cache.get(id(grid))
        if cached is None or cached[0] is not grid:
            cells = np.array([grid.cell_index(dc.lat, dc.lon)
                              for dc in self._datacenters], dtype=np.intp)
            cached = (grid, cells)
            self._cell_cache[id(grid)] = cached
        return cached[1]

    def in_region(self, region: Region) -> List[DataCenter]:
        """All data centres whose location falls inside the region.

        One vectorised bit test over the cached cell indices — the same
        per-point test :meth:`Region.contains` performs, in the same
        registry order.
        """
        if not self._datacenters:
            return []
        inside = region.contains_cells(self._cells_for(region.grid))
        return [dc for at, dc in enumerate(self._datacenters) if inside[at]]

    def countries_with_dc_in_region(self, region: Region) -> List[str]:
        """Distinct country codes of data centres inside the region."""
        seen: List[str] = []
        for dc in self.in_region(region):
            if dc.country not in seen:
                seen.append(dc.country)
        return seen

    def nearest(self, lat: float, lon: float) -> Optional[DataCenter]:
        """The data centre closest to a point, or None if the registry is empty."""
        if not self._datacenters:
            return None
        return min(self._datacenters,
                   key=lambda dc: haversine_km(lat, lon, dc.lat, dc.lon))
