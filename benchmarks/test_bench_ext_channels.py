"""Extension bench (§4.2): which measurement channels actually work.

Not a paper figure, but the paper's measured percentages ("roughly 90%
ignore ICMP...") are the motivation for its entire tool design; this bench
re-derives them from the simulated fleet.
"""

from conftest import emit
from repro.netsim import survey_measurement_channels


def test_bench_ext_measurement_channels(benchmark, scenario):
    stats = benchmark.pedantic(
        survey_measurement_channels,
        args=(scenario.network, scenario.all_servers(), scenario.client),
        rounds=1, iterations=1)
    emit("Extension — measurement channels (paper section 4.2)\n"
         f"  answers ICMP ping          {stats['icmp_ping']:.0%} (paper ~10%)\n"
         f"  gateway visible            {stats['gateway_visible']:.0%} (paper ~10%)\n"
         f"  traceroute through tunnel  {stats['traceroute_through']:.0%} (paper ~2/3)\n"
         f"  TCP connect to port 80     {stats['tcp_port_80']:.0%}")
    assert 0.05 <= stats["icmp_ping"] <= 0.2
    assert 0.05 <= stats["gateway_visible"] <= 0.2
    assert 0.5 <= stats["traceroute_through"] <= 0.8
    assert stats["tcp_port_80"] == 1.0
