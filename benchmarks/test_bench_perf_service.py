"""Performance benchmarks of the always-on verdict service.

The service's reason to exist is amortization: one warm audit substrate
answering millions of claim queries.  Three gates pin that contract:

* a **warm cache hit** must be at least ``WARM_SPEEDUP_MIN`` times
  cheaper than the stateless single-shot baseline — one full
  ``run_audit`` invocation per query with no process-level caches, the
  way a fresh ``repro audit`` CLI call (or the pre-service examples)
  answered a claim, η refit included;
* the **uncached micro-batched** path (one ``verdict_batch`` coalescing
  N queries into shared ``predict_fleet`` sweeps) must beat the same
  stateless scalar-query baseline by ``BATCH_SPEEDUP_MIN`` per query;
* the **asyncio frontend** must sustain ``QPS_MIN`` over a mostly-warm
  workload inside hard p50/p99 latency budgets, with a near-perfect
  cache hit-rate and a bounded tracemalloc peak.

All speedup gates are same-run ratios (both sides measured on the same
machine in the same process), so they hold on slow CI runners; the
absolute budgets are sized for noisy shared hardware.
"""

import asyncio
import time
import tracemalloc

import numpy as np
import pytest

import repro.experiments.audit as audit_module
from repro.experiments import run_audit
from repro.service import ServiceFrontend, VerdictService

#: A warm verdict-cache hit must undercut the stateless single-shot
#: audit-per-query cost by at least this factor (~630x measured).
WARM_SPEEDUP_MIN = 50.0

#: Absolute ceiling for one warm cache hit, seconds (~11 us measured).
WARM_HIT_BUDGET_S = 0.001

#: Uncached micro-batched per-query cost must undercut the stateless
#: scalar-query baseline by at least this factor (~7.5x measured).
BATCH_SPEEDUP_MIN = 5.0

#: Servers per cold micro-batch (one verdict_batch call).
BATCH_SIZE = 24

#: tracemalloc peak budget for one cold 24-server micro-batch.
BATCH_MEM_BUDGET_BYTES = 16 * 1024 * 1024

#: Frontend workload: requests drawn uniformly from this many warmed
#: targets, all enqueued concurrently.
WORKLOAD_TARGETS = 60
WORKLOAD_REQUESTS = 240

#: Sustained frontend throughput floor, requests/second (~13k measured;
#: the floor leaves >10x headroom for slow shared runners).
QPS_MIN = 1000.0

#: Per-request latency budgets through the bounded queue, milliseconds.
#: p50 includes queue wait — the whole burst arrives at once by design.
P50_BUDGET_MS = 50.0
P99_BUDGET_MS = 250.0

#: Verdict-cache hit-rate floor over the warm workload itself.
HIT_RATE_MIN = 0.95

#: tracemalloc peak budget for the whole frontend burst.
FRONTEND_MEM_BUDGET_BYTES = 8 * 1024 * 1024


@pytest.fixture(scope="module")
def service(scenario):
    warmed = VerdictService(scenario, seed=0)
    run_audit(scenario, max_servers=WORKLOAD_TARGETS, seed=0)
    return warmed


def _best_of(fn, rounds=3):
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def _stateless_single_shot_s(scenario, server) -> float:
    """One claim answered the pre-service way: a fresh one-shot audit.

    Clearing the η cache between rounds is what makes the baseline
    *stateless* — a cold ``repro audit`` invocation refits η before it
    can measure, which is exactly the per-query cost the long-running
    service exists to amortize.
    """
    def single_shot():
        audit_module._ETA_CACHE.cache_clear()
        run_audit(scenario, servers=[server], seed=0)
    try:
        return _best_of(single_shot)
    finally:
        audit_module._ETA_CACHE.cache_clear()


def test_perf_service_warm_cache_hit(benchmark, service, scenario):
    """A cache-hit verdict vs the stateless single-shot baseline."""
    target = scenario.all_servers()[0]
    single_shot_s = _stateless_single_shot_s(scenario, target)
    service.verdict(target)  # prime the verdict cache

    response = benchmark.pedantic(lambda: service.verdict(target),
                                  rounds=20, iterations=200)
    assert response.cached

    hit_s = benchmark.stats.stats.min
    benchmark.extra_info["single_shot_s"] = single_shot_s
    benchmark.extra_info["required_speedup"] = WARM_SPEEDUP_MIN
    benchmark.extra_info["speedup_vs_single_shot"] = single_shot_s / hit_s
    assert hit_s <= WARM_HIT_BUDGET_S, (
        f"warm cache hit took {hit_s * 1e6:.0f} us; budget is "
        f"{WARM_HIT_BUDGET_S * 1e6:.0f} us")
    assert single_shot_s / hit_s >= WARM_SPEEDUP_MIN, (
        f"warm hit {hit_s * 1e6:.0f} us is only "
        f"{single_shot_s / hit_s:.1f}x cheaper than the "
        f"{single_shot_s * 1e3:.2f} ms single-shot baseline "
        f"(need {WARM_SPEEDUP_MIN:.0f}x)")


def test_perf_service_micro_batched_cold(benchmark, service, scenario):
    """One coalesced verdict_batch vs stateless scalar queries."""
    servers = scenario.all_servers()[:BATCH_SIZE]
    single_shot_s = _stateless_single_shot_s(scenario, servers[0])

    def cold_batch():
        service.cache_clear()
        return service.verdict_batch(servers)

    tracemalloc.start()
    cold_batch()
    peak = tracemalloc.get_traced_memory()[1]
    tracemalloc.stop()

    responses = benchmark.pedantic(cold_batch, rounds=10, iterations=1)
    assert len(responses) == BATCH_SIZE

    per_query_s = benchmark.stats.stats.min / BATCH_SIZE
    benchmark.extra_info["batch_size"] = BATCH_SIZE
    benchmark.extra_info["per_query_s"] = per_query_s
    benchmark.extra_info["scalar_baseline_s"] = single_shot_s
    benchmark.extra_info["required_speedup"] = BATCH_SPEEDUP_MIN
    benchmark.extra_info["speedup_vs_scalar"] = single_shot_s / per_query_s
    benchmark.extra_info["mem_peak_bytes"] = int(peak)
    benchmark.extra_info["mem_budget_bytes"] = BATCH_MEM_BUDGET_BYTES
    assert single_shot_s / per_query_s >= BATCH_SPEEDUP_MIN, (
        f"micro-batched {per_query_s * 1e3:.2f} ms/query is only "
        f"{single_shot_s / per_query_s:.1f}x cheaper than the "
        f"{single_shot_s * 1e3:.2f} ms scalar-query baseline "
        f"(need {BATCH_SPEEDUP_MIN:.0f}x)")
    assert peak <= BATCH_MEM_BUDGET_BYTES, (
        f"cold {BATCH_SIZE}-server batch traced {peak} bytes peak; "
        f"budget is {BATCH_MEM_BUDGET_BYTES}")


def test_perf_service_frontend_qps(benchmark, service, scenario):
    """QPS + p50/p99 through the bounded asyncio queue, mostly warm."""
    targets = scenario.all_servers()[:WORKLOAD_TARGETS]
    service.verdict_batch(targets)  # warm every workload target
    rng = np.random.default_rng(11)
    workload = [targets[int(pick)] for pick in
                rng.integers(0, WORKLOAD_TARGETS, size=WORKLOAD_REQUESTS)]
    latencies_ms = []
    shed_total = 0

    async def burst():
        frontend = ServiceFrontend(service, queue_max=256, batch_max=32)
        round_latencies = []

        async def one(server):
            started = time.monotonic()
            response = await frontend.enqueue((server, None))
            round_latencies.append((time.monotonic() - started) * 1e3)
            return response

        await asyncio.gather(*(one(server) for server in workload))
        frontend.close()
        return frontend.stats, round_latencies

    def run_burst():
        nonlocal shed_total
        stats, round_latencies = asyncio.run(burst())
        shed_total += stats.shed
        latencies_ms[:] = sorted(round_latencies)

    before = service.cache_info()["verdicts"]
    tracemalloc.start()
    run_burst()
    peak = tracemalloc.get_traced_memory()[1]
    tracemalloc.stop()
    after = service.cache_info()["verdicts"]
    workload_hits = after.hits - before.hits
    workload_misses = after.misses - before.misses
    hit_rate = workload_hits / max(1, workload_hits + workload_misses)

    benchmark.pedantic(run_burst, rounds=3, iterations=1)

    wall_s = benchmark.stats.stats.min
    qps = WORKLOAD_REQUESTS / wall_s
    p50 = latencies_ms[len(latencies_ms) // 2]
    p99 = latencies_ms[int(len(latencies_ms) * 0.99)]
    benchmark.extra_info["requests"] = WORKLOAD_REQUESTS
    benchmark.extra_info["qps"] = qps
    benchmark.extra_info["p50_ms"] = p50
    benchmark.extra_info["p99_ms"] = p99
    benchmark.extra_info["hit_rate"] = hit_rate
    benchmark.extra_info["shed"] = shed_total
    benchmark.extra_info["mem_peak_bytes"] = int(peak)
    benchmark.extra_info["mem_budget_bytes"] = FRONTEND_MEM_BUDGET_BYTES

    assert shed_total == 0, f"{shed_total} requests shed under a warm burst"
    assert qps >= QPS_MIN, (
        f"frontend sustained {qps:,.0f} QPS; the floor is {QPS_MIN:,.0f}")
    assert p50 <= P50_BUDGET_MS, (
        f"p50 latency {p50:.2f} ms exceeds the {P50_BUDGET_MS:.0f} ms budget")
    assert p99 <= P99_BUDGET_MS, (
        f"p99 latency {p99:.2f} ms exceeds the {P99_BUDGET_MS:.0f} ms budget")
    assert hit_rate >= HIT_RATE_MIN, (
        f"workload hit-rate {hit_rate:.3f} under the warmed fleet is below "
        f"the {HIT_RATE_MIN:.2f} floor")
    assert peak <= FRONTEND_MEM_BUDGET_BYTES, (
        f"frontend burst traced {peak} bytes peak; budget is "
        f"{FRONTEND_MEM_BUDGET_BYTES}")
