"""Figure 5 bench: four browsers on Windows."""

from conftest import emit
from repro.experiments import fig04_tools


def test_bench_fig05_windows_browsers(benchmark, scenario):
    result = benchmark.pedantic(
        fig04_tools.run, args=(scenario,), kwargs={"os": "windows"},
        rounds=1, iterations=1)
    emit(fig04_tools.format_table(result))
    # Paper: Windows measurements are noisier (ratio 2.29, R^2 0.8983) and
    # the browser effect is significant (F = 13.11, p = 6.1e-8).
    assert 1.6 <= result.slope_ratio <= 2.7
    assert result.tool_effect.significant
    # Windows noise pushes fit quality below the Linux panel's.
    linux = fig04_tools.run(scenario, os="linux")
    assert result.pooled_r_squared <= linux.pooled_r_squared + 0.02
