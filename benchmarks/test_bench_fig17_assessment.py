"""Figure 17 bench: the overall credible/uncertain/false assessment."""

from conftest import emit
from repro.experiments import fig17_assessment


def test_bench_fig17_assessment(benchmark, scenario, audit):
    figure = benchmark.pedantic(
        fig17_assessment.summarize, args=(audit, scenario),
        rounds=1, iterations=1)
    emit(fig17_assessment.format_table(figure))
    # Paper headline: at least a third of the servers are not in their
    # advertised country, and another third might not be.
    assert figure.false_fraction >= 0.30
    assert figure.uncertain() + figure.false() >= figure.n_proxies / 2
    # Credible cases concentrate in the ten most-claimed countries, false
    # cases spread over the long tail (paper: 84% vs 11%).
    assert figure.top10_share_of_credible > 2 * figure.top10_share_of_false
    # The probable-country list is dominated by easy-hosting countries.
    probable_codes = [code for code, _ in figure.probable_top[:6]]
    tier1 = {c.iso2 for c in scenario.registry.by_hosting_tier(1)}
    assert sum(1 for code in probable_codes if code in tier1) >= 4
