"""Ablation: two-phase landmark selection vs measuring every landmark.

Two-phase measurement exists for speed and politeness (fewer probes, load
spread); the ablation quantifies what it costs in precision.  Expected
shape: far fewer measurements, same continent-level verdicts, moderately
larger regions.
"""

import numpy as np

from conftest import emit
from repro.core import CBGPlusPlus, ProxyMeasurer, TwoPhaseDriver, TwoPhaseSelector


def test_bench_ablation_two_phase(benchmark, scenario):
    servers = [s for s in scenario.all_servers()[:30]]
    algorithm = CBGPlusPlus(scenario.calibrations, scenario.worldmap)
    selector = TwoPhaseSelector(scenario.atlas, seed=4)
    driver = TwoPhaseDriver(selector, algorithm)
    all_anchors = scenario.atlas.anchors

    def compare():
        rng = np.random.default_rng(4)
        rows = []
        for server in servers:
            measurer = ProxyMeasurer(scenario.network, scenario.client,
                                     server, seed=server.host.host_id)
            two_phase = driver.locate(measurer.observe, rng)
            n_two_phase = (len(two_phase.phase1_observations)
                           + len(two_phase.phase2_observations))
            full_observations = measurer.observe(all_anchors, rng)
            full = algorithm.predict(full_observations)
            rows.append((two_phase.prediction.region.area_km2(),
                         full.region.area_km2(),
                         n_two_phase, len(full_observations)))
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    two_areas = np.array([r[0] for r in rows])
    full_areas = np.array([r[1] for r in rows])
    emit(f"Ablation (two-phase) — {len(rows)} proxied targets\n"
         f"  measurements per target: two-phase {rows[0][2]}, "
         f"all-anchors {rows[0][3]}\n"
         f"  median region area: two-phase {np.median(two_areas):,.0f} km2, "
         f"all-anchors {np.median(full_areas):,.0f} km2")
    # Two-phase uses fewer measurements (at paper scale, ~49 of 250; the
    # reduced test constellation narrows the gap)...
    assert rows[0][2] <= rows[0][3] * 0.6
    # ...at a bounded precision cost: regions grow, but not absurdly.
    ratio = np.median(two_areas) / max(np.median(full_areas), 1.0)
    assert ratio < 50.0
