"""Extension bench (§8): RTT manipulation vs the algorithms."""

from conftest import emit
from repro.experiments import ext_adversary


def test_bench_ext_adversarial_proxy(benchmark, scenario):
    experiment = benchmark.pedantic(
        ext_adversary.run, args=(scenario,), rounds=1, iterations=1)
    emit(ext_adversary.format_table(experiment))

    # Gill et al. (quoted in the paper): added delay can displace
    # sophisticated models, and "more sophisticated delay-distance models
    # are more susceptible to this".
    delay_cbgpp = experiment.outcome("add-delay", "cbg++")
    delay_spotter = experiment.outcome("add-delay", "spotter")
    assert delay_cbgpp.covers_truth          # disks only grow under delay
    assert not delay_spotter.covers_truth    # min-speed model displaced
    assert delay_spotter.displaced

    # Abdou et al.-style forgery (easier for a man-in-the-middle proxy):
    # the prediction can be moved anywhere, defeating every algorithm.
    for algorithm in ("cbg++", "spotter"):
        forged = experiment.outcome("forge-synack", algorithm)
        assert not forged.covers_truth
        assert forged.miss_pretend_km < forged.miss_truth_km
