"""Figure 20 bench: prediction spread within one data centre's proxies."""

import numpy as np

from conftest import emit
from repro.core.disambiguation import group_by_metadata
from repro.experiments import fig20_datacenter_error


def test_bench_fig20_datacenter_spread(benchmark, scenario, audit):
    def analyze():
        groups = group_by_metadata(audit.records)
        eligible = sorted(((k, g) for k, g in groups.items() if len(g) >= 6),
                          key=lambda item: -len(item[1]))[:5]
        return [fig20_datacenter_error.analyze_group(scenario, k, g)
                for k, g in eligible]

    spreads = benchmark.pedantic(analyze, rounds=1, iterations=1)
    assert spreads, "fleet should contain multi-host data-centre groups"
    for spread in spreads:
        emit(fig20_datacenter_error.format_table(spread))
    # Paper: regions for co-located hosts vary (two-phase sampling uses
    # different landmarks each time)...
    assert all(s.n_hosts >= 6 for s in spreads)
    assert max(s.area_spread for s in spreads) > 1.0
    # ...and the variation is NOT explained by distance to the nearest
    # landmark: across groups the typical correlation is weak (a single
    # group can land anywhere by chance).
    correlations = [abs(s.correlation) for s in spreads
                    if s.correlation is not None]
    assert correlations
    assert np.median(correlations) < 0.6
