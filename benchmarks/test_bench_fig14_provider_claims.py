"""Figure 14 bench: the VPN market's claimed-country landscape."""

from conftest import emit
from repro.experiments import fig14_claims


def test_bench_fig14_provider_claims(benchmark, scenario):
    landscape = benchmark.pedantic(
        fig14_claims.run, args=(scenario,), rounds=1, iterations=1)
    emit(fig14_claims.format_table(landscape))
    # Paper: providers A through E are among the 20 broadest claimants;
    # F and G make modest claims.
    top20 = set(landscape.top20_providers())
    assert {"A", "B", "C", "D", "E"} <= top20
    assert "G" not in top20
    # A claims the most countries of the studied providers.
    counts = landscape.studied_counts
    assert counts["A"] == max(counts.values())
    assert counts["G"] == min(counts.values())
    # The market distribution is heavy-tailed: the median provider claims
    # far fewer countries than the leader.
    market = landscape.market_counts
    assert market[len(market) // 2] < market[0] / 5
