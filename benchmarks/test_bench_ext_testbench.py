"""Extension bench (§8.1): test-bench servers, direct vs indirect error."""

from conftest import emit
from repro.experiments import ext_testbench


def test_bench_ext_testbench_servers(benchmark, scenario):
    result = benchmark.pedantic(
        ext_testbench.run, args=(scenario,), kwargs={"n_servers": 10},
        rounds=1, iterations=1)
    emit(ext_testbench.format_table(result))

    # The indirection's error budget is bounded: predictions stay at
    # border scale, never continent scale, and the tunnel's upward bias
    # never shrinks regions on the median.
    assert result.worst_miss_km(indirect=True) < 1500.0
    assert result.median_centroid_offset_km() < 500.0
    assert result.median_area_inflation() >= 0.8
    assert 0.4 <= result.eta <= 0.6
