"""Figure 13 bench: the direct/indirect RTT factor eta."""

from conftest import emit
from repro.experiments import fig13_eta


def test_bench_fig13_eta(benchmark, scenario):
    figure = benchmark.pedantic(
        fig13_eta.run, args=(scenario,), rounds=1, iterations=1)
    emit(fig13_eta.format_table(figure))
    # Paper: "the slope is 0.49 with R^2 > 0.99" — almost exactly 1/2.
    assert 0.45 <= figure.eta <= 0.55
    assert figure.robust_fit.r_squared > 0.99
    # Roughly 10% of the fleet answers pings (the paper's observation).
    fleet_size = len(scenario.all_servers())
    assert figure.n_proxies < 0.25 * fleet_size
    assert figure.n_proxies >= 3
