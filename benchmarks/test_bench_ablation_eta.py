"""Ablation: robust (Theil-Sen) vs OLS estimation of the eta factor.

The eta regression runs over RTTs measured across the public Internet,
where congestion spikes create heavy right-tail outliers.  Injecting such
outliers into the collected (indirect, direct) pairs shows why the paper
uses a robust regression: OLS drifts, Theil-Sen holds near 1/2.
"""

import numpy as np

from conftest import emit
from repro.core import collect_eta_data
from repro.stats import ols_fit, theil_sen_fit


def test_bench_ablation_robust_eta(benchmark, scenario):
    pairs = collect_eta_data(scenario.network, scenario.client,
                             scenario.all_servers(),
                             np.random.default_rng(2))
    assert len(pairs) >= 10

    def fit_with_outliers():
        rng = np.random.default_rng(3)
        corrupted = list(pairs)
        # 15% of proxies hit a congestion episode during the direct ping.
        for i in range(len(corrupted)):
            if rng.random() < 0.15:
                indirect, direct = corrupted[i]
                corrupted[i] = (indirect, direct + float(rng.exponential(250.0)))
        indirect = [p[0] for p in corrupted]
        direct = [p[1] for p in corrupted]
        return theil_sen_fit(indirect, direct), ols_fit(indirect, direct)

    robust, ols = benchmark.pedantic(fit_with_outliers, rounds=1, iterations=1)
    emit(f"Ablation (robust eta) — {len(pairs)} proxies, 15% outliers\n"
         f"  Theil-Sen slope {robust.slope:.3f}   OLS slope {ols.slope:.3f}\n"
         f"  |error| vs 0.5: robust {abs(robust.slope - 0.5):.3f}, "
         f"OLS {abs(ols.slope - 0.5):.3f}")
    # The robust estimator stays near the theoretical 1/2 under outliers
    # at least as well as OLS does.
    assert abs(robust.slope - 0.5) <= abs(ols.slope - 0.5) + 1e-6
    assert abs(robust.slope - 0.5) < 0.05
