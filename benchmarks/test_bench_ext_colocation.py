"""Extension bench (§8.1): proxy-to-proxy co-location detection."""

import numpy as np

from conftest import emit
from repro.core import detect_colocation
from repro.core.disambiguation import metadata_group_key


def test_bench_ext_colocation(benchmark, scenario):
    servers = scenario.providers[0].servers[:50]

    groups = benchmark.pedantic(
        detect_colocation, args=(scenario.network, servers),
        kwargs={"rng": np.random.default_rng(0)}, rounds=1, iterations=1)

    conflicting = [g for g in groups if g.claims_conflict]
    emit(f"Extension — co-location detection over {len(servers)} proxies\n"
         f"  LAN groups found: {len(groups)} "
         f"(sizes {[g.size for g in groups[:6]]})\n"
         f"  groups with conflicting country claims: {len(conflicting)}\n"
         f"  example: {conflicting[0].size if conflicting else 0} hosts "
         f"claiming {conflicting[0].claimed_countries()[:6] if conflicting else []}")

    # Paper pilot: "some groups of proxies (including proxies claimed to
    # be in separate countries) show less than 5 ms round-trip times
    # among themselves".
    assert groups
    assert conflicting, "co-located proxies with divergent claims expected"
    # Detection agrees with simulator ground truth — almost: the 5 ms
    # heuristic can merge *very* close metro areas (real Frankfurt–Cologne
    # RTTs are ~4 ms), so assert geographic tightness rather than strict
    # same-city membership.
    from repro.geodesy import haversine_km
    for group in groups:
        hosts = [s.host for s in group.servers]
        max_span = max(haversine_km(a.lat, a.lon, b.lat, b.lon)
                       for i, a in enumerate(hosts) for b in hosts[i + 1:])
        assert max_span < 500.0
    # Most groups are exactly one data centre (one metadata key).
    single_site = sum(
        1 for g in groups
        if len({metadata_group_key(s) for s in g.servers}) == 1)
    assert single_site >= len(groups) * 0.7
