"""Figure 21 bench: CBG++ vs ICLab vs five IP-to-location databases."""

from conftest import emit
from repro.experiments import fig21_databases


def test_bench_fig21_database_comparison(benchmark, scenario, audit):
    comparison = benchmark.pedantic(
        fig21_databases.run, args=(scenario,), rounds=1, iterations=1)
    emit(fig21_databases.format_table(comparison))

    generous = comparison.mean_agreement("CBG++ (generous)")
    strict = comparison.mean_agreement("CBG++ (strict)")
    iclab = comparison.mean_agreement("ICLab")

    # Paper: generous >= strict by construction, and both active methods
    # are far stricter than any database.  (In the paper ICLab lands near
    # strict CBG++; here, with coarser prediction regions, it lands near
    # the generous count — the active-vs-passive gap is the robust shape.)
    assert generous >= strict
    assert iclab <= generous + 0.10
    # All five IP-to-location databases agree with the providers far more
    # than either active-geolocation approach does.
    assert comparison.databases_more_agreeable()
    for db in ("DB-IP", "Eureka", "IP2Location", "IPInfo", "MaxMind"):
        assert comparison.mean_agreement(db) > generous
