"""Shared fixtures for the benchmark harness.

One scenario (and one full-fleet audit, memoised inside
``repro.experiments.audit.cached_audit``) is shared across every figure's
benchmark, mirroring how the paper's measurement campaign fed all of its
analyses.  Run with ``pytest benchmarks/ --benchmark-only -s`` to see the
regenerated figure tables.
"""

import pytest

from repro.experiments import cached_audit, default_scenario


@pytest.fixture(scope="session")
def scenario():
    return default_scenario()


@pytest.fixture(scope="session")
def audit(scenario):
    """The shared full-fleet audit consumed by Figures 16-23."""
    return cached_audit(scenario, max_servers=None, seed=0)


def emit(table: str) -> None:
    """Print a regenerated figure table (visible with -s)."""
    print()
    print(table)
