"""Ablation: analysis-grid resolution vs region-area fidelity and speed.

The grid is the accuracy/cost knob of the whole pipeline.  Compare a disk
region's rasterised area against the analytic spherical-cap area at
several resolutions: error should shrink with the cell size while cost
grows with the cell count.
"""

import time

from conftest import emit
from repro.geo import Grid, Region
from repro.geodesy import SphericalDisk

RESOLUTIONS = (4.0, 2.0, 1.0)
DISK = SphericalDisk(lat=48.0, lon=11.0, radius_km=1500.0)


def test_bench_ablation_grid_resolution(benchmark):
    def sweep():
        rows = []
        for resolution in RESOLUTIONS:
            grid = Grid(resolution_deg=resolution)
            start = time.perf_counter()
            region = Region.from_disk(grid, DISK)
            elapsed = time.perf_counter() - start
            error = abs(region.area_km2() - DISK.area_km2()) / DISK.area_km2()
            rows.append((resolution, grid.n_cells, error, elapsed))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit("Ablation (grid resolution) — disk area error vs cost\n" + "\n".join(
        f"  {res:4.1f} deg: {cells:7d} cells, area error {err:6.2%}, "
        f"{sec * 1000:6.1f} ms"
        for res, cells, err, sec in rows))
    # Finer grids are more accurate.
    errors = [err for _, _, err, _ in rows]
    assert errors[-1] <= errors[0]
    assert errors[-1] < 0.05       # 1 degree is within 5% of analytic
    # Cell counts grow quadratically with resolution.
    assert rows[-1][1] == 16 * rows[0][1]
