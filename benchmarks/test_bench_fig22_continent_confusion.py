"""Figure 22 bench: the continent co-occurrence matrix."""

from conftest import emit
from repro.experiments import fig22_confusion


def test_bench_fig22_continent_confusion(benchmark, scenario, audit):
    figures = benchmark.pedantic(
        fig22_confusion.run, args=(scenario,), rounds=1, iterations=1)
    emit(fig22_confusion.format_table(figures))
    matrix = figures.continent_matrix
    # Every prediction lands somewhere: the diagonal dominates.
    for continent in matrix.labels:
        diagonal = matrix.get(continent, continent)
        off = [matrix.get(continent, other) for other in matrix.labels
               if other != continent]
        if diagonal:
            assert diagonal >= max(off)
    # Geographic neighbours confuse; antipodes don't: Europe co-occurs
    # with Africa more than with South America (paper's matrix shape).
    assert matrix.get("EU", "AF") >= matrix.get("EU", "SA")
    # The matrix is symmetric by construction.
    assert matrix.get("EU", "AS") == matrix.get("AS", "EU")
