"""Figure 19 bench: per-provider honesty over every claimed country."""

import numpy as np

from conftest import emit
from repro.experiments import fig18_honesty


def test_bench_fig19_provider_country_maps(benchmark, scenario, audit):
    matrix = benchmark.pedantic(
        fig18_honesty.summarize, args=(audit,),
        kwargs={"all_countries": True}, rounds=1, iterations=1)

    lines = ["Figure 19 — per-provider honesty over all claimed countries"]
    for provider in matrix.providers:
        rates = [rate for (p, _), rate in matrix.honesty.items()
                 if p == provider]
        fully = sum(1 for r in rates if r >= 0.999)
        none = sum(1 for r in rates if r <= 0.001)
        lines.append(
            f"  provider {provider}: {len(rates):3d} claimed countries — "
            f"{fully:3d} fully backed, {none:3d} fully false, "
            f"mean {np.mean(rates):.0%}")
    emit("\n".join(lines))

    # Paper: "claimed locations in countries where server hosting is
    # difficult are almost always false", for every provider.
    tier3 = {c.iso2 for c in scenario.registry.by_hosting_tier(3)}
    tier3_rates = [rate for (_, country), rate in matrix.honesty.items()
                   if country in tier3]
    assert tier3_rates, "fleet should include tier-3 claims"
    assert np.mean(tier3_rates) < 0.4
    # "There is some variation among the providers": best and worst differ.
    means = {p: matrix.provider_mean(p) for p in matrix.providers}
    assert max(means.values()) - min(means.values()) > 0.1
