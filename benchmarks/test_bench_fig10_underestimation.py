"""Figure 10 bench: bestline/baseline estimate-to-true-distance ratios."""

from conftest import emit
from repro.experiments import fig10_underestimation


def test_bench_fig10_underestimation(benchmark, scenario):
    result = benchmark.pedantic(
        fig10_underestimation.run, args=(scenario,), rounds=1, iterations=1)
    emit(fig10_underestimation.format_table(result))
    best_rate = result.bestline_underestimate_rate()
    base_rate = result.baseline_underestimate_rate()
    # Paper: "A small fraction of all bestline estimates are still too
    # short, and for very short distances this can happen for baseline
    # estimates as well."
    assert best_rate < 0.10          # small fraction
    assert base_rate <= best_rate    # baseline is the safer bound
    # Underestimates concentrate at short range.
    bands = result.underestimates_by_distance()
    short_band_rate = bands[0][1]
    long_band_rates = [rate for _, rate, _ in bands[1:]]
    assert short_band_rate >= max(long_band_rates) - 1e-9
    # Ratios are overwhelmingly >= 1 (overestimates).
    median_ratio = dict(result.ratio_percentiles("bestline"))[0.5]
    assert median_ratio >= 1.0
