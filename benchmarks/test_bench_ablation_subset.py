"""Ablation: CBG++'s two-tier subset multilateration vs naive intersection.

The subset search exists so that one underestimated disk cannot blank out
(or wrongly shrink) the prediction.  The stress case is proxied
measurement, where client-leg subtraction noise produces exactly such
disks.  CBG++ must never return an empty region when plain intersection
of the same disks would; its region always contains the naive one.
"""

import numpy as np

from conftest import emit
from repro.core import CBGPlusPlus, ProxyMeasurer, TwoPhaseDriver, TwoPhaseSelector
from repro.core.multilateration import intersect_disks


def test_bench_ablation_subset_multilateration(benchmark, scenario):
    servers = scenario.all_servers()[:40]
    algorithm = CBGPlusPlus(scenario.calibrations, scenario.worldmap)
    selector = TwoPhaseSelector(scenario.atlas, seed=11)
    driver = TwoPhaseDriver(selector, algorithm)

    def compare():
        rng = np.random.default_rng(11)
        rows = []
        for server in servers:
            measurer = ProxyMeasurer(scenario.network, scenario.client,
                                     server, seed=server.host.host_id)
            result = driver.locate(measurer.observe, rng)
            observations = (result.phase2_observations
                            + result.phase1_observations)
            naive = algorithm.worldmap.clip_to_plausible(
                intersect_disks(scenario.grid, algorithm.disks(observations)))
            rows.append((result.prediction.region, naive,
                         len(result.prediction.discarded_landmarks)))
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    naive_empty = sum(1 for _, naive, _ in rows if naive.is_empty)
    cbgpp_empty = sum(1 for region, _, _ in rows if region.is_empty)
    discarded_total = sum(d for _, _, d in rows)
    emit(f"Ablation (two-tier subset) — {len(rows)} proxied targets\n"
         f"  empty predictions: naive intersection {naive_empty}, "
         f"CBG++ {cbgpp_empty}\n"
         f"  disks discarded by CBG++: {discarded_total}")
    # CBG++ never predicts "nowhere".
    assert cbgpp_empty == 0
    # Its region always contains the naive intersection (it only ever
    # removes constraints).
    for region, naive, _ in rows:
        assert not (naive.mask & ~region.mask).any()
