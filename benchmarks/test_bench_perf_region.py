"""Benchmarks of the packed-bitset Region engine on the fleet audit.

The packed engine stores every prediction as uint64 words (one bit per
grid cell) instead of a byte-per-cell boolean mask.  Two budgets are
enforced here, and exported into ``BENCH_perf.json`` so
``tools/compare_bench.py`` can police them across commits:

* **throughput** — the warm 60-server audit must stay within the same
  hard budget as ``test_bench_perf_audit`` (the packed engine must not
  trade time for memory);
* **resident region memory** — the audit's per-record regions must stay
  at least ``REQUIRED_MEM_REDUCTION``x smaller than the boolean
  reference (measured: 8.0x — 8 104 packed bytes vs 64 800 mask bytes
  per record on the 1° grid), and the tracemalloc peak of a whole warm
  audit must stay under ``MEM_PEAK_BUDGET_BYTES``.

The tracemalloc pass runs *outside* the timed rounds: tracing slows
allocation several-fold and would poison the timing stats.
"""

import tracemalloc

import pytest

from repro.experiments import run_audit

#: Warm 60-server audit wall time measured on the growth seed, seconds
#: (same protocol and budget as ``test_bench_perf_audit``).
SEED_WARM_AUDIT_S = 1.50
REQUIRED_SPEEDUP = 3.0

#: Minimum resident-memory reduction for per-record regions vs the
#: boolean reference (one byte per grid cell).  The packed layout
#: delivers ~8x; the gate is 2x so exotic grid sizes keep headroom.
REQUIRED_MEM_REDUCTION = 2.0

#: tracemalloc peak budget for one warm 60-server audit.  Measured
#: ~8 MiB with the packed engine; 32 MiB leaves room for allocator and
#: platform variance while still catching a bool-mask regression (which
#: alone adds ~4 MiB of region payload plus unpacking scratch).
MEM_PEAK_BUDGET_BYTES = 32 * 2**20


@pytest.fixture(scope="module")
def warm_scenario(scenario):
    """The shared scenario with all audit caches populated."""
    run_audit(scenario, max_servers=60, seed=0)
    return scenario


def test_perf_region_engine_audit(benchmark, warm_scenario):
    result = benchmark(lambda: run_audit(warm_scenario, max_servers=60,
                                         seed=0))
    assert len(result.records) == 60

    # -- throughput budget ---------------------------------------------------
    budget = SEED_WARM_AUDIT_S / REQUIRED_SPEEDUP
    assert benchmark.stats.stats.min <= budget, (
        f"packed-engine warm audit took {benchmark.stats.stats.min:.3f}s; "
        f"budget is {budget:.3f}s")

    # -- resident region memory ---------------------------------------------
    resident = sum(r.region.resident_nbytes() for r in result.records)
    bool_reference = sum(r.region.grid.n_cells for r in result.records)
    reduction = bool_reference / resident
    assert all(r.region.is_packed_native for r in result.records)
    assert not any(r.region.has_bool_view for r in result.records), (
        "an audit-path consumer forced the lazy boolean view; the "
        "resident-memory reduction is fictional if records carry masks")
    assert reduction >= REQUIRED_MEM_REDUCTION, (
        f"per-record regions hold {resident} bytes vs {bool_reference} "
        f"boolean-reference bytes: {reduction:.2f}x < "
        f"{REQUIRED_MEM_REDUCTION:.1f}x required")

    # -- tracemalloc peak (untimed: tracing slows allocation) ---------------
    tracemalloc.start()
    try:
        run_audit(warm_scenario, max_servers=60, seed=0)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    assert peak <= MEM_PEAK_BUDGET_BYTES, (
        f"warm audit peaked at {peak} traced bytes; "
        f"budget is {MEM_PEAK_BUDGET_BYTES}")

    benchmark.extra_info["mem_resident_region_bytes"] = int(resident)
    benchmark.extra_info["mem_bool_reference_bytes"] = int(bool_reference)
    benchmark.extra_info["mem_reduction_x"] = round(reduction, 2)
    benchmark.extra_info["mem_required_reduction_x"] = REQUIRED_MEM_REDUCTION
    benchmark.extra_info["mem_peak_bytes"] = int(peak)
    benchmark.extra_info["mem_budget_bytes"] = MEM_PEAK_BUDGET_BYTES
