"""Performance benchmarks of the fleet-audit pipeline.

The audit is the paper's main experiment and the repo's heaviest code
path: per-server two-phase measurement, CBG++ multilateration, and claim
assessment.  These benches time a warm 60-server audit slice end to end
and hold it to a hard budget derived from the recorded baselines, so a
regression in any layer (netsim sampling, the distance bank, the fleet
kernels, assessment) fails loudly instead of silently tripling CI time.

Two baselines anchor the gates:

* the growth seed (commit 69cd537) ran the warm 60-server audit in
  ~1.50 s;
* the per-server engine after the PR 3/4 optimisations (CSR paths,
  packed regions) ran it in ~0.30 s — the committed BENCH_perf.json
  minimum this branch was developed against.

The fleet engine (``REPRO_AUDIT_ENGINE=fleet``) must beat the PR 4
number by ``FLEET_REQUIRED_SPEEDUP`` and stay under the absolute
``FLEET_BUDGET_S``.  ``test_perf_fleet_scaling_1k`` additionally drives
``predict_fleet`` over 1000 synthetic servers and holds the *marginal*
per-server cost flat (catching bank-eviction thrash or any per-fleet
superlinearity) under a tracemalloc memory budget.
"""

import time
import tracemalloc

import numpy as np
import pytest

from repro.core.cbgpp import CBGPlusPlus
from repro.core.observations import RttObservation
from repro.experiments import run_audit
from repro.geodesy.greatcircle import haversine_km

#: Warm 60-server audit wall time measured on the growth seed, seconds.
SEED_WARM_AUDIT_S = 1.50

#: The same protocol on the per-server engine after PR 4 (the committed
#: BENCH_perf.json baseline this branch was developed against), seconds.
PERSERVER_WARM_AUDIT_S = 0.304

#: Required speedup of the fleet engine over the PR 4 per-server number.
FLEET_REQUIRED_SPEEDUP = 5.0

#: Absolute ceiling for the warm 60-server fleet audit, seconds.
FLEET_BUDGET_S = 0.070

#: Synthetic fleet sizes for the scaling bench: the marginal cost of the
#: servers beyond the prefix is what must stay flat.
SCALING_FLEET = 1000
SCALING_PREFIX = 125

#: Marginal cost per extra server may exceed the prefix's per-server
#: cost by at most this factor (1.0 = perfectly flat; eviction thrash or
#: any per-fleet superlinearity shows up as 1.6x+).
MARGINAL_FLATNESS = 1.5

#: Absolute marginal budget per extra server at the 1k scale, seconds.
MARGINAL_BUDGET_S = 0.001

#: Panels sampled for the same-run scalar reference; looping
#: ``predict`` must not be cheaper than the batched sweep.
SCALAR_SAMPLE = 40
FLEET_VS_SCALAR_MIN = 1.25

#: tracemalloc peak budget for one 1000-server ``predict_fleet`` sweep.
SCALING_MEM_BUDGET_BYTES = 96 * 1024 * 1024


@pytest.fixture(scope="module")
def warm_scenario(scenario):
    """The shared scenario with all audit caches populated."""
    run_audit(scenario, max_servers=60, seed=0)
    return scenario


def test_perf_fleet_audit_warm(benchmark, warm_scenario):
    # Fixed 40 rounds (~2.5 s): the budget gates on the *minimum*, and on
    # shared single-core runners extra rounds are what let the bench
    # catch a quiet scheduling window instead of flaking on neighbours.
    result = benchmark.pedantic(
        lambda: run_audit(warm_scenario, max_servers=60, seed=0),
        rounds=40, iterations=1)
    assert len(result.records) == 60
    floor = benchmark.stats.stats.min
    benchmark.extra_info["seed_baseline_s"] = SEED_WARM_AUDIT_S
    benchmark.extra_info["perserver_baseline_s"] = PERSERVER_WARM_AUDIT_S
    benchmark.extra_info["required_speedup"] = FLEET_REQUIRED_SPEEDUP
    benchmark.extra_info["speedup_vs_perserver"] = (
        PERSERVER_WARM_AUDIT_S / floor)
    assert floor <= FLEET_BUDGET_S, (
        f"warm 60-server audit took {floor:.3f}s; the fleet engine's "
        f"absolute budget is {FLEET_BUDGET_S:.3f}s")
    assert PERSERVER_WARM_AUDIT_S / floor >= FLEET_REQUIRED_SPEEDUP, (
        f"warm 60-server audit took {floor:.3f}s — only "
        f"{PERSERVER_WARM_AUDIT_S / floor:.2f}x the PR 4 per-server "
        f"baseline of {PERSERVER_WARM_AUDIT_S:.3f}s "
        f"(need {FLEET_REQUIRED_SPEEDUP:.0f}x)")


def test_perf_fleet_audit_parallel_matches_serial(warm_scenario):
    """Worker fan-out must not change a single verdict (sanity, not speed).

    On multi-core machines ``workers=4`` also cuts wall time; asserting
    on that here would make the bench flaky on single-core CI runners,
    so only the bit-identity contract is enforced.
    """
    serial = run_audit(warm_scenario, max_servers=24, seed=0, workers=1)
    parallel = run_audit(warm_scenario, max_servers=24, seed=0, workers=4)
    assert serial.verdict_counts() == parallel.verdict_counts()
    for a, b in zip(serial.records, parallel.records):
        assert np.array_equal(a.region.mask, b.region.mask)
        assert a.assessment.verdict == b.assessment.verdict


def _consistent_fleets(scenario, n_servers, seed):
    """Synthetic observation panels with mutually consistent geometry.

    Each panel is built around a hidden true location, with one-way
    delays derived from the actual landmark distances plus positive
    noise — so the joint intersection is non-empty and the sweep
    exercises the vectorised fast path, exactly like a healthy audit.
    (Contradictory panels fall back to the per-server subset search by
    design; that path is covered by the warm audit bench above.)
    """
    rng = np.random.default_rng(seed)
    pool = scenario.atlas.all_landmarks()
    fleets = []
    for _ in range(n_servers):
        size = int(rng.integers(8, 31))
        lat = float(rng.uniform(-55.0, 65.0))
        lon = float(rng.uniform(-180.0, 180.0))
        picks = rng.choice(len(pool), size=size, replace=True)
        panel = []
        for pick in picks:
            landmark = pool[int(pick)]
            distance = haversine_km(lat, lon, landmark.lat, landmark.lon)
            panel.append(RttObservation(
                landmark_name=landmark.name,
                lat=landmark.lat,
                lon=landmark.lon,
                one_way_ms=distance / 100.0 + float(rng.uniform(0.5, 8.0))))
        fleets.append(panel)
    return fleets


def _best_of(fn, rounds=3):
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def test_perf_fleet_scaling_1k(benchmark, warm_scenario):
    """1000-server ``predict_fleet`` sweep: flat marginal cost, bounded
    memory, and never slower than looping the scalar predictor."""
    algorithm = CBGPlusPlus(warm_scenario.calibrations,
                            warm_scenario.worldmap)
    fleets = _consistent_fleets(warm_scenario, SCALING_FLEET, seed=13)
    prefix = fleets[:SCALING_PREFIX]
    algorithm.predict_fleet(prefix)  # warm the bank rows

    prefix_s = _best_of(lambda: algorithm.predict_fleet(prefix))
    scalar_sample = fleets[:SCALAR_SAMPLE]
    scalar_s = _best_of(
        lambda: [algorithm.predict(panel) for panel in scalar_sample])
    scalar_per_server = scalar_s / SCALAR_SAMPLE

    tracemalloc.start()
    algorithm.predict_fleet(fleets)
    peak = tracemalloc.get_traced_memory()[1]
    tracemalloc.stop()

    predictions = benchmark(lambda: algorithm.predict_fleet(fleets))
    assert len(predictions) == SCALING_FLEET

    full_s = benchmark.stats.stats.min
    marginal = (full_s - prefix_s) / (SCALING_FLEET - SCALING_PREFIX)
    prefix_per_server = prefix_s / SCALING_PREFIX
    benchmark.extra_info["n_servers"] = SCALING_FLEET
    benchmark.extra_info["marginal_s_per_server"] = marginal
    benchmark.extra_info["prefix_s_per_server"] = prefix_per_server
    benchmark.extra_info["scalar_s_per_server"] = scalar_per_server
    benchmark.extra_info["mem_peak_bytes"] = int(peak)
    benchmark.extra_info["mem_budget_bytes"] = SCALING_MEM_BUDGET_BYTES

    assert marginal <= MARGINAL_BUDGET_S, (
        f"marginal cost {marginal * 1e3:.3f} ms/server at "
        f"{SCALING_FLEET} servers exceeds the "
        f"{MARGINAL_BUDGET_S * 1e3:.1f} ms budget")
    assert marginal <= MARGINAL_FLATNESS * prefix_per_server, (
        f"marginal cost {marginal * 1e3:.3f} ms/server is "
        f"{marginal / prefix_per_server:.2f}x the {SCALING_PREFIX}-server "
        f"prefix's per-server cost — the sweep has gone superlinear "
        f"(bank eviction thrash?)")
    assert scalar_per_server / marginal >= FLEET_VS_SCALAR_MIN, (
        f"fleet marginal {marginal * 1e3:.3f} ms/server is not "
        f"{FLEET_VS_SCALAR_MIN:.2f}x cheaper than looping the scalar "
        f"predictor ({scalar_per_server * 1e3:.3f} ms/server)")
    assert peak <= SCALING_MEM_BUDGET_BYTES, (
        f"1000-server sweep traced {peak} bytes peak; budget is "
        f"{SCALING_MEM_BUDGET_BYTES}")


def test_perf_observation_panel(benchmark, warm_scenario):
    """One server's full phase-2 measurement panel, warm caches."""
    from repro.core.proxy_adapter import ProxyMeasurer

    server = warm_scenario.all_servers()[0]
    measurer = ProxyMeasurer(warm_scenario.network, warm_scenario.client,
                             server, seed=server.host.host_id)
    landmarks = warm_scenario.atlas.anchors[:25]
    rng = np.random.default_rng(7)
    observations = benchmark(lambda: measurer.observe(landmarks, rng))
    assert len(observations) == len(landmarks)
