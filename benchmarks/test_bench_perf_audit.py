"""Performance benchmarks of the fleet-audit pipeline.

The audit is the paper's main experiment and the repo's heaviest code
path: per-server two-phase measurement, CBG++ multilateration, and claim
assessment.  These benches time a warm 60-server audit slice end to end
and hold it to a hard budget derived from the pre-optimisation baseline,
so a regression in any layer (netsim sampling, the distance bank, the
subset search, assessment) fails loudly instead of silently tripling CI
time.

Baselines were measured on the growth seed (commit 69cd537) with the
same protocol as ``test_perf_fleet_audit_warm``: warm caches,
``max_servers=60``, ``seed=0``, best of five runs ≈ 1.50 s.  The budget
asserts the required >= 3x speedup with margin for noisy shared CPUs.
"""

import numpy as np
import pytest

from repro.experiments import run_audit

#: Warm 60-server audit wall time measured on the growth seed, seconds.
SEED_WARM_AUDIT_S = 1.50

#: Required speedup over the seed (the optimisation acceptance bar).
REQUIRED_SPEEDUP = 3.0


@pytest.fixture(scope="module")
def warm_scenario(scenario):
    """The shared scenario with all audit caches populated."""
    run_audit(scenario, max_servers=60, seed=0)
    return scenario


def test_perf_fleet_audit_warm(benchmark, warm_scenario):
    result = benchmark(lambda: run_audit(warm_scenario, max_servers=60,
                                         seed=0))
    assert len(result.records) == 60
    benchmark.extra_info["seed_baseline_s"] = SEED_WARM_AUDIT_S
    benchmark.extra_info["required_speedup"] = REQUIRED_SPEEDUP
    budget = SEED_WARM_AUDIT_S / REQUIRED_SPEEDUP
    assert benchmark.stats.stats.min <= budget, (
        f"warm 60-server audit took {benchmark.stats.stats.min:.3f}s; "
        f"budget for a {REQUIRED_SPEEDUP:.0f}x speedup over the seed's "
        f"{SEED_WARM_AUDIT_S:.2f}s is {budget:.3f}s")


def test_perf_fleet_audit_parallel_matches_serial(warm_scenario):
    """Worker fan-out must not change a single verdict (sanity, not speed).

    On multi-core machines ``workers=4`` also cuts wall time; asserting
    on that here would make the bench flaky on single-core CI runners,
    so only the bit-identity contract is enforced.
    """
    serial = run_audit(warm_scenario, max_servers=24, seed=0, workers=1)
    parallel = run_audit(warm_scenario, max_servers=24, seed=0, workers=4)
    assert serial.verdict_counts() == parallel.verdict_counts()
    for a, b in zip(serial.records, parallel.records):
        assert np.array_equal(a.region.mask, b.region.mask)
        assert a.assessment.verdict == b.assessment.verdict


def test_perf_observation_panel(benchmark, warm_scenario):
    """One server's full phase-2 measurement panel, warm caches."""
    from repro.core.proxy_adapter import ProxyMeasurer

    server = warm_scenario.all_servers()[0]
    measurer = ProxyMeasurer(warm_scenario.network, warm_scenario.client,
                             server, seed=server.host.host_id)
    landmarks = warm_scenario.atlas.anchors[:25]
    rng = np.random.default_rng(7)
    observations = benchmark(lambda: measurer.observe(landmarks, rng))
    assert len(observations) == len(landmarks)
