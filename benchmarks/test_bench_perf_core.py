"""Performance benchmarks of the pipeline's hot paths.

Unlike the figure benches (one-shot table regeneration), these use
pytest-benchmark's repeated timing to track the costs that dominate a
fleet audit: calibration fitting, distance-field/disk-mask evaluation,
the subset search, and a full CBG++ prediction.
"""

import numpy as np
import pytest

from repro.core import CBGPlusPlus, RttObservation, largest_consistent_subset
from repro.core.calibration import CbgCalibration
from repro.geo import Grid


@pytest.fixture(scope="module")
def observations(scenario):
    rng = np.random.default_rng(0)
    target = scenario.factory.create(48.8, 2.3, name="perf-target")
    observations = []
    for landmark in scenario.atlas.anchors[:25]:
        base = scenario.network.base_one_way_ms(target, landmark.host)
        observations.append(RttObservation(
            landmark.name, landmark.lat, landmark.lon,
            base + float(rng.exponential(2.0))))
    return observations


def test_perf_cbg_calibration_fit(benchmark, scenario):
    points = scenario.atlas.calibration_data(scenario.atlas.anchors[0])
    result = benchmark(lambda: CbgCalibration(points, apply_slowline=True))
    assert result.speed_km_per_ms > 0


def test_perf_distance_field_uncached(benchmark):
    grid = Grid(resolution_deg=1.0)
    counter = [0]

    def compute():
        # A fresh coordinate each round defeats the LRU cache, so the
        # benchmark measures the haversine sweep itself.
        counter[0] += 1
        lat = (counter[0] * 0.137) % 80.0
        return grid.distances_from(lat, 10.0)

    distances = benchmark(compute)
    assert distances.shape == (grid.n_cells,)


def test_perf_disk_mask_cached(benchmark, scenario):
    grid = scenario.grid
    grid.distances_from(50.0, 8.0)  # warm the cache
    mask = benchmark(lambda: grid.disk_mask(50.0, 8.0, 1500.0))
    assert mask.any()


def test_perf_subset_search_with_conflicts(benchmark, scenario):
    grid = scenario.grid
    rng = np.random.default_rng(1)
    masks = [grid.disk_mask(48.0 + float(rng.normal(0, 3)),
                            10.0 + float(rng.normal(0, 5)),
                            float(rng.uniform(800, 4000)))
             for _ in range(20)]
    masks += [grid.disk_mask(-30.0, 140.0, 500.0)]  # a conflicting outlier
    chosen, mask = benchmark(lambda: largest_consistent_subset(masks))
    assert mask.any()
    assert len(chosen) >= 20


def test_perf_cbgpp_full_prediction(benchmark, scenario, observations):
    algorithm = CBGPlusPlus(scenario.calibrations, scenario.worldmap)
    algorithm.predict(observations)  # warm calibration + distance caches
    prediction = benchmark(lambda: algorithm.predict(observations))
    assert not prediction.failed


def test_perf_region_country_coverage(benchmark, scenario, observations):
    algorithm = CBGPlusPlus(scenario.calibrations, scenario.worldmap)
    region = algorithm.predict(observations).region
    covered = benchmark(lambda: scenario.worldmap.countries_covered(region))
    assert covered
