"""Extension bench (§8.1): iterative refinement of noisy predictions."""

import numpy as np

from conftest import emit
from repro.core import (
    CBGPlusPlus,
    IterativeRefiner,
    ProxyMeasurer,
    TwoPhaseDriver,
    TwoPhaseSelector,
)


def test_bench_ext_iterative_refinement(benchmark, scenario):
    algorithm = CBGPlusPlus(scenario.calibrations, scenario.worldmap)
    selector = TwoPhaseSelector(scenario.atlas, seed=31)
    driver = TwoPhaseDriver(selector, algorithm)
    refiner = IterativeRefiner(scenario.atlas, algorithm, batch_size=8,
                               max_rounds=4)
    servers = scenario.all_servers()[:15]

    def refine_fleet():
        rng = np.random.default_rng(31)
        rows = []
        for server in servers:
            measurer = ProxyMeasurer(scenario.network, scenario.client,
                                     server, seed=server.host.host_id)
            initial = driver.locate(measurer.observe, rng)
            observations = (initial.phase2_observations
                            + initial.phase1_observations)
            refined = refiner.refine(initial.prediction, observations,
                                     lambda lms: measurer.observe(lms, rng))
            rows.append((initial.prediction.area_km2(),
                         refined.prediction.area_km2(),
                         refined.total_measurements,
                         refined.prediction.miss_distance_km(
                             *server.true_location)))
        return rows

    rows = benchmark.pedantic(refine_fleet, rounds=1, iterations=1)
    before = np.array([r[0] for r in rows])
    after = np.array([r[1] for r in rows])
    extra = np.array([r[2] for r in rows])
    emit(f"Extension — iterative refinement over {len(rows)} proxies\n"
         f"  median region area: {np.median(before):,.0f} km2 -> "
         f"{np.median(after):,.0f} km2 "
         f"({1 - np.median(after) / np.median(before):.0%} smaller)\n"
         f"  extra measurements per target: {np.mean(extra):.1f}")

    # Refinement never grows a region, shrinks the median meaningfully,
    # and costs a bounded number of extra measurements.
    assert (after <= before * 1.001).all()
    assert np.median(after) < np.median(before)
    assert np.mean(extra) <= 4 * 8
