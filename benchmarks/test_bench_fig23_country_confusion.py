"""Figure 23 bench: the country co-occurrence matrix."""

from conftest import emit
from repro.experiments import fig22_confusion


def test_bench_fig23_country_confusion(benchmark, scenario, audit):
    figures = benchmark.pedantic(
        fig22_confusion.run, args=(scenario,), rounds=1, iterations=1)
    pairs = figures.most_confused_countries(15)
    same_continent = figures.same_continent_confusion_rate(scenario)
    emit("Figure 23 — country confusion: "
         f"{len(pairs)} top pairs, same-continent rate {same_continent:.0%}\n"
         + "\n".join(f"  {a} <-> {b}: {n}" for a, b, n in pairs))
    # Confusion concentrates within continents ("just about every country
    # within a continent can share a prediction region") — though the
    # paper's own Appendix A continent split (Middle East -> Africa,
    # maritime Southeast Asia -> Oceania) guarantees plenty of nominally
    # cross-continent pairs among physical neighbours.
    assert same_continent > 0.4
    top_same = sum(
        1 for a, b, _ in pairs
        if scenario.registry.continent_of(a) == scenario.registry.continent_of(b))
    assert top_same >= 0.8 * len(pairs)
    # The most confusable pairs are real neighbours with real counts.
    assert pairs[0][2] >= 3
    # Dense Europe produces the most confusion pairs (the paper's matrix
    # has its biggest block there).
    eu = {c.iso2 for c in scenario.registry.by_continent("EU")}
    eu_pairs = sum(1 for a, b, _ in pairs if a in eu and b in eu)
    assert eu_pairs >= len(pairs) // 3
