"""Ablation: the CBG++ slowline constraint, isolated.

Compares plain CBG against CBG with slowline-bounded bestlines (but still
naive all-disk intersection) on the crowdsourced hosts.  The slowline can
only widen disks whose bestline was slower than 84.5 km/ms, so coverage
must not decrease and regions must not shrink.
"""

import numpy as np

from conftest import emit
from repro.core import CBG
from repro.experiments import fig09_algorithms


class CbgSlowlineOnly(CBG):
    """CBG whose bestlines honour the slowline — no subset multilateration."""

    name = "cbg+slowline"
    apply_slowline = True


def test_bench_ablation_slowline(benchmark, scenario):
    hosts = scenario.crowd[:20]
    plain = CBG(scenario.calibrations, scenario.worldmap)
    slowline = CbgSlowlineOnly(scenario.calibrations, scenario.worldmap)

    def compare():
        rng = np.random.default_rng(5)
        rows = []
        for host in hosts:
            observations = fig09_algorithms.measure_crowd_host(
                scenario, host, rng)
            p_plain = plain.predict(observations)
            p_slow = slowline.predict(observations)
            rows.append((
                p_plain.miss_distance_km(host.host.lat, host.host.lon),
                p_slow.miss_distance_km(host.host.lat, host.host.lon),
                p_plain.area_km2(),
                p_slow.area_km2(),
            ))
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    plain_cover = sum(1 for r in rows if r[0] == 0) / len(rows)
    slow_cover = sum(1 for r in rows if r[1] == 0) / len(rows)
    emit(f"Ablation (slowline) — {len(rows)} hosts\n"
         f"  coverage: plain CBG {plain_cover:.0%}, +slowline {slow_cover:.0%}\n"
         f"  median area: plain {np.median([r[2] for r in rows]):,.0f} km2, "
         f"+slowline {np.median([r[3] for r in rows]):,.0f} km2")
    # The slowline never hurts coverage and never shrinks a region.
    assert slow_cover >= plain_cover
    for _, _, area_plain, area_slow in rows:
        assert area_slow >= area_plain - 1e-6
