"""Figure 18 bench: honesty concentrates in commonly-claimed countries."""

from conftest import emit
from repro.experiments import fig18_honesty


def test_bench_fig18_honesty_matrix(benchmark, scenario, audit):
    matrix = benchmark.pedantic(
        fig18_honesty.summarize, args=(audit,), rounds=1, iterations=1)
    emit(fig18_honesty.format_table(matrix))
    assert len(matrix.providers) == 7
    assert len(matrix.countries) == 20
    # Hosting-tier gradient: claims in tier-1 countries are backed far more
    # often than claims in tier-3 countries.
    tier_means = matrix.tier_means(scenario)
    assert tier_means[1] > tier_means[3]
    # Honest provider D beats dishonest provider B on average.
    assert matrix.provider_mean("D") > matrix.provider_mean("B")
