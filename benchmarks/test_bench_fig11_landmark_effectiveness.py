"""Figure 11 bench: which measurements constrain the prediction region."""

from conftest import emit
from repro.experiments import fig11_effectiveness


def test_bench_fig11_effectiveness(benchmark, scenario):
    hosts = scenario.crowd[:12]
    result = benchmark.pedantic(
        fig11_effectiveness.run, args=(scenario,),
        kwargs={"hosts": hosts}, rounds=1, iterations=1)
    emit(fig11_effectiveness.format_table(result))
    # Paper: "A large majority of all measurements lead to disks that
    # radically overestimate" — i.e. are ineffective.
    assert result.effective_rate() < 0.5
    # Effective measurements are more likely to come from landmarks close
    # to the target...
    bands = result.effective_rate_by_distance()
    assert bands[0][1] > bands[-1][1]
    # ...but among effective ones, area reduction does not correlate with
    # distance.
    correlation = result.reduction_distance_correlation()
    assert correlation is None or abs(correlation) < 0.5
