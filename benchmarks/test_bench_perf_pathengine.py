"""Performance benchmarks of the batched shortest-path engine.

The acceptance bar for the path-engine optimisation is a >= 4x cold
speedup over the per-source pure-Python networkx oracle **on the
workload the engine replaces**: resolving the fleet-wide base-RTT floor
matrix (every landmark, server, and client source against every host)
from a cold cache.  ``test_perf_cold_fleet_floors_speedup`` times both
engines on that workload *in the same run* — no stored baselines, so a
noisy shared CPU slows both sides equally — and asserts the ratio.

End to end, the shortest-path oracle is one of several costs (RNG noise
draws, the distance bank, and assessment are engine-independent), so the
full cold ``default_scenario()`` + audit pipeline cannot speed up by the
oracle's full factor.  ``test_perf_cold_pipeline_engines`` holds the
honest contract there: the CSR engine is never slower than the networkx
fallback (modest tolerance for timer noise), produces bit-identical
results, and the whole cold pipeline stays within a generous absolute
budget so a pathological regression still fails loudly.
"""

import time

import numpy as np
import pytest

from repro.experiments import default_scenario, run_audit
from repro.netsim.network import Network
from repro.netsim.pathengine import HAVE_SCIPY

#: The optimisation acceptance bar on the oracle workload (cold
#: fleet-wide base-RTT floors, CSR vs networkx, same run).
REQUIRED_ORACLE_SPEEDUP = 4.0

#: Generous absolute ceiling on one cold scenario build plus a 60-server
#: audit slice; only a pathological regression (or a broken engine
#: falling back to quadratic work) can breach it.
COLD_PIPELINE_BUDGET_S = 60.0

pytestmark = pytest.mark.skipif(
    not HAVE_SCIPY, reason="CSR engine needs scipy; nothing to compare")


def _fleet(scenario):
    """(sources, targets) of the fleet-wide base-RTT floor workload."""
    sources = ([scenario.client]
               + [lm.host for lm in scenario.atlas.all_landmarks()]
               + [server.host for server in scenario.all_servers()])
    return sources, list(scenario.factory.hosts)


def _cold_floors(topology, sources, targets, mode):
    """The full fleet floor matrix from a cold cache in one engine mode."""
    network = Network(topology, seed=0, path_engine=mode)
    network.warm_paths(sources + targets)
    return np.vstack([network.base_rtt_matrix(source, targets)
                      for source in sources])


def test_perf_cold_fleet_floors_speedup(benchmark, scenario):
    sources, targets = _fleet(scenario)
    topology = scenario.network.topology

    oracle_best = np.inf
    for _ in range(2):
        start = time.perf_counter()
        oracle_floors = _cold_floors(topology, sources, targets, "networkx")
        oracle_best = min(oracle_best, time.perf_counter() - start)

    engine_floors = benchmark.pedantic(
        _cold_floors, args=(topology, sources, targets, "csr"),
        rounds=3, iterations=1)

    # Same floats, not merely close: the engines must be interchangeable.
    assert np.array_equal(engine_floors, oracle_floors)

    engine_best = benchmark.stats.stats.min
    speedup = oracle_best / engine_best
    benchmark.extra_info["networkx_oracle_s"] = oracle_best
    benchmark.extra_info["speedup_vs_networkx"] = speedup
    benchmark.extra_info["required_speedup"] = REQUIRED_ORACLE_SPEEDUP
    assert speedup >= REQUIRED_ORACLE_SPEEDUP, (
        f"cold fleet floors: csr {engine_best:.3f}s vs networkx "
        f"{oracle_best:.3f}s is only {speedup:.2f}x; the engine must be "
        f">= {REQUIRED_ORACLE_SPEEDUP:.0f}x faster than the oracle")


def _cold_pipeline(mode):
    """One cold scenario build plus a 60-server audit slice."""
    start = time.perf_counter()
    scenario = default_scenario(seed=0, path_engine=mode)
    result = run_audit(scenario, max_servers=60, seed=0)
    return time.perf_counter() - start, result


def test_perf_cold_pipeline_engines():
    engine_s, engine_result = _cold_pipeline("csr")
    oracle_s, oracle_result = _cold_pipeline("networkx")

    assert engine_result.eta.eta == oracle_result.eta.eta
    assert (engine_result.verdict_counts()
            == oracle_result.verdict_counts())
    assert engine_s <= COLD_PIPELINE_BUDGET_S, (
        f"cold pipeline took {engine_s:.1f}s; budget is "
        f"{COLD_PIPELINE_BUDGET_S:.0f}s")
    # The engine must never make the pipeline slower than the fallback;
    # 15% headroom absorbs timer noise on shared CI runners.
    assert engine_s <= oracle_s * 1.15, (
        f"cold pipeline: csr {engine_s:.1f}s vs networkx {oracle_s:.1f}s "
        f"— the CSR engine should never lose to the fallback")
