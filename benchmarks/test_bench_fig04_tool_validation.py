"""Figure 4 bench: CLI vs web tool on Linux."""

from conftest import emit
from repro.experiments import fig04_tools


def test_bench_fig04_linux_tools(benchmark, scenario):
    result = benchmark.pedantic(
        fig04_tools.run, args=(scenario,), kwargs={"os": "linux"},
        rounds=1, iterations=1)
    emit(fig04_tools.format_table(result))
    # Paper: two-RTT slope is 1.96x the one-RTT slope; ANOVA finds no
    # significant difference among the tools on Linux.
    assert 1.7 <= result.slope_ratio <= 2.3
    assert not result.tool_effect.significant
    assert result.pooled_r_squared > 0.9
    assert result.n_outliers == 0  # high outliers are a Windows phenomenon
