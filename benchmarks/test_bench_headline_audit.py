"""Headline bench (§6): the full end-to-end audit and its totals.

The paper: 2269 proxies, 989 credible / 642 uncertain / 638 false before
reclassification nuances; at least one third definitely not in the
advertised country; 353 uncertain claims reclassified via data centres
and metadata.  The simulated fleet is smaller but the proportions — who
lies, where the servers really are — are the reproduction target.
"""

from conftest import emit
from repro.experiments import run_audit


def test_bench_headline_full_audit(benchmark, scenario):
    # Benchmark the real thing: a fresh (uncached) audit of a fleet slice,
    # measuring end-to-end audit throughput.
    result = benchmark.pedantic(
        run_audit, args=(scenario,),
        kwargs={"max_servers": 120, "seed": 99}, rounds=1, iterations=1)

    emit(f"Headline audit — {len(result.records)} servers\n"
         f"  eta: {result.eta.eta:.3f} (R^2 {result.eta.r_squared:.3f})\n"
         f"  verdicts (initial): {result.verdict_counts(initial=True)}\n"
         f"  verdicts (final):   {result.verdict_counts()}\n"
         f"  reclassified:       {result.reclassified}\n"
         f"  ground truth:       {result.ground_truth_accuracy()}")

    counts = result.verdict_counts()
    total = len(result.records)
    # One third (or more) definitely false.
    assert counts.get("false", 0) >= total / 3
    # All three classes are populated, as in the paper.
    assert counts.get("credible", 0) > 0
    assert counts.get("uncertain", 0) > 0
    # Disambiguation reclassifies a meaningful number of uncertain cases.
    assert result.reclassified["total"] > 0
    # Soundness: wrongly-accused honest servers stay rare (<10% of false
    # verdicts) — the paper's design priority.
    truth = result.ground_truth_accuracy()
    assert truth["false_precision"] >= 0.9
