"""Figures 15-16 bench: data-centre and metadata disambiguation."""

from conftest import emit
from repro.experiments import fig16_disambiguation


def test_bench_fig16_disambiguation(benchmark, scenario, audit):
    summary = benchmark.pedantic(
        fig16_disambiguation.summarize, args=(audit,), rounds=1, iterations=1)
    emit(fig16_disambiguation.format_table(summary))
    # Disambiguation resolves a substantial share of uncertain verdicts
    # (paper: 353 of 642, with data centres doing most of the work).
    assert summary.total_resolved > 0
    assert summary.resolved_by_datacenter >= summary.resolved_by_metadata
    assert 0.05 <= summary.resolution_rate() <= 0.95
    # Proxies do cluster: there are real multi-host metadata groups.
    assert summary.group_sizes[0] >= 3
