"""Figure 9 bench: algorithm precision on the crowdsourced hosts."""

from conftest import emit
from repro.experiments import fig09_algorithms


def test_bench_fig09_algorithm_comparison(benchmark, scenario):
    comparison = benchmark.pedantic(
        fig09_algorithms.run, args=(scenario,),
        kwargs={"include_cbgpp": True}, rounds=1, iterations=1)
    emit(fig09_algorithms.format_table(comparison))

    cbg = comparison.coverage("cbg")
    octant = comparison.coverage("quasi-octant")
    spotter = comparison.coverage("spotter")
    hybrid = comparison.coverage("hybrid")
    cbgpp = comparison.coverage("cbg++")

    # Paper panel A: CBG covers ~90% of hosts, far more than the other
    # three; CBG++ covers every host.
    assert cbg >= 0.85
    assert cbg > octant and cbg > spotter and cbg > hybrid
    assert cbgpp >= cbg
    assert cbgpp >= 0.95

    # Panel C: CBG's regions are much larger than the other three's.
    import numpy as np
    cbg_area = np.median([o.area_fraction
                          for o in comparison.for_algorithm("cbg")])
    for other in ("quasi-octant", "spotter", "hybrid"):
        other_area = np.median([o.area_fraction
                                for o in comparison.for_algorithm(other)])
        assert cbg_area > other_area

    # Panel A detail: the non-CBG algorithms still land within 10000 km
    # for most hosts (they miss, but not by the whole planet) —
    # except Spotter, the paper's worst performer, which may.
    assert comparison.fraction_within("quasi-octant", 10000.0) >= 0.6
    assert comparison.fraction_within("hybrid", 10000.0) >= 0.6
