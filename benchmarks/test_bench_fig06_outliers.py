"""Figure 6 bench: the Windows high outliers."""

import numpy as np

from conftest import emit
from repro.experiments import fig04_tools


def test_bench_fig06_high_outliers(benchmark, scenario):
    result = benchmark.pedantic(
        fig04_tools.run, args=(scenario,), kwargs={"os": "windows", "seed": 3},
        rounds=1, iterations=1)
    correlation = fig04_tools.outlier_distance_correlation(result)
    emit(fig04_tools.format_table(result)
         + f"\n  outlier RTT vs distance correlation: {correlation}")
    # Paper: outliers are "much slower than can be attributed to even two
    # round-trips, and their values are primarily dependent on the browser
    # they were measured with, rather than the distance".
    assert result.n_outliers >= 5
    outlier_rtts = [s.rtt_ms for s in result.outliers]
    clean_rtts = [s.rtt_ms for s in result.samples if not s.is_outlier]
    assert np.median(outlier_rtts) > 3 * np.median(clean_rtts)
    if correlation is not None:
        assert abs(correlation) < 0.5  # distance explains little
    # Browser means differ substantially (edge slowest in the model).
    means = result.outlier_mean_by_browser
    if "edge-17" in means and "chrome-68" in means:
        assert means["edge-17"] > means["chrome-68"]
