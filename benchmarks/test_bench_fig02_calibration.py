"""Figure 2 bench: per-landmark calibration model fitting."""

from conftest import emit
from repro.experiments import fig02_calibration
from repro.geodesy import BASELINE_SPEED_KM_PER_MS, SLOWLINE_SPEED_KM_PER_MS


def test_bench_fig02_calibration(benchmark, scenario):
    figure = benchmark.pedantic(
        fig02_calibration.run, args=(scenario,), rounds=1, iterations=1)
    emit(fig02_calibration.format_table(figure))
    # Shape assertions from the paper's figure: the bestline sits between
    # the slowline and the baseline, below every calibration point.
    assert SLOWLINE_SPEED_KM_PER_MS <= figure.bestline_speed_slowline
    assert figure.bestline_speed <= BASELINE_SPEED_KM_PER_MS + 1e-9
    assert figure.points_below_bestline() == 0
    # Spotter's mu curve is increasing in delay.
    delays = sorted(figure.spotter_mu_at)
    mus = [figure.spotter_mu_at[t] for t in delays]
    assert mus == sorted(mus)
