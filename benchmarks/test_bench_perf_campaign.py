"""Performance benchmarks of the sharded streaming campaign orchestrator.

Two gates anchor the campaign's scale story (DESIGN.md §5e):

* ``test_perf_campaign_paper_scale`` runs the full paper-scale fleet
  (2,269+ servers) through a 2-shard streaming campaign and holds both
  the wall clock and the process peak RSS to hard budgets.  The
  materialised (pre-campaign) paper-scale audit peaked at ~3.3 GB RSS
  on the reference VM; the streaming run measured ~614 MiB, and the
  budget sits between the two so a quietly re-materialised record list
  fails loudly.

* ``test_perf_campaign_streaming_memory_10k`` streams 10k synthetic
  records (each carrying its own freshly allocated packed region)
  through a ``CampaignAggregator`` and holds the *marginal* tracemalloc
  cost between 2k and 10k records to a small fraction of one packed
  region — the aggregator must retain tallies and region-free
  skeletons, never the regions themselves.
"""

import resource
import tracemalloc
from dataclasses import replace

import pytest

from repro.experiments import run_audit
from repro.experiments.campaign import CampaignAggregator, run_campaign
from repro.experiments.scenario import paper_scale_scenario
from repro.geo.region import Region

#: Reference numbers from the development VM (1-core Xeon 2.1 GHz):
#: 2-shard streaming campaign over 2,429 servers in ~31 s at ~614 MiB
#: peak RSS; the materialised audit of the same fleet peaked at ~3.3 GB.
PAPER_SCALE_BUDGET_S = 120.0
PAPER_SCALE_RSS_BUDGET_BYTES = 1536 * 1024 * 1024

#: The paper's fleet size — the scenario must reach it.
PAPER_FLEET_MIN = 2269

#: Soundness floor for the merged paper-scale report.
PAPER_FALSE_PRECISION_MIN = 0.9

#: Synthetic streaming sizes.  The aggregator's memory is linear only
#: in its region-free skeletons and tallies (~64 bytes/record measured),
#: so the *marginal* cost per record must stay a small fraction of one
#: retained packed region (~8 KB): a sink that held on to records blows
#: through the gate by more than an order of magnitude.
STREAM_SMALL = 2_000
STREAM_LARGE = 10_000
MARGINAL_BYTES_PER_RECORD = 512

#: Absolute tracemalloc ceiling for the 10k stream (~660 KB measured).
#: Materialising the 10k regions alone would cost ~80 MB.
STREAM_MEM_BUDGET_BYTES = 8 * 1024 * 1024


def test_perf_campaign_paper_scale(benchmark):
    scenario = paper_scale_scenario(seed=0)
    # rounds=1: the campaign is ~30 s on the reference VM; the hard
    # budgets gate the single measured run.
    run = benchmark.pedantic(
        lambda: run_campaign(scenario, shards=2, seed=0),
        rounds=1, iterations=1)
    report = run.report
    assert report.n_servers >= PAPER_FLEET_MIN
    assert (report.ground_truth["false_precision"]
            >= PAPER_FALSE_PRECISION_MIN), report.ground_truth

    elapsed = benchmark.stats.stats.min
    rss_peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    benchmark.extra_info["n_servers"] = report.n_servers
    benchmark.extra_info["false_precision"] = (
        report.ground_truth["false_precision"])
    benchmark.extra_info["mem_peak_bytes"] = int(rss_peak)
    benchmark.extra_info["mem_budget_bytes"] = PAPER_SCALE_RSS_BUDGET_BYTES
    assert elapsed <= PAPER_SCALE_BUDGET_S, (
        f"paper-scale 2-shard campaign took {elapsed:.1f}s; budget is "
        f"{PAPER_SCALE_BUDGET_S:.0f}s")
    assert rss_peak <= PAPER_SCALE_RSS_BUDGET_BYTES, (
        f"paper-scale campaign peaked at {rss_peak / 2**20:.0f} MiB RSS; "
        f"the streaming budget is "
        f"{PAPER_SCALE_RSS_BUDGET_BYTES / 2**20:.0f} MiB — has the "
        f"record list been re-materialised?")


@pytest.fixture(scope="module")
def seed_records(scenario):
    """A dozen real records to clone synthetic streams from."""
    result = run_audit(scenario, max_servers=12, seed=0, disambiguate=False)
    return result.records


def _stream_peak(scenario, seed_records, n_records):
    """tracemalloc peak of streaming ``n_records`` through an aggregator.

    Every accepted record carries a *fresh* packed-region allocation (a
    byte-for-byte clone of a seed record's), so a sink that retained
    records would show the full O(n) region cost.
    """
    grid = scenario.worldmap.grid
    packed = [record.region.packed_bytes() for record in seed_records]
    aggregator = CampaignAggregator(scenario)
    tracemalloc.start()
    for at in range(n_records):
        seed = seed_records[at % len(seed_records)]
        record = replace(
            seed, region=Region.from_packbits(grid, packed[at % len(packed)]))
        aggregator.accept(record)
    aggregator.close()
    peak = tracemalloc.get_traced_memory()[1]
    tracemalloc.stop()
    assert aggregator.n_accepted == n_records
    return peak


def test_perf_campaign_streaming_memory_10k(benchmark, scenario,
                                            seed_records):
    small_peak = _stream_peak(scenario, seed_records, STREAM_SMALL)
    large_peak = _stream_peak(scenario, seed_records, STREAM_LARGE)

    benchmark.pedantic(
        lambda: _stream_peak(scenario, seed_records, STREAM_LARGE),
        rounds=3, iterations=1)

    marginal = (large_peak - small_peak) / (STREAM_LARGE - STREAM_SMALL)
    benchmark.extra_info["n_records"] = STREAM_LARGE
    benchmark.extra_info["small_peak_bytes"] = int(small_peak)
    benchmark.extra_info["marginal_bytes_per_record"] = marginal
    benchmark.extra_info["mem_peak_bytes"] = int(large_peak)
    benchmark.extra_info["mem_budget_bytes"] = STREAM_MEM_BUDGET_BYTES
    assert large_peak <= STREAM_MEM_BUDGET_BYTES, (
        f"10k-record stream traced {large_peak} bytes peak; budget is "
        f"{STREAM_MEM_BUDGET_BYTES}")
    assert marginal <= MARGINAL_BYTES_PER_RECORD, (
        f"streaming costs {marginal:.0f} bytes/record between "
        f"{STREAM_SMALL} and {STREAM_LARGE} records; the budget is "
        f"{MARGINAL_BYTES_PER_RECORD} — a retained packed region is "
        f"~8 KB, so something is holding on to records")
