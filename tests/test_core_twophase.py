"""Tests for the two-phase measurement procedure."""

import numpy as np
import pytest

from repro.core import (
    CBGPlusPlus,
    RttObservation,
    TwoPhaseDriver,
    TwoPhaseSelector,
)
from repro.netsim import CliTool


@pytest.fixture(scope="module")
def selector(scenario):
    return TwoPhaseSelector(scenario.atlas, seed=0)


class TestSelector:
    def test_phase1_covers_continents(self, scenario, selector):
        landmarks = selector.phase1_landmarks()
        continents = {selector.continent_of_landmark(lm.name)
                      for lm in landmarks}
        # Every continent with anchors contributes.
        anchored = {scenario.topology.city(a.host.city_id).continent
                    for a in scenario.atlas.anchors}
        assert continents == anchored

    def test_phase1_at_most_three_per_continent(self, scenario, selector):
        counts = {}
        for lm in selector.phase1_landmarks():
            c = selector.continent_of_landmark(lm.name)
            counts[c] = counts.get(c, 0) + 1
        assert all(v <= 3 for v in counts.values())

    def test_phase1_fixed_across_calls(self, selector):
        first = [lm.name for lm in selector.phase1_landmarks()]
        second = [lm.name for lm in selector.phase1_landmarks()]
        assert first == second

    def test_deduce_continent_picks_fastest(self, selector):
        landmarks = selector.phase1_landmarks()
        observations = [
            RttObservation(lm.name, lm.lat, lm.lon, 100.0)
            for lm in landmarks]
        fast = landmarks[5]
        observations[5] = RttObservation(fast.name, fast.lat, fast.lon, 1.0)
        assert (selector.deduce_continent(observations)
                == selector.continent_of_landmark(fast.name))

    def test_deduce_requires_observations(self, selector):
        with pytest.raises(ValueError):
            selector.deduce_continent([])

    def test_phase2_size_and_continent(self, scenario, selector):
        rng = np.random.default_rng(0)
        landmarks = selector.phase2_landmarks("EU", rng)
        assert len(landmarks) == selector.phase2_size
        for lm in landmarks:
            assert selector.continent_of_landmark(lm.name) == "EU"

    def test_phase2_random_across_calls(self, selector):
        rng = np.random.default_rng(1)
        first = {lm.name for lm in selector.phase2_landmarks("EU", rng)}
        second = {lm.name for lm in selector.phase2_landmarks("EU", rng)}
        assert first != second  # random selection spreads load

    def test_phase2_small_continent_returns_all(self, scenario, selector):
        pool = scenario.atlas.landmarks_on_continent("AU")
        if len(pool) > selector.phase2_size:
            pytest.skip("AU pool larger than phase2 size in this scenario")
        landmarks = selector.phase2_landmarks("AU")
        assert len(landmarks) == len(pool)

    def test_constructor_validation(self, scenario):
        with pytest.raises(ValueError):
            TwoPhaseSelector(scenario.atlas, anchors_per_continent=0)
        with pytest.raises(ValueError):
            TwoPhaseSelector(scenario.atlas, phase2_size=2)


class TestDriver:
    def test_locates_direct_target(self, scenario, selector):
        target = scenario.factory.create(48.2, 16.4, name="vienna-target")
        tool = CliTool(scenario.network, seed=9)
        rng = np.random.default_rng(9)

        def measure(landmarks):
            observations = []
            for lm in landmarks:
                sample = tool.measure(target, lm, rng)
                observations.append(RttObservation(
                    sample.landmark_name, lm.lat, lm.lon, sample.rtt_ms / 2))
            return observations

        algorithm = CBGPlusPlus(scenario.calibrations, scenario.worldmap)
        result = TwoPhaseDriver(selector, algorithm).locate(measure, rng)
        assert result.deduced_continent == "EU"
        assert not result.prediction.failed
        assert result.prediction.miss_distance_km(48.2, 16.4) < 500.0
        assert len(result.phase2_landmarks) == selector.phase2_size

    def test_phase1_observations_reused_on_same_continent(self, scenario,
                                                          selector):
        target = scenario.factory.create(50.0, 9.0, name="reuse-target")
        tool = CliTool(scenario.network, seed=10)
        rng = np.random.default_rng(10)

        def measure(landmarks):
            return [RttObservation(
                lm.name, lm.lat, lm.lon,
                tool.measure(target, lm, rng).rtt_ms / 2)
                for lm in landmarks]

        algorithm = CBGPlusPlus(scenario.calibrations, scenario.worldmap)
        result = TwoPhaseDriver(selector, algorithm).locate(measure, rng)
        phase1_eu = [o.landmark_name for o in result.phase1_observations
                     if selector.continent_of_landmark(o.landmark_name) == "EU"]
        used_pool = set(result.prediction.used_landmarks
                        + result.prediction.discarded_landmarks)
        assert set(phase1_eu) <= used_pool
