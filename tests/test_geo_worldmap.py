"""Tests for the rasterised world map."""

import numpy as np
import pytest

from repro.geo import CONTINENTS, Grid, Region, WorldMap
from repro.geodesy import SphericalDisk


@pytest.fixture(scope="module")
def world():
    # 2-degree grid: fine enough for mid-size countries, fast to build.
    return WorldMap(grid=Grid(resolution_deg=2.0))


class TestPointQueries:
    @pytest.mark.parametrize("lat,lon,expected", [
        (52.52, 13.40, "DE"),    # Berlin
        (48.86, 2.35, "FR"),     # Paris
        (40.71, -74.01, "US"),   # New York
        (35.68, 139.69, "JP"),   # Tokyo
        (-33.87, 151.21, "AU"),  # Sydney
        (-23.55, -46.63, "BR"),  # Sao Paulo
        (55.76, 37.62, "RU"),    # Moscow
        (1.35, 103.82, "SG"),    # Singapore
    ])
    def test_major_cities_resolve_correctly(self, world, lat, lon, expected):
        assert world.country_at(lat, lon) == expected

    def test_ocean_is_none(self, world):
        assert world.country_at(30.0, -40.0) is None       # mid-Atlantic
        assert world.country_at(-50.0, 100.0) is None      # southern Indian

    def test_continent_at(self, world):
        assert world.continent_at(52.52, 13.40) == "EU"
        assert world.continent_at(35.68, 139.69) == "AS"
        assert world.continent_at(30.0, -40.0) is None

    def test_is_land(self, world):
        assert world.is_land(52.52, 13.40)
        assert not world.is_land(30.0, -40.0)


class TestRasterConsistency:
    def test_every_country_has_cells(self, world):
        for country in world.countries():
            assert not world.country_region(country.iso2).is_empty, country.iso2

    def test_anchor_cells_resolve_to_own_country_mostly(self, world, scenario):
        # Anchor points are major cities; at the production 1-degree
        # resolution nearly all resolve to their own country (a handful of
        # micro-states and borderline capitals are swallowed by a
        # neighbour's cell; at the coarser 2-degree test grid more are).
        production = scenario.worldmap
        mismatches = []
        for country in production.countries():
            lat, lon = country.anchors[0]
            if production.country_at(lat, lon) != country.iso2:
                mismatches.append(country.iso2)
        assert len(mismatches) <= 6, mismatches
        coarse_mismatches = [
            c.iso2 for c in world.countries()
            if world.country_at(*c.anchors[0]) != c.iso2]
        assert len(coarse_mismatches) <= 20, coarse_mismatches

    def test_land_fraction_plausible(self, world):
        # Earth is ~29% land; coarse boxes overshoot a little.
        fraction = world.land_mask.mean()
        assert 0.2 <= fraction <= 0.45

    def test_plausibility_mask_subset_of_land(self, world):
        assert not (world.plausibility_mask & ~world.land_mask).any()

    def test_plausibility_clips_latitudes(self, world):
        grid = world.grid
        index = grid.cell_index(-70.0, 60.0)
        assert not world.plausibility_mask[index]

    def test_continent_raster_consistent_with_country(self, world):
        rng = np.random.default_rng(0)
        for _ in range(200):
            index = int(rng.integers(world.grid.n_cells))
            lat, lon = world.grid.cell_center(index)
            country = world.country_at(lat, lon)
            continent = world.continent_at(lat, lon)
            if country is None:
                assert continent is None
            else:
                assert continent == world.registry.continent_of(country)


class TestRegionQueries:
    def test_countries_covered_sorted_by_overlap(self, world):
        # A big disk on Berlin covers DE most.
        region = Region.from_disk(world.grid, SphericalDisk(52.5, 13.4, 600.0))
        covered = world.countries_covered(region)
        assert covered[0] == "DE"
        assert "PL" in covered or "CZ" in covered

    def test_covers_and_within(self, world):
        region = Region.from_disk(world.grid, SphericalDisk(52.5, 13.4, 150.0))
        assert world.covers_country(region, "DE")
        assert world.within_country(region, "DE")
        big = Region.from_disk(world.grid, SphericalDisk(52.5, 13.4, 900.0))
        assert world.covers_country(big, "DE")
        assert not world.within_country(big, "DE")

    def test_within_country_ignores_ocean(self, world):
        # A coastal disk near Lisbon spills into the Atlantic but only
        # touches Portuguese (and maybe Spanish) land.
        region = Region.from_disk(world.grid, SphericalDisk(38.7, -9.1, 250.0))
        covered = world.countries_covered(region)
        assert covered[0] == "PT"

    def test_continents_covered(self, world):
        region = Region.from_disk(world.grid, SphericalDisk(36.0, 30.0, 1500.0))
        continents = world.continents_covered(region)
        assert "EU" in continents and "AF" in continents

    def test_clip_to_plausible(self, world):
        region = Region.full(world.grid)
        clipped = world.clip_to_plausible(region)
        assert clipped.n_cells == int(world.plausibility_mask.sum())

    def test_country_region_unknown_code(self, world):
        with pytest.raises(KeyError):
            world.country_region("ZZ")

    def test_continent_region(self, world):
        europe = world.continent_region("EU")
        assert europe.contains(48.86, 2.35)
        assert not europe.contains(35.68, 139.69)
        with pytest.raises(ValueError):
            world.continent_region("XX")

    def test_distance_to_country(self, world):
        region = Region.from_disk(world.grid, SphericalDisk(48.86, 2.35, 200.0))
        assert world.distance_to_country_km(region, "FR") == 0.0
        d_japan = world.distance_to_country_km(region, "JP")
        assert d_japan > 8000.0
        assert world.distance_to_country_km(Region.empty(world.grid), "FR") \
            == float("inf")


class TestSampling:
    def test_random_point_in_country(self, world):
        rng = np.random.default_rng(5)
        for code in ("DE", "BR", "AU", "IN"):
            for _ in range(5):
                lat, lon = world.random_point_in(code, rng)
                assert world.country_at(lat, lon) == code
