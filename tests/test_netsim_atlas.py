"""Tests for the Atlas-like constellation and its mesh database."""

import numpy as np
import pytest

from repro.geodesy import BASELINE_SPEED_KM_PER_MS, haversine_km


class TestPlacement:
    def test_quota_counts(self, scenario):
        atlas = scenario.atlas
        assert len(atlas.anchors) > 50
        assert len(atlas.probes) > len(atlas.anchors)

    def test_europe_heaviest(self, scenario):
        atlas = scenario.atlas
        per_continent = {}
        for lm in atlas.anchors:
            continent = scenario.topology.city(lm.host.city_id).continent
            per_continent[continent] = per_continent.get(continent, 0) + 1
        assert per_continent["EU"] == max(per_continent.values())

    def test_no_anchors_on_satellite_cities(self, scenario):
        for lm in scenario.atlas.all_landmarks():
            assert not scenario.topology.city(lm.host.city_id).satellite_only

    def test_landmark_names_unique(self, scenario):
        names = [lm.name for lm in scenario.atlas.all_landmarks()]
        assert len(names) == len(set(names))

    def test_some_probes_have_wrong_locations(self, scenario):
        wrong = [lm for lm in scenario.atlas.probes if lm.location_is_wrong]
        assert wrong, "probe location-error model should fire sometimes"
        # But only a small fraction (rate 0.03).
        assert len(wrong) < 0.15 * len(scenario.atlas.probes)

    def test_anchors_never_have_wrong_locations(self, scenario):
        assert all(not lm.location_is_wrong for lm in scenario.atlas.anchors)

    def test_reported_location_used_as_lat_lon(self, scenario):
        for lm in scenario.atlas.probes:
            if lm.reported_lat is not None:
                assert lm.lat == lm.reported_lat
                assert lm.lon == lm.reported_lon


class TestMeshDatabase:
    def test_symmetric_and_deterministic(self, scenario):
        atlas = scenario.atlas
        a, b = atlas.anchors[0], atlas.anchors[1]
        forward = atlas.min_one_way_ms(a, b)
        assert atlas.min_one_way_ms(b, a) == forward
        assert atlas.min_one_way_ms(a, b) == forward  # cached

    def test_respects_physical_floor(self, scenario):
        atlas = scenario.atlas
        anchors = atlas.anchors[:20]
        for i, a in enumerate(anchors):
            for b in anchors[i + 1:]:
                true_distance = a.host.distance_to(b.host)
                delay = atlas.min_one_way_ms(a, b)
                assert delay >= true_distance / BASELINE_SPEED_KM_PER_MS - 1e-9

    def test_calibration_data_shape(self, scenario):
        atlas = scenario.atlas
        data = atlas.calibration_data(atlas.anchors[0])
        assert len(data) == len(atlas.anchors) - 1
        for distance, delay in data:
            assert distance >= 0
            assert delay > 0

    def test_calibration_uses_reported_distance(self, scenario):
        atlas = scenario.atlas
        wrong = next((lm for lm in atlas.probes if lm.location_is_wrong), None)
        if wrong is None:
            pytest.skip("no misplaced probe in this seed")
        data = atlas.calibration_data(wrong)
        peer = atlas.anchors[0]
        reported = haversine_km(wrong.lat, wrong.lon, peer.lat, peer.lon)
        assert any(abs(d - reported) < 1e-6 for d, _ in data)

    def test_continent_queries(self, scenario):
        atlas = scenario.atlas
        eu_landmarks = atlas.landmarks_on_continent("EU")
        eu_anchors = atlas.anchors_on_continent("EU")
        assert eu_anchors
        assert len(eu_landmarks) >= len(eu_anchors)
        for lm in eu_anchors:
            assert scenario.topology.city(lm.host.city_id).continent == "EU"
