"""Tests for the audit pipeline and scenario plumbing."""

import pytest

from repro.core import Verdict
from repro.experiments import cached_audit, default_scenario, run_audit


class TestScenario:
    def test_default_scenario_memoised(self):
        assert default_scenario() is default_scenario()

    def test_components_wired(self, scenario):
        assert scenario.client.name == "client-frankfurt"
        assert scenario.worldmap.grid is scenario.grid
        assert scenario.calibrations.atlas is scenario.atlas
        assert len(scenario.providers) == 7

    def test_true_country_of(self, scenario):
        server = scenario.all_servers()[0]
        truth = scenario.true_country_of(server)
        assert truth in scenario.registry

    def test_all_servers_ordering(self, scenario):
        servers = scenario.all_servers()
        providers_seen = [s.provider for s in servers]
        # Provider blocks are contiguous (A's servers, then B's, ...).
        assert providers_seen == sorted(providers_seen, key="ABCDEFG".index)


class TestRunAudit:
    def test_records_one_per_server(self, scenario, audit):
        assert len(audit.records) == 150

    def test_eta_estimated(self, audit):
        assert 0.4 <= audit.eta.eta <= 0.6

    def test_initial_verdicts_preserved(self, audit):
        for record in audit.records:
            assert record.initial_verdict is not None
            if record.assessment.resolution_method is None:
                assert record.assessment.verdict == record.initial_verdict

    def test_observations_retained(self, audit):
        for record in audit.records[:10]:
            assert record.observations
            assert record.landmark_names

    def test_verdict_counts_sum(self, audit):
        counts = audit.verdict_counts()
        assert sum(counts.values()) == len(audit.records)

    def test_category_counts_sum(self, audit):
        assert sum(audit.category_counts().values()) == len(audit.records)

    def test_by_provider_partition(self, audit):
        grouped = audit.by_provider()
        assert sum(len(v) for v in grouped.values()) == len(audit.records)

    def test_agreement_rate_generous_geq_strict(self, audit):
        assert (audit.agreement_rate(generous=True)
                >= audit.agreement_rate(generous=False))

    def test_agreement_rate_unknown_provider(self, audit):
        with pytest.raises(ValueError):
            audit.agreement_rate("Z")

    def test_ground_truth_mostly_sound(self, audit):
        truth = audit.ground_truth_accuracy()
        assert truth["false_precision"] >= 0.9
        assert truth["credible_precision"] >= 0.85

    def test_disambiguation_can_be_disabled(self, scenario):
        result = run_audit(scenario, max_servers=20, seed=5,
                           disambiguate=False)
        assert result.reclassified["total"] == 0
        for record in result.records:
            assert record.assessment.resolution_method is None

    def test_cached_audit_identity(self, scenario):
        a = cached_audit(scenario, max_servers=150, seed=0)
        b = cached_audit(scenario, max_servers=150, seed=0)
        assert a is b

    def test_cached_audit_keys_by_object_not_address(self, scenario):
        # Two scenarios must never share a cache entry, even if one's
        # id() is recycled after garbage collection.  Tokens are handed
        # out per object and travel with it.
        from repro.experiments.audit import _scenario_token
        token = _scenario_token(scenario)
        assert _scenario_token(scenario) == token

        class Shim:
            pass

        other = Shim()
        assert _scenario_token(other) != token

    def test_cached_audit_eviction_bounded(self, scenario, monkeypatch):
        from repro.experiments import audit as audit_module
        calls = []
        monkeypatch.setattr(audit_module, "run_audit",
                            lambda s, max_servers=None, seed=0: calls.append(seed))
        monkeypatch.setattr(audit_module, "_AUDIT_CACHE", type(
            audit_module._AUDIT_CACHE)(
                maxsize=audit_module._AUDIT_CACHE_SLOTS))
        for seed in range(audit_module._AUDIT_CACHE_SLOTS + 3):
            audit_module.cached_audit(scenario, max_servers=1, seed=seed)
        assert len(audit_module._AUDIT_CACHE) <= audit_module._AUDIT_CACHE_SLOTS
        # Oldest entries were evicted; a re-request recomputes.
        before = len(calls)
        audit_module.cached_audit(scenario, max_servers=1, seed=0)
        assert len(calls) == before + 1

    def test_false_claims_exist_and_dominate_tier3(self, scenario, audit):
        tier3 = {c.iso2 for c in scenario.registry.by_hosting_tier(3)}
        tier3_records = [r for r in audit.records
                         if r.server.claimed_country in tier3]
        if not tier3_records:
            pytest.skip("no tier-3 claims in the audited slice")
        false_rate = (sum(1 for r in tier3_records if r.assessment.is_false)
                      / len(tier3_records))
        assert false_rate > 0.5


class TestWarmSelectionAndEta:
    def test_truncated_audit_warms_only_audited_servers(self):
        """A quick truncated run must not pay a full-fleet Dijkstra for
        servers it never measures (the warm-selection regression)."""
        # A seed no other test uses: default_scenario memoises, and the
        # shared instance is already warm from the session audit.
        fresh = default_scenario(seed=97)
        engine = fresh.network._engine
        if engine is None:
            pytest.skip("networkx oracle warms lazily")
        run_audit(fresh, max_servers=4, seed=0)
        audited = fresh.all_servers()[:4]
        landmark_routers = {lm.host.router
                            for lm in fresh.atlas.all_landmarks()}
        needed = ({fresh.client.router}
                  | landmark_routers
                  | {server.host.router for server in audited})
        unaudited = [server.host.router for server in fresh.all_servers()[4:]
                     if server.host.router not in needed]
        assert unaudited, "fleet too small to observe truncation"
        warmed = set(engine._rows)
        assert needed <= warmed
        assert not (warmed & set(unaudited))

    def test_repeated_audit_does_not_recompute_warm_rows(self, scenario):
        """Warming the same fleet twice must be a no-op, not a second
        multi-source Dijkstra (the warm 60-server bench regression)."""
        engine = scenario.network._engine
        if engine is None:
            pytest.skip("networkx oracle warms lazily")
        run_audit(scenario, max_servers=10, seed=0)
        calls = []
        original = engine._compute_rows
        engine._compute_rows = lambda sources: (
            calls.append(list(sources)) or original(sources))
        try:
            run_audit(scenario, max_servers=10, seed=0)
        finally:
            engine._compute_rows = original
        assert calls == []

    def test_eta_independent_of_truncation(self, scenario):
        """η is a campaign-level calibration fitted on the whole fleet:
        truncated quick runs must report the exact η of a full audit."""
        short = run_audit(scenario, max_servers=3, seed=0)
        longer = run_audit(scenario, max_servers=30, seed=0)
        assert short.eta == longer.eta
