"""Tests for claim assessment."""

import pytest

from repro.core import (
    ClaimAssessment,
    ContinentVerdict,
    Verdict,
    assess_claim,
    tally_categories,
    tally_verdicts,
)
from repro.geo import Region
from repro.geodesy import SphericalDisk


def region_around(worldmap, lat, lon, radius_km):
    region = Region.from_disk(worldmap.grid, SphericalDisk(lat, lon, radius_km))
    return worldmap.clip_to_plausible(region)


class TestVerdicts:
    def test_credible_small_region_inside_country(self, scenario):
        # Central Germany, comfortably away from every border.
        region = region_around(scenario.worldmap, 51.0, 9.5, 100.0)
        assessment = assess_claim(region, "DE", scenario.worldmap)
        assert assessment.verdict is Verdict.CREDIBLE
        assert assessment.continent_verdict is ContinentVerdict.CREDIBLE
        assert assessment.category() == "credible"

    def test_uncertain_region_spanning_neighbours(self, scenario):
        region = region_around(scenario.worldmap, 52.5, 13.4, 800.0)
        assessment = assess_claim(region, "DE", scenario.worldmap)
        assert assessment.verdict is Verdict.UNCERTAIN
        assert assessment.continent_verdict is ContinentVerdict.CREDIBLE
        assert "DE" in assessment.countries_covered

    def test_false_far_away_claim(self, scenario):
        region = region_around(scenario.worldmap, 52.5, 13.4, 800.0)
        assessment = assess_claim(region, "KP", scenario.worldmap)
        assert assessment.verdict is Verdict.FALSE
        assert assessment.continent_verdict is ContinentVerdict.FALSE
        assert assessment.category() == "continent false"

    def test_false_same_continent(self, scenario):
        region = region_around(scenario.worldmap, 52.5, 13.4, 400.0)
        assessment = assess_claim(region, "PT", scenario.worldmap)
        assert assessment.verdict is Verdict.FALSE
        assert assessment.continent_verdict is ContinentVerdict.CREDIBLE
        assert assessment.category() == "country false, continent credible"

    def test_unlocatable_empty_region(self, scenario):
        assessment = assess_claim(Region.empty(scenario.grid), "DE",
                                  scenario.worldmap)
        assert assessment.verdict is Verdict.UNLOCATABLE
        assert assessment.category() == "unlocatable"

    def test_unknown_country_rejected(self, scenario):
        region = region_around(scenario.worldmap, 52.5, 13.4, 100.0)
        with pytest.raises(KeyError):
            assess_claim(region, "ZZ", scenario.worldmap)

    def test_region_area_recorded(self, scenario):
        region = region_around(scenario.worldmap, 52.5, 13.4, 400.0)
        assessment = assess_claim(region, "DE", scenario.worldmap)
        assert assessment.region_area_km2 == pytest.approx(region.area_km2())


class TestTolerance:
    def test_borderline_miss_becomes_uncertain(self, scenario):
        """A region hugging the Czech side of the DE/CZ border must not
        disprove a German claim — rasterisation slack."""
        region = region_around(scenario.worldmap, 49.9, 13.6, 80.0)
        covered = scenario.worldmap.countries_covered(region)
        if "DE" in covered:
            pytest.skip("region already touches DE at this resolution")
        assessment = assess_claim(region, "DE", scenario.worldmap,
                                  tolerance_km=120.0)
        assert assessment.verdict is Verdict.UNCERTAIN

    def test_zero_tolerance_restores_strictness(self, scenario):
        region = region_around(scenario.worldmap, 49.9, 13.6, 80.0)
        covered = scenario.worldmap.countries_covered(region)
        if "DE" in covered:
            pytest.skip("region already touches DE at this resolution")
        assessment = assess_claim(region, "DE", scenario.worldmap,
                                  tolerance_km=0.0)
        assert assessment.verdict is Verdict.FALSE

    def test_tolerance_does_not_save_distant_claims(self, scenario):
        region = region_around(scenario.worldmap, 52.5, 13.4, 300.0)
        assessment = assess_claim(region, "JP", scenario.worldmap,
                                  tolerance_km=120.0)
        assert assessment.verdict is Verdict.FALSE


class TestCategoriesAndTallies:
    def _assessment(self, verdict, continent_verdict):
        return ClaimAssessment("DE", verdict, continent_verdict)

    def test_all_false_categories(self):
        cases = {
            ContinentVerdict.CREDIBLE: "country false, continent credible",
            ContinentVerdict.UNCERTAIN: "country false, continent uncertain",
            ContinentVerdict.FALSE: "continent false",
        }
        for continent_verdict, expected in cases.items():
            assessment = self._assessment(Verdict.FALSE, continent_verdict)
            assert assessment.category() == expected

    def test_uncertain_categories(self):
        a = self._assessment(Verdict.UNCERTAIN, ContinentVerdict.CREDIBLE)
        assert a.category() == "country uncertain, continent credible"
        b = self._assessment(Verdict.UNCERTAIN, ContinentVerdict.UNCERTAIN)
        assert b.category() == "country and continent uncertain"

    def test_tally_verdicts(self):
        assessments = [
            self._assessment(Verdict.CREDIBLE, ContinentVerdict.CREDIBLE),
            self._assessment(Verdict.FALSE, ContinentVerdict.FALSE),
            self._assessment(Verdict.FALSE, ContinentVerdict.FALSE),
        ]
        counts = tally_verdicts(assessments)
        assert counts["credible"] == 1
        assert counts["false"] == 2
        assert counts["uncertain"] == 0

    def test_tally_categories(self):
        assessments = [
            self._assessment(Verdict.UNCERTAIN, ContinentVerdict.CREDIBLE),
            self._assessment(Verdict.UNCERTAIN, ContinentVerdict.CREDIBLE),
        ]
        counts = tally_categories(assessments)
        assert counts == {"country uncertain, continent credible": 2}

    def test_flag_properties(self):
        assessment = self._assessment(Verdict.CREDIBLE,
                                      ContinentVerdict.CREDIBLE)
        assert assessment.is_credible
        assert not assessment.is_false
        assert not assessment.is_uncertain
