"""Tests for the always-on verdict service.

The determinism contract under test: a cache hit is byte-identical to a
cold recompute at the same epoch; verdicts are byte-identical at any
batch size, arrival order, or worker count and equal to the audit
pipeline's records; an epoch roll re-evaluates exactly the entries whose
requested landmark panel intersects the quarantine delta, carrying
everything else forward untouched.
"""

import asyncio
import hashlib
import json

import pytest

from repro import config
from repro.experiments import run_audit
from repro.lrucache import CacheInfo, LruCache
from repro.service import (
    ServiceFrontend,
    TopologyEpoch,
    VerdictCache,
    VerdictService,
)
from repro.service.verdict import CachedVerdict, _knob_or

N_SERVERS = 6


@pytest.fixture(scope="module")
def service(scenario):
    """A shared warm service; tests must not roll its epoch."""
    return VerdictService(scenario, seed=0)


@pytest.fixture(scope="module")
def fleet(scenario):
    return scenario.all_servers()[:N_SERVERS]


# -- the shared LRU cache -----------------------------------------------------

class TestLruCache:
    def test_put_get_and_counters(self):
        cache = LruCache(maxsize=2)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.cache_info() == CacheInfo(1, 1, 2, 1, 0)

    def test_eviction_is_least_recently_used(self):
        cache = LruCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # b is now the LRU entry
        cache.put("c", 3)
        assert cache.peek("b") is None
        assert cache.peek("a") == 1
        assert cache.cache_info().evictions == 1

    def test_peek_does_not_touch_counters_or_order(self):
        cache = LruCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        before = cache.cache_info()
        cache.peek("a")         # must not promote "a"
        assert cache.cache_info() == before
        cache.put("c", 3)
        assert cache.peek("a") is None

    def test_items_snapshot_allows_mutation(self):
        cache = LruCache(maxsize=4)
        for at in range(3):
            cache.put(at, at)
        seen = []
        for key, value in cache.items():
            seen.append(key)
            cache.pop(key)      # epoch-roll idiom: pop while iterating
            cache.put((key, "rekeyed"), value)
        assert seen == [0, 1, 2]
        assert len(cache) == 3

    def test_cache_clear_resets_everything(self):
        cache = LruCache(maxsize=2)
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        cache.cache_clear()
        assert cache.cache_info() == CacheInfo(0, 0, 2, 0, 0)
        assert cache.peek("a") is None

    def test_verdict_cache_api_parity_with_cached_audit(self):
        from repro.experiments import cached_audit
        cache = VerdictCache(maxsize=4)
        assert type(cache.cache_info()) is type(cached_audit.cache_info())
        assert cache.cache_info()._fields == (
            "hits", "misses", "maxsize", "currsize", "evictions")
        cache.cache_clear()


# -- epoch digests ------------------------------------------------------------

class _AtlasSubset:
    """A view of an atlas with one landmark removed (substrate churn)."""

    def __init__(self, atlas, dropped: str):
        self._atlas = atlas
        self._dropped = dropped

    def all_landmarks(self):
        return [lm for lm in self._atlas.all_landmarks()
                if lm.name != self._dropped]


class _ScenarioView:
    """The attribute subset TopologyEpoch.capture reads, swappable."""

    def __init__(self, scenario, atlas=None):
        self.network = scenario.network
        self.atlas = atlas if atlas is not None else scenario.atlas
        self.grid = scenario.grid
        self.fault_profile = scenario.fault_profile


class TestTopologyEpoch:
    def test_capture_is_deterministic(self, scenario):
        first = TopologyEpoch.capture(scenario, seed=0)
        second = TopologyEpoch.capture(scenario, seed=0)
        assert first == second

    def test_quarantine_changes_digest_not_substrate(self, scenario):
        base = TopologyEpoch.capture(scenario, seed=0)
        flagged = TopologyEpoch.capture(scenario, seed=0,
                                        quarantined=("anchor-EU-0",))
        assert flagged.substrate_digest == base.substrate_digest
        assert flagged.digest != base.digest
        assert base.quarantine_delta(flagged) == frozenset({"anchor-EU-0"})

    def test_quarantine_delta_is_symmetric_difference(self, scenario):
        left = TopologyEpoch.capture(scenario, seed=0,
                                     quarantined=("a", "b"))
        right = TopologyEpoch.capture(scenario, seed=0,
                                      quarantined=("b", "c"))
        assert left.quarantine_delta(right) == frozenset({"a", "c"})

    def test_seed_changes_substrate(self, scenario):
        base = TopologyEpoch.capture(scenario, seed=0)
        other = TopologyEpoch.capture(scenario, seed=1)
        assert other.substrate_digest != base.substrate_digest

    def test_landmark_churn_changes_substrate(self, scenario):
        name = scenario.atlas.all_landmarks()[0].name
        base = TopologyEpoch.capture(_ScenarioView(scenario), seed=0)
        churned = TopologyEpoch.capture(
            _ScenarioView(scenario, _AtlasSubset(scenario.atlas, name)),
            seed=0)
        assert churned.substrate_digest != base.substrate_digest
        # Substrate churn means nothing can carry forward.
        assert base.quarantine_delta(churned) is None


# -- verdict determinism ------------------------------------------------------

def _region_sha(record) -> str:
    return hashlib.sha256(record.region.packed_bytes()).hexdigest()


class TestVerdictDeterminism:
    def test_matches_audit_pipeline_records(self, service, scenario, fleet):
        result = run_audit(scenario, servers=fleet, seed=0,
                           disambiguate=False)
        responses = service.verdict_batch(fleet)
        for record, response in zip(result.records, responses):
            assert response.hostname == record.server.hostname
            assert response.verdict == record.assessment.verdict.value
            assert response.area_km2 == record.assessment.region_area_km2
            assert response.countries == tuple(
                record.assessment.countries_covered)
            assert response.region_sha256 == _region_sha(record)
            assert response.used_landmarks == tuple(record.landmark_names)
            assert response.degraded == record.degraded

    def test_cache_hit_is_byte_identical(self, service, fleet):
        cold = service.verdict(fleet[0])
        warm = service.verdict(fleet[0])
        assert warm.cached
        assert warm.canonical_json() == cold.canonical_json()

    def test_canonical_json_excludes_volatile_fields(self, service, fleet):
        warm = service.verdict(fleet[0])
        payload = json.loads(warm.canonical_json())
        assert "cached" not in payload
        assert "shed" not in payload
        assert json.loads(warm.to_json())["cached"] is True

    def test_arrival_order_batch_size_and_workers_invariant(
            self, service, scenario, fleet):
        # Hostnames are not unique across a provider's fleet, so
        # responses are keyed by host id.
        baseline = {r.host_id: r.canonical_json()
                    for r in service.verdict_batch(fleet)}
        other = VerdictService(scenario, seed=0, batch_max=3, workers=2)
        for query in reversed(fleet):
            response = other.verdict(query)
            assert response.canonical_json() == baseline[response.host_id]

    def test_new_claim_on_measured_host_skips_measurement(
            self, service, scenario, fleet):
        first = service.verdict(fleet[0])
        claim = next(iso2 for iso2 in scenario.registry.codes()
                     if iso2 not in first.countries)
        measured = service.cache_info()["measurements"]
        response = service.verdict(fleet[0], claim)
        assert response.claim == claim
        assert response.verdict == "false"
        # Same measurement, different assessment: no new misses.
        assert (service.cache_info()["measurements"].misses
                == measured.misses)

    def test_region_of_reuses_measurement(self, service, fleet):
        region = service.region_of(fleet[0])
        sha = hashlib.sha256(region.packed_bytes()).hexdigest()
        assert sha == service.verdict(fleet[0]).region_sha256

    def test_unknown_targets_rejected(self, service):
        with pytest.raises(KeyError):
            service.verdict("no-such-host.example")
        with pytest.raises(KeyError):
            service.verdict(10**9)


# -- epoch rolls --------------------------------------------------------------

class _ListSink:
    def __init__(self):
        self.records = []

    def accept(self, record):
        self.records.append(record)


def _panel_split(service):
    """A landmark in some-but-not-all measured panels + its dependents."""
    panels = {host_id: measurement.requested_landmarks
              for (host_id, _), measurement in service._measurements.items()}
    for name in sorted(set().union(*panels.values())):
        dependents = sorted(h for h, panel in panels.items() if name in panel)
        if 0 < len(dependents) < len(panels):
            return name, dependents
    raise AssertionError("no partially-shared landmark in the panels")


class TestEpochRoll:
    def test_roll_flushes_exactly_dependents(self, scenario):
        rolling = VerdictService(scenario, seed=0)
        fleet = scenario.all_servers()[:10]
        by_host_id = {s.host.host_id: s for s in fleet}
        before = {r.host_id: r for r in rolling.verdict_batch(fleet)}
        name, dependents = _panel_split(rolling)
        sink = _ListSink()

        stats = rolling.roll_epoch(quarantined={name}, sink=sink)
        assert not stats.unchanged and not stats.full_invalidation
        assert stats.delta == (name,)
        assert stats.flushed == len(dependents)
        assert stats.carried_forward == len(fleet) - len(dependents)
        assert stats.reevaluated == len(dependents)
        assert stats.reevaluated_hosts == dependents
        assert [r.server.host.host_id for r in sink.records] == dependents

        # Carried-forward entries answer byte-identically (minus the
        # epoch digest, which necessarily moved).
        for response in rolling.verdict_batch(fleet):
            if response.host_id in dependents:
                continue
            assert response.cached
            old = json.loads(before[response.host_id].canonical_json())
            new = json.loads(response.canonical_json())
            old.pop("epoch_digest"), new.pop("epoch_digest")
            assert old == new

        # Hit-then-recompute identity: a cold service born quarantined
        # agrees byte-for-byte with the rolled warm cache.
        cold = VerdictService(scenario, seed=0, quarantined={name})
        assert cold.epoch.digest == rolling.epoch.digest
        for response in rolling.verdict_batch(fleet):
            cold_answer = cold.verdict(by_host_id[response.host_id])
            assert (cold_answer.canonical_json()
                    == response.canonical_json())

    def test_noop_roll_is_unchanged(self, scenario):
        rolling = VerdictService(scenario, seed=0)
        rolling.verdict(scenario.all_servers()[0])
        stats = rolling.roll_epoch(quarantined=rolling.quarantined)
        assert stats.unchanged
        assert stats.old_digest == stats.new_digest

    def test_unquarantining_restores_the_original_epoch(self, scenario):
        rolling = VerdictService(scenario, seed=0)
        original = rolling.epoch.digest
        rolling.verdict_batch(scenario.all_servers()[:4])
        name, _ = _panel_split(rolling)
        rolling.roll_epoch(quarantined={name}, reaudit=False)
        assert rolling.epoch.digest != original
        stats = rolling.roll_epoch(quarantined=(), reaudit=False)
        assert rolling.epoch.digest == original
        assert stats.delta == (name,)


# -- knobs --------------------------------------------------------------------

class TestServiceKnobs:
    def test_defaults_registered(self):
        assert config.knob("REPRO_SERVICE_CACHE_SLOTS").default == 4096
        assert config.knob("REPRO_SERVICE_BATCH_MAX").default == 32
        assert config.knob("REPRO_SERVICE_QUEUE_MAX").default == 256
        assert config.knob("REPRO_SERVICE_WORKERS").default == 1

    def test_env_override_wins_over_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_BATCH_MAX", "7")
        assert _knob_or("REPRO_SERVICE_BATCH_MAX", None) == 7

    def test_explicit_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_BATCH_MAX", "7")
        assert _knob_or("REPRO_SERVICE_BATCH_MAX", 3) == 3

    def test_zero_env_means_declared_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_QUEUE_MAX", "0")
        assert _knob_or("REPRO_SERVICE_QUEUE_MAX", None) == 256

    def test_invalid_override_rejected(self):
        with pytest.raises(ValueError):
            _knob_or("REPRO_SERVICE_WORKERS", 0)

    def test_invalid_env_value_raises_knob_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE_WORKERS", "many")
        with pytest.raises(config.KnobError):
            config.env_value("REPRO_SERVICE_WORKERS")


# -- the asyncio frontend -----------------------------------------------------

class TestFrontend:
    def test_enqueue_resolves_and_batches(self, service, fleet):
        async def run():
            frontend = ServiceFrontend(service, queue_max=8, batch_max=4)
            try:
                responses = await asyncio.gather(*(
                    frontend.enqueue((server, None)) for server in fleet))
            finally:
                frontend.close()
            return frontend, responses

        frontend, responses = asyncio.run(run())
        baseline = {r.host_id: r.canonical_json()
                    for r in service.verdict_batch(fleet)}
        for response in responses:
            assert response.canonical_json() == baseline[response.host_id]
        assert frontend.stats.responses == len(fleet)
        assert frontend.stats.shed == 0
        assert frontend.stats.batches >= 1

    def test_overload_sheds_degraded_verdicts(self, service, fleet):
        async def run():
            frontend = ServiceFrontend(service, queue_max=1, batch_max=1)
            frontend._ensure_started()
            frontend._drainer.cancel()  # wedge the backend: nothing drains
            first = asyncio.ensure_future(
                frontend.enqueue((fleet[0].hostname, None)))
            await asyncio.sleep(0)      # let it occupy the queue slot
            shed = await frontend.enqueue((fleet[1].hostname, None))
            first.cancel()
            frontend.close()
            return shed

        shed = asyncio.run(run())
        assert shed.shed
        assert shed.verdict == "degraded"
        assert shed.epoch_digest == service.epoch.digest
        assert "shed" in shed.notes[0]

    def test_tcp_round_trip(self, service, fleet):
        hostname = fleet[0].hostname

        async def run():
            frontend = ServiceFrontend(service, queue_max=8)
            ready = asyncio.Event()
            server_task = asyncio.ensure_future(
                frontend.serve(host="127.0.0.1", port=0, ready=ready))
            await ready.wait()
            host, port = frontend.bound[:2]
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(json.dumps({"host": hostname}).encode() + b"\n")
            writer.write(b"this is not json\n")
            await writer.drain()
            verdict_line = await reader.readline()
            error_line = await reader.readline()
            writer.close()
            server_task.cancel()
            frontend.close()
            return json.loads(verdict_line), json.loads(error_line)

        verdict, error = asyncio.run(run())
        expected = json.loads(service.verdict(hostname).to_json())
        assert verdict["hostname"] == hostname
        assert verdict["verdict"] == expected["verdict"]
        assert verdict["region_sha256"] == expected["region_sha256"]
        assert verdict["latency_ms"] >= 0
        assert "error" in error


# -- cache introspection ------------------------------------------------------

class TestCacheIntrospection:
    def test_cache_info_shape(self, service, fleet):
        service.verdict(fleet[0])
        info = service.cache_info()
        assert set(info) == {"verdicts", "measurements"}
        assert isinstance(info["verdicts"], CacheInfo)
        assert info["verdicts"].maxsize == service.cache_slots

    def test_cache_clear_preserves_epoch(self, scenario, fleet):
        fresh = VerdictService(scenario, seed=0)
        fresh.verdict(fleet[0])
        digest = fresh.epoch.digest
        fresh.cache_clear()
        assert fresh.epoch.digest == digest
        assert fresh.cache_info()["verdicts"].currsize == 0
        recomputed = fresh.verdict(fleet[0])
        assert not recomputed.cached

    def test_verdict_cache_entries_are_cached_verdicts(self, service, fleet):
        service.verdict(fleet[0])
        ((_, entry), *_rest) = service.verdict_cache.items()
        assert isinstance(entry, CachedVerdict)
