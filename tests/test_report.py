"""Tests for the ASCII map renderer."""

import pytest

from repro.geo import Region
from repro.geodesy import SphericalDisk
from repro.report import DEFAULT_HEIGHT, DEFAULT_WIDTH, MapCanvas, honesty_strip, region_map


@pytest.fixture(scope="module")
def germany_region(scenario):
    return scenario.worldmap.clip_to_plausible(
        Region.from_disk(scenario.grid, SphericalDisk(51.0, 10.0, 400.0)))


class TestMapCanvas:
    def test_dimensions(self, scenario):
        canvas = MapCanvas(scenario.worldmap, width=40, height=12)
        rendered = canvas.render()
        lines = rendered.splitlines()
        assert len(lines) == 14  # body + two border lines
        assert all(len(line) == 42 for line in lines)

    def test_land_and_ocean_distinguished(self, scenario):
        canvas = MapCanvas(scenario.worldmap)
        rendered = canvas.render()
        assert "." in rendered     # land
        assert " " in rendered     # ocean

    def test_too_small_rejected(self, scenario):
        with pytest.raises(ValueError):
            MapCanvas(scenario.worldmap, width=5, height=2)

    def test_bad_bounds_rejected(self, scenario):
        with pytest.raises(ValueError):
            MapCanvas(scenario.worldmap, bounds=(50.0, 40.0, 0.0, 10.0))

    def test_marker_drawn(self, scenario):
        canvas = MapCanvas(scenario.worldmap)
        canvas.draw_marker(51.0, 10.0, "X")
        assert "X" in canvas.render()

    def test_marker_outside_bounds_ignored(self, scenario):
        canvas = MapCanvas(scenario.worldmap, bounds=(40.0, 60.0, 0.0, 20.0))
        canvas.draw_marker(-30.0, -60.0)
        assert "X" not in canvas.render()

    def test_region_overlay(self, scenario, germany_region):
        canvas = MapCanvas(scenario.worldmap, bounds=(35.0, 65.0, -10.0, 30.0))
        canvas.draw_region(germany_region)
        rendered = canvas.render()
        assert "#" in rendered

    def test_empty_region_draws_nothing(self, scenario):
        canvas = MapCanvas(scenario.worldmap)
        before = canvas.render()
        canvas.draw_region(Region.empty(scenario.grid))
        assert canvas.render() == before


class TestRegionMap:
    def test_zoomed_map_contains_region_and_marker(self, scenario,
                                                   germany_region):
        rendered = region_map(scenario.worldmap, germany_region,
                              markers=[(52.52, 13.40)])
        assert "#" in rendered
        assert "X" in rendered

    def test_world_map_when_not_zoomed(self, scenario, germany_region):
        rendered = region_map(scenario.worldmap, germany_region, zoom=False)
        lines = rendered.splitlines()
        assert len(lines) == DEFAULT_HEIGHT + 2
        assert len(lines[0]) == DEFAULT_WIDTH + 2


class TestHonestyStrip:
    def test_shades_monotone(self):
        strip = honesty_strip({"A1": 0.0, "B1": 0.3, "C1": 0.6, "D1": 1.0},
                              ["A1", "B1", "C1", "D1"])
        assert len(strip) == 4
        assert strip[0] == " "
        assert strip[-1] == "█"

    def test_missing_country_is_dot(self):
        assert honesty_strip({}, ["ZZ"]) == "·"
