"""Tests for the built-in country registry."""

import pytest

from repro.geo import CONTINENTS, Country, CountryRegistry


@pytest.fixture(scope="module")
def registry():
    return CountryRegistry.default()


class TestRegistryIntegrity:
    def test_reasonable_size(self, registry):
        # The paper's providers claim ~150-222 countries; the built-in map
        # needs a comparable population.
        assert 140 <= len(registry) <= 250

    def test_codes_unique_and_wellformed(self, registry):
        codes = registry.codes()
        assert len(codes) == len(set(codes))
        for code in codes:
            assert len(code) == 2
            assert code == code.upper()

    def test_every_continent_populated(self, registry):
        for continent in CONTINENTS:
            assert registry.by_continent(continent), continent

    def test_every_tier_populated(self, registry):
        for tier in (1, 2, 3):
            assert registry.by_hosting_tier(tier), tier

    def test_tier3_is_the_long_tail(self, registry):
        # More hard-hosting countries than easy ones — the paper's premise.
        assert (len(registry.by_hosting_tier(3))
                > len(registry.by_hosting_tier(1)))

    def test_anchors_inside_own_boxes(self, registry):
        for country in registry:
            for lat, lon in country.anchors:
                assert country.contains(lat, lon), (
                    f"{country.iso2} anchor ({lat}, {lon}) outside its boxes")

    def test_paper_headline_countries_present(self, registry):
        # Countries the paper names explicitly.
        for code in ("CZ", "DE", "NL", "GB", "US", "KP", "VA", "PN"):
            assert code in registry

    def test_continent_assignments_follow_appendix_a(self, registry):
        # The paper's split: Russia and Turkey with Europe, Middle East
        # with Africa, Malaysia/NZ with Oceania, Mexico with Central
        # America, Australia on its own.
        assert registry.continent_of("RU") == "EU"
        assert registry.continent_of("TR") == "EU"
        assert registry.continent_of("IL") == "AF"
        assert registry.continent_of("SA") == "AF"
        assert registry.continent_of("MY") == "OC"
        assert registry.continent_of("NZ") == "OC"
        assert registry.continent_of("MX") == "CA"
        assert registry.continent_of("AU") == "AU"


class TestLookups:
    def test_get_known(self, registry):
        germany = registry.get("DE")
        assert germany.name == "Germany"
        assert germany.hosting_tier == 1

    def test_get_unknown_raises(self, registry):
        with pytest.raises(KeyError):
            registry.get("ZZ")

    def test_contains_operator(self, registry):
        assert "FR" in registry
        assert "ZZ" not in registry

    def test_candidates_at_point(self, registry):
        candidates = registry.candidates_at(52.52, 13.40)  # Berlin
        assert any(c.iso2 == "DE" for c in candidates)

    def test_bounding_box_encloses_all_boxes(self, registry):
        us = registry.get("US")
        lat_min, lat_max, lon_min, lon_max = us.bounding_box()
        for b in us.boxes:
            assert lat_min <= b[0] and b[1] <= lat_max
            assert lon_min <= b[2] and b[3] <= lon_max


class TestCountryValidation:
    def test_rejects_unknown_continent(self):
        with pytest.raises(ValueError):
            Country("XX", "Nowhere", "XX", 1, ((0.0, 1.0, 0.0, 1.0),))

    def test_rejects_bad_tier(self):
        with pytest.raises(ValueError):
            Country("XX", "Nowhere", "EU", 0, ((0.0, 1.0, 0.0, 1.0),))

    def test_rejects_empty_boxes(self):
        with pytest.raises(ValueError):
            Country("XX", "Nowhere", "EU", 1, ())

    def test_rejects_inverted_box(self):
        with pytest.raises(ValueError):
            Country("XX", "Nowhere", "EU", 1, ((5.0, 1.0, 0.0, 1.0),))

    def test_default_anchors_are_box_centers(self):
        country = Country("XX", "Nowhere", "EU", 1, ((0.0, 10.0, 0.0, 20.0),))
        assert country.anchors == ((5.0, 10.0),)

    def test_duplicate_codes_rejected(self):
        box = ((0.0, 1.0, 0.0, 1.0),)
        with pytest.raises(ValueError):
            CountryRegistry([
                Country("XX", "One", "EU", 1, box),
                Country("XX", "Two", "EU", 1, box),
            ])
