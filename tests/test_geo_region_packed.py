"""Property tests for the packed (uint64 bitset) Region engine.

Every operation on a packed-native region must agree bit for bit with
the plain boolean reference — including on grids whose cell count is not
a multiple of 64 (the padding bits of the last word must stay invisible)
and at the empty/full extremes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geo import Grid
from repro.geo.region import (
    REGION_ENGINE_ENV,
    Region,
    n_words_for,
    pack_bits,
    region_engine,
    unpack_bits,
)

#: Grids whose n_cells leave a ragged tail word (4050 % 64 == 18,
#: 648 % 64 == 8): the padding-bit contract is exercised on every op.
RAGGED_RESOLUTIONS = (4.0, 10.0)


@pytest.fixture(scope="module", params=RAGGED_RESOLUTIONS)
def ragged_grid(request):
    grid = Grid(resolution_deg=request.param)
    assert grid.n_cells % 64 != 0, "fixture must exercise a ragged tail"
    return grid


def random_mask(grid, seed, density=0.3):
    rng = np.random.default_rng(seed)
    return rng.random(grid.n_cells) < density


class TestPackHelpers:
    @given(n_bits=st.integers(1, 300), seed=st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_pack_unpack_round_trip(self, n_bits, seed):
        rng = np.random.default_rng(seed)
        mask = rng.random(n_bits) < 0.5
        words = pack_bits(mask)
        assert words.dtype == np.uint64
        assert len(words) == n_words_for(n_bits)
        assert np.array_equal(unpack_bits(words, n_bits), mask)

    def test_matrix_packing_matches_rowwise(self):
        rng = np.random.default_rng(0)
        matrix = rng.random((5, 130)) < 0.4
        packed = pack_bits(matrix)
        assert packed.shape == (5, n_words_for(130))
        for row in range(5):
            assert np.array_equal(packed[row], pack_bits(matrix[row]))

    def test_padding_bits_are_zero(self):
        mask = np.ones(70, dtype=bool)   # 70 % 64 == 6: ragged tail
        words = pack_bits(mask)
        assert np.array_equal(unpack_bits(words, 70), mask)
        spill = np.unpackbits(words.view(np.uint8))[70:]
        assert not spill.any()


class TestPackedAlgebra:
    @given(seed_a=st.integers(0, 1000), seed_b=st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_and_or_difference_match_bool(self, ragged_grid, seed_a, seed_b):
        mask_a = random_mask(ragged_grid, seed_a)
        mask_b = random_mask(ragged_grid, seed_b)
        region_a = Region(ragged_grid, mask_a)
        region_b = Region(ragged_grid, mask_b)
        assert np.array_equal((region_a & region_b).mask, mask_a & mask_b)
        assert np.array_equal((region_a | region_b).mask, mask_a | mask_b)
        assert np.array_equal(region_a.difference(region_b).mask,
                              mask_a & ~mask_b)

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_complement_matches_bool(self, ragged_grid, seed):
        mask = random_mask(ragged_grid, seed)
        region = Region(ragged_grid, mask)
        flipped = region.complement()
        assert np.array_equal(flipped.mask, ~mask)
        # Padding must stay clear or the double complement would drift.
        assert flipped.complement() == region

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=40, deadline=None)
    def test_popcount_iteration_area(self, ragged_grid, seed):
        mask = random_mask(ragged_grid, seed)
        region = Region(ragged_grid, mask)
        assert region.n_cells == int(mask.sum())
        assert np.array_equal(region.cell_indices(), np.flatnonzero(mask))
        assert region.area_km2() == float(
            ragged_grid.cell_areas_km2[mask].sum())
        assert int(region.block_popcounts.sum()) == int(mask.sum())

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_packed_bytes_round_trip(self, ragged_grid, seed):
        mask = random_mask(ragged_grid, seed)
        region = Region(ragged_grid, mask)
        data = region.packed_bytes()
        assert data == np.packbits(mask).tobytes()
        assert Region.from_packbits(ragged_grid, data) == region

    def test_empty_and_full_extremes(self, ragged_grid):
        empty = Region.empty(ragged_grid)
        full = Region.full(ragged_grid)
        assert empty.is_empty and empty.n_cells == 0
        assert not full.is_empty and full.n_cells == ragged_grid.n_cells
        assert len(empty.cell_indices()) == 0
        assert np.array_equal(full.cell_indices(),
                              np.arange(ragged_grid.n_cells))
        assert full.complement() == empty
        assert empty.complement() == full
        assert (empty | full) == full
        assert (empty & full) == empty
        assert Region.from_packbits(
            ragged_grid, full.packed_bytes()) == full

    def test_from_words_rejects_dirty_padding(self, ragged_grid):
        words = np.zeros(n_words_for(ragged_grid.n_cells), dtype=np.uint64)
        # The final bit of the last word (LSB of its last byte, i.e. mask
        # position n_words*64 - 1) is past n_cells on every ragged grid.
        words[-1] = np.uint64(1) << np.uint64(56)
        with pytest.raises(ValueError, match="beyond n_cells"):
            Region.from_words(ragged_grid, words)

    def test_from_packbits_rejects_wrong_length(self, ragged_grid):
        with pytest.raises(ValueError, match="bytes"):
            Region.from_packbits(ragged_grid, b"\x00" * 3)


class TestEngineDispatch:
    def test_default_engine_is_packed(self, ragged_grid, monkeypatch):
        monkeypatch.delenv(REGION_ENGINE_ENV, raising=False)
        assert region_engine() == "packed"
        region = Region(ragged_grid, random_mask(ragged_grid, 1))
        assert region.is_packed_native
        assert not region.has_bool_view
        _ = region.mask
        assert region.has_bool_view   # lazy view materialised and cached

    def test_bool_engine_restores_reference(self, ragged_grid, monkeypatch):
        monkeypatch.setenv(REGION_ENGINE_ENV, "bool")
        mask = random_mask(ragged_grid, 2)
        region = Region(ragged_grid, mask)
        assert not region.is_packed_native
        assert region.mask is mask    # stored directly, no copy
        words = pack_bits(mask)
        assert Region.from_words(ragged_grid, words) == region

    def test_unknown_engine_rejected(self, monkeypatch):
        monkeypatch.setenv(REGION_ENGINE_ENV, "vectorised")
        with pytest.raises(ValueError, match="REPRO_REGION_ENGINE"):
            region_engine()

    def test_packed_resident_memory_is_smaller(self, ragged_grid):
        mask = random_mask(ragged_grid, 3)
        packed = Region(ragged_grid, mask)
        assert packed.resident_nbytes() * 4 < mask.nbytes
