"""Tests for the synthetic IP-to-location databases."""

import pytest

from repro.netsim import DEFAULT_DATABASES, IpToLocationDatabase, IpdbPanel


class TestPanel:
    def test_five_default_databases(self, scenario):
        assert len(scenario.ipdb.names()) == 5
        assert set(scenario.ipdb.names()) == {
            "DB-IP", "Eureka", "IP2Location", "IPInfo", "MaxMind"}

    def test_lookup_deterministic(self, scenario):
        server = scenario.all_servers()[0]
        truth = scenario.true_country_of(server) or server.claimed_country
        first = scenario.ipdb.lookup("MaxMind", server, truth)
        second = scenario.ipdb.lookup("MaxMind", server, truth)
        assert first == second

    def test_lookup_returns_known_country(self, scenario):
        for server in scenario.all_servers()[:50]:
            truth = scenario.true_country_of(server) or server.claimed_country
            for name in scenario.ipdb.names():
                assert scenario.ipdb.lookup(name, server, truth) \
                    in scenario.registry

    def test_unknown_database_raises(self, scenario):
        server = scenario.all_servers()[0]
        with pytest.raises(KeyError):
            scenario.ipdb.lookup("NoSuchDB", server, "DE")

    def test_true_claims_usually_confirmed(self, scenario):
        honest = [s for s in scenario.all_servers() if s.honest][:200]
        agreed = 0
        for server in honest:
            truth = scenario.true_country_of(server) or server.claimed_country
            if scenario.ipdb.agreement_with_claim("MaxMind", server,
                                                  server.claimed_country):
                agreed += 1
        assert agreed / len(honest) > 0.9

    def test_false_claims_often_echoed(self, scenario):
        """The paper's core suspicion: databases repeat provider claims."""
        fakes = [s for s in scenario.all_servers() if not s.honest][:200]
        for db_name in ("Eureka", "MaxMind"):
            echoed = sum(
                1 for s in fakes
                if scenario.ipdb.agreement_with_claim(
                    db_name, s, scenario.true_country_of(s) or "US"))
            assert echoed / len(fakes) > 0.7

    def test_agreement_rates_shape(self, scenario):
        servers = [(s, scenario.true_country_of(s) or s.claimed_country)
                   for s in scenario.all_servers()[:100]]
        rates = scenario.ipdb.agreement_rates(servers)
        assert set(rates) == set(scenario.ipdb.names())
        for rate in rates.values():
            assert 0.5 <= rate <= 1.0

    def test_agreement_rates_empty_raises(self, scenario):
        with pytest.raises(ValueError):
            scenario.ipdb.agreement_rates([])


class TestDatabaseValidation:
    def test_probability_bounds_enforced(self):
        with pytest.raises(ValueError):
            IpToLocationDatabase("bad", susceptibility=1.5, registry_accuracy=0.5)
        with pytest.raises(ValueError):
            IpToLocationDatabase("bad", susceptibility=0.5, registry_accuracy=-0.1)

    def test_default_databases_valid(self):
        for database in DEFAULT_DATABASES:
            assert 0.0 <= database.susceptibility <= 1.0
            assert 0.0 <= database.registry_accuracy <= 1.0
