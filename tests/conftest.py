"""Shared fixtures for the test suite.

The (memoised) default scenario is expensive enough to share at session
scope; tests must treat it as read-only.  Purely geometric/statistical
tests use small purpose-built fixtures instead.
"""

import numpy as np
import pytest

from repro.experiments import cached_audit, default_scenario
from repro.geo import CountryRegistry, Country, Grid, WorldMap


@pytest.fixture(scope="session")
def scenario():
    return default_scenario()


@pytest.fixture(scope="session")
def audit(scenario):
    """A shared audit over a slice of the fleet (used by pipeline tests)."""
    return cached_audit(scenario, max_servers=150, seed=0)


@pytest.fixture(scope="session")
def coarse_grid():
    """A 4-degree grid: 4050 cells, fast enough for exhaustive checks."""
    return Grid(resolution_deg=4.0)


@pytest.fixture(scope="session")
def tiny_registry():
    """A two-country toy world: a square 'Alphaland' and 'Betaland'."""
    return CountryRegistry([
        Country("AA", "Alphaland", "EU", 1, ((10.0, 20.0, 0.0, 10.0),),
                ((15.0, 5.0),)),
        Country("BB", "Betaland", "EU", 3, ((10.0, 20.0, 12.0, 22.0),),
                ((15.0, 17.0),)),
    ])


@pytest.fixture(scope="session")
def tiny_world(tiny_registry, coarse_grid):
    return WorldMap(registry=tiny_registry, grid=coarse_grid)


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
