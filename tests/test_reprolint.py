"""Tests for reprolint, the determinism & invariant linter.

Every rule gets a paired fixture: source that must trip it and a
minimally different source that must stay clean.  The meta-test at the
bottom runs the real CLI over ``src/`` and requires a clean exit — the
repository must satisfy its own lint gate.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT))

from tools.reprolint import (  # noqa: E402
    RULE_IDS,
    lint_source,
    report_json,
)
from tools.reprolint.engine import main, scope_path_for  # noqa: E402


def rules_hit(source, scope_path):
    result = lint_source(source, scope_path=scope_path)
    return [d.rule for d in result.diagnostics]


# -- R001: unseeded randomness ------------------------------------------------

class TestR001UnseededRandomness:
    def test_global_numpy_draw_flagged(self):
        source = "import numpy as np\nx = np.random.rand(3)\n"
        assert rules_hit(source, "core/foo.py") == ["R001"]

    def test_seedless_default_rng_flagged(self):
        source = "import numpy as np\nrng = np.random.default_rng()\n"
        assert rules_hit(source, "core/foo.py") == ["R001"]

    def test_stdlib_random_flagged(self):
        source = "import random\nrandom.shuffle([1, 2])\n"
        assert rules_hit(source, "stats/foo.py") == ["R001"]

    def test_seeded_default_rng_clean(self):
        source = ("import numpy as np\n"
                  "rng = np.random.default_rng(42)\n"
                  "rng2 = np.random.default_rng(seed)\n")
        assert rules_hit(source, "core/foo.py") == []

    def test_import_alias_resolved(self):
        source = "from numpy import random as nr\nnr.normal(0, 1)\n"
        assert rules_hit(source, "core/foo.py") == ["R001"]


# -- R002: wall clock ---------------------------------------------------------

class TestR002WallClock:
    def test_time_time_in_netsim_flagged(self):
        source = "import time\nstamp = time.time()\n"
        assert rules_hit(source, "netsim/foo.py") == ["R002"]

    def test_datetime_now_in_experiments_flagged(self):
        source = "import datetime\nd = datetime.datetime.now()\n"
        assert rules_hit(source, "experiments/foo.py") == ["R002"]

    def test_benchmarks_exempt_by_scope(self):
        source = "import time\nstamp = time.perf_counter()\n"
        assert rules_hit(source, "bench_audit.py") == []

    def test_sleep_is_not_a_clock_read(self):
        source = "import time\ntime.sleep(0.1)\n"
        assert rules_hit(source, "netsim/foo.py") == []

    def test_monotonic_allowed_in_service_scope(self):
        source = "import time\nstarted = time.monotonic()\n"
        assert rules_hit(source, "service/foo.py") == []

    def test_monotonic_ns_allowed_in_service_scope(self):
        source = "import time\nstarted = time.monotonic_ns()\n"
        assert rules_hit(source, "service/foo.py") == []

    def test_time_time_in_service_still_flagged(self):
        source = "import time\nstamp = time.time()\n"
        assert rules_hit(source, "service/foo.py") == ["R002"]

    def test_monotonic_outside_service_still_flagged(self):
        source = "import time\nstarted = time.monotonic()\n"
        assert rules_hit(source, "netsim/foo.py") == ["R002"]


# -- R003: uncentralised knob reads -------------------------------------------

class TestR003KnobReads:
    @pytest.mark.parametrize("read", [
        'value = os.getenv("REPRO_REGION_ENGINE")',
        'value = os.environ.get("REPRO_REGION_ENGINE")',
        'value = os.environ["REPRO_REGION_ENGINE"]',
        'flag = "REPRO_SANITIZE" in os.environ',
    ])
    def test_direct_reads_flagged(self, read):
        source = f"import os\n{read}\n"
        assert rules_hit(source, "geo/foo.py") == ["R003"]

    def test_env_constant_convention_flagged(self):
        source = ("import os\n"
                  "ENGINE_ENV = 'REPRO_PATH_ENGINE'\n"
                  "value = os.environ.get(ENGINE_ENV)\n")
        assert rules_hit(source, "netsim/foo.py") == ["R003"]

    def test_non_repro_variables_clean(self):
        source = "import os\nhome = os.environ.get('HOME')\n"
        assert rules_hit(source, "geo/foo.py") == []

    def test_config_module_exempt(self):
        source = "import os\nvalue = os.environ.get('REPRO_SANITIZE')\n"
        assert rules_hit(source, "config.py") == []


# -- R004: dense-bool views on hot paths --------------------------------------

class TestR004HotPathBoolView:
    def test_mask_in_hot_module_flagged(self):
        source = "dense = region.mask\n"
        assert rules_hit(source, "geo/bank.py") == ["R004"]

    def test_bool_mask_in_audit_flagged(self):
        source = "dense = region.bool_mask\n"
        assert rules_hit(source, "experiments/audit.py") == ["R004"]

    def test_cold_module_clean(self):
        source = "dense = region.mask\n"
        assert rules_hit(source, "geo/region.py") == []


# -- R005: payload field types ------------------------------------------------

_BAD_PAYLOAD = """\
from dataclasses import dataclass
import threading

@dataclass
class WorkerPayload:
    index: int
    lock: threading.Lock
"""

_GOOD_PAYLOAD = """\
from dataclasses import dataclass
from typing import List, Optional

@dataclass
class WorkerPayload:
    index: int
    mask: bytes
    names: List[str]
    note: Optional[str]
"""


class TestR005PayloadFields:
    def test_fork_unsafe_field_flagged(self):
        assert rules_hit(_BAD_PAYLOAD, "experiments/checkpoint.py") == ["R005"]

    def test_whitelisted_fields_clean(self):
        assert rules_hit(_GOOD_PAYLOAD, "experiments/audit.py") == []

    def test_payload_alias_checked(self):
        source = ("from typing import Tuple\n"
                  "import threading\n"
                  "ServerPayload = Tuple[int, threading.Lock]\n")
        assert rules_hit(source, "experiments/checkpoint.py") == ["R005"]

    def test_other_modules_exempt(self):
        assert rules_hit(_BAD_PAYLOAD, "core/foo.py") == []


# -- R007: scalar bank kernels inside loops on fleet hot paths ----------------

class TestR007PerPanelBankLoop:
    def test_loop_over_scalar_kernel_flagged(self):
        source = ("def sweep(bank, panels):\n"
                  "    out = []\n"
                  "    for lats, lons, radii in panels:\n"
                  "        out.append(bank.disk_intersections(\n"
                  "            lats, lons, radii, packed=True))\n"
                  "    return out\n")
        assert rules_hit(source, "core/cbgpp.py") == ["R007"]

    def test_comprehension_over_ring_votes_flagged(self):
        source = ("def sweep(bank, panels):\n"
                  "    return [bank.ring_votes(p.lats, p.lons, p.inner,\n"
                  "                            p.outer) for p in panels]\n")
        assert rules_hit(source, "core/octant.py") == ["R007"]

    def test_while_loop_field_block_flagged(self):
        source = ("def drain(bank, queue):\n"
                  "    while queue:\n"
                  "        panel = queue.pop()\n"
                  "        fields = bank.field_block(panel.lats, panel.lons)\n")
        assert rules_hit(source, "experiments/audit.py") == ["R007"]

    def test_fleet_front_end_in_loop_clean(self):
        source = ("def sweep(bank, batches):\n"
                  "    out = []\n"
                  "    for rows, radii in batches:\n"
                  "        out.append(bank.disk_intersections_fleet(\n"
                  "            rows, radii, packed=True))\n"
                  "    return out\n")
        assert rules_hit(source, "core/cbgpp.py") == []

    def test_single_scalar_call_outside_loop_clean(self):
        source = ("def one(bank, lats, lons, radii):\n"
                  "    return bank.disk_intersections(lats, lons, radii)\n")
        assert rules_hit(source, "core/cbgpp.py") == []

    def test_bank_module_itself_exempt(self):
        source = ("def ring_masks(self, panels):\n"
                  "    return [self.ring_intersection(p) for p in panels]\n")
        assert rules_hit(source, "geo/bank.py") == []

    def test_non_hot_modules_exempt(self):
        source = ("def figure(bank, panels):\n"
                  "    return [bank.ring_votes(*p) for p in panels]\n")
        assert rules_hit(source, "experiments/figures.py") == []


# -- R008: unbounded record accumulation on streaming paths -------------------

class TestR008UnboundedRecordAccumulation:
    def test_append_to_records_list_flagged(self):
        source = ("def collect(payloads):\n"
                  "    records = []\n"
                  "    for payload in payloads:\n"
                  "        records.append(payload)\n"
                  "    return records\n")
        assert rules_hit(source, "experiments/campaign.py") == ["R008"]

    def test_append_of_record_constructor_flagged(self):
        source = ("def collect(servers, grid, payloads):\n"
                  "    out = []\n"
                  "    for payload in payloads:\n"
                  "        out.append(_record_from_payload(\n"
                  "            servers, grid, payload))\n"
                  "    return out\n")
        assert rules_hit(source, "experiments/audit.py") == ["R008"]

    def test_record_listcomp_flagged(self):
        source = ("def collect(servers, grid, payloads):\n"
                  "    return [_record_from_payload(servers, grid, p)\n"
                  "            for p in payloads]\n")
        assert rules_hit(source, "experiments/campaign.py") == ["R008"]

    def test_attribute_records_append_flagged(self):
        source = ("def stash(self, record):\n"
                  "    self.kept_records.append(record)\n")
        assert rules_hit(source, "report.py") == ["R008"]

    def test_sink_aggregation_clean(self):
        source = ("def accept(self, record):\n"
                  "    self.tally.add(record)\n"
                  "    self.providers[record.server.provider] = (\n"
                  "        self.providers.get(record.server.provider, 0) + 1)\n")
        assert rules_hit(source, "experiments/campaign.py") == []

    def test_non_record_append_clean(self):
        source = ("def render(rows):\n"
                  "    lines = []\n"
                  "    for row in rows:\n"
                  "        lines.append(str(row))\n"
                  "    return lines\n")
        assert rules_hit(source, "report.py") == []

    def test_other_modules_exempt(self):
        source = ("def collect(payloads):\n"
                  "    records = []\n"
                  "    for payload in payloads:\n"
                  "        records.append(payload)\n"
                  "    return records\n")
        assert rules_hit(source, "experiments/figures.py") == []

    def test_reasoned_suppression_honoured(self):
        source = ("records = [make_record(p) for p in payloads]"
                  "  # reprolint: disable=R008 (legacy API keeps the list)\n")
        result = lint_source(source, scope_path="experiments/audit.py")
        assert result.ok
        assert result.suppressions[0].rules == ("R008",)


# -- R009: unbounded queue/container growth in service code -------------------

class TestR009UnboundedServiceGrowth:
    def test_unbounded_asyncio_queue_flagged(self):
        source = "import asyncio\nq = asyncio.Queue()\n"
        assert rules_hit(source, "service/foo.py") == ["R009"]

    def test_zero_maxsize_queue_flagged(self):
        source = "import asyncio\nq = asyncio.Queue(maxsize=0)\n"
        assert rules_hit(source, "service/foo.py") == ["R009"]

    def test_simple_queue_always_flagged(self):
        source = "import queue\nq = queue.SimpleQueue()\n"
        assert rules_hit(source, "service/foo.py") == ["R009"]

    def test_bounded_queue_clean(self):
        source = "import asyncio\nq = asyncio.Queue(maxsize=256)\n"
        assert rules_hit(source, "service/foo.py") == []

    def test_runtime_bound_queue_clean(self):
        source = ("import asyncio\n"
                  "def start(self):\n"
                  "    self.q = asyncio.Queue(maxsize=self.queue_max)\n")
        assert rules_hit(source, "service/foo.py") == []

    def test_positional_bound_clean(self):
        source = "import queue\nq = queue.Queue(128)\n"
        assert rules_hit(source, "service/foo.py") == []

    def test_self_dict_growth_flagged(self):
        source = ("class Cache:\n"
                  "    def __init__(self):\n"
                  "        self.entries = {}\n"
                  "    def put(self, key, value):\n"
                  "        self.entries[key] = value\n")
        assert rules_hit(source, "service/foo.py") == ["R009"]

    def test_self_list_append_flagged(self):
        source = ("class Log:\n"
                  "    def __init__(self):\n"
                  "        self.lines = []\n"
                  "    def note(self, line):\n"
                  "        self.lines.append(line)\n")
        assert rules_hit(source, "service/foo.py") == ["R009"]

    def test_module_level_dict_growth_flagged(self):
        source = ("_REGISTRY = {}\n"
                  "def register(name, value):\n"
                  "    _REGISTRY[name] = value\n")
        assert rules_hit(source, "service/foo.py") == ["R009"]

    def test_unbounded_deque_growth_flagged(self):
        source = ("import collections\n"
                  "class Log:\n"
                  "    def __init__(self):\n"
                  "        self.lines = collections.deque()\n"
                  "    def note(self, line):\n"
                  "        self.lines.append(line)\n")
        assert rules_hit(source, "service/foo.py") == ["R009"]

    def test_bounded_deque_growth_clean(self):
        source = ("import collections\n"
                  "class Log:\n"
                  "    def __init__(self):\n"
                  "        self.lines = collections.deque(maxlen=64)\n"
                  "    def note(self, line):\n"
                  "        self.lines.append(line)\n")
        assert rules_hit(source, "service/foo.py") == []

    def test_local_list_growth_clean(self):
        source = ("def render(rows):\n"
                  "    lines = []\n"
                  "    for row in rows:\n"
                  "        lines.append(str(row))\n"
                  "    return lines\n")
        assert rules_hit(source, "service/foo.py") == []

    def test_lru_cache_state_clean(self):
        source = ("from repro.lrucache import LruCache\n"
                  "class Cache:\n"
                  "    def __init__(self, slots):\n"
                  "        self.entries = LruCache(maxsize=slots)\n"
                  "    def put(self, key, value):\n"
                  "        self.entries.put(key, value)\n")
        assert rules_hit(source, "service/foo.py") == []

    def test_non_service_scope_exempt(self):
        source = "import asyncio\nq = asyncio.Queue()\n"
        assert rules_hit(source, "experiments/foo.py") == []

    def test_reasoned_suppression_honoured(self):
        source = ("import queue\n"
                  "q = queue.SimpleQueue()"
                  "  # reprolint: disable=R009 (drained every tick)\n")
        result = lint_source(source, scope_path="service/foo.py")
        assert result.ok
        assert result.suppressions[0].rules == ("R009",)


# -- R006: unordered reductions -----------------------------------------------

class TestR006UnorderedReduction:
    def test_sum_dict_values_flagged(self):
        source = "total = sum(d.values())\n"
        assert rules_hit(source, "core/foo.py") == ["R006"]

    def test_sum_set_literal_flagged(self):
        source = "total = sum({1.0, 2.0})\n"
        assert rules_hit(source, "core/foo.py") == ["R006"]

    def test_sum_generator_over_set_flagged(self):
        source = "total = sum(x * x for x in set(xs))\n"
        assert rules_hit(source, "core/foo.py") == ["R006"]

    def test_sorted_reduction_clean(self):
        source = "total = sum(sorted(d.values()))\n"
        assert rules_hit(source, "core/foo.py") == []


# -- suppressions -------------------------------------------------------------

class TestSuppressions:
    def test_reasoned_suppression_silences(self):
        source = ("total = sum(d.values())"
                  "  # reprolint: disable=R006 (values are exact ints)\n")
        result = lint_source(source, scope_path="core/foo.py")
        assert result.ok
        assert len(result.suppressions) == 1
        assert result.suppressions[0].rules == ("R006",)
        assert result.suppressions[0].reason == "values are exact ints"

    def test_reasonless_suppression_rejected(self):
        source = "total = sum(d.values())  # reprolint: disable=R006\n"
        result = lint_source(source, scope_path="core/foo.py")
        hit = sorted(d.rule for d in result.diagnostics)
        assert hit == ["R000", "R006"]  # meta-diag AND the original finding

    def test_unknown_rule_rejected(self):
        source = "x = 1  # reprolint: disable=R999 (no such rule)\n"
        result = lint_source(source, scope_path="core/foo.py")
        assert [d.rule for d in result.diagnostics] == ["R000"]

    def test_suppression_only_covers_its_line(self):
        source = ("a = sum(d.values())"
                  "  # reprolint: disable=R006 (exact ints)\n"
                  "b = sum(e.values())\n")
        result = lint_source(source, scope_path="core/foo.py")
        assert [d.rule for d in result.diagnostics] == ["R006"]
        assert result.diagnostics[0].line == 2


# -- engine plumbing ----------------------------------------------------------

class TestEngine:
    def test_syntax_error_reported_not_raised(self):
        result = lint_source("def broken(:\n", path="bad.py")
        assert not result.ok
        assert result.diagnostics[0].rule == "E999"

    def test_scope_path_relative_to_repro_root(self):
        assert scope_path_for("src/repro/geo/region.py") == "geo/region.py"
        assert scope_path_for("/x/src/repro/core/cbgpp.py") == "core/cbgpp.py"
        assert scope_path_for("somewhere/loose.py") == "loose.py"

    def test_diagnostic_render_format(self):
        source = "total = sum(d.values())\n"
        result = lint_source(source, path="m.py", scope_path="core/foo.py")
        rendered = result.diagnostics[0].render()
        assert rendered.startswith("m.py:1:")
        assert " R006 " in rendered

    def test_json_report_schema(self):
        source = "total = sum(d.values())  # reprolint: disable=R999\n"
        result = lint_source(source, path="m.py", scope_path="core/foo.py")
        report = report_json(result)
        assert report["version"] == 2
        assert report["tool"] == "reprolint"
        assert report["files_checked"] == 1
        assert report["reparsed_files"] == 1
        assert report["ok"] is False
        for diagnostic in report["diagnostics"]:
            assert set(diagnostic) == {"path", "line", "col", "rule",
                                       "message"}
        json.dumps(report)  # must be serialisable as-is

    def test_rule_ids_catalogue(self):
        assert RULE_IDS == ("R001", "R002", "R003", "R004", "R005", "R006",
                            "R007", "R008", "R009",
                            "R010", "R011", "R012", "R013")


class TestCli:
    def test_failing_file_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nrandom.random()\n")
        assert main([str(bad)]) == 1
        assert "R001" in capsys.readouterr().out

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        assert main([str(good)]) == 0
        capsys.readouterr()

    def test_missing_path_exits_two(self, capsys):
        assert main(["definitely/not/here"]) == 2
        capsys.readouterr()

    def test_json_report_written(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("total = sum(d.values())\n")
        out = tmp_path / "report.json"
        assert main([str(bad), "--json", str(out)]) == 1
        capsys.readouterr()
        report = json.loads(out.read_text())
        assert report["ok"] is False
        assert report["diagnostics"][0]["rule"] == "R006"

    def test_directory_without_python_files_exits_two(self, tmp_path,
                                                      capsys):
        (tmp_path / "notes.txt").write_text("nothing to lint here\n")
        assert main([str(tmp_path)]) == 2
        assert "nothing analyzed" in capsys.readouterr().err

    def test_empty_directory_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path)]) == 2
        assert "nothing analyzed" in capsys.readouterr().err

    def test_exit_code_matrix(self, tmp_path, capsys):
        """0 = clean, 1 = diagnostics, 2 = operational error."""
        clean = tmp_path / "clean"
        clean.mkdir()
        (clean / "ok.py").write_text("x = 1\n")
        dirty = tmp_path / "dirty"
        dirty.mkdir()
        (dirty / "bad.py").write_text("import random\nrandom.random()\n")
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main([str(clean)]) == 0
        assert main([str(dirty)]) == 1
        assert main([str(empty)]) == 2
        assert main([str(tmp_path / "missing")]) == 2
        assert main(["--write-baseline", str(clean)]) == 2  # no --baseline
        capsys.readouterr()

    def test_list_rules_includes_project_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("R001", "R009", "R010", "R011", "R012", "R013"):
            assert rule_id in out


def test_repository_is_lint_clean():
    """The meta-test: ``python -m tools.reprolint src/`` must exit 0."""
    completed = subprocess.run(
        [sys.executable, "-m", "tools.reprolint", "src"],
        cwd=REPO_ROOT, capture_output=True, text=True)
    assert completed.returncode == 0, (
        f"reprolint found violations in src/:\n{completed.stdout}")
