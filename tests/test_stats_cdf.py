"""Tests for the ECDF helper."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import ecdf


class TestEcdf:
    def test_basic_fractions(self):
        cdf = ecdf([1.0, 2.0, 3.0, 4.0])
        assert cdf.at(0.5) == 0.0
        assert cdf.at(1.0) == 0.25
        assert cdf.at(2.5) == 0.5
        assert cdf.at(4.0) == 1.0
        assert cdf.at(100.0) == 1.0

    def test_duplicates(self):
        cdf = ecdf([1.0, 1.0, 1.0, 2.0])
        assert cdf.at(1.0) == 0.75

    def test_quantiles(self):
        cdf = ecdf(list(range(1, 101)))
        assert cdf.quantile(0.5) == 50.0
        assert cdf.quantile(0.9) == 90.0
        assert cdf.quantile(1.0) == 100.0

    def test_quantile_bounds_checked(self):
        cdf = ecdf([1.0, 2.0])
        with pytest.raises(ValueError):
            cdf.quantile(0.0)
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_series(self):
        cdf = ecdf([10.0, 20.0, 30.0])
        series = cdf.series([5, 15, 35])
        assert series == [(5.0, 0.0), (15.0, pytest.approx(1 / 3)), (35.0, 1.0)]

    def test_infinity_censoring(self):
        # The figure-9 pipeline censors empty predictions at +inf; the
        # ECDF must still work for finite thresholds.
        cdf = ecdf([100.0, 200.0, math.inf])
        assert cdf.at(250.0) == pytest.approx(2 / 3)
        assert cdf.quantile(1.0) == math.inf

    def test_rejects_empty_and_nan(self):
        with pytest.raises(ValueError):
            ecdf([])
        with pytest.raises(ValueError):
            ecdf([1.0, float("nan")])

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6),
                    min_size=1, max_size=100))
    @settings(max_examples=100, deadline=None)
    def test_monotone_and_bounded(self, values):
        cdf = ecdf(values)
        probes = np.linspace(min(values) - 1, max(values) + 1, 17)
        fractions = [cdf.at(float(p)) for p in probes]
        assert fractions == sorted(fractions)
        assert all(0.0 <= f <= 1.0 for f in fractions)

    @given(values=st.lists(st.floats(min_value=-1e6, max_value=1e6),
                           min_size=1, max_size=50),
           q=st.floats(min_value=0.01, max_value=1.0))
    @settings(max_examples=100, deadline=None)
    def test_quantile_inverts_at(self, values, q):
        cdf = ecdf(values)
        v = cdf.quantile(q)
        assert cdf.at(v) >= q - 1e-12
