"""Tests for the central REPRO_* knob registry (repro.config).

The registry's contract: unknown values are a hard error naming the
allowed set, empty string means unset, and every knob read in the tree
goes through :func:`repro.config.env_value`.
"""

import pytest

from repro import config
from repro.config import KnobError
from repro.netsim import Network, build_cities, build_topology
from repro.netsim import pathengine


@pytest.fixture(scope="module")
def topology():
    return build_topology(build_cities(), seed=0)


class TestRegistry:
    def test_all_knobs_are_repro_prefixed(self):
        knobs = config.all_knobs()
        assert len(knobs) >= 4
        assert all(k.name.startswith("REPRO_") for k in knobs)

    def test_known_knobs_present(self):
        names = {k.name for k in config.all_knobs()}
        assert {"REPRO_REGION_ENGINE", "REPRO_PATH_ENGINE",
                "REPRO_PATHENGINE_CACHE", "REPRO_SANITIZE"} <= names

    def test_unknown_knob_name_is_keyerror(self):
        with pytest.raises(KeyError, match="REPRO_NO_SUCH_KNOB"):
            config.knob("REPRO_NO_SUCH_KNOB")
        with pytest.raises(KeyError):
            config.env_value("REPRO_NO_SUCH_KNOB")


class TestParsing:
    def test_unset_yields_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_REGION_ENGINE", raising=False)
        assert config.env_value("REPRO_REGION_ENGINE") == "packed"
        assert not config.is_set("REPRO_REGION_ENGINE")

    def test_empty_string_means_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_REGION_ENGINE", "")
        assert config.env_value("REPRO_REGION_ENGINE") == "packed"
        assert not config.is_set("REPRO_REGION_ENGINE")

    def test_invalid_choice_is_hard_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_REGION_ENGINE", "typo")
        with pytest.raises(KnobError) as excinfo:
            config.env_value("REPRO_REGION_ENGINE")
        message = str(excinfo.value)
        assert "REPRO_REGION_ENGINE" in message
        assert "packed" in message and "bool" in message

    def test_knob_error_is_a_value_error(self):
        assert issubclass(KnobError, ValueError)

    @pytest.mark.parametrize("word,expected", [
        ("1", True), ("true", True), ("YES", True), ("on", True),
        ("0", False), ("false", False), ("No", False), ("off", False),
    ])
    def test_flag_words(self, monkeypatch, word, expected):
        monkeypatch.setenv("REPRO_SANITIZE", word)
        assert config.env_value("REPRO_SANITIZE") is expected

    def test_flag_garbage_is_hard_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "maybe")
        with pytest.raises(KnobError, match="REPRO_SANITIZE"):
            config.env_value("REPRO_SANITIZE")

    def test_path_knob_passthrough(self, monkeypatch):
        monkeypatch.setenv("REPRO_PATHENGINE_CACHE", "/tmp/warm")
        assert config.env_value("REPRO_PATHENGINE_CACHE") == "/tmp/warm"
        monkeypatch.delenv("REPRO_PATHENGINE_CACHE")
        assert config.env_value("REPRO_PATHENGINE_CACHE") is None

    def test_int_knob_parses(self, monkeypatch):
        monkeypatch.setenv("REPRO_CAMPAIGN_SHARDS", "16")
        assert config.env_value("REPRO_CAMPAIGN_SHARDS") == 16
        monkeypatch.delenv("REPRO_CAMPAIGN_SHARDS")
        assert config.env_value("REPRO_CAMPAIGN_SHARDS") == 1

    @pytest.mark.parametrize("raw", ["four", "2.5", "-3", "0x10"])
    def test_int_knob_garbage_is_hard_error(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_CAMPAIGN_SHARDS", raw)
        with pytest.raises(KnobError, match="REPRO_CAMPAIGN_SHARDS"):
            config.env_value("REPRO_CAMPAIGN_SHARDS")


class TestKnobTable:
    def test_markdown_table_covers_every_knob(self):
        table = config.knob_table_markdown()
        assert table.startswith("| Knob |")
        for declared in config.all_knobs():
            assert f"`{declared.name}`" in table

    def test_readme_contains_generated_table(self):
        import pathlib
        readme = (pathlib.Path(__file__).resolve().parents[1]
                  / "README.md").read_text()
        for declared in config.all_knobs():
            assert declared.name in readme, (
                f"{declared.name} is registered but missing from README.md")


class TestEngineSelection:
    """The silent-fallback fix: an explicit csr request without scipy
    must fail loudly instead of quietly downgrading to networkx."""

    def test_typod_engine_value_fails_loudly(self, topology, monkeypatch):
        monkeypatch.setenv("REPRO_PATH_ENGINE", "cs")  # typo'd "csr"
        with pytest.raises(KnobError, match="REPRO_PATH_ENGINE"):
            Network(topology, seed=0)

    def test_explicit_csr_without_scipy_raises(self, topology, monkeypatch):
        monkeypatch.setattr(pathengine, "HAVE_SCIPY", False)
        with pytest.raises(RuntimeError, match="scipy"):
            Network(topology, seed=0, path_engine="csr")

    def test_explicit_env_csr_without_scipy_raises(self, topology,
                                                   monkeypatch):
        monkeypatch.setenv("REPRO_PATH_ENGINE", "csr")
        monkeypatch.setattr(pathengine, "HAVE_SCIPY", False)
        with pytest.raises(RuntimeError, match="REPRO_PATH_ENGINE"):
            Network(topology, seed=0)

    def test_implicit_default_still_falls_back(self, topology, monkeypatch):
        monkeypatch.delenv("REPRO_PATH_ENGINE", raising=False)
        monkeypatch.setattr(pathengine, "HAVE_SCIPY", False)
        network = Network(topology, seed=0)
        assert network.path_engine_mode == "networkx"
