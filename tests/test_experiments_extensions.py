"""Tests for the §8/§8.1 extension experiments."""

import numpy as np
import pytest

from repro.experiments import ext_adversary, ext_testbench
from repro.netsim import NavigationTimingWebTool, WebTool


class TestAdversaryExperiment:
    @pytest.fixture(scope="class")
    def experiment(self, scenario):
        return ext_adversary.run(scenario, seed=0)

    def test_all_cells_present(self, experiment):
        assert len(experiment.outcomes) == 4
        for strategy in ("add-delay", "forge-synack"):
            for algorithm in ("cbg++", "spotter"):
                experiment.outcome(strategy, algorithm)

    def test_delay_cannot_evict_truth_from_cbgpp(self, experiment):
        """Delay only inflates distances: CBG-family disks only grow."""
        outcome = experiment.outcome("add-delay", "cbg++")
        assert outcome.covers_truth

    def test_delay_displaces_spotter(self, experiment):
        """Minimum-speed models are susceptible to added delay."""
        outcome = experiment.outcome("add-delay", "spotter")
        assert not outcome.covers_truth
        assert outcome.displaced

    def test_forgery_defeats_everyone(self, experiment):
        for algorithm in ("cbg++", "spotter"):
            outcome = experiment.outcome("forge-synack", algorithm)
            assert not outcome.covers_truth
            assert outcome.miss_pretend_km < outcome.miss_truth_km

    def test_format_table(self, experiment):
        text = ext_adversary.format_table(experiment)
        assert "add-delay" in text and "forge-synack" in text


class TestTestbenchExperiment:
    @pytest.fixture(scope="class")
    def result(self, scenario):
        return ext_testbench.run(scenario, n_servers=6, seed=0)

    def test_rows_complete(self, result):
        assert len(result.rows) == 6
        for row in result.rows:
            assert row.direct_area_km2 >= 0
            assert row.indirect_area_km2 >= 0

    def test_eta_fitted(self, result):
        assert 0.4 <= result.eta <= 0.6

    def test_errors_are_local_not_continental(self, result):
        """Direct/indirect disagreement stays at border scale (~100s of
        km), never continent scale."""
        assert result.worst_miss_km(indirect=True) < 1500.0
        assert result.worst_miss_km(indirect=False) < 1500.0
        assert result.median_centroid_offset_km() < 500.0

    def test_indirection_does_not_shrink_regions(self, result):
        """The tunnel's upward bias should never make regions smaller on
        the median."""
        assert result.median_area_inflation() >= 0.8

    def test_format_table(self, result):
        assert "direct" in ext_testbench.format_table(result)


class TestNavigationTimingTool:
    def test_supported_landmark_measures_one_rtt(self, scenario, rng):
        client = scenario.factory.create(50.0, 8.6, name="navtiming-client")
        landmark = next(lm for lm in scenario.atlas.anchors
                        if lm.host.listens_on_port_80)
        tool = NavigationTimingWebTool(
            scenario.network, supporting_landmarks=[landmark.name])
        sample = tool.measure(client, landmark, rng)
        assert sample.n_round_trips == 1
        assert sample.tool == "web-navtiming"

    def test_unsupported_falls_back_to_classic(self, scenario, rng):
        client = scenario.factory.create(50.0, 8.6, name="navtiming-client2")
        landmark = next(lm for lm in scenario.atlas.anchors
                        if lm.host.listens_on_port_80)
        tool = NavigationTimingWebTool(scenario.network)  # nobody supports it
        sample = tool.measure(client, landmark, rng)
        assert sample.n_round_trips == 2  # classic two-round-trip behaviour

    def test_api_reduces_noise(self, scenario):
        """Per-measurement overhead via the API is below the classic
        browser path's."""
        client = scenario.factory.create(50.0, 8.6, name="navtiming-client3",
                                         os="windows")
        landmark = next(lm for lm in scenario.atlas.anchors
                        if not lm.host.listens_on_port_80)  # 1 RTT both ways
        api_tool = NavigationTimingWebTool(
            scenario.network, supporting_landmarks=[landmark.name])
        classic = WebTool(scenario.network)
        rng = np.random.default_rng(0)
        api_best = min(api_tool.measure(client, landmark, rng).rtt_ms
                       for _ in range(15))
        classic_best = min(classic.measure(client, landmark, rng).rtt_ms
                           for _ in range(15))
        assert api_best <= classic_best
