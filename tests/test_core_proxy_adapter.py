"""Tests for the proxy RTT adaptation (eta and the client-leg subtraction)."""

import numpy as np
import pytest

from repro.core import (
    PAPER_ETA,
    ProxyMeasurer,
    collect_eta_data,
    estimate_eta,
)


class TestEtaEstimation:
    def test_eta_near_half(self, scenario, rng):
        estimate = estimate_eta(scenario.network, scenario.client,
                                scenario.all_servers(), rng)
        assert estimate.eta == pytest.approx(0.5, abs=0.05)
        assert estimate.r_squared > 0.99
        assert estimate.fit is not None

    def test_only_pingable_proxies_used(self, scenario, rng):
        pairs = collect_eta_data(scenario.network, scenario.client,
                                 scenario.all_servers(), rng)
        pingable = sum(1 for s in scenario.all_servers() if s.responds_to_ping)
        assert len(pairs) == pingable

    def test_indirect_exceeds_direct(self, scenario, rng):
        pairs = collect_eta_data(scenario.network, scenario.client,
                                 scenario.all_servers(), rng)
        for indirect, direct in pairs:
            assert indirect > direct

    def test_fallback_to_paper_prior(self, scenario, rng):
        """Too few pingable proxies: fall back to the paper's fitted
        prior (Figure 13), marked degraded."""
        unpingable = [s for s in scenario.all_servers()
                      if not s.responds_to_ping][:5]
        estimate = estimate_eta(scenario.network, scenario.client,
                                unpingable, rng)
        assert estimate.eta == PAPER_ETA
        assert estimate.n_proxies == 0
        assert estimate.n_samples == 0
        assert estimate.degraded


class TestProxyMeasurer:
    def test_eta_validated(self, scenario):
        server = scenario.all_servers()[0]
        with pytest.raises(ValueError):
            ProxyMeasurer(scenario.network, scenario.client, server, eta=1.5)

    def test_observations_have_positive_one_way(self, scenario):
        server = scenario.all_servers()[0]
        measurer = ProxyMeasurer(scenario.network, scenario.client, server,
                                 seed=1)
        observations = measurer.observe(scenario.atlas.anchors[:10])
        assert len(observations) == 10
        for obs in observations:
            assert obs.one_way_ms >= measurer.ONE_WAY_FLOOR_MS

    def test_adapted_delay_tracks_proxy_leg(self, scenario):
        """After subtraction the one-way delay reflects the proxy→landmark
        path, not the client→proxy→landmark sum."""
        server = scenario.all_servers()[0]
        measurer = ProxyMeasurer(scenario.network, scenario.client, server,
                                 seed=2)
        landmark = scenario.atlas.anchors[0]
        observations = measurer.observe([landmark] * 5)
        best = min(o.one_way_ms for o in observations)
        true_leg = scenario.network.base_one_way_ms(server.host, landmark.host)
        assert best == pytest.approx(true_leg, rel=0.5, abs=15.0)
        # And crucially it is much less than the unadapted sum.
        unadapted = (scenario.network.base_one_way_ms(scenario.client,
                                                      server.host) + true_leg)
        if unadapted > 2 * true_leg * 1.2:
            assert best < unadapted * 0.9

    def test_client_leg_close_to_true_rtt(self, scenario):
        server = scenario.all_servers()[0]
        measurer = ProxyMeasurer(scenario.network, scenario.client, server,
                                 seed=3)
        estimated = measurer.client_leg_ms()
        true_rtt = scenario.network.base_rtt_ms(scenario.client, server.host)
        assert estimated == pytest.approx(true_rtt, rel=0.25)

    def test_subtraction_biased_safe(self, scenario):
        """The safety factor bounds over-subtraction — the dangerous
        direction.  VPN-software overhead inside the self-ping makes small
        (~5%) overshoots unavoidable on short client→proxy paths; gross
        (>10%) overshoots must be rare."""
        gross_overshoots = 0
        for server in scenario.all_servers()[:30]:
            measurer = ProxyMeasurer(scenario.network, scenario.client,
                                     server, seed=server.host.host_id)
            estimated = measurer.client_leg_ms()
            true_rtt = scenario.network.base_rtt_ms(scenario.client,
                                                    server.host)
            if estimated > true_rtt * 1.10:
                gross_overshoots += 1
        assert gross_overshoots <= 2
