"""Tests for proxy co-location detection (§8.1 extension)."""

import numpy as np
import pytest

from repro.core import (
    LAN_RTT_THRESHOLD_MS,
    detect_colocation,
    proxy_pair_rtt_ms,
)
from repro.core.disambiguation import metadata_group_key


@pytest.fixture(scope="module")
def provider_slice(scenario):
    return scenario.providers[0].servers[:40]


class TestPairRtt:
    def test_same_site_pair_is_lan_fast(self, scenario):
        by_site = {}
        for server in scenario.all_servers():
            by_site.setdefault(metadata_group_key(server), []).append(server)
        group = next(g for g in by_site.values() if len(g) >= 2)
        rtt = proxy_pair_rtt_ms(scenario.network, group[0], group[1])
        assert rtt < LAN_RTT_THRESHOLD_MS

    def test_cross_continent_pair_is_slow(self, scenario):
        servers = scenario.all_servers()
        a = next(s for s in servers if scenario.true_country_of(s) == "DE")
        b = next(s for s in servers if scenario.true_country_of(s) == "JP")
        rtt = proxy_pair_rtt_ms(scenario.network, a, b)
        assert rtt > 100.0

    def test_deterministic_without_rng(self, scenario, provider_slice):
        a, b = provider_slice[0], provider_slice[1]
        assert (proxy_pair_rtt_ms(scenario.network, a, b)
                == proxy_pair_rtt_ms(scenario.network, a, b))


class TestDetection:
    def test_groups_match_ground_truth_sites(self, scenario, provider_slice):
        from repro.geodesy import haversine_km
        groups = detect_colocation(scenario.network, provider_slice,
                                   rng=np.random.default_rng(0))
        assert groups, "a provider's fleet should show co-location"
        # Groups are geographically tight; the 5 ms heuristic can merge
        # *very* close metro areas (real Frankfurt-Cologne RTTs are ~4 ms)
        # so same-city membership is asserted only in the aggregate.
        single_city = 0
        for group in groups:
            hosts = [s.host for s in group.servers]
            span = max(haversine_km(a.lat, a.lon, b.lat, b.lon)
                       for i, a in enumerate(hosts) for b in hosts[i + 1:])
            assert span < 500.0
            if len({s.datacenter_city_id for s in group.servers}) == 1:
                single_city += 1
        assert single_city >= 0.7 * len(groups)

    def test_finds_conflicting_claims(self, scenario, provider_slice):
        """The paper's pilot finding: co-located proxies claiming
        separate countries."""
        groups = detect_colocation(scenario.network, provider_slice,
                                   rng=np.random.default_rng(1))
        assert any(g.claims_conflict for g in groups)

    def test_groups_sorted_by_size(self, scenario, provider_slice):
        groups = detect_colocation(scenario.network, provider_slice,
                                   rng=np.random.default_rng(2))
        sizes = [g.size for g in groups]
        assert sizes == sorted(sizes, reverse=True)
        assert all(g.size >= 2 for g in groups)

    def test_internal_rtt_reported(self, scenario, provider_slice):
        groups = detect_colocation(scenario.network, provider_slice,
                                   rng=np.random.default_rng(3))
        for group in groups:
            assert group.max_internal_rtt_ms > 0

    def test_threshold_validated(self, scenario, provider_slice):
        with pytest.raises(ValueError):
            detect_colocation(scenario.network, provider_slice,
                              threshold_ms=0.0)

    def test_tiny_threshold_finds_nothing_much(self, scenario, provider_slice):
        strict = detect_colocation(scenario.network, provider_slice,
                                   threshold_ms=0.01,
                                   rng=np.random.default_rng(4))
        normal = detect_colocation(scenario.network, provider_slice,
                                   rng=np.random.default_rng(4))
        assert (sum(g.size for g in strict)
                <= sum(g.size for g in normal))
