"""Property tests for the resilient measurement pipeline.

The three contract properties from the fault-injection design:

1. a fixed (seed, profile) reproduces its faults bit-for-bit;
2. serial, parallel, and resumed-from-checkpoint audits are record-for-
   record identical;
3. the null profile is byte-identical to the fault-free pipeline.
"""

import os

import numpy as np
import pytest

from repro.core import (
    PAPER_ETA,
    LandmarkHealthTracker,
    NoLandmarksAvailable,
    RetryPolicy,
    TwoPhaseDriver,
    TwoPhaseSelector,
    Verdict,
)
from repro.core.cbgpp import CBGPlusPlus
from repro.experiments import AuditCheckpoint, CheckpointMismatch, run_audit
from repro.netsim import MeasurementFailed

N_SERVERS = 20


def record_signature(result):
    """Everything that must be bit-identical across equivalent runs."""
    return [(record.server.host.host_id,
             record.region.mask.tobytes(),
             record.assessment.verdict,
             record.assessment.continent_verdict,
             record.assessment.resolved_country,
             tuple((obs.landmark_name, obs.lat, obs.lon, obs.one_way_ms)
                   for obs in record.observations),
             tuple(record.landmark_names),
             record.degraded,
             tuple(record.failure_notes))
            for record in result.records]


class TestNullProfileIdentity:
    def test_none_profile_byte_identical_to_fault_free(self, scenario):
        plain = run_audit(scenario, max_servers=N_SERVERS, seed=0)
        null = run_audit(scenario, max_servers=N_SERVERS, seed=0,
                         fault_profile="none")
        assert record_signature(null) == record_signature(plain)
        assert null.eta == plain.eta
        assert null.fault_profile is None


class TestFaultReproducibility:
    def test_lossy_wan_bit_reproducible(self, scenario):
        first = run_audit(scenario, max_servers=N_SERVERS, seed=0,
                          fault_profile="lossy-wan")
        second = run_audit(scenario, max_servers=N_SERVERS, seed=0,
                           fault_profile="lossy-wan")
        assert record_signature(first) == record_signature(second)
        assert first.fault_profile == "lossy-wan"

    def test_faults_actually_perturb(self, scenario):
        plain = run_audit(scenario, max_servers=N_SERVERS, seed=0)
        lossy = run_audit(scenario, max_servers=N_SERVERS, seed=0,
                          fault_profile="lossy-wan")
        assert record_signature(lossy) != record_signature(plain)

    def test_different_seed_different_faults(self, scenario):
        a = run_audit(scenario, max_servers=N_SERVERS, seed=0,
                      fault_profile="lossy-wan")
        b = run_audit(scenario, max_servers=N_SERVERS, seed=1,
                      fault_profile="lossy-wan")
        assert record_signature(a) != record_signature(b)


class TestParallelAndResumeIdentity:
    def test_parallel_identical_under_faults(self, scenario):
        serial = run_audit(scenario, max_servers=N_SERVERS, seed=0,
                           fault_profile="lossy-wan")
        parallel = run_audit(scenario, max_servers=N_SERVERS, seed=0,
                             fault_profile="lossy-wan", workers=3)
        assert record_signature(parallel) == record_signature(serial)

    def test_killed_audit_resumes_bit_identically(self, scenario, tmp_path):
        """Simulate a mid-audit kill: truncate the journal to a few
        completed servers plus a torn partial line, then resume with a
        different worker count."""
        path = str(tmp_path / "audit.ckpt")
        uninterrupted = run_audit(scenario, max_servers=N_SERVERS, seed=0,
                                  fault_profile="lossy-wan",
                                  checkpoint_path=path, workers=2)
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        assert len(lines) == 1 + N_SERVERS
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines[:7]) + "\n")
            handle.write(lines[7][:33])  # torn mid-write
        resumed = run_audit(scenario, max_servers=N_SERVERS, seed=0,
                            fault_profile="lossy-wan",
                            checkpoint_path=path, resume=True, workers=4)
        assert record_signature(resumed) == record_signature(uninterrupted)
        # The resumed run healed the journal back to complete.
        with open(path, "r", encoding="utf-8") as handle:
            assert len(handle.read().splitlines()) == 1 + N_SERVERS

    def test_resume_serial_matches_too(self, scenario, tmp_path):
        path = str(tmp_path / "audit.ckpt")
        serial = run_audit(scenario, max_servers=12, seed=0,
                           fault_profile="lossy-wan")
        run_audit(scenario, max_servers=12, seed=0,
                  fault_profile="lossy-wan", checkpoint_path=path)
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines[:5]) + "\n")
        resumed = run_audit(scenario, max_servers=12, seed=0,
                            fault_profile="lossy-wan",
                            checkpoint_path=path, resume=True)
        assert record_signature(resumed) == record_signature(serial)

    def test_mismatched_checkpoint_rejected(self, scenario, tmp_path):
        path = str(tmp_path / "audit.ckpt")
        run_audit(scenario, max_servers=8, seed=0,
                  fault_profile="lossy-wan", checkpoint_path=path)
        with pytest.raises(CheckpointMismatch):
            run_audit(scenario, max_servers=8, seed=1,
                      fault_profile="lossy-wan",
                      checkpoint_path=path, resume=True)
        with pytest.raises(CheckpointMismatch):
            run_audit(scenario, max_servers=8, seed=0,
                      checkpoint_path=path, resume=True)


class TestLossyWanAcceptance:
    def test_lossy_audit_completes_and_stays_sound(self, scenario):
        """The acceptance bar: a lossy-wan audit finishes with a record
        for every server and keeps the paper's soundness property."""
        result = run_audit(scenario, max_servers=60, seed=0,
                           fault_profile="lossy-wan")
        assert len(result.records) == 60
        for record in result.records:
            assert record.assessment is not None
            assert record.region is not None
        accuracy = result.ground_truth_accuracy()
        assert accuracy["false_precision"] >= 0.9

    def test_blackout_degrades_every_record(self, scenario):
        result = run_audit(scenario, max_servers=8, seed=0,
                           fault_profile="blackout")
        assert len(result.records) == 8
        for record in result.records:
            assert record.degraded
            assert record.assessment.verdict is Verdict.UNLOCATABLE
            assert record.failure_notes
        assert result.eta.degraded
        assert result.eta.eta == PAPER_ETA


class TestResilienceComponents:
    def test_retry_policy_backoff_grows(self):
        policy = RetryPolicy(backoff_base_ms=100.0, backoff_factor=2.0,
                             backoff_jitter=0.0)
        rng = np.random.default_rng(0)
        delays = [policy.backoff_ms(k, rng) for k in (1, 2, 3)]
        assert delays == [100.0, 200.0, 400.0]

    def test_retry_policy_jitter_bounded(self):
        policy = RetryPolicy(backoff_base_ms=100.0, backoff_factor=1.0,
                             backoff_jitter=0.25)
        rng = np.random.default_rng(0)
        for attempt in range(1, 20):
            delay = policy.backoff_ms(attempt, rng)
            assert 75.0 <= delay <= 125.0

    def test_health_tracker_quarantines(self):
        tracker = LandmarkHealthTracker(loss_threshold=0.5, min_probes=6)
        tracker.record("lm", probes=3, losses=3)
        assert not tracker.quarantined("lm")  # below min_probes
        tracker.record("lm", probes=3, losses=3)
        assert tracker.quarantined("lm")
        assert "lm" in tracker.quarantined_names

    def test_health_tracker_spares_healthy(self):
        tracker = LandmarkHealthTracker(loss_threshold=0.5, min_probes=6)
        tracker.record("lm", probes=10, losses=2)
        assert not tracker.quarantined("lm")

    def test_phase2_raises_no_landmarks(self, scenario):
        selector = TwoPhaseSelector(scenario.atlas, seed=0)
        with pytest.raises(NoLandmarksAvailable) as excinfo:
            selector.phase2_landmarks("AN")  # no Antarctic landmarks
        assert excinfo.value.continent == "AN"
        assert "AN" in str(excinfo.value)

    def test_driver_degrades_instead_of_raising(self, scenario):
        """A target whose every measurement is lost gets a degraded empty
        prediction, not an exception."""
        selector = TwoPhaseSelector(scenario.atlas, seed=0)
        algorithm = CBGPlusPlus(scenario.calibrations, scenario.worldmap)
        driver = TwoPhaseDriver(selector, algorithm)
        result = driver.locate(lambda landmarks: [],
                               np.random.default_rng(0))
        assert result.degraded
        assert result.prediction.failed
        assert result.deduced_continent == "unknown"
        assert any("unlocatable" in note for note in result.notes)

    def test_tunnel_failure_is_typed(self, scenario):
        """A proxy whose tunnel never answers raises MeasurementFailed
        (which run_audit converts to a degraded record)."""
        from repro.core import ProxyMeasurer
        from repro.netsim import FAULT_PROFILES, FaultInjector

        server = scenario.all_servers()[0]
        injector = FaultInjector(FAULT_PROFILES["blackout"], seed=0)
        measurer = ProxyMeasurer(scenario.network, scenario.client, server,
                                 seed=server.host.host_id)
        with scenario.network.faults_installed(injector):
            with scenario.network.measurement_epoch_for(server.host):
                with pytest.raises(MeasurementFailed, match="unreachable"):
                    measurer.client_leg_ms(np.random.default_rng(0))
