"""Tests for the adversarial proxy model."""

import numpy as np
import pytest

from repro.netsim import AdversarialTunnel, ProxiedClient

TOKYO = (35.68, 139.69)


@pytest.fixture(scope="module")
def victim(scenario):
    return next(s for s in scenario.all_servers()
                if scenario.true_country_of(s) == "DE")


class TestAdversarialTunnel:
    def test_strategy_validated(self, scenario, victim):
        with pytest.raises(ValueError):
            AdversarialTunnel(scenario.network, scenario.client, victim,
                              pretend_location=TOKYO, strategy="bribe")

    def test_location_validated(self, scenario, victim):
        with pytest.raises(ValueError):
            AdversarialTunnel(scenario.network, scenario.client, victim,
                              pretend_location=(95.0, 0.0))

    def test_add_delay_never_faster_than_honest_floor(self, scenario, victim):
        """Delay can only be added: shaped RTTs >= real network floor."""
        honest_floor = {}
        tunnel = AdversarialTunnel(scenario.network, scenario.client, victim,
                                   pretend_location=TOKYO,
                                   strategy="add-delay", seed=1)
        rng = np.random.default_rng(1)
        for landmark in scenario.atlas.anchors[:20]:
            floor = (scenario.network.base_rtt_ms(scenario.client, victim.host)
                     + scenario.network.base_rtt_ms(victim.host, landmark.host))
            shaped = min(tunnel.rtt_through_proxy_ms(landmark, rng)
                         for _ in range(5))
            assert shaped >= floor - 1e-9

    def test_add_delay_inflates_far_from_pretend_location(self, scenario,
                                                          victim):
        """Landmarks far from Tokyo see delays far above the honest path."""
        honest = ProxiedClient(scenario.network, scenario.client, victim,
                               seed=2)
        tunnel = AdversarialTunnel(scenario.network, scenario.client, victim,
                                   pretend_location=TOKYO,
                                   strategy="add-delay", seed=2)
        rng = np.random.default_rng(2)
        # A European landmark: close to the (German) truth, far from Tokyo.
        landmark = next(lm for lm in scenario.atlas.anchors
                        if lm.name.startswith("anchor-EU"))
        honest_rtt = min(honest.rtt_through_proxy_ms(landmark, rng)
                         for _ in range(5))
        shaped_rtt = min(tunnel.rtt_through_proxy_ms(landmark, rng)
                         for _ in range(5))
        assert shaped_rtt > honest_rtt + 50.0

    def test_forge_can_beat_physics(self, scenario, victim):
        """Forged SYN-ACKs make an Asian landmark look close to a German
        proxy — faster than the real path allows."""
        from repro.geodesy import haversine_km
        tunnel = AdversarialTunnel(scenario.network, scenario.client, victim,
                                   pretend_location=TOKYO,
                                   strategy="forge-synack", seed=3)
        rng = np.random.default_rng(3)
        # The landmark nearest the pretended location: its forged RTT is
        # tiny, while the real path runs all the way to Germany and back.
        landmark = min(scenario.atlas.anchors,
                       key=lambda lm: haversine_km(*TOKYO, lm.lat, lm.lon))
        real_floor = (scenario.network.base_rtt_ms(scenario.client, victim.host)
                      + scenario.network.base_rtt_ms(victim.host, landmark.host))
        shaped = min(tunnel.rtt_through_proxy_ms(landmark, rng)
                     for _ in range(5))
        assert shaped < real_floor

    def test_self_ping_unaffected(self, scenario, victim):
        honest = ProxiedClient(scenario.network, scenario.client, victim,
                               seed=4)
        tunnel = AdversarialTunnel(scenario.network, scenario.client, victim,
                                   pretend_location=TOKYO,
                                   strategy="forge-synack", seed=4)
        a = min(honest.self_ping_through_proxy_ms(np.random.default_rng(9))
                for _ in range(5))
        b = min(tunnel.self_ping_through_proxy_ms(np.random.default_rng(9))
                for _ in range(5))
        assert a == pytest.approx(b)
