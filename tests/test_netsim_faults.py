"""Tests for the seeded fault-injection layer."""

import math

import numpy as np
import pytest

from repro.netsim import (
    FAULT_PROFILES,
    FaultInjector,
    FaultProfile,
    MeasurementFailed,
    resolve_fault_profile,
)


class TestFaultProfiles:
    def test_registry_names_match(self):
        for name, profile in FAULT_PROFILES.items():
            assert profile.name == name

    def test_none_profile_is_null(self):
        assert FAULT_PROFILES["none"].is_null
        assert not FAULT_PROFILES["lossy-wan"].is_null
        assert not FAULT_PROFILES["blackout"].is_null

    def test_resolve_accepts_name_profile_and_none(self):
        assert resolve_fault_profile(None) is None
        assert resolve_fault_profile("lossy-wan") is FAULT_PROFILES["lossy-wan"]
        profile = FaultProfile(name="custom", loss_rate=0.2)
        assert resolve_fault_profile(profile) is profile

    def test_resolve_normalises_null_to_none(self):
        assert resolve_fault_profile("none") is None
        assert resolve_fault_profile(FaultProfile(name="quiet")) is None

    def test_resolve_rejects_unknown(self):
        with pytest.raises(KeyError, match="unknown fault profile"):
            resolve_fault_profile("lossy-lan")
        with pytest.raises(TypeError):
            resolve_fault_profile(0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultProfile(name="bad", loss_rate=1.5)
        with pytest.raises(ValueError):
            FaultProfile(name="bad", timeout_ms=0.0)
        with pytest.raises(ValueError):
            FaultProfile(name="bad", outage_fraction=1.0)


class TestFaultInjectorDeterminism:
    def test_outage_schedule_deterministic_and_order_free(self):
        profile = FAULT_PROFILES["flaky-vpn"]
        hosts = list(range(100, 160))
        a = FaultInjector(profile, seed=7)
        a.schedule_outages(hosts)
        b = FaultInjector(profile, seed=7)
        b.schedule_outages(list(reversed(hosts)))
        assert a.outage_schedule == b.outage_schedule
        assert len(a.outage_schedule) == profile.n_landmark_outages
        for start, end in a.outage_schedule.values():
            assert 0.0 <= start < end <= 1.0
            assert end - start == pytest.approx(profile.outage_fraction)

    def test_outage_schedule_changes_with_seed(self):
        profile = FAULT_PROFILES["flaky-vpn"]
        hosts = list(range(100, 160))
        a = FaultInjector(profile, seed=7)
        a.schedule_outages(hosts)
        b = FaultInjector(profile, seed=8)
        b.schedule_outages(hosts)
        assert a.outage_schedule != b.outage_schedule

    def test_campaign_time_pure(self):
        injector = FaultInjector(FAULT_PROFILES["lossy-wan"], seed=3)
        times = [injector.campaign_time(h) for h in range(50)]
        assert times == [injector.campaign_time(h) for h in range(50)]
        assert all(0.0 <= t < 1.0 for t in times)
        assert len(set(times)) == 50

    def test_tunnel_drop_point_pure_and_rate_bound(self):
        injector = FaultInjector(FAULT_PROFILES["flaky-vpn"], seed=3)
        points = [injector.tunnel_drop_point(h) for h in range(2000)]
        assert points == [injector.tunnel_drop_point(h) for h in range(2000)]
        dropped = [p for p in points if p is not None]
        assert all(0.1 <= p <= 0.9 for p in dropped)
        rate = len(dropped) / len(points)
        assert rate == pytest.approx(
            FAULT_PROFILES["flaky-vpn"].tunnel_drop_rate, abs=0.03)

    def test_no_drops_when_rate_zero(self):
        injector = FaultInjector(FAULT_PROFILES["blackout"], seed=3)
        assert all(injector.tunnel_drop_point(h) is None for h in range(50))


class TestAfflict:
    def test_down_burst_entirely_lost(self):
        injector = FaultInjector(FAULT_PROFILES["lossy-wan"], seed=0)
        samples = np.full(5, 30.0)
        out = injector.afflict_burst(samples, True, np.random.default_rng(0))
        assert np.isnan(out).all()

    def test_loss_rate_observed(self):
        injector = FaultInjector(FaultProfile(name="t", loss_rate=0.25), seed=0)
        samples = np.full(20000, 30.0)
        out = injector.afflict_burst(samples, False, np.random.default_rng(0))
        assert np.isnan(out).mean() == pytest.approx(0.25, abs=0.02)

    def test_timeout_converts_slow_probes(self):
        injector = FaultInjector(
            FaultProfile(name="t", timeout_ms=100.0), seed=0)
        samples = np.array([50.0, 99.9, 100.1, 500.0])
        out = injector.afflict_burst(samples, False, np.random.default_rng(0))
        assert np.isfinite(out[:2]).all()
        assert np.isnan(out[2:]).all()

    def test_matrix_down_rows_lost(self):
        injector = FaultInjector(FAULT_PROFILES["lossy-wan"], seed=0)
        samples = np.full((4, 3), 30.0)
        down = np.array([False, True, False, True])
        out = injector.afflict_matrix(samples, down,
                                      np.random.default_rng(0))
        assert np.isnan(out[1]).all() and np.isnan(out[3]).all()

    def test_congestion_inflates_whole_rows(self):
        injector = FaultInjector(
            FaultProfile(name="t", congestion_rate=1.0,
                         congestion_extra_ms=40.0), seed=0)
        samples = np.full((6, 3), 30.0)
        out = injector.afflict_matrix(samples, np.zeros(6, dtype=bool),
                                      np.random.default_rng(0))
        assert (out > 30.0).all()
        # Every probe of one burst shares the same episode inflation.
        assert all(len(set(np.round(row, 9))) == 1 for row in out)


class TestNetworkIntegration:
    def test_no_faults_outside_epoch(self, scenario):
        """An installed injector must not touch samples taken outside a
        measurement epoch (calibration and diagnostic paths)."""
        injector = FaultInjector(FAULT_PROFILES["blackout"], seed=0)
        network = scenario.network
        a, b = scenario.client, scenario.atlas.anchors[0].host
        clean = network.rtt_samples_ms(a, b, 8, np.random.default_rng(5))
        with network.faults_installed(injector):
            outside = network.rtt_samples_ms(a, b, 8, np.random.default_rng(5))
        assert np.array_equal(clean, outside)

    def test_min_rtt_raises_when_all_lost(self, scenario):
        injector = FaultInjector(FAULT_PROFILES["blackout"], seed=0)
        network = scenario.network
        a, b = scenario.client, scenario.atlas.anchors[0].host
        with network.faults_installed(injector):
            with network.measurement_epoch_for(b):
                with pytest.raises(MeasurementFailed, match="lost or timed"):
                    network.min_rtt_ms(a, b, n=4,
                                       rng=np.random.default_rng(5))

    def test_mesh_archive_immune_to_faults(self, scenario):
        """The archived mesh database must yield the pristine value even
        when lazily computed inside an afflicted measurement epoch."""
        atlas = scenario.atlas
        lm_a, lm_b = atlas.anchors[0], atlas.anchors[1]
        key = (min(lm_a.host.host_id, lm_b.host.host_id),
               max(lm_a.host.host_id, lm_b.host.host_id))
        pristine = atlas.min_one_way_ms(lm_a, lm_b)
        injector = FaultInjector(FAULT_PROFILES["blackout"], seed=0)
        atlas._mesh_cache.pop(key)
        with scenario.network.faults_installed(injector):
            with scenario.network.measurement_epoch_for(lm_a.host):
                afflicted_epoch = atlas.min_one_way_ms(lm_a, lm_b)
        assert afflicted_epoch == pristine

    def test_zero_extra_draws_without_injector(self, scenario):
        """The fault layer consumes no RNG draws when inactive, so the
        healthy measurement stream is byte-identical to the seed
        pipeline's."""
        network = scenario.network
        a, b = scenario.client, scenario.atlas.anchors[0].host
        rng1 = np.random.default_rng(9)
        samples1 = network.rtt_samples_ms(a, b, 6, rng1)
        rng2 = np.random.default_rng(9)
        with network.faults_installed(None):
            samples2 = network.rtt_samples_ms(a, b, 6, rng2)
        assert np.array_equal(samples1, samples2)
        # Both generators sit at the same stream position afterwards.
        assert rng1.random() == rng2.random()

    def test_epoch_restores_time(self, scenario):
        network = scenario.network
        injector = FaultInjector(FAULT_PROFILES["lossy-wan"], seed=0)
        with network.faults_installed(injector):
            assert network.active_faults() is None
            with network.measurement_epoch_for(scenario.client):
                assert network.active_faults() is injector
                with network.fault_free():
                    assert network.active_faults() is None
                assert network.active_faults() is injector
            assert network.active_faults() is None
        assert network.faults is None
