"""Tests for the multilateration engines."""

import numpy as np
import pytest

from repro.core import (
    DiskConstraint,
    GaussianRing,
    RingConstraint,
    bayesian_region,
    intersect_disks,
    intersect_rings,
    largest_consistent_subset,
    mode_region,
)
from repro.geo import Grid


@pytest.fixture(scope="module")
def grid():
    return Grid(resolution_deg=4.0)


def disk(grid, lat, lon, radius):
    return grid.disk_mask(lat, lon, radius)


class TestIntersectDisks:
    def test_figure1_multilateration(self):
        """The paper's Figure 1: Bourges+Cromer+Randers triangulate Belgium.

        Needs a 2-degree grid — the Belgium-sized intersection falls
        between 4-degree cell centres.
        """
        grid = Grid(resolution_deg=2.0)
        constraints = [
            DiskConstraint("bourges", 47.08, 2.40, 500.0),
            DiskConstraint("cromer", 52.93, 1.30, 500.0),
            DiskConstraint("randers", 56.46, 10.04, 800.0),
        ]
        region = intersect_disks(grid, constraints)
        assert not region.is_empty
        # Brussels is in the intersection; Madrid and Berlin are not.
        assert region.contains(50.85, 4.35)
        assert not region.contains(40.42, -3.70)
        assert not region.contains(52.52, 13.40)

    def test_disjoint_disks_give_empty(self, grid):
        constraints = [
            DiskConstraint("a", 0.0, 0.0, 300.0),
            DiskConstraint("b", 0.0, 90.0, 300.0),
        ]
        assert intersect_disks(grid, constraints).is_empty

    def test_requires_disks(self, grid):
        with pytest.raises(ValueError):
            intersect_disks(grid, [])


class TestIntersectRings:
    def test_annulus_intersection(self, grid):
        constraints = [
            RingConstraint("a", 0.0, 0.0, 500.0, 3000.0),
            RingConstraint("b", 0.0, 20.0, 500.0, 3000.0),
        ]
        region = intersect_rings(grid, constraints)
        assert not region.is_empty
        # The shared center band around lon 10 should be covered.
        assert region.contains(0.0, 10.0)

    def test_requires_rings(self, grid):
        with pytest.raises(ValueError):
            intersect_rings(grid, [])


class TestModeRegion:
    def test_equals_intersection_when_consistent(self, grid):
        masks = [disk(grid, 0, 0, 3000), disk(grid, 0, 10, 3000)]
        region = mode_region(grid, masks)
        expected = masks[0] & masks[1]
        assert np.array_equal(region.mask, expected)

    def test_majority_wins_when_inconsistent(self, grid):
        masks = [disk(grid, 0, 0, 1500), disk(grid, 0, 5, 1500),
                 disk(grid, 0, 90, 500)]  # the third is off on its own
        region = mode_region(grid, masks)
        assert region.contains(0.0, 2.5)
        assert not region.contains(0.0, 90.0)

    def test_base_mask_restricts_votes(self, grid):
        masks = [disk(grid, 0, 0, 2000)]
        base = grid.latitude_band_mask(-90.0, -50.0)  # far away from the disk
        region = mode_region(grid, masks, base_mask=base)
        assert region.is_empty

    def test_requires_masks(self, grid):
        with pytest.raises(ValueError):
            mode_region(grid, [])


class TestLargestConsistentSubset:
    def test_all_consistent_fast_path(self, grid):
        masks = [disk(grid, 0, 0, 4000), disk(grid, 0, 10, 4000),
                 disk(grid, 5, 5, 4000)]
        chosen, mask = largest_consistent_subset(masks)
        assert chosen == [0, 1, 2]
        assert mask.any()

    def test_single_outlier_dropped(self, grid):
        masks = [disk(grid, 0, 0, 2000), disk(grid, 0, 8, 2000),
                 disk(grid, 4, 4, 2000), disk(grid, 0, 170, 800)]
        chosen, mask = largest_consistent_subset(masks)
        assert chosen == [0, 1, 2]
        assert mask.any()

    def test_two_rival_cliques_larger_wins(self, grid):
        cluster_a = [disk(grid, 0, 0, 1500), disk(grid, 0, 5, 1500),
                     disk(grid, 3, 2, 1500)]
        cluster_b = [disk(grid, 0, 120, 1500), disk(grid, 0, 125, 1500)]
        chosen, mask = largest_consistent_subset(cluster_a + cluster_b)
        assert chosen == [0, 1, 2]

    def test_mutually_exclusive_keeps_one(self, grid):
        masks = [disk(grid, 0, 0, 400), disk(grid, 0, 60, 400),
                 disk(grid, 0, 120, 400)]
        chosen, mask = largest_consistent_subset(masks)
        assert len(chosen) == 1
        assert mask.any()

    def test_base_mask_enforced(self, grid):
        masks = [disk(grid, 0, 0, 3000), disk(grid, 2, 2, 3000)]
        base = grid.disk_mask(0.0, 0.0, 1.0)  # a single cell
        chosen, mask = largest_consistent_subset(masks, base_mask=base)
        assert not (mask & ~base).any()

    def test_requires_masks(self):
        with pytest.raises(ValueError):
            largest_consistent_subset([])

    def test_subset_result_is_actual_intersection(self, grid):
        masks = [disk(grid, 0, 0, 2000), disk(grid, 0, 8, 2000),
                 disk(grid, 0, 170, 800)]
        chosen, mask = largest_consistent_subset(masks)
        expected = np.ones_like(mask)
        for index in chosen:
            expected &= masks[index]
        assert np.array_equal(mask, expected)


class TestBayesianRegion:
    def test_mass_parameter_validated(self, grid):
        rings = [GaussianRing("a", 0.0, 0.0, 1000.0, 200.0)]
        with pytest.raises(ValueError):
            bayesian_region(grid, rings, mass=0.0)
        with pytest.raises(ValueError):
            bayesian_region(grid, [], mass=0.9)

    def test_region_concentrates_on_ring(self, grid):
        rings = [GaussianRing("a", 0.0, 0.0, 2000.0, 150.0)]
        region = bayesian_region(grid, rings, mass=0.9)
        assert not region.is_empty
        # Cells near the ring radius are included; the center is not.
        assert not region.contains(0.0, 0.0)

    def test_two_rings_pick_crossings(self, grid):
        rings = [GaussianRing("a", 0.0, 0.0, 2000.0, 150.0),
                 GaussianRing("b", 0.0, 30.0, 2000.0, 150.0)]
        region = bayesian_region(grid, rings, mass=0.8)
        assert not region.is_empty
        centroid = region.centroid()
        # Crossings are symmetric about lon 15.
        assert centroid[1] == pytest.approx(15.0, abs=6.0)

    def test_higher_mass_bigger_region(self, grid):
        rings = [GaussianRing("a", 10.0, 10.0, 1500.0, 300.0)]
        small = bayesian_region(grid, rings, mass=0.5)
        large = bayesian_region(grid, rings, mass=0.99)
        assert large.n_cells >= small.n_cells

    def test_prior_mask_respected(self, grid):
        rings = [GaussianRing("a", 0.0, 0.0, 2000.0, 200.0)]
        prior = grid.latitude_band_mask(0.0, 90.0)  # northern hemisphere only
        region = bayesian_region(grid, rings, mass=0.9, prior_mask=prior)
        assert not (region.mask & ~prior).any()

    def test_all_masked_prior_gives_empty(self, grid):
        rings = [GaussianRing("a", 0.0, 0.0, 2000.0, 200.0)]
        prior = np.zeros(grid.n_cells, dtype=bool)
        assert bayesian_region(grid, rings, mass=0.9, prior_mask=prior).is_empty
