"""Tests for co-occurrence and confusion matrices."""

import pytest

from repro.stats import ConfusionMatrix, CooccurrenceMatrix, LabelMatrix


class TestLabelMatrix:
    def test_increment_and_get(self):
        matrix = LabelMatrix(["a", "b"])
        matrix.increment("a", "b", 3)
        assert matrix.get("a", "b") == 3
        assert matrix.get("b", "a") == 0

    def test_unknown_label_raises(self):
        matrix = LabelMatrix(["a"])
        with pytest.raises(KeyError):
            matrix.get("a", "zzz")

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError):
            LabelMatrix(["a", "a"])

    def test_row_and_total(self):
        matrix = LabelMatrix(["a", "b", "c"])
        matrix.increment("a", "b")
        matrix.increment("a", "c", 2)
        assert matrix.row("a") == {"a": 0, "b": 1, "c": 2}
        assert matrix.total() == 3

    def test_nonzero_pairs_sorted(self):
        matrix = LabelMatrix(["a", "b"])
        matrix.increment("a", "b", 1)
        matrix.increment("b", "a", 5)
        pairs = matrix.nonzero_pairs()
        assert pairs[0] == ("b", "a", 5)


class TestCooccurrence:
    def test_single_label_only_diagonal(self):
        matrix = CooccurrenceMatrix(["x", "y"])
        matrix.add_set(["x"])
        assert matrix.get("x", "x") == 1
        assert matrix.get("x", "y") == 0

    def test_pair_symmetric(self):
        matrix = CooccurrenceMatrix(["x", "y", "z"])
        matrix.add_set(["x", "y"])
        assert matrix.get("x", "y") == 1
        assert matrix.get("y", "x") == 1
        assert matrix.get("x", "x") == 1
        assert matrix.get("y", "y") == 1

    def test_duplicates_in_set_collapse(self):
        matrix = CooccurrenceMatrix(["x", "y"])
        matrix.add_set(["x", "x", "y"])
        assert matrix.get("x", "x") == 1
        assert matrix.get("x", "y") == 1

    def test_triple_counts_all_pairs(self):
        matrix = CooccurrenceMatrix(["a", "b", "c"])
        matrix.add_set(["a", "b", "c"])
        for one in "abc":
            for two in "abc":
                assert matrix.get(one, two) == 1

    def test_confusability_conditional(self):
        matrix = CooccurrenceMatrix(["a", "b"])
        matrix.add_set(["a", "b"])
        matrix.add_set(["a"])
        assert matrix.confusability("a", "b") == pytest.approx(0.5)
        assert matrix.confusability("b", "a") == pytest.approx(1.0)

    def test_confusability_of_absent_label(self):
        matrix = CooccurrenceMatrix(["a", "b"])
        assert matrix.confusability("a", "b") == 0.0


class TestConfusionMatrix:
    def test_accuracy(self):
        matrix = ConfusionMatrix(["x", "y"])
        matrix.add("x", "x")
        matrix.add("x", "y")
        matrix.add("y", "y")
        assert matrix.accuracy() == pytest.approx(2 / 3)

    def test_precision_recall(self):
        matrix = ConfusionMatrix(["x", "y"])
        matrix.add("x", "x")
        matrix.add("x", "x")
        matrix.add("x", "y")
        matrix.add("y", "x")
        assert matrix.recall("x") == pytest.approx(2 / 3)
        assert matrix.precision("x") == pytest.approx(2 / 3)

    def test_empty_label_metrics_zero(self):
        matrix = ConfusionMatrix(["x", "y"])
        matrix.add("x", "x")
        assert matrix.recall("y") == 0.0
        assert matrix.precision("y") == 0.0

    def test_empty_accuracy_raises(self):
        with pytest.raises(ValueError):
            ConfusionMatrix(["x"]).accuracy()
