"""Tests for constellation churn (paper section 4)."""

import numpy as np
import pytest

from repro.core import CBGPlusPlus, CalibrationSet, RttObservation
from repro.experiments.scenario import (
    SMALL_ANCHOR_QUOTAS,
    SMALL_CROWD_QUOTAS,
    SMALL_PROBE_QUOTAS,
    build_scenario,
)
from repro.netsim import CliTool


@pytest.fixture(scope="module")
def churn_scenario():
    # A private scenario: churn mutates the constellation, so the shared
    # session fixture must not be touched.
    return build_scenario(seed=77, proxy_scale=0.1,
                          anchor_quotas=SMALL_ANCHOR_QUOTAS,
                          probe_quotas=SMALL_PROBE_QUOTAS,
                          crowd_quotas=SMALL_CROWD_QUOTAS)


class TestChurn:
    def test_counts_change(self, churn_scenario):
        atlas = churn_scenario.atlas
        before = len(atlas.anchors)
        atlas.apply_churn(n_decommission=4, n_add=10,
                          rng=np.random.default_rng(0))
        assert len(atlas.anchors) == before - 4 + 10
        assert len(atlas.decommissioned) == 4

    def test_decommissioned_not_selectable(self, churn_scenario):
        atlas = churn_scenario.atlas
        gone = {lm.name for lm in atlas.decommissioned}
        assert gone
        current = {lm.name for lm in atlas.all_landmarks()}
        assert not (gone & current)

    def test_new_anchors_usable_as_landmarks(self, churn_scenario):
        atlas = churn_scenario.atlas
        newcomers = [lm for lm in atlas.anchors
                     if lm.name.startswith("anchor-new-")]
        assert newcomers
        # A fresh calibration set picks them up and the pipeline works.
        calibrations = CalibrationSet(atlas)
        model = calibrations.cbg(newcomers[0].name)
        assert model.speed_km_per_ms > 0

    def test_pipeline_survives_churn(self, churn_scenario):
        scenario = churn_scenario
        calibrations = CalibrationSet(scenario.atlas)
        algorithm = CBGPlusPlus(calibrations, scenario.worldmap)
        target = scenario.factory.create(48.2, 16.4, name="churn-target")
        tool = CliTool(scenario.network, seed=5)
        rng = np.random.default_rng(5)
        observations = [
            RttObservation(lm.name, lm.lat, lm.lon,
                           tool.measure(target, lm, rng).rtt_ms / 2)
            for lm in scenario.atlas.anchors]
        prediction = algorithm.predict(observations)
        assert not prediction.failed
        assert prediction.miss_distance_km(48.2, 16.4) < 500.0

    def test_cannot_gut_the_constellation(self, churn_scenario):
        with pytest.raises(ValueError):
            churn_scenario.atlas.apply_churn(
                n_decommission=len(churn_scenario.atlas.anchors))

    def test_mesh_archive_retains_decommissioned(self, churn_scenario):
        """Archived pings of a decommissioned anchor stay queryable, as
        RIPE's public archive does."""
        atlas = churn_scenario.atlas
        gone = atlas.decommissioned[0]
        survivor = atlas.anchors[0]
        delay = atlas.min_one_way_ms(gone, survivor)
        assert delay > 0
