"""Tests for the CSR-backed batched shortest-path engine.

The engine's contract is strict: every routed delay it returns must be
bit-identical to the per-source networkx oracle it replaces, whatever
mix of scalar, batched, warmed, or memmapped lookups produced it.
"""

import numpy as np
import pytest

from repro.netsim import HostFactory, Network, Unreachable, build_cities, build_topology
from repro.netsim.pathengine import CACHE_ENV, ENGINE_ENV, HAVE_SCIPY, PathEngine

pytestmark = pytest.mark.skipif(not HAVE_SCIPY, reason="engine needs scipy")


@pytest.fixture(scope="module")
def topology():
    return build_topology(build_cities(), seed=0)


@pytest.fixture(scope="module")
def engines(topology):
    """(csr network, networkx network) over one shared topology."""
    return (Network(topology, seed=0, path_engine="csr"),
            Network(topology, seed=0, path_engine="networkx"))


@pytest.fixture(scope="module")
def routers(topology):
    rng = np.random.default_rng(5)
    nodes = sorted(topology.graph.nodes)
    return [nodes[i] for i in rng.choice(len(nodes), size=60, replace=False)]


class TestEngineSelection:
    def test_modes(self, topology):
        assert Network(topology, seed=0,
                       path_engine="csr").path_engine_mode == "csr"
        fallback = Network(topology, seed=0, path_engine="networkx")
        assert fallback.path_engine_mode == "networkx"
        assert fallback._engine is None

    def test_env_var_selects_fallback(self, topology, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "networkx")
        assert Network(topology, seed=0).path_engine_mode == "networkx"

    def test_invalid_mode_rejected(self, topology):
        with pytest.raises(ValueError):
            Network(topology, seed=0, path_engine="quantum")


class TestBitIdentity:
    def test_scalar_paths_match_oracle(self, engines, routers):
        csr, oracle = engines
        for a in routers[:12]:
            for b in routers[:12]:
                assert (csr.path_one_way_ms(a, b)
                        == oracle.path_one_way_ms(a, b))

    def test_pair_batch_matches_scalar(self, engines, routers):
        csr, oracle = engines
        rng = np.random.default_rng(11)
        a_list = [routers[i] for i in rng.integers(0, len(routers), 200)]
        b_list = [routers[i] for i in rng.integers(0, len(routers), 200)]
        batch = csr.path_pairs_ms(a_list, b_list)
        scalars = np.array([oracle.path_one_way_ms(a, b)
                            for a, b in zip(a_list, b_list)])
        assert np.array_equal(batch, scalars)

    def test_warmed_batch_matches_cold_batch(self, topology, routers):
        cold = Network(topology, seed=0, path_engine="csr")
        warm = Network(topology, seed=0, path_engine="csr")
        rng = np.random.default_rng(13)
        a_list = [routers[i] for i in rng.integers(0, len(routers), 150)]
        b_list = [routers[i] for i in rng.integers(0, len(routers), 150)]
        warm._engine.warm(routers)
        assert np.array_equal(warm.path_pairs_ms(a_list, b_list),
                              cold.path_pairs_ms(a_list, b_list))

    def test_direction_and_identity(self, engines, routers):
        csr, _ = engines
        a, b = routers[0], routers[1]
        assert csr.path_one_way_ms(a, b) == csr.path_one_way_ms(b, a)
        assert csr.path_one_way_ms(a, a) == 0.0
        assert csr.path_pairs_ms([a], [a])[0] == 0.0


class TestHostLevelQueries:
    @pytest.fixture(scope="class")
    def hosts(self, topology):
        factory = HostFactory(topology, seed=0)
        coords = [(52.52, 13.40), (35.68, 139.69), (50.11, 8.68),
                  (-33.87, 151.21), (40.71, -74.01), (1.35, 103.82)]
        return [factory.create(lat, lon) for lat, lon in coords]

    def test_base_rtt_pairs_matches_scalar(self, engines, hosts):
        csr, oracle = engines
        pairs_a = [hosts[i] for i in (0, 1, 2, 3, 4, 0, 5)]
        pairs_b = [hosts[i] for i in (1, 2, 3, 4, 5, 0, 2)]
        batch = csr.base_rtt_pairs(pairs_a, pairs_b)
        scalars = np.array([oracle.base_rtt_ms(a, b)
                            for a, b in zip(pairs_a, pairs_b)])
        assert np.array_equal(batch, scalars)

    def test_base_rtt_matrix_matches_scalar(self, engines, hosts):
        csr, oracle = engines
        matrix = csr.base_rtt_matrix(hosts[0], hosts)
        scalars = np.array([oracle.base_rtt_ms(hosts[0], other)
                            for other in hosts])
        assert np.array_equal(matrix, scalars)

    def test_rtt_samples_base_hook_draws_identically(self, engines, hosts):
        csr, _ = engines
        base = csr.base_rtt_ms(hosts[0], hosts[1])
        with_hook = csr.rtt_samples_ms(hosts[0], hosts[1], 8,
                                       np.random.default_rng(3), base=base)
        without = csr.rtt_samples_ms(hosts[0], hosts[1], 8,
                                     np.random.default_rng(3))
        assert np.array_equal(with_hook, without)


class TestVersioning:
    def test_structural_mutation_rebuilds(self):
        mutable = build_topology(build_cities(), seed=3)
        engine = PathEngine(mutable)
        before = engine.n_routers
        peer = sorted(mutable.graph.nodes)[0]
        engine.distances_from(peer)
        hosting = mutable.add_hosting_as("dc-test-engine", 0,
                                         np.random.default_rng(4))
        # The new router resolves without any manual invalidation, and
        # the rebuild dropped the stale row cache.
        assert np.isfinite(engine.path_ms((hosting.asn, 0), peer))
        assert engine.n_routers == before + 1

    def test_unknown_router_unreachable(self, engines, routers):
        csr, _ = engines
        with pytest.raises(Unreachable):
            csr.path_one_way_ms(routers[0], (99999999, 0))
        with pytest.raises(Unreachable):
            csr.path_pairs_ms([routers[0]], [(99999999, 0)])


class TestRowCache:
    def test_evicts_oldest_half(self, topology, routers):
        engine = PathEngine(topology, max_rows=16)
        for router in routers[:16]:
            engine.distances_from(router)
        assert engine.n_rows == 16
        engine.ensure_rows(routers[16:18])
        # 16 // 2 = 8 evicted, 2 inserted.
        assert engine.n_rows == 10
        survivors = set(engine._rows)
        assert set(routers[8:18]) == survivors
        # Evicted rows recompute to the same values.
        fresh = PathEngine(topology)
        assert np.array_equal(engine.distances_from(routers[0]),
                              fresh.distances_from(routers[0]))

    def test_network_sssp_cache_evicts_oldest_half(self, topology, routers):
        network = Network(topology, seed=0, path_engine="networkx")
        network._PATH_CACHE_SLOTS = 8
        for router in routers[:8]:
            network._distances_from(router)
        oldest, newest = routers[0], routers[7]
        network._distances_from(routers[8])     # triggers eviction
        assert oldest not in network._sssp_cache
        assert newest in network._sssp_cache
        assert routers[8] in network._sssp_cache
        assert len(network._sssp_cache) == 5


class TestMemmapCache:
    def test_hit_is_bit_identical_to_miss(self, topology, routers, tmp_path):
        cache_dir = str(tmp_path / "pathcache")
        first = PathEngine(topology, cache_dir=cache_dir)
        assert first.warm(routers) is False          # cold: computes + persists
        second = PathEngine(topology, cache_dir=cache_dir)
        assert second.warm(routers) is True          # warm: memmaps back
        for router in routers:
            assert np.array_equal(first.distances_from(router),
                                  second.distances_from(router))
        rng = np.random.default_rng(17)
        a_list = [routers[i] for i in rng.integers(0, len(routers), 100)]
        b_list = [routers[i] for i in rng.integers(0, len(routers), 100)]
        assert np.array_equal(first.path_pairs_ms(a_list, b_list),
                              second.path_pairs_ms(a_list, b_list))

    def test_cache_env_wires_directory(self, topology, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV, str(tmp_path))
        network = Network(topology, seed=0, path_engine="csr")
        assert network._engine.cache_dir == str(tmp_path)
        network.warm_paths([])          # no hosts: no-op, no crash
        monkeypatch.delenv(CACHE_ENV)
        assert PathEngine(topology).cache_dir is None

    def test_different_source_sets_use_different_files(self, topology,
                                                       routers, tmp_path):
        engine = PathEngine(topology, cache_dir=str(tmp_path))
        engine.warm(routers[:10])
        engine.warm(routers[:20])
        files = list(tmp_path.glob("pathengine-*.npy"))
        assert len(files) == 2

    def test_unwritable_cache_dir_does_not_fail(self, topology, routers):
        engine = PathEngine(topology,
                            cache_dir="/proc/definitely/not/writable")
        engine.warm(routers[:5])        # falls back to in-memory rows
        assert engine.n_rows >= 5
