"""Cross-engine identity: the packed Region engine vs the boolean reference.

``REPRO_REGION_ENGINE=bool`` restores the historical boolean
representation end to end.  Every algorithm front-end and the full audit
pipeline must produce *byte-identical* results under either engine — the
packed engine is an optimisation, never a semantic change.  Also covers
the partition-based credible-set selection against its argsort reference
and the ``cached_audit`` hit/miss counters.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CBG,
    CBGPlusPlus,
    OctantSpotterHybrid,
    QuasiOctant,
    Spotter,
)
from repro.core import multilateration as ml
from repro.experiments import cached_audit, run_audit
from repro.experiments import audit as audit_module
from repro.geo.region import REGION_ENGINE_ENV

ALL_ALGORITHMS = [CBG, CBGPlusPlus, QuasiOctant, Spotter, OctantSpotterHybrid]


@pytest.fixture(scope="module")
def observation_panel(scenario):
    """A warm 25-landmark panel from a Paris-area host."""
    from repro.core.proxy_adapter import ProxyMeasurer

    server = scenario.all_servers()[0]
    measurer = ProxyMeasurer(scenario.network, scenario.client, server,
                             seed=server.host.host_id)
    rng = np.random.default_rng(7)
    return measurer.observe(scenario.atlas.anchors[:25], rng)


class TestFrontEndIdentity:
    @pytest.mark.parametrize("algorithm_class", ALL_ALGORITHMS)
    def test_prediction_identical_under_both_engines(
            self, scenario, observation_panel, algorithm_class, monkeypatch):
        predictions = {}
        for engine in ("packed", "bool"):
            monkeypatch.setenv(REGION_ENGINE_ENV, engine)
            algorithm = algorithm_class(scenario.calibrations,
                                        scenario.worldmap)
            predictions[engine] = algorithm.predict(observation_panel)
        packed, reference = predictions["packed"], predictions["bool"]
        assert packed.region.is_packed_native
        assert not reference.region.is_packed_native
        assert packed.region.packed_bytes() == reference.region.packed_bytes()
        assert np.array_equal(packed.region.mask, reference.region.mask)
        assert packed.used_landmarks == reference.used_landmarks
        assert packed.discarded_landmarks == reference.discarded_landmarks
        assert packed.failed == reference.failed


class TestAuditIdentity:
    def test_audit_records_byte_identical(self, scenario, monkeypatch):
        """The acceptance bar: a fleet audit slice, bool vs packed."""
        results = {}
        for engine in ("packed", "bool"):
            monkeypatch.setenv(REGION_ENGINE_ENV, engine)
            results[engine] = run_audit(scenario, max_servers=12, seed=0)
        packed, reference = results["packed"], results["bool"]
        assert len(packed.records) == len(reference.records) == 12
        assert packed.verdict_counts() == reference.verdict_counts()
        for a, b in zip(packed.records, reference.records):
            assert a.region.packed_bytes() == b.region.packed_bytes()
            assert a.assessment == b.assessment
            assert a.initial_verdict == b.initial_verdict
            assert a.landmark_names == b.landmark_names
            assert a.degraded == b.degraded
            assert [(o.landmark_name, o.lat, o.lon, o.one_way_ms)
                    for o in a.observations] == \
                   [(o.landmark_name, o.lat, o.lon, o.one_way_ms)
                    for o in b.observations]

    def test_packed_records_never_materialise_bool_masks(self, scenario,
                                                         monkeypatch):
        """The memory win is real only if the audit path stays word-level:
        assessment, disambiguation, and reporting must not force the lazy
        boolean view of any record region."""
        monkeypatch.setenv(REGION_ENGINE_ENV, "packed")
        result = run_audit(scenario, max_servers=12, seed=0)
        assert all(r.region.is_packed_native for r in result.records)
        assert not any(r.region.has_bool_view for r in result.records)


class TestCredibleSetSelection:
    """The np.partition top-k in bayesian_region vs the argsort reference."""

    @given(seed=st.integers(0, 2000))
    @settings(max_examples=60, deadline=None)
    def test_random_masses_match(self, seed):
        rng = np.random.default_rng(seed)
        cell_mass = rng.random(4050)
        cell_mass[rng.random(4050) < 0.6] = 0.0
        total = float(cell_mass.sum())
        for mass in (0.5, 0.95, 1.0):
            assert np.array_equal(
                ml._credible_mask_topk(cell_mass, total, mass),
                ml._credible_mask_argsort(cell_mass, total, mass))

    def test_boundary_ties_match(self):
        """Tied masses straddling the cutoff must break identically
        (toward the lower cell index) in both selection paths."""
        cell_mass = np.zeros(500)
        cell_mass[10:60] = 0.5          # one big tie group at the cutoff
        cell_mass[200:210] = 1.0
        total = float(cell_mass.sum())
        for mass in (0.2, 0.5, 0.9, 1.0):
            assert np.array_equal(
                ml._credible_mask_topk(cell_mass, total, mass),
                ml._credible_mask_argsort(cell_mass, total, mass))

    def test_growth_loop_is_exercised(self, monkeypatch):
        """With a tiny initial k the cutoff misses the candidate prefix
        and the 4x growth loop must still land on the reference mask."""
        monkeypatch.setattr(ml, "_TOPK_INITIAL", 2)
        rng = np.random.default_rng(3)
        cell_mass = rng.random(300)
        total = float(cell_mass.sum())
        assert np.array_equal(
            ml._credible_mask_topk(cell_mass, total, 0.95),
            ml._credible_mask_argsort(cell_mass, total, 0.95))

    def test_all_equal_masses(self):
        cell_mass = np.full(130, 0.25)
        total = float(cell_mass.sum())
        for mass in (0.1, 0.77, 1.0):
            assert np.array_equal(
                ml._credible_mask_topk(cell_mass, total, mass),
                ml._credible_mask_argsort(cell_mass, total, mass))


class TestCachedAuditCounters:
    def test_hit_and_miss_counters(self, scenario):
        before = cached_audit.cache_info()
        first = cached_audit(scenario, max_servers=2, seed=771)
        after_miss = cached_audit.cache_info()
        assert after_miss.misses == before.misses + 1
        assert after_miss.hits == before.hits
        second = cached_audit(scenario, max_servers=2, seed=771)
        after_hit = cached_audit.cache_info()
        assert second is first
        assert after_hit.hits == before.hits + 1
        assert after_hit.misses == before.misses + 1
        assert 0 < after_hit.currsize <= after_hit.maxsize

    def test_cache_clear_resets_counters(self, scenario):
        # Snapshot and restore the module cache: other tests share the
        # session-scoped audit entry and must not pay for a recompute.
        saved_entries = audit_module._AUDIT_CACHE.items()
        saved_info = cached_audit.cache_info()
        try:
            cached_audit.cache_clear()
            info = cached_audit.cache_info()
            assert info == (0, 0, audit_module._AUDIT_CACHE_SLOTS, 0, 0)
        finally:
            for key, value in saved_entries:
                audit_module._AUDIT_CACHE.put(key, value)
            audit_module._AUDIT_CACHE._hits = saved_info.hits
            audit_module._AUDIT_CACHE._misses = saved_info.misses
            audit_module._AUDIT_CACHE._evictions = saved_info.evictions
