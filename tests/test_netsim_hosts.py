"""Tests for host creation and attachment."""

import pytest

from repro.netsim import Host, HostFactory, build_cities, build_topology


@pytest.fixture(scope="module")
def factory():
    return HostFactory(build_topology(build_cities(), seed=0), seed=0)


class TestHostValidation:
    def test_rejects_bad_coordinates(self):
        with pytest.raises(ValueError):
            Host(0, "h", 95.0, 0.0, 0, (0, 0), 1.0)

    def test_rejects_negative_last_mile(self):
        with pytest.raises(ValueError):
            Host(0, "h", 0.0, 0.0, 0, (0, 0), -1.0)

    def test_rejects_unknown_os(self):
        with pytest.raises(ValueError):
            Host(0, "h", 0.0, 0.0, 0, (0, 0), 1.0, os="beos")

    def test_distance_between_hosts(self, factory):
        a = factory.create(0.0, 0.0)
        b = factory.create(0.0, 1.0)
        assert a.distance_to(b) == pytest.approx(111.2, rel=0.01)

    def test_location_property(self, factory):
        host = factory.create(12.3, 45.6)
        assert host.location == (12.3, 45.6)


class TestFactory:
    def test_sequential_ids(self, factory):
        a = factory.create(10.0, 10.0)
        b = factory.create(20.0, 20.0)
        assert b.host_id == a.host_id + 1

    def test_attaches_to_nearest_city(self, factory):
        host = factory.create(52.4, 13.5)  # just outside Berlin
        city = factory.topology.city(host.city_id)
        assert city.iso2 == "DE"

    def test_last_mile_grows_with_distance(self, factory):
        # A host far from any city pays a bigger last mile (statistically;
        # compare means over several draws to ride out the random base).
        near = [factory.create(52.52, 13.40).last_mile_ms for _ in range(10)]
        far = [factory.create(75.0, 100.0).last_mile_ms for _ in range(10)]
        assert sum(far) / 10 > sum(near) / 10

    def test_explicit_router_respected(self, factory):
        router = factory.topology.access_router(0)
        host = factory.create(0.0, 0.0, router=router)
        assert host.router == router

    def test_explicit_city_respected(self, factory):
        host = factory.create(0.0, 0.0, city_id=3)
        assert host.city_id == 3

    def test_default_name_generated(self, factory):
        host = factory.create(1.0, 1.0)
        assert host.name.startswith("host-")

    def test_hosts_recorded(self, factory):
        before = len(factory.hosts)
        factory.create(5.0, 5.0)
        assert len(factory.hosts) == before + 1


class TestVectorisedNearestCity:
    def test_matches_scalar_reference(self, factory):
        import numpy as np
        rng = np.random.default_rng(21)
        for _ in range(300):
            lat = float(rng.uniform(-89.0, 89.0))
            lon = float(rng.uniform(-179.0, 179.0))
            assert (factory.nearest_city(lat, lon)
                    == factory.nearest_city_reference(lat, lon))

    def test_exactly_on_a_city(self, factory):
        for city in factory.topology.cities[::17]:
            assert factory.nearest_city(city.lat, city.lon) == city
