"""Tests for spherical disks and rings."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geodesy import (
    EARTH_RADIUS_KM,
    MAX_SURFACE_DISTANCE_KM,
    SphericalDisk,
    SphericalRing,
    destination_point,
    disk_contains_disk,
    disks_intersect,
)

lat_strategy = st.floats(min_value=-85.0, max_value=85.0)
lon_strategy = st.floats(min_value=-179.0, max_value=179.0)
radius_strategy = st.floats(min_value=10.0, max_value=10000.0)


class TestSphericalDisk:
    def test_contains_center(self):
        disk = SphericalDisk(48.0, 11.0, 100.0)
        assert disk.contains(48.0, 11.0)

    def test_contains_boundary_behaviour(self):
        disk = SphericalDisk(0.0, 0.0, 500.0)
        inside = destination_point(0.0, 0.0, 90.0, 499.0)
        outside = destination_point(0.0, 0.0, 90.0, 501.0)
        assert disk.contains(*inside)
        assert not disk.contains(*outside)

    def test_rejects_negative_radius(self):
        with pytest.raises(ValueError):
            SphericalDisk(0.0, 0.0, -1.0)

    def test_rejects_bad_latitude(self):
        with pytest.raises(ValueError):
            SphericalDisk(95.0, 0.0, 10.0)

    def test_whole_earth_flag(self):
        assert SphericalDisk(0.0, 0.0, MAX_SURFACE_DISTANCE_KM).is_whole_earth
        assert not SphericalDisk(0.0, 0.0, 1000.0).is_whole_earth

    def test_area_small_disk_approximates_plane(self):
        disk = SphericalDisk(0.0, 0.0, 100.0)
        assert disk.area_km2() == pytest.approx(math.pi * 100.0 ** 2, rel=0.01)

    def test_area_whole_sphere(self):
        disk = SphericalDisk(0.0, 0.0, math.pi * EARTH_RADIUS_KM)
        assert disk.area_km2() == pytest.approx(
            4 * math.pi * EARTH_RADIUS_KM ** 2, rel=1e-9)

    def test_contains_vec_matches_scalar(self):
        disk = SphericalDisk(40.0, -3.0, 800.0)
        lats = np.array([40.0, 41.0, 60.0])
        lons = np.array([-3.0, -2.0, 30.0])
        vec = disk.contains_vec(lats, lons)
        for i in range(3):
            assert vec[i] == disk.contains(lats[i], lons[i])

    @given(lat=lat_strategy, lon=lon_strategy, radius=radius_strategy)
    @settings(max_examples=100, deadline=None)
    def test_area_positive_and_bounded(self, lat, lon, radius):
        area = SphericalDisk(lat, lon, radius).area_km2()
        assert 0.0 < area <= 4 * math.pi * EARTH_RADIUS_KM ** 2 + 1.0


class TestSphericalRing:
    def test_contains_annulus_only(self):
        ring = SphericalRing(0.0, 0.0, 300.0, 600.0)
        inner_point = destination_point(0.0, 0.0, 0.0, 200.0)
        mid_point = destination_point(0.0, 0.0, 0.0, 450.0)
        outer_point = destination_point(0.0, 0.0, 0.0, 700.0)
        assert not ring.contains(*inner_point)
        assert ring.contains(*mid_point)
        assert not ring.contains(*outer_point)

    def test_zero_inner_behaves_like_disk(self):
        ring = SphericalRing(10.0, 10.0, 0.0, 500.0)
        disk = SphericalDisk(10.0, 10.0, 500.0)
        for probe in [(10.0, 10.0), (12.0, 10.0), (20.0, 10.0)]:
            assert ring.contains(*probe) == disk.contains(*probe)

    def test_rejects_inverted_radii(self):
        with pytest.raises(ValueError):
            SphericalRing(0.0, 0.0, 500.0, 100.0)

    def test_area_is_cap_difference(self):
        ring = SphericalRing(0.0, 0.0, 300.0, 600.0)
        outer = SphericalDisk(0.0, 0.0, 600.0).area_km2()
        inner = SphericalDisk(0.0, 0.0, 300.0).area_km2()
        assert ring.area_km2() == pytest.approx(outer - inner, rel=1e-12)

    def test_contains_vec_matches_scalar(self):
        ring = SphericalRing(-20.0, 140.0, 200.0, 900.0)
        lats = np.linspace(-25, -15, 7)
        lons = np.full(7, 140.0)
        vec = ring.contains_vec(lats, lons)
        for i in range(7):
            assert vec[i] == ring.contains(lats[i], lons[i])


class TestDiskRelations:
    def test_overlapping_disks_intersect(self):
        a = SphericalDisk(0.0, 0.0, 600.0)
        b = SphericalDisk(0.0, 5.0, 600.0)  # centers ~556 km apart
        assert disks_intersect(a, b)

    def test_distant_disks_do_not_intersect(self):
        a = SphericalDisk(0.0, 0.0, 100.0)
        b = SphericalDisk(0.0, 90.0, 100.0)
        assert not disks_intersect(a, b)

    def test_containment(self):
        outer = SphericalDisk(0.0, 0.0, 1000.0)
        inner = SphericalDisk(0.0, 1.0, 100.0)
        assert disk_contains_disk(outer, inner)
        assert not disk_contains_disk(inner, outer)

    def test_whole_earth_contains_everything(self):
        whole = SphericalDisk(0.0, 0.0, MAX_SURFACE_DISTANCE_KM)
        assert disk_contains_disk(whole, SphericalDisk(-80.0, 170.0, 5000.0))

    @given(lat=lat_strategy, lon=lon_strategy, radius=radius_strategy)
    @settings(max_examples=100, deadline=None)
    def test_intersection_is_reflexive(self, lat, lon, radius):
        disk = SphericalDisk(lat, lon, radius)
        assert disks_intersect(disk, disk)
