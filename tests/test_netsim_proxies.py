"""Tests for the VPN provider fleet and proxied measurement."""

import numpy as np
import pytest

from repro.netsim import (
    PROVIDER_PROFILES,
    ProxiedClient,
    competitor_claim_counts,
)


class TestFleetStructure:
    def test_seven_providers(self, scenario):
        names = [p.name for p in scenario.providers]
        assert names == list("ABCDEFG")

    def test_claim_breadth_ordering(self, scenario):
        by_name = {p.name: p.n_claimed_countries for p in scenario.providers}
        assert by_name["A"] > by_name["B"] > by_name["C"] > by_name["G"]

    def test_every_claim_backed_by_a_server(self, scenario):
        for provider in scenario.providers:
            claimed_with_servers = {s.claimed_country for s in provider.servers}
            assert claimed_with_servers == set(provider.claimed_countries)

    def test_all_claims_are_known_countries(self, scenario):
        for provider in scenario.providers:
            for code in provider.claimed_countries:
                assert code in scenario.registry

    def test_servers_claiming_filter(self, scenario):
        provider = scenario.providers[0]
        code = provider.claimed_countries[0]
        for server in provider.servers_claiming(code):
            assert server.claimed_country == code

    def test_ips_unique(self, scenario):
        ips = [s.ip for s in scenario.all_servers()]
        assert len(ips) == len(set(ips))


class TestGroundTruth:
    def test_honest_servers_are_in_claimed_country(self, scenario):
        mismatches = 0
        honest = [s for s in scenario.all_servers() if s.honest]
        for server in honest:
            truth = scenario.true_country_of(server)
            if truth != server.claimed_country:
                mismatches += 1
        # Rasterisation of border cities can flip a handful.
        assert mismatches <= 0.05 * len(honest)

    def test_dishonest_servers_are_elsewhere(self, scenario):
        for server in scenario.all_servers():
            if server.honest:
                continue
            truth = scenario.true_country_of(server)
            assert truth != server.claimed_country

    def test_tier1_claims_mostly_honest(self, scenario):
        tier1 = {c.iso2 for c in scenario.registry.by_hosting_tier(1)}
        tier3 = {c.iso2 for c in scenario.registry.by_hosting_tier(3)}
        servers = scenario.all_servers()
        rate = lambda pool: (sum(1 for s in pool if s.honest) / len(pool))
        tier1_servers = [s for s in servers if s.claimed_country in tier1]
        tier3_servers = [s for s in servers if s.claimed_country in tier3]
        assert rate(tier1_servers) > 0.6
        assert rate(tier3_servers) < 0.3

    def test_fake_servers_concentrate_in_hosting_countries(self, scenario):
        fakes = [s for s in scenario.all_servers() if not s.honest]
        tier12 = {c.iso2 for c in scenario.registry if c.hosting_tier <= 2}
        located = [scenario.true_country_of(s) for s in fakes]
        in_hosting = sum(1 for code in located if code in tier12)
        assert in_hosting / len(fakes) > 0.9

    def test_provider_d_more_honest_than_b(self, scenario):
        by_name = {p.name: p for p in scenario.providers}
        rate = lambda p: (sum(1 for s in p.servers if s.honest)
                          / len(p.servers))
        assert rate(by_name["D"]) > rate(by_name["B"])


class TestNetworkMetadata:
    def test_same_site_shares_asn_and_prefix(self, scenario):
        by_site = {}
        for server in scenario.all_servers():
            key = (server.provider, server.datacenter_city_id)
            by_site.setdefault(key, []).append(server)
        for group in by_site.values():
            assert len({s.asn for s in group}) == 1
            assert len({s.prefix for s in group}) == 1

    def test_different_providers_never_share_prefixes(self, scenario):
        prefix_providers = {}
        for server in scenario.all_servers():
            prefix_providers.setdefault(server.prefix, set()).add(server.provider)
        for providers in prefix_providers.values():
            assert len(providers) == 1

    def test_ip_within_prefix(self, scenario):
        for server in scenario.all_servers()[:100]:
            network_part = server.prefix.rsplit(".", 1)[0]
            assert server.ip.startswith(network_part + ".")

    def test_ping_response_rate_about_ten_percent(self, scenario):
        servers = scenario.all_servers()
        rate = sum(1 for s in servers if s.responds_to_ping) / len(servers)
        assert 0.04 <= rate <= 0.2


class TestProxiedClient:
    def test_rtt_through_proxy_is_sum_of_legs(self, scenario):
        server = scenario.all_servers()[0]
        tunnel = ProxiedClient(scenario.network, scenario.client, server)
        rng = np.random.default_rng(0)
        landmark = scenario.atlas.anchors[0]
        through = min(tunnel.rtt_through_proxy_ms(landmark, rng)
                      for _ in range(20))
        floor = (scenario.network.base_rtt_ms(scenario.client, server.host)
                 + scenario.network.base_rtt_ms(server.host, landmark.host))
        assert through >= floor
        assert through < floor * 1.5 + 30

    def test_self_ping_about_twice_direct(self, scenario):
        server = next(s for s in scenario.all_servers() if s.responds_to_ping)
        tunnel = ProxiedClient(scenario.network, scenario.client, server)
        rng = np.random.default_rng(1)
        direct = min(tunnel.direct_ping_ms(rng) for _ in range(10))
        indirect = min(tunnel.self_ping_through_proxy_ms(rng) for _ in range(10))
        assert indirect == pytest.approx(2 * direct, rel=0.3)

    def test_direct_ping_none_when_filtered(self, scenario):
        server = next(s for s in scenario.all_servers()
                      if not s.responds_to_ping)
        tunnel = ProxiedClient(scenario.network, scenario.client, server)
        assert tunnel.direct_ping_ms() is None


class TestMarketModel:
    def test_competitor_counts_sorted_and_bounded(self):
        counts = competitor_claim_counts(n_providers=150)
        assert len(counts) == 150
        assert counts == sorted(counts, reverse=True)
        assert counts[0] <= 197
        assert counts[-1] >= 1

    def test_deterministic(self):
        assert competitor_claim_counts(seed=7) == competitor_claim_counts(seed=7)

    def test_profiles_cover_a_to_g(self):
        assert list(PROVIDER_PROFILES) == list("ABCDEFG")
