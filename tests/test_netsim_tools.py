"""Tests for the CLI and web measurement tools."""

import numpy as np
import pytest

from repro.netsim import CliTool, WebTool


@pytest.fixture(scope="module")
def linux_client(scenario):
    return scenario.factory.create(50.0, 8.6, name="tool-linux", os="linux")


@pytest.fixture(scope="module")
def windows_client(scenario):
    return scenario.factory.create(50.0, 8.6, name="tool-windows", os="windows")


class TestCliTool:
    def test_always_one_round_trip(self, scenario, linux_client, rng):
        tool = CliTool(scenario.network)
        for landmark in scenario.atlas.anchors[:10]:
            sample = tool.measure(linux_client, landmark, rng)
            assert sample.n_round_trips == 1
            assert sample.tool == "cli"

    def test_rtt_close_to_network_base(self, scenario, linux_client):
        tool = CliTool(scenario.network)
        landmark = scenario.atlas.anchors[0]
        base = scenario.network.base_rtt_ms(linux_client, landmark.host)
        rng = np.random.default_rng(0)
        best = min(tool.measure(linux_client, landmark, rng).rtt_ms
                   for _ in range(20))
        assert base <= best <= base * 1.5 + 10

    def test_distance_recorded(self, scenario, linux_client, rng):
        tool = CliTool(scenario.network)
        landmark = scenario.atlas.anchors[0]
        sample = tool.measure(linux_client, landmark, rng)
        assert sample.distance_km == pytest.approx(
            linux_client.distance_to(landmark.host))

    def test_measure_many(self, scenario, linux_client, rng):
        tool = CliTool(scenario.network)
        samples = tool.measure_many(linux_client, scenario.atlas.anchors[:5], rng)
        assert len(samples) == 5


class TestWebTool:
    def test_round_trips_match_port_80(self, scenario, linux_client, rng):
        tool = WebTool(scenario.network)
        for landmark in scenario.atlas.anchors[:20]:
            sample = tool.measure(linux_client, landmark, rng)
            expected = 2 if landmark.host.listens_on_port_80 else 1
            assert sample.n_round_trips == expected

    def test_rejects_unknown_browser(self, scenario):
        with pytest.raises(ValueError):
            WebTool(scenario.network, browser="netscape-4")

    def test_linux_overhead_small(self, scenario, linux_client):
        tool = WebTool(scenario.network)
        rng = np.random.default_rng(0)
        landmark = next(lm for lm in scenario.atlas.anchors
                        if not lm.host.listens_on_port_80)
        base = scenario.network.base_rtt_ms(linux_client, landmark.host)
        best = min(tool.measure(linux_client, landmark, rng).rtt_ms
                   for _ in range(20))
        assert best < base + 20

    def test_linux_never_flags_outliers(self, scenario, linux_client):
        tool = WebTool(scenario.network)
        rng = np.random.default_rng(1)
        samples = [tool.measure(linux_client, lm, rng)
                   for lm in scenario.atlas.anchors for _ in range(2)]
        assert not any(s.is_outlier for s in samples)

    def test_windows_produces_outliers(self, scenario, windows_client):
        tool = WebTool(scenario.network, browser="edge-17")
        rng = np.random.default_rng(2)
        samples = [tool.measure(windows_client, lm, rng)
                   for lm in scenario.atlas.anchors for _ in range(3)]
        outliers = [s for s in samples if s.is_outlier]
        assert outliers
        clean = [s.rtt_ms for s in samples if not s.is_outlier]
        assert min(s.rtt_ms for s in outliers) > np.median(clean)

    def test_windows_noisier_than_linux(self, scenario, linux_client,
                                        windows_client):
        landmark = scenario.atlas.anchors[0]
        tool = WebTool(scenario.network)
        rng = np.random.default_rng(3)
        linux_rtts = [tool.measure(linux_client, landmark, rng).rtt_ms
                      for _ in range(30)]
        windows_rtts = [tool.measure(windows_client, landmark, rng).rtt_ms
                        for s in range(30)]
        assert np.median(windows_rtts) > np.median(linux_rtts)

    def test_apparent_one_way_halves_rtt(self, scenario, linux_client, rng):
        tool = WebTool(scenario.network)
        sample = tool.measure(linux_client, scenario.atlas.anchors[0], rng)
        assert sample.apparent_one_way_ms == sample.rtt_ms / 2.0
